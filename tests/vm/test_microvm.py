import pytest

from repro.mem.layout import GB, MB
from repro.node import Node
from repro.vm.hypervisor import Hypervisor, RestoreMode
from repro.vm.microvm import (GUEST_KERNEL_RSS, VMM_OVERHEAD, GuestConfig,
                              StorageMode, VMState)


def make_hv():
    node = Node()
    return node, Hypervisor(node)


def spawn(node, hv, storage=StorageMode.VIRTIO_BLK):
    def proc():
        vm = yield hv.spawn_vm(GuestConfig(storage=storage))
        return vm

    return node.sim.run_process(proc())


class TestLifecycle:
    def test_spawn_charges_overheads(self):
        node, hv = make_hv()
        vm = spawn(node, hv)
        assert node.memory.usage["vmm-overhead"] == VMM_OVERHEAD
        assert node.memory.usage["vm-guest-kernel"] == GUEST_KERNEL_RSS
        assert vm.resident_bytes == VMM_OVERHEAD + GUEST_KERNEL_RSS

    def test_destroy_releases_everything(self):
        node, hv = make_hv()
        vm = spawn(node, hv)
        vm.read_files(10 * MB)

        def proc():
            yield hv.destroy_vm(vm)

        node.sim.run_process(proc())
        assert vm.state == VMState.DESTROYED
        assert node.memory.usage["vmm-overhead"] == 0
        assert node.memory.usage["vm-guest-cache"] == 0

    def test_cold_boot_takes_guest_boot_time(self):
        node, hv = make_hv()

        def proc():
            vm = yield hv.spawn_vm(GuestConfig())
            start = node.sim.now
            yield hv.boot_cold(vm)
            return vm, node.sim.now - start

        vm, elapsed = node.sim.run_process(proc())
        assert vm.state == VMState.RUNNING
        assert elapsed == pytest.approx(0.125, rel=0.01)

    def test_read_after_destroy_raises(self):
        node, hv = make_hv()
        vm = spawn(node, hv)

        def proc():
            yield hv.destroy_vm(vm)

        node.sim.run_process(proc())
        with pytest.raises(RuntimeError):
            vm.read_files(MB)


class TestRestoreModes:
    def run_restore(self, mode, snapshot_bytes=2 * GB):
        node, hv = make_hv()

        def proc():
            vm = yield hv.spawn_vm(GuestConfig())
            start = node.sim.now
            yield hv.restore_snapshot(vm, snapshot_bytes, mode)
            return node.sim.now - start

        return node.sim.run_process(proc())

    def test_copy_restore_exceeds_700ms_for_2gb(self):
        """§9.6.1: vanilla CH full-copy restore >700 ms."""
        assert self.run_restore(RestoreMode.COPY) > 0.7

    def test_lazy_restore_fast(self):
        assert self.run_restore(RestoreMode.LAZY) < 0.05

    def test_template_restore_fastest(self):
        t_template = self.run_restore(RestoreMode.TEMPLATE)
        t_lazy = self.run_restore(RestoreMode.LAZY)
        assert t_template < t_lazy

    def test_copy_scales_with_snapshot_size(self):
        small = self.run_restore(RestoreMode.COPY, snapshot_bytes=256 * MB)
        large = self.run_restore(RestoreMode.COPY, snapshot_bytes=2 * GB)
        assert large > 4 * small


class TestStorageModes:
    def test_virtio_blk_double_caches(self):
        node, hv = make_hv()
        vm = spawn(node, hv, StorageMode.VIRTIO_BLK)
        vm.read_files(100 * MB, "libchromium.so")
        assert node.memory.usage["vm-guest-cache"] == pytest.approx(
            100 * MB, abs=4096)
        assert node.memory.usage["host-page-cache"] == pytest.approx(
            100 * MB, abs=4096)

    def test_virtio_blk_no_cross_vm_sharing(self):
        node, hv = make_hv()
        a = spawn(node, hv, StorageMode.VIRTIO_BLK)
        b = spawn(node, hv, StorageMode.VIRTIO_BLK)
        a.read_files(100 * MB, "libchromium.so")
        b.read_files(100 * MB, "libchromium.so")
        # Same content, two VMs: everything duplicated (4 copies total).
        assert node.memory.usage["host-page-cache"] == pytest.approx(
            200 * MB, abs=8192)
        assert node.memory.usage["vm-guest-cache"] == pytest.approx(
            200 * MB, abs=8192)

    def test_pmem_union_single_host_copy(self):
        node, hv = make_hv()
        a = spawn(node, hv, StorageMode.PMEM_UNION)
        b = spawn(node, hv, StorageMode.PMEM_UNION)
        a.read_files(100 * MB, "libchromium.so")
        b.read_files(100 * MB, "libchromium.so")
        # One shared host copy; guest caches bypassed entirely.
        assert node.memory.usage["host-page-cache"] == pytest.approx(
            100 * MB, abs=4096)
        assert node.memory.usage.get("vm-guest-cache", 0) == 0

    def test_virtiofs_dax_shares_host_but_not_templates(self):
        node, hv = make_hv()
        a = spawn(node, hv, StorageMode.VIRTIOFS_DAX)
        b = spawn(node, hv, StorageMode.VIRTIOFS_DAX)
        a.read_files(50 * MB, "libc.so")
        b.read_files(50 * MB, "libc.so")
        assert node.memory.usage["host-page-cache"] == pytest.approx(
            50 * MB, abs=4096)

    def test_pmem_writes_bypass_host_cache(self):
        node, hv = make_hv()
        vm = spawn(node, hv, StorageMode.PMEM_UNION)
        vm.read_files(10 * MB, "scratch.dat", write=True)
        assert node.memory.usage.get("host-page-cache", 0) == 0
        assert node.memory.usage["vm-guest-cache"] == pytest.approx(
            10 * MB, abs=4096)

    def test_blk_writes_double_cache(self):
        node, hv = make_hv()
        vm = spawn(node, hv, StorageMode.VIRTIO_BLK)
        vm.read_files(10 * MB, "scratch.dat", write=True)
        assert node.memory.usage["host-page-cache"] == pytest.approx(
            10 * MB, abs=4096)

    def test_repeat_reads_hit_cache(self):
        node, hv = make_hv()
        vm = spawn(node, hv, StorageMode.VIRTIO_BLK)
        t1 = vm.read_files(10 * MB, "f")
        t2 = vm.read_files(10 * MB, "f")
        assert t1 > 0
        assert t2 == 0.0

    def test_pmem_reads_faster_than_blk(self):
        node, hv = make_hv()
        blk = spawn(node, hv, StorageMode.VIRTIO_BLK)
        pmem = spawn(node, hv, StorageMode.PMEM_UNION)
        assert pmem.read_files(50 * MB) < blk.read_files(50 * MB)


class TestJailer:
    def test_e2b_costs_dominated_by_net_and_migration(self):
        node, hv = make_hv()

        def proc():
            start = node.sim.now
            yield hv.create_jailer_sandbox(e2b_costs=True)
            return node.sim.now - start

        elapsed = node.sim.run_process(proc())
        # 97 ms net + 63 ms migration + cgroup create.
        assert 0.16 < elapsed < 0.25

    def test_pooled_netns_and_clone_into_cheap(self):
        node, hv = make_hv()

        def proc():
            start = node.sim.now
            yield hv.create_jailer_sandbox(netns_pooled=True,
                                           clone_into_cgroup=True)
            return node.sim.now - start

        elapsed = node.sim.run_process(proc())
        assert elapsed < 0.04   # cgroup create + clone_into only
