"""Tests for two-dimensional paging with template pre-population."""

import numpy as np
import pytest

from repro.mem.layout import MB
from repro.mem.pools import CXLPool, DedupStore, RDMAPool
from repro.vm.ept import ExtendedPageTable


def make_ept(npages=100, pool_cls=CXLPool):
    ept = ExtendedPageTable(npages)
    store = DedupStore(pool_cls(64 * MB))
    block = store.store_image(np.arange(npages))
    ept.bind_template(block)
    return ept


def arr(*xs):
    return np.array(xs, dtype=np.int64)


class TestBinding:
    def test_bind_requires_matching_size(self):
        ept = ExtendedPageTable(10)
        store = DedupStore(CXLPool(MB))
        with pytest.raises(ValueError):
            ept.bind_template(store.store_image(np.arange(5)))

    def test_prepopulate_requires_binding(self):
        ept = ExtendedPageTable(10)
        with pytest.raises(RuntimeError):
            ept.prepopulate(np.ones(10, dtype=bool))

    def test_prepopulate_mask_length_checked(self):
        ept = make_ept(10)
        with pytest.raises(ValueError):
            ept.prepopulate(np.ones(5, dtype=bool))


class TestLazyBaseline:
    def test_every_first_read_takes_a_vm_exit(self):
        ept = make_ept(100)
        out = ept.access(np.arange(50), arr())
        assert out.vm_exits == 50
        assert out.pages_fetched == 50
        assert ept.local_pages == 50

    def test_second_read_free(self):
        ept = make_ept(100)
        ept.access(np.arange(50), arr())
        out = ept.access(np.arange(50), arr())
        assert out.vm_exits == 0


class TestPrepopulation:
    def test_prepopulated_reads_take_no_exits(self):
        """§8.1.3: avoid triggering a VM exit due to a page fault on
        read access."""
        ept = make_ept(100)
        cost = ept.prepopulate(np.ones(100, dtype=bool))
        assert cost > 0
        out = ept.access(np.arange(100), arr())
        assert out.vm_exits == 0
        assert out.direct_loads == 100
        assert ept.local_pages == 0   # still shared, zero local memory

    def test_partial_hot_mask(self):
        ept = make_ept(100)
        hot = np.zeros(100, dtype=bool)
        hot[:30] = True
        ept.prepopulate(hot)
        out = ept.access(np.arange(100), arr())
        assert out.direct_loads == 30
        assert out.vm_exits == 70

    def test_writes_to_prepopulated_pages_cow(self):
        ept = make_ept(100)
        ept.prepopulate(np.ones(100, dtype=bool))
        out = ept.access(arr(), np.arange(10))
        assert out.cow_faults == 10
        assert out.vm_exits == 10
        assert ept.local_pages == 10

    def test_rdma_pool_cannot_prepopulate(self):
        ept = make_ept(100, RDMAPool)
        cost = ept.prepopulate(np.ones(100, dtype=bool))
        assert cost == 0.0
        out = ept.access(np.arange(10), arr())
        assert out.vm_exits == 10

    def test_prepopulation_faster_at_runtime(self):
        lazy = make_ept(1000)
        out_lazy = lazy.access(np.arange(1000), arr())
        t_lazy = lazy.access_time(out_lazy)

        pre = make_ept(1000)
        pre.prepopulate(np.ones(1000, dtype=bool))
        out_pre = pre.access(np.arange(1000), arr())
        t_pre = pre.access_time(out_pre)
        assert t_pre < t_lazy / 3


class TestAccounting:
    def test_local_delta_hook(self):
        deltas = []
        ept = ExtendedPageTable(50, on_local_delta=deltas.append)
        store = DedupStore(CXLPool(MB))
        ept.bind_template(store.store_image(np.arange(50)))
        ept.access(np.arange(20), np.arange(5))
        assert sum(deltas) == ept.local_pages

    def test_out_of_range_rejected(self):
        ept = make_ept(10)
        with pytest.raises(IndexError):
            ept.access(arr(10), arr())

    def test_access_time_components(self):
        ept = make_ept(100)
        out = ept.access(np.arange(50), arr())
        t = ept.access_time(out)
        assert t > 0
        # Cheap relative to a full memory copy of the same pages.
        assert t < 50 * 4096 * ept.latency.mem.copy_per_byte * 10
