"""Tests for result export and reporting."""

import csv
import json

import pytest

from repro.bench.harness import make_platform
from repro.report import (comparison_markdown, invocations_to_csv,
                          run_result_summary, speedup_table,
                          summary_to_csv, write_summary_json)
from repro.serverless.metrics import InvocationResult, LatencyRecorder
from repro.serverless.runner import run_workload
from repro.workloads.synthetic import make_w1_bursty


@pytest.fixture(scope="module")
def results():
    wl = lambda: make_w1_bursty(seed=11, duration=700.0, burst_size=3,
                                bursts_per_function=1)
    return [run_workload(make_platform(name, seed=11), wl())
            for name in ("criu", "t-cxl")]


def test_invocations_to_csv_roundtrip(results, tmp_path):
    path = tmp_path / "inv.csv"
    n = invocations_to_csv(results[0].recorder, path)
    assert n == results[0].recorder.count()
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == n
    assert float(rows[0]["e2e_s"]) > 0
    assert rows[0]["function"] in {f for f in
                                   results[0].recorder.functions()}


def _streaming_recorder():
    rec = LatencyRecorder(keep_results=False)
    for i in range(20):
        fn = "IR" if i % 2 else "DH"
        rec.record(InvocationResult(
            function=fn, arrival=float(i), start_kind="warm",
            startup=0.001, exec=0.05 + 0.001 * i,
            e2e=0.051 + 0.001 * i))
    return rec


def test_invocations_to_csv_streaming_fallback(tmp_path):
    """keep_results=False downgrades to the summary CSV with a warning."""
    rec = _streaming_recorder()
    path = tmp_path / "inv.csv"
    with pytest.warns(UserWarning, match="keep_results=False"):
        n = invocations_to_csv(rec, path)
    assert n == 2  # one summary row per function, not per invocation
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert [r["function"] for r in rows] == ["DH", "IR"]
    assert all(int(r["count"]) == 10 for r in rows)
    assert float(rows[0]["p99_e2e_s"]) > 0


def test_summary_to_csv_both_modes(results, tmp_path):
    """The summary export answers in both recorder regimes."""
    exact = summary_to_csv(results[0].recorder, tmp_path / "a.csv")
    assert exact == len(results[0].recorder.functions())
    streaming = summary_to_csv(_streaming_recorder(), tmp_path / "b.csv")
    assert streaming == 2


def test_run_result_summary_streaming_mode():
    """run_result_summary works (and says so) on a streaming recorder."""
    from repro.serverless.runner import RunResult
    rec = _streaming_recorder()
    result = RunResult(platform="t-cxl", workload="synthetic",
                       recorder=rec, peak_memory_bytes=1 << 30,
                       memory_breakdown_mb={}, memory_timeline=[],
                       integral_mb_seconds=1.0, cpu_utilization=0.5,
                       platform_stats={}, duration=20.0)
    summary = run_result_summary(result)
    assert summary["metrics_mode"] == "streaming"
    assert summary["invocations"] == 20
    assert summary["p99_e2e_s"] > 0
    assert set(summary["per_function"]) == {"DH", "IR"}


def test_run_result_summary_fields(results):
    summary = run_result_summary(results[1])
    assert summary["platform"] == "t-cxl"
    assert summary["p99_e2e_s"] >= summary["p50_e2e_s"]
    assert summary["peak_memory_mb"] > 0
    assert set(summary["per_function"]) == set(
        results[1].recorder.functions())


def test_write_summary_json(results, tmp_path):
    path = tmp_path / "summary.json"
    write_summary_json(results, path)
    payload = json.loads(path.read_text())
    assert [p["platform"] for p in payload] == ["criu", "t-cxl"]


def test_comparison_markdown_structure(results):
    md = comparison_markdown(results, title="W1")
    assert md.startswith("## W1")
    assert "| criu |" in md
    assert "| t-cxl |" in md
    assert "|---|---|---|---|---|---|" in md


def test_comparison_markdown_rejects_empty():
    with pytest.raises(ValueError):
        comparison_markdown([])


def test_speedup_table(results):
    table = speedup_table(results, baseline="criu")
    assert "t-cxl" in table
    speedups = table["t-cxl"]
    assert speedups
    # TrEnv beats CRIU on most functions in this bursty workload.
    wins = sum(1 for v in speedups.values() if v > 1.0)
    assert wins >= len(speedups) * 0.5


def test_speedup_table_unknown_baseline(results):
    with pytest.raises(KeyError):
        speedup_table(results, baseline="nope")
