"""Top-level API surface and CLI tests."""

import json

import pytest

import repro
from repro.cli import EXPERIMENTS, build_parser, main


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_headline_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quick_composition(self):
        node = repro.Node(seed=1)
        pool = repro.CXLPool(1 << 33, node.latency)
        platform = repro.TrEnvPlatform(node, pool)
        platform.register_function(repro.function_by_name("DH"))

        def driver():
            r = yield platform.invoke("DH")
            return r

        r = node.sim.run_process(driver())
        assert r.e2e > 0


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig21" in out
        assert "table1" in out

    def test_every_experiment_registered(self):
        expected = {"table1", "table2", "table3", "fig3", "fig4", "fig10",
                    "fig17", "fig18b", "fig19", "fig20", "fig21", "fig22",
                    "fig23", "fig24", "fig25", "fig26", "chaos"}
        assert set(EXPERIMENTS) == expected

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_fig10_runs_and_emits_json(self, capsys):
        assert main(["fig10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "IR" in payload
        assert payload["IR"]["read_only_ratio"] == pytest.approx(0.9,
                                                                 abs=0.02)

    def test_fig21_runs(self, capsys):
        assert main(["fig21"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["JS"]["mm-template"]["startup"] < 0.02

    def test_table3_runs(self, capsys):
        assert main(["table3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["blackjack"]["input_tokens"] == 1690
