"""Runtime sanitizer tests: seeded violations must be caught by name.

Each negative test injects one specific accounting bypass through a
test double / direct mutation and asserts the sanitizer reports it
under the documented invariant name (docs/analysis.md).
"""

import heapq

import pytest

from repro.analysis import hooks
from repro.analysis.sanitizer import (
    INV_CGROUP_MEMBERSHIP, INV_CHARGE_CONSERVATION, INV_EVENT_MONOTONICITY,
    INV_FRAME_REFCOUNT, INV_PAGE_CACHE_BALANCE, INV_POOL_CAPACITY,
    INV_PROTECTED_WRITE, Sanitizer, SanitizerError, maybe_sanitized,
    sanitized)
from repro.mem.accounting import MemoryAccountant
from repro.mem.address_space import PTE_LOCAL, AddressSpace
from repro.mem.layout import GB
from repro.mem.page_cache import PageCache
from repro.mem.pools import CXLPool, PoolBlock, RDMAPool, TieredPool
from repro.sim.engine import Delay, Simulator


def invariants(excinfo):
    return {v.invariant for v in excinfo.value.violations}


# -- negative tests: seeded violations, named diagnostics ----------------------


def test_frame_refcount_leak_detected():
    space = AddressSpace("victim")
    with pytest.raises(SanitizerError) as excinfo:
        with sanitized():
            vma = space.add_vma("heap", 8)
            space.populate_local(vma)
            space.local_pages += 5        # leak: bypasses _charge
    assert invariants(excinfo) == {INV_FRAME_REFCOUNT}
    assert "local_pages" in str(excinfo.value)


def test_frame_double_free_detected():
    space = AddressSpace("victim")
    with pytest.raises(SanitizerError) as excinfo:
        with sanitized():
            vma = space.add_vma("heap", 4)
            space.populate_local(vma)
            space.local_pages += 4        # forge pages...
            space.local_pages -= 4        # ...then "free" them via ledger
            space.destroy()               # ledger: 4 - 4(destroy) = 0, ok
            space.destroyed = False
            space.local_pages = 4
            space.destroy()               # second free drives shadow < 0
    assert INV_FRAME_REFCOUNT in invariants(excinfo)
    assert "negative" in str(excinfo.value) or "double free" in \
        str(excinfo.value)


def test_protected_page_write_without_cow_detected():
    pool = CXLPool(1 * GB)
    space = AddressSpace("victim")
    vma = space.add_vma("code", 4)
    with pytest.raises(SanitizerError) as excinfo:
        with sanitized():
            block = PoolBlock(pool=pool, offsets=pool.allocate_pages(4))
            space.bind_remote(vma, block, valid=True)
            vma.state[0] = PTE_LOCAL      # direct flip: no CoW fault
    assert invariants(excinfo) == {INV_PROTECTED_WRITE}
    assert "CoW" in str(excinfo.value)


def test_charge_conservation_imbalance_detected():
    acct = MemoryAccountant()
    with pytest.raises(SanitizerError) as excinfo:
        with sanitized():
            acct.charge("kernel", 4096)
            acct.usage["kernel"] += 4096  # breakdown no longer sums
    assert invariants(excinfo) == {INV_CHARGE_CONSERVATION}
    assert "breakdown" in str(excinfo.value)


def test_cgroup_membership_bypass_detected():
    from repro.kernel.cgroup import CgroupManager
    sim = Simulator()
    manager = CgroupManager(sim)
    with pytest.raises(SanitizerError) as excinfo:
        with sanitized():
            cgroup = sim.run_process(manager.create("jail"))
            sim.run_process(manager.clone_into(1, cgroup))
            cgroup.procs.add(99)          # skipped the migration path
    assert INV_CGROUP_MEMBERSHIP in invariants(excinfo)
    assert "99" in str(excinfo.value)


def test_pool_capacity_ledger_detected():
    pool = RDMAPool(1 * GB)
    with pytest.raises(SanitizerError) as excinfo:
        with sanitized():
            pool.allocate_pages(16)
            pool._stored_pages += 7       # forged usage
    assert invariants(excinfo) == {INV_POOL_CAPACITY}


def test_tiered_pool_conservation_detected():
    tiered = TieredPool(CXLPool(1 * GB), RDMAPool(1 * GB), hot_fraction=0.5)
    with pytest.raises(SanitizerError) as excinfo:
        with sanitized():
            tiered.allocate_pages(32)
            tiered.hot._stored_pages -= 4  # tier no longer sums up
    assert invariants(excinfo) == {INV_POOL_CAPACITY}
    assert "hot+cold" in str(excinfo.value)


def test_page_cache_balance_detected():
    cache = PageCache("victim")
    with pytest.raises(SanitizerError) as excinfo:
        with sanitized():
            cache.charge_file(1, 8 * 4096)
            cache._files[1].add(10_000)   # uncounted insertion
    assert invariants(excinfo) == {INV_PAGE_CACHE_BALANCE}


class _FinishedTask:
    finished = True
    _epoch = 0


def test_event_monotonicity_detected():
    from repro import optflags
    with optflags.disabled("timer_wheel"):
        sim = Simulator()     # reference scheduler: raw heap in sim._queue

    def proc():
        yield Delay(1.0)

    with pytest.raises(SanitizerError) as excinfo:
        with sanitized():
            sim.run_process(proc())       # dispatches up to t=1.0
            # A buggy scheduler enqueues into the past:
            heapq.heappush(sim._queue,
                           (0.25, next(sim._seq), _FinishedTask(), None, 0))
            sim._step()
    assert invariants(excinfo) == {INV_EVENT_MONOTONICITY}
    assert "backwards" in str(excinfo.value)


# -- positive paths ------------------------------------------------------------


def test_clean_lifecycle_passes():
    pool = CXLPool(1 * GB)
    with sanitized() as sanitizer:
        space = AddressSpace("clean")
        vma = space.add_vma("code", 64)
        block = PoolBlock(pool=pool, offsets=pool.allocate_pages(64))
        space.bind_remote(vma, block, valid=True)
        import numpy as np
        space.access(np.arange(8), np.arange(8))   # CoW through the API
        space.destroy()
        sanitizer.check()                           # mid-run barrier
    assert not sanitizer.violations
    assert sanitizer.barriers == 2


def test_engine_wiring_counts_events():
    sim = Simulator()

    def proc():
        yield Delay(1.0)

    with sanitized() as sanitizer:
        sim.run_process(proc())
    assert sanitizer.events_checked > 0


def test_duplicate_violations_collapse():
    sanitizer = Sanitizer()
    sim = Simulator()
    sanitizer.on_sim_event(sim, 5.0)
    sanitizer.on_sim_event(sim, 1.0)
    before = len(sanitizer.violations)
    sanitizer.scan()
    assert len(sanitizer.violations) == before == 1


def test_sanitized_nests_and_restores():
    with sanitized() as outer:
        assert hooks.active is outer
        with sanitized() as inner:
            assert hooks.active is inner
        assert hooks.active is outer
    assert hooks.active is None or hooks.active is not outer


def test_body_exception_not_masked():
    space = AddressSpace("victim")
    with pytest.raises(RuntimeError, match="original"):
        with sanitized():
            vma = space.add_vma("heap", 2)
            space.populate_local(vma)
            space.local_pages += 1         # would violate at teardown...
            raise RuntimeError("original")  # ...but the body error wins
    assert hooks.active is None or not isinstance(hooks.active, bool)


def test_maybe_sanitized_env_gate(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    with maybe_sanitized() as sanitizer:
        assert sanitizer is None
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    with maybe_sanitized() as sanitizer:
        assert isinstance(sanitizer, Sanitizer)
