"""Deep-rule tests: a positive and a negative per SIM006-SIM010."""

import ast
import textwrap
from pathlib import Path

from repro.analysis.config import SimlintConfig
from repro.analysis.rules import REGISTRY, ParsedModule
from repro.analysis.shardcheck import build_deep_context


def modules_from(sources):
    out = {}
    for relpath, source in sources.items():
        source = textwrap.dedent(source)
        out[relpath] = ParsedModule(relpath=relpath, tree=ast.parse(source),
                                    lines=source.splitlines())
    return out


def deep_hits(rule_id, sources, roots=("repro.simx.Simulator.run",)):
    modules = modules_from(sources)
    config = SimlintConfig(root=Path("."), deep_roots=tuple(roots))
    context = build_deep_context(modules, config)
    return list(REGISTRY[rule_id]().check_deep(context))


# -- SIM006: shard-unsafe global mutable state ---------------------------------


SIM006_BAD = {"src/repro/simx.py": """
    CACHE = {}

    class Simulator:
        def run(self):
            return remember("k", 1)

    def remember(key, value):
        CACHE[key] = value
        return value
"""}


def test_sim006_flags_sim_reachable_global_write():
    found = deep_hits("SIM006", SIM006_BAD)
    assert len(found) == 1
    v = found[0]
    assert v.rule_id == "SIM006"
    assert "repro.simx.CACHE" in v.message
    assert "remember" in v.message
    assert v.snippet.startswith("CACHE = {}")


def test_sim006_pragma_certifies_the_cache():
    src = SIM006_BAD["src/repro/simx.py"].replace(
        "CACHE = {}",
        "CACHE = {}  # simlint: shard-safe (pure function of key)")
    assert deep_hits("SIM006", {"src/repro/simx.py": src}) == []


def test_sim006_ignores_writes_outside_the_sim():
    found = deep_hits("SIM006", {"src/repro/simx.py": """
        CACHE = {}

        class Simulator:
            def run(self):
                return CACHE.get("k")

        def load_time_fill(key, value):
            CACHE[key] = value
    """})
    assert found == []  # the only writer runs before the sim starts


# -- SIM007: non-associative merge --------------------------------------------


def test_sim007_flags_overwrite_with_other_shard():
    found = deep_hits("SIM007", {"src/repro/reg.py": """
        class Registry:
            def merge_from(self, other):
                for key in other.gauges:
                    self.gauges[key] = other.gauges[key]
    """})
    assert len(found) == 1
    assert "overwrites" in found[0].message


def test_sim007_flags_non_associative_fold():
    found = deep_hits("SIM007", {"src/repro/reg.py": """
        class Registry:
            def merge_from(self, other):
                self.total -= other.total
    """})
    assert len(found) == 1
    assert "non-associative" in found[0].message


def test_sim007_accepts_additive_and_maxmin_merges():
    found = deep_hits("SIM007", {"src/repro/reg.py": """
        class Registry:
            def merge_from(self, other):
                for key, value in other.counters.items():
                    self.counters[key] = self.counters.get(key, 0) + value
                for key, theirs in other.gauges.items():
                    mine = self.gauges.get(key)
                    self.gauges[key] = theirs if mine is None else \\
                        max(mine, theirs)
                self.exact = None
    """})
    assert found == []


# -- SIM008: order-sensitive float accumulation --------------------------------


def test_sim008_flags_float_fold_over_set():
    found = deep_hits("SIM008", {"src/repro/acc.py": """
        def total(items):
            pending = set(items)
            out = 0.0
            for item in pending:
                out += item
            return out
    """})
    assert len(found) == 1
    assert "out" in found[0].message
    assert "sorted" in found[0].message


def test_sim008_accepts_sorted_iteration_and_int_accumulators():
    found = deep_hits("SIM008", {"src/repro/acc.py": """
        def total(items):
            pending = set(items)
            out = 0.0
            for item in sorted(pending):
                out += item
            count = 0
            for item in pending:
                count += 1
            return out, count
    """})
    assert found == []


# -- SIM009: unguarded hook call ----------------------------------------------


def test_sim009_flags_unguarded_hook_call():
    found = deep_hits("SIM009", {"src/repro/instr.py": """
        from repro.analysis import hooks

        def record(event):
            hooks.active.on_event(event)
    """})
    assert len(found) == 1
    assert "hooks.active" in found[0].message


def test_sim009_accepts_guarded_forms():
    found = deep_hits("SIM009", {"src/repro/instr.py": """
        from repro.analysis import hooks

        def direct(event):
            if hooks.active is not None:
                hooks.active.on_event(event)

        def aliased(event):
            act = hooks.active
            if act is not None:
                act.on_event(event)

        def early_return(event):
            if hooks.active is None:
                return
            hooks.active.on_event(event)

        def bool_and(fresh, event):
            if fresh and hooks.active is not None:
                hooks.active.on_event(event)
    """})
    assert found == []


def test_sim009_alias_guard_does_not_leak_to_reassignment():
    found = deep_hits("SIM009", {"src/repro/instr.py": """
        from repro.obs import hooks

        def rebound(event):
            act = hooks.active
            if act is not None:
                act.on_event(event)
            act = hooks.active
            act.on_event(event)
    """})
    assert len(found) == 1
    assert found[0].line == max(v.line for v in found)


# -- SIM010: interprocedural taint reaching a sim sink -------------------------


def test_sim010_flags_wall_clock_behind_a_helper():
    found = deep_hits("SIM010", {"src/repro/simx.py": """
        import time

        class Simulator:
            def run(self):
                return backoff()

        def backoff():
            return time.time()
    """})
    assert len(found) == 1
    v = found[0]
    assert "wall-clock" in v.message
    assert "Simulator.run -> repro.simx.backoff" in v.message


def test_sim010_flags_global_rng_and_environ():
    found = deep_hits("SIM010", {"src/repro/simx.py": """
        import os
        import random

        class Simulator:
            def run(self):
                return jitter() + knob()

        def jitter():
            return random.random()

        def knob():
            return float(os.environ.get("REPRO_KNOB", "1.0"))
    """})
    assert len(found) == 2
    assert any("global-rng" in v.message for v in found)
    assert any("environ" in v.message for v in found)


def test_sim010_ignores_sources_outside_the_sim():
    found = deep_hits("SIM010", {"src/repro/simx.py": """
        import time

        class Simulator:
            def run(self):
                return 0

        def host_harness():
            return time.time()
    """})
    assert found == []


def test_sim010_ignores_seeded_rng():
    found = deep_hits("SIM010", {"src/repro/simx.py": """
        import random

        class Simulator:
            def run(self):
                rng = random.Random(42)
                return rng.random()
    """})
    assert found == []
