"""Per-rule simlint tests: every rule gets paired bad/good snippets."""

import ast
import textwrap

from repro.analysis.rules import REGISTRY, ParsedModule, all_rules


def parse(source, relpath="src/repro/sample.py"):
    source = textwrap.dedent(source)
    return ParsedModule(relpath=relpath, tree=ast.parse(source),
                        lines=source.splitlines())


def hits(rule_id, source, relpath="src/repro/sample.py"):
    rule = REGISTRY[rule_id]()
    return list(rule.check_file(parse(source, relpath)))


def test_registry_is_complete_and_sorted():
    rules = all_rules()
    assert [r.rule_id for r in rules] == [
        "SIM001", "SIM002", "SIM003", "SIM004", "SIM005",
        "SIM006", "SIM007", "SIM008", "SIM009", "SIM010"]
    for rule in rules:
        assert rule.title and rule.rationale
    assert {r.rule_id: r.scope for r in rules if r.scope == "deep"} == {
        "SIM006": "deep", "SIM007": "deep", "SIM008": "deep",
        "SIM009": "deep", "SIM010": "deep"}


# -- SIM001: wall-clock time ---------------------------------------------------


def test_sim001_flags_time_time():
    found = hits("SIM001", """
        import time
        def stamp():
            return time.time()
    """)
    assert len(found) == 1
    assert found[0].rule_id == "SIM001"
    assert "time.time" in found[0].message


def test_sim001_flags_from_import_and_alias():
    assert hits("SIM001", """
        from time import perf_counter
        x = perf_counter()
    """)
    assert hits("SIM001", """
        import time as walltime
        x = walltime.monotonic()
    """)
    assert hits("SIM001", """
        import datetime
        d = datetime.datetime.now()
    """)


def test_sim001_good_simulated_clock():
    assert not hits("SIM001", """
        import time
        from repro.sim.engine import Delay
        def proc(sim):
            start = sim.now
            yield Delay(1.0)
            return sim.now - start
    """)


# -- SIM002: unseeded randomness -----------------------------------------------


def test_sim002_flags_global_random():
    found = hits("SIM002", """
        import random
        x = random.random()
        y = random.choice([1, 2])
    """)
    assert len(found) == 2


def test_sim002_flags_numpy_global_random():
    assert hits("SIM002", """
        import numpy as np
        noise = np.random.rand(16)
    """)


def test_sim002_good_seeded_generators():
    assert not hits("SIM002", """
        import random
        import numpy as np
        rng = random.Random(7)
        gen = np.random.default_rng(7)
        a = rng.random()
        b = gen.normal()
    """)


# -- SIM003: unordered iteration -----------------------------------------------


def test_sim003_flags_for_over_set():
    found = hits("SIM003", """
        pending = {3, 1, 2}
        for item in pending:
            dispatch(item)
    """)
    assert len(found) == 1


def test_sim003_flags_list_and_comprehension_over_set():
    assert hits("SIM003", """
        victims = set(candidates)
        order = list(victims)
    """)
    assert hits("SIM003", """
        victims = set(candidates)
        costs = [price(v) for v in victims]
    """)


def test_sim003_flags_self_attribute_sets():
    found = hits("SIM003", """
        class Scheduler:
            def __init__(self):
                self.ready = set()
            def drain(self):
                for task in self.ready:
                    run(task)
    """)
    assert len(found) == 1


def test_sim003_good_order_free_uses():
    assert not hits("SIM003", """
        pending = {3, 1, 2}
        for item in sorted(pending):
            dispatch(item)
        n = len(pending)
        present = 3 in pending
        total = sum(pending)
        doubled = {x * 2 for x in pending}
    """)


def test_sim003_nested_function_scope_does_not_leak():
    # `inner`'s set must not taint the outer loop over a list.
    assert not hits("SIM003", """
        def outer(rows):
            def inner():
                seen = set()
                return seen
            for row in rows:
                handle(row)
    """)


# -- SIM004: accounting bypass -------------------------------------------------


def test_sim004_flags_direct_field_writes():
    assert hits("SIM004", """
        def tamper(acct):
            acct.current_bytes += 4096
    """)
    assert hits("SIM004", """
        def tamper(space):
            space.local_pages = 0
    """)
    assert hits("SIM004", """
        def tamper(acct):
            acct.usage["kernel"] = 0
    """)


def test_sim004_flags_set_mutators_on_procs():
    found = hits("SIM004", """
        def tamper(cgroup):
            cgroup.procs.add(99)
    """)
    assert len(found) == 1
    assert "procs" in found[0].message


def test_sim004_good_owner_module_and_self():
    # The owning module may touch its own fields...
    assert not hits("SIM004", """
        class MemoryAccountant:
            def charge(self, category, delta):
                self.current_bytes += delta
    """, relpath="src/repro/mem/accounting.py")
    # ...and self-access anywhere is the class's own business.
    assert not hits("SIM004", """
        class Space:
            def _charge(self, delta):
                self.local_pages += delta
    """)


def test_sim004_good_api_calls():
    assert not hits("SIM004", """
        def release(node, pages):
            node.memory.charge_pages("vm-guest-anon", -pages)
    """)


# -- SIM005: optflags pairwise coverage ----------------------------------------


def _optflags_module():
    return parse("""
        FLAGS = ("fastpath",)
        fastpath = True
    """, relpath="src/repro/optflags.py")


def run_sim005(tmp_path, test_source):
    tests = tmp_path / "tests"
    tests.mkdir(exist_ok=True)
    (tests / "test_cover.py").write_text(textwrap.dedent(test_source),
                                         encoding="utf-8")
    rule = REGISTRY["SIM005"]()
    modules = {"src/repro/optflags.py": _optflags_module()}
    return list(rule.check_project(tmp_path, modules, "tests"))


def test_sim005_flags_uncovered_flag(tmp_path):
    found = run_sim005(tmp_path, """
        def test_unrelated():
            assert True
    """)
    assert len(found) == 1
    assert "fastpath" in found[0].message


def test_sim005_satisfied_by_optimizations_disabled(tmp_path):
    assert not run_sim005(tmp_path, """
        from repro import optflags
        def test_pairwise():
            with optflags.optimizations_disabled():
                pass
    """)


def test_sim005_satisfied_by_explicit_pair(tmp_path):
    assert not run_sim005(tmp_path, """
        from repro import optflags
        def test_both_states():
            optflags.fastpath = False
            try:
                pass
            finally:
                optflags.fastpath = True
    """)
