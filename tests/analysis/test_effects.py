"""Purity/effect inference: shared objects, accesses, fixpoints."""

import ast
import textwrap

from repro.analysis.callgraph import build_callgraph
from repro.analysis.effects import (PURE, READS_SHARED, WRITES_SHARED,
                                    collect_shared_objects, infer_effects)
from repro.analysis.rules import ParsedModule


def modules_from(sources):
    out = {}
    for relpath, source in sources.items():
        source = textwrap.dedent(source)
        out[relpath] = ParsedModule(relpath=relpath, tree=ast.parse(source),
                                    lines=source.splitlines())
    return out


def run(sources):
    modules = modules_from(sources)
    graph = build_callgraph(modules)
    return infer_effects(modules, graph)


def test_collect_shared_objects_and_pragma():
    modules = modules_from({"src/repro/s.py": """
        CACHE = {}
        SAFE = {}  # simlint: shard-safe (pure function of key)
        LIMIT = 4096
        NAMES = ("a", "b")

        class Box:
            registry = []
    """})
    shared = collect_shared_objects(modules)
    assert "repro.s.CACHE" in shared
    assert not shared["repro.s.CACHE"].shard_safe
    assert shared["repro.s.SAFE"].shard_safe
    assert shared["repro.s.Box.registry"].kind == "class-attr"
    # Immutable module constants are not shared *mutable* state.
    assert "repro.s.LIMIT" not in shared
    assert "repro.s.NAMES" not in shared


def test_pure_function_is_pure():
    report = run({"src/repro/p.py": """
        def double(x):
            return x * 2
    """})
    assert report.effects["repro.p.double"] == PURE


def test_reader_and_writer_effects():
    report = run({"src/repro/rw.py": """
        TABLE = {}

        def read(k):
            return TABLE.get(k)

        def write(k, v):
            TABLE[k] = v

        def mutate(k):
            TABLE.pop(k, None)
    """})
    assert report.effects["repro.rw.read"] == READS_SHARED
    assert report.effects["repro.rw.write"] == WRITES_SHARED
    assert report.effects["repro.rw.mutate"] == WRITES_SHARED
    writers = {a.function for a in report.writers_of("repro.rw.TABLE")}
    assert writers == {"repro.rw.write", "repro.rw.mutate"}


def test_effects_propagate_to_callers():
    report = run({"src/repro/prop.py": """
        STATE = {}

        def poke():
            STATE["x"] = 1

        def outer():
            poke()

        def outermost():
            outer()
    """})
    assert report.effects["repro.prop.outer"] == WRITES_SHARED
    assert report.effects["repro.prop.outermost"] == WRITES_SHARED


def test_shared_object_passed_to_param_mutator_is_a_write():
    # The `memoized(_CACHE, key, build)` pattern: the helper mutates its
    # parameter, so passing a module-level dict to it writes shared state.
    report = run({"src/repro/memo.py": """
        EVENTS = {}

        def memoized(cache, key, build):
            hit = cache.get(key)
            if hit is None:
                hit = build()
                cache[key] = hit
            return hit

        def load(key):
            return memoized(EVENTS, key, lambda: [1])
    """})
    assert 0 in report.mutated_params["repro.memo.memoized"]
    assert report.effects["repro.memo.load"] == WRITES_SHARED
    writers = {a.function for a in report.writers_of("repro.memo.EVENTS")}
    assert "repro.memo.load" in writers


def test_param_mutation_is_transitive_through_helpers():
    report = run({"src/repro/chainmut.py": """
        def inner(d):
            d["k"] = 1

        def outer(d):
            inner(d)
    """})
    assert 0 in report.mutated_params["repro.chainmut.inner"]
    assert 0 in report.mutated_params["repro.chainmut.outer"]


def test_local_mutation_stays_pure():
    report = run({"src/repro/loc.py": """
        def build():
            out = {}
            out["k"] = 1
            return out
    """})
    assert report.effects["repro.loc.build"] == PURE
