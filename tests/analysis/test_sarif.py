"""SARIF/JSON emitters: schema shape, determinism, rule metadata."""

import json

from repro.analysis.rules import Violation, all_rules
from repro.analysis.sarif import violations_to_json, violations_to_sarif

VIOLATIONS = [
    Violation(rule_id="SIM001", relpath="src/repro/a.py", line=3, col=8,
              message="wall clock", snippet="t = time.time()"),
    Violation(rule_id="SIM006", relpath="src/repro/b.py", line=10, col=0,
              message="shared cache", snippet="CACHE = {}"),
]


def test_json_findings_round_trip():
    data = json.loads(violations_to_json(VIOLATIONS))
    assert data["tool"] == "simlint"
    assert len(data["findings"]) == 2
    first = data["findings"][0]
    assert first == {"rule": "SIM001", "path": "src/repro/a.py",
                     "line": 3, "col": 8, "message": "wall clock",
                     "snippet": "t = time.time()"}


def test_sarif_structure_and_rule_index():
    rules = all_rules()
    log = json.loads(violations_to_sarif(VIOLATIONS, rules))
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    run = log["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "simlint"
    ids = [r["id"] for r in driver["rules"]]
    assert ids == sorted(ids) and "SIM010" in ids
    for descriptor in driver["rules"]:
        assert descriptor["shortDescription"]["text"]
        assert descriptor["fullDescription"]["text"]
        assert descriptor["properties"]["scope"] in (
            "file", "project", "deep")
    results = run["results"]
    assert len(results) == 2
    for result, violation in zip(results, VIOLATIONS):
        assert result["ruleId"] == violation.rule_id
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == violation.line
        assert region["startColumn"] == violation.col + 1
        assert region["snippet"]["text"] == violation.snippet
        assert ids[result["ruleIndex"]] == violation.rule_id


def test_emitters_are_deterministic():
    rules = all_rules()
    assert violations_to_sarif(VIOLATIONS, rules) == \
        violations_to_sarif(VIOLATIONS, rules)
    assert violations_to_json(VIOLATIONS) == violations_to_json(VIOLATIONS)


def test_empty_run_is_valid():
    log = json.loads(violations_to_sarif([], all_rules()))
    assert log["runs"][0]["results"] == []
