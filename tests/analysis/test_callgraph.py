"""Call-graph construction: resolution, reachability, guards, chains."""

import ast
import textwrap

from repro.analysis.callgraph import build_callgraph, module_name_for
from repro.analysis.rules import ParsedModule


def modules_from(sources):
    out = {}
    for relpath, source in sources.items():
        source = textwrap.dedent(source)
        out[relpath] = ParsedModule(relpath=relpath, tree=ast.parse(source),
                                    lines=source.splitlines())
    return out


def edges_of(graph, caller):
    return sorted(site.callee for site in graph.callees(caller))


def test_module_name_for():
    assert module_name_for("src/repro/mem/pools.py") == "repro.mem.pools"
    assert module_name_for("src/repro/mem/__init__.py") == "repro.mem"
    assert module_name_for("benchmarks/bench_w2.py") == "benchmarks.bench_w2"


def test_local_function_calls_resolve():
    graph = build_callgraph(modules_from({"src/repro/app.py": """
        def helper():
            return 1

        def main():
            return helper()
    """}))
    assert edges_of(graph, "repro.app.main") == ["repro.app.helper"]


def test_cross_module_calls_resolve_through_imports():
    graph = build_callgraph(modules_from({
        "src/repro/util.py": """
            def tick():
                return 0
        """,
        "src/repro/app.py": """
            from repro.util import tick
            import repro.util as u

            def direct():
                return tick()

            def dotted():
                return u.tick()
        """,
    }))
    assert edges_of(graph, "repro.app.direct") == ["repro.util.tick"]
    assert edges_of(graph, "repro.app.dotted") == ["repro.util.tick"]


def test_self_method_and_subclass_override_resolve():
    graph = build_callgraph(modules_from({"src/repro/cls.py": """
        class Base:
            def run(self):
                return self.step()

            def step(self):
                return 0

        class Child(Base):
            def step(self):
                return 1
    """}))
    callees = edges_of(graph, "repro.cls.Base.run")
    assert "repro.cls.Base.step" in callees
    assert "repro.cls.Child.step" in callees  # dynamic dispatch


def test_constructor_call_resolves_to_init():
    graph = build_callgraph(modules_from({"src/repro/mk.py": """
        class Widget:
            def __init__(self):
                self.x = 0

        def make():
            return Widget()
    """}))
    assert edges_of(graph, "repro.mk.make") == ["repro.mk.Widget.__init__"]


def test_nested_defs_fold_into_enclosing_function():
    graph = build_callgraph(modules_from({"src/repro/nest.py": """
        def leaf():
            return 3

        def outer():
            def inner():
                return leaf()
            return inner()
    """}))
    assert "repro.nest.leaf" in edges_of(graph, "repro.nest.outer")


def test_optflags_guard_is_recorded_on_call_sites():
    graph = build_callgraph(modules_from({"src/repro/flagged.py": """
        from repro import optflags

        def fast():
            return 1

        def slow():
            return 2

        def pick():
            if optflags.trace_cache:
                return fast()
            else:
                return slow()
    """}))
    guards = {site.callee: site.guard
              for site in graph.callees("repro.flagged.pick")}
    assert guards["repro.flagged.fast"] == ("trace_cache", True)
    assert guards["repro.flagged.slow"] == ("trace_cache", False)


def test_reachability_and_prefix_roots():
    graph = build_callgraph(modules_from({
        "src/repro/simx/engine.py": """
            from repro.work import step

            class Simulator:
                def run(self):
                    return step()
        """,
        "src/repro/work.py": """
            def step():
                return leaf()

            def leaf():
                return 0

            def unrelated():
                return 9
        """,
    }))
    reach = graph.reachable(["repro.simx.engine.Simulator.run"])
    assert "repro.work.step" in reach
    assert "repro.work.leaf" in reach
    assert "repro.work.unrelated" not in reach
    # A module prefix expands to every function it contains.
    assert graph.resolve_roots(["repro.work"]) == sorted(
        ["repro.work.step", "repro.work.leaf", "repro.work.unrelated"])


def test_call_chain_is_shortest_and_deterministic():
    graph = build_callgraph(modules_from({"src/repro/chainy.py": """
        def a():
            return b()

        def b():
            return c()

        def c():
            return 0

        def root():
            b()
            a()
    """}))
    chain = graph.call_chain(["repro.chainy.root"], "repro.chainy.c")
    assert chain == ["repro.chainy.root", "repro.chainy.b",
                     "repro.chainy.c"]
    assert graph.call_chain(["repro.chainy.c"], "repro.chainy.a") is None


def test_attribute_heuristic_caps_fanout():
    # 9 classes define `.go`; the ambiguous-receiver heuristic must not
    # explode the graph past its fan-out cap.
    classes = "\n".join(
        f"class C{i}:\n    def go(self):\n        return {i}\n"
        for i in range(9))
    graph = build_callgraph(modules_from({"src/repro/many.py": f"""
{textwrap.indent(classes, '        ')}
        def call(x):
            return x.go()
    """}))
    assert edges_of(graph, "repro.many.call") == []
