"""End-to-end `repro.cli lint` tests over a throwaway repository."""

import io
import textwrap

from repro.analysis.simlint import main as lint_main


BAD_SOURCE = """
    import time

    def stamp():
        return time.time()
"""

GOOD_SOURCE = """
    def pure(x):
        return x + 1
"""


def make_repo(tmp_path, source=BAD_SOURCE):
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
        [tool.simlint]
        baseline = "simlint-baseline.txt"
        paths = ["src"]
        tests_path = "tests"
    """), encoding="utf-8")
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def run(tmp_path, *argv):
    out = io.StringIO()
    code = lint_main(["--root", str(tmp_path), *argv], out=out)
    return code, out.getvalue()


def test_clean_tree_exits_zero(tmp_path):
    make_repo(tmp_path, GOOD_SOURCE)
    code, output = run(tmp_path)
    assert code == 0
    assert "clean" in output


def test_violation_exits_nonzero_with_location(tmp_path):
    make_repo(tmp_path)
    code, output = run(tmp_path)
    assert code == 1
    assert "SIM001" in output and "src/mod.py:" in output
    assert "FAILED" in output


def test_write_baseline_then_clean(tmp_path):
    make_repo(tmp_path)
    code, output = run(tmp_path, "--write-baseline")
    assert code == 0
    assert "baselined 1" in output
    assert (tmp_path / "simlint-baseline.txt").is_file()

    code, output = run(tmp_path)
    assert code == 0
    assert "1 baselined" in output

    # --no-baseline surfaces the acknowledged violation again.
    code, _ = run(tmp_path, "--no-baseline")
    assert code == 1


def test_baseline_invalidated_by_editing_the_line(tmp_path):
    make_repo(tmp_path)
    run(tmp_path, "--write-baseline")
    (tmp_path / "src" / "mod.py").write_text(textwrap.dedent("""
        import time

        def stamp():
            return time.time() + 1.0
    """), encoding="utf-8")
    code, output = run(tmp_path)
    assert code == 1
    assert "SIM001" in output


def test_explicit_targets_override_config(tmp_path):
    make_repo(tmp_path)
    extra = tmp_path / "other"
    extra.mkdir()
    (extra / "ok.py").write_text("x = 1\n", encoding="utf-8")
    code, _ = run(tmp_path, "other")
    assert code == 0


def test_missing_target_is_config_error(tmp_path):
    make_repo(tmp_path)
    code, output = run(tmp_path, "no/such/dir")
    assert code == 2
    assert "error" in output


def test_syntax_error_is_reported_not_crash(tmp_path):
    make_repo(tmp_path, "def broken(:\n")
    code, output = run(tmp_path)
    assert code == 1
    assert "syntax error" in output


def test_list_rules(tmp_path):
    code, output = run(tmp_path, "--list-rules")
    assert code == 0
    for rule_id in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005"):
        assert rule_id in output


def test_per_rule_path_exclusion(tmp_path):
    make_repo(tmp_path)
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
        [tool.simlint]
        baseline = "simlint-baseline.txt"
        paths = ["src"]
        tests_path = "tests"

        [tool.simlint.per_rule.SIM001]
        exclude = ["src/*"]
    """), encoding="utf-8")
    code, _ = run(tmp_path)
    assert code == 0


def test_disable_rule_via_config(tmp_path):
    make_repo(tmp_path)
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
        [tool.simlint]
        baseline = "simlint-baseline.txt"
        paths = ["src"]
        tests_path = "tests"
        disable = ["SIM001"]
    """), encoding="utf-8")
    code, _ = run(tmp_path)
    assert code == 0


DEEP_SOURCE = """
    CACHE = {}

    class Simulator:
        def run(self):
            return remember("k")

    def remember(key):
        CACHE[key] = 1
        return key
"""


def make_deep_repo(tmp_path, source=DEEP_SOURCE):
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
        [tool.simlint]
        baseline = "simlint-baseline.txt"
        paths = ["src"]
        tests_path = "tests"
        deep_baseline = "simlint-deep-baseline.txt"
        deep_paths = ["src"]
        deep_roots = ["simx.Simulator.run"]
    """), encoding="utf-8")
    src = tmp_path / "src"
    src.mkdir()
    (src / "simx.py").write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def test_deep_mode_finds_what_per_file_rules_cannot(tmp_path):
    make_deep_repo(tmp_path)
    code, output = run(tmp_path)
    assert code == 0  # no per-file rule sees the shared-state write

    code, output = run(tmp_path, "--deep")
    assert code == 1
    assert "SIM006" in output and "CACHE" in output


def test_deep_write_baseline_splits_files(tmp_path):
    make_deep_repo(tmp_path)
    code, output = run(tmp_path, "--deep", "--write-baseline")
    assert code == 0
    assert "1 deep violations" in output
    deep_file = (tmp_path / "simlint-deep-baseline.txt").read_text()
    assert "SIM006" in deep_file
    shallow_file = (tmp_path / "simlint-baseline.txt").read_text()
    assert "SIM006" not in shallow_file

    code, output = run(tmp_path, "--deep")
    assert code == 0
    assert "1 baselined" in output


def test_deep_pragma_certification(tmp_path):
    src = DEEP_SOURCE.replace(
        "CACHE = {}",
        "CACHE = {}  # simlint: shard-safe (pure function of key)")
    make_deep_repo(tmp_path, src)
    code, output = run(tmp_path, "--deep")
    assert code == 0
    assert "clean" in output


def test_format_sarif_writes_report_file(tmp_path):
    import json
    make_deep_repo(tmp_path)
    sarif_path = tmp_path / "simlint.sarif"
    code, output = run(tmp_path, "--deep", "--format", "sarif",
                       "--out", str(sarif_path))
    assert code == 1
    assert "FAILED" in output  # summary still printed
    log = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert log["version"] == "2.1.0"
    results = log["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["SIM006"]
    assert results[0]["locations"][0]["physicalLocation"][
        "artifactLocation"]["uri"] == "src/simx.py"
    rule_ids = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rule_ids)


def test_format_json_writes_findings_list(tmp_path):
    import json
    make_deep_repo(tmp_path)
    json_path = tmp_path / "simlint.json"
    code, _ = run(tmp_path, "--deep", "--format", "json",
                  "--out", str(json_path))
    assert code == 1
    data = json.loads(json_path.read_text(encoding="utf-8"))
    assert data["tool"] == "simlint"
    assert data["findings"][0]["rule"] == "SIM006"
    assert data["findings"][0]["path"] == "src/simx.py"


def test_list_rules_includes_deep_rules(tmp_path):
    code, output = run(tmp_path, "--list-rules")
    assert code == 0
    for rule_id in ("SIM006", "SIM007", "SIM008", "SIM009", "SIM010"):
        assert rule_id in output
    assert "[deep]" in output


def test_repo_cli_surfaces_lint():
    from repro.cli import main as repro_main
    import contextlib
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        assert repro_main(["list"]) == 0
    assert "lint" in out.getvalue()
