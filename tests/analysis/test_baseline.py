"""Baseline (allowlist) round-trip and fingerprint-stability tests."""

import pytest

from repro.analysis.baseline import Baseline, fingerprint, fingerprint_violation
from repro.analysis.rules import Violation


def make_violation(line=3, snippet="x = time.time()",
                   relpath="src/repro/sample.py", rule_id="SIM001"):
    return Violation(rule_id=rule_id, relpath=relpath, line=line, col=4,
                     message="wall-clock call", snippet=snippet)


def test_fingerprint_ignores_line_numbers():
    a = fingerprint_violation(make_violation(line=3))
    b = fingerprint_violation(make_violation(line=300))
    assert a == b


def test_fingerprint_changes_with_source_text():
    a = fingerprint_violation(make_violation(snippet="x = time.time()"))
    b = fingerprint_violation(make_violation(snippet="y = time.time()"))
    assert a != b


def test_fingerprint_strips_indentation():
    assert fingerprint("SIM001", "a.py", "    x = 1") == \
        fingerprint("SIM001", "a.py", "x = 1")


def test_round_trip_suppresses(tmp_path):
    path = tmp_path / "baseline.txt"
    violations = [make_violation(),
                  make_violation(rule_id="SIM003", snippet="for x in s:")]
    Baseline().save(path, violations)
    loaded = Baseline.load(path)
    assert len(loaded) == 2
    for violation in violations:
        assert loaded.suppresses(violation)
    # A different offence in the same file is NOT suppressed.
    assert not loaded.suppresses(make_violation(snippet="z = time.time()"))


def test_saved_file_carries_header_and_snippets(tmp_path):
    path = tmp_path / "baseline.txt"
    Baseline().save(path, [make_violation()])
    text = path.read_text(encoding="utf-8")
    assert "--write-baseline" in text
    assert "x = time.time()" in text           # justification comment seed


def test_missing_file_is_empty_baseline(tmp_path):
    baseline = Baseline.load(tmp_path / "nope.txt")
    assert len(baseline) == 0
    assert not baseline.suppresses(make_violation())


def test_comments_and_blanks_ignored(tmp_path):
    path = tmp_path / "baseline.txt"
    entry = fingerprint_violation(make_violation())
    path.write_text(
        "# header comment\n\n"
        f"{entry.rule_id} {entry.relpath} {entry.digest}  # justified\n",
        encoding="utf-8")
    assert Baseline.load(path).suppresses(make_violation())


def test_malformed_entry_raises(tmp_path):
    path = tmp_path / "baseline.txt"
    path.write_text("SIM001 only-two-fields\n", encoding="utf-8")
    with pytest.raises(ValueError, match="malformed"):
        Baseline.load(path)


def test_resave_preserves_existing_entries(tmp_path):
    path = tmp_path / "baseline.txt"
    first = make_violation()
    second = make_violation(rule_id="SIM002", snippet="random.random()")
    baseline = Baseline()
    baseline.save(path, [first])
    baseline.save(path, [second])
    loaded = Baseline.load(path)
    assert loaded.suppresses(first) and loaded.suppresses(second)
