"""Tests for the Node facade and the bench harness helpers."""

import pytest

from repro.bench.harness import (PLATFORM_NAMES, format_table,
                                 make_platform)
from repro.mem.layout import GB
from repro.node import Node
from repro.sim.engine import Delay, Simulator


class TestNode:
    def test_defaults_match_testbed(self):
        """§9.1: dual 32-core Xeon, 256 GB RAM."""
        node = Node()
        assert node.cores == 64
        assert node.dram_bytes == 256 * GB

    def test_subsystems_wired(self):
        node = Node()
        assert node.cpu.sim is node.sim
        assert node.procs.cgroups is node.cgroups
        assert node.criu.procs is node.procs

    def test_clock_property(self):
        node = Node()

        def proc():
            yield Delay(2.5)

        node.sim.run_process(proc())
        assert node.now == pytest.approx(2.5)

    def test_shared_simulator_across_nodes(self):
        sim = Simulator()
        a = Node(sim=sim, name="a")
        b = Node(sim=sim, name="b")
        assert a.sim is b.sim
        assert a.rng.path != b.rng.path

    def test_memory_clock_follows_sim(self):
        node = Node()

        def proc():
            yield Delay(5.0)
            node.memory.charge("x", 1 << 20)

        node.sim.run_process(proc())
        assert node.memory.timeline[-1][0] == pytest.approx(5.0)

    def test_soft_cap_passed_through(self):
        node = Node(soft_cap_bytes=1 << 30)
        assert node.memory.soft_cap_bytes == 1 << 30


class TestMakePlatform:
    @pytest.mark.parametrize("name", PLATFORM_NAMES)
    def test_known_platforms_construct(self, name):
        platform = make_platform(name)
        assert platform.node is not None

    def test_tiered_variant(self):
        platform = make_platform("t-tiered")
        assert platform.pool.name == "tiered"

    def test_non_plus_variants(self):
        reap = make_platform("reap")
        assert not reap.netns_pool_enabled
        reap_plus = make_platform("reap+")
        assert reap_plus.netns_pool_enabled

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_platform("openwhisk")

    def test_platform_names_distinct_nodes(self):
        a = make_platform("faasd")
        b = make_platform("faasd")
        assert a.node is not b.node


class TestFormatTable:
    def test_alignment_and_float_formatting(self):
        out = format_table("T", ("a", "b"), [("x", 1.23456), ("y", 2)],
                           width=8)
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.235" in out
        assert "       x" in out

    def test_empty_rows(self):
        out = format_table("T", ("a",), [])
        assert "a" in out
