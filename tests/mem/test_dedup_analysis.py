"""Tests for the state-duplication / memory-stranding analyzers."""

import numpy as np
import pytest

from repro.criu.images import SnapshotImage
from repro.mem.dedup_analysis import (DuplicationReport, duplication_report,
                                      stranding_report)
from repro.mem.layout import GB
from repro.sim.engine import Delay
from repro.workloads.functions import function_by_name


def resident_space(func="DH", name="i"):
    image = SnapshotImage.from_profile(function_by_name(func))
    space = image.build_address_space(name)
    for vma in space.vmas:
        space.populate_local(vma)
    return space


class TestDuplicationReport:
    def test_single_instance_no_duplication(self):
        report = duplication_report([resident_space()])
        assert report.duplication_ratio == 0.0
        assert report.duplicated_pages == 0

    def test_two_identical_instances_fifty_percent_redundant(self):
        report = duplication_report([resident_space(name="a"),
                                     resident_space(name="b")])
        assert report.duplication_ratio == pytest.approx(0.5)
        # Every page exists twice: occurrence is 100%.
        assert report.duplication_occurrence == pytest.approx(1.0)

    def test_same_language_partial_duplication(self):
        """Two different Python functions share the runtime pages."""
        report = duplication_report([resident_space("DH", "a"),
                                     resident_space("JS", "b")])
        assert 0.0 < report.duplication_occurrence < 1.0

    def test_empty_spaces(self):
        image = SnapshotImage.from_profile(function_by_name("DH"))
        empty = image.build_address_space("empty")
        report = duplication_report([empty])
        assert report.total_resident_pages == 0
        assert report.duplication_ratio == 0.0

    def test_trenv_instances_show_no_resident_duplication(self):
        """Template-attached instances keep shared content in the pool —
        a content scan over *resident* pages finds nothing to dedup."""
        from repro.core.mm_template import (MMTemplateRegistry,
                                            build_template_for_function)
        from repro.mem.address_space import AddressSpace
        from repro.mem.pools import CXLPool, DedupStore
        from repro.sim.engine import Simulator

        sim = Simulator()
        registry = MMTemplateRegistry(sim)
        store = DedupStore(CXLPool(8 * GB))
        image = SnapshotImage.from_profile(function_by_name("DH"))
        template = build_template_for_function(registry, image, store)
        spaces = [AddressSpace(f"i{i}") for i in range(3)]

        def proc():
            for s in spaces:
                yield registry.mmt_attach(template, s)

        sim.run_process(proc())
        # Each instance writes a disjoint-ish set of pages (jittered).
        total = spaces[0].total_pages
        for i, s in enumerate(spaces):
            s.access(np.array([], dtype=np.int64),
                     np.arange(total - 200 * (i + 1), total - 200 * i))
        report = duplication_report(spaces)
        assert report.duplication_occurrence == 0.0


class TestStrandingReport:
    def test_warm_instances_counted_idle(self):
        from repro.node import Node
        from repro.serverless.baselines import FaasdPlatform

        node = Node(seed=23)
        platform = FaasdPlatform(node)
        platform.register_function(function_by_name("DH"))

        def driver():
            yield platform.invoke("DH")

        node.sim.run_process(driver())
        report = stranding_report(platform)
        # Everything is idle warm state after the invocation completes.
        assert report.idle_bytes > 0
        assert report.stranding_ratio == pytest.approx(1.0)

    def test_busy_instances_counted_active(self):
        from repro.node import Node
        from repro.serverless.baselines import FaasdPlatform

        node = Node(seed=23)
        platform = FaasdPlatform(node)
        platform.register_function(function_by_name("VP"))   # 2.2 s exec

        def one():
            yield platform.invoke("VP")

        node.sim.spawn(one())
        node.sim.run(until=3.0)   # mid-execution
        report = stranding_report(platform)
        assert report.active_bytes > 0
        assert report.stranding_ratio < 1.0

    def test_empty_platform(self):
        from repro.node import Node
        from repro.serverless.baselines import FaasdPlatform

        report = stranding_report(FaasdPlatform(Node()))
        assert report.total_bytes == 0
        assert report.stranding_ratio == 0.0
