import pytest

from repro.mem.layout import PAGE_SIZE
from repro.mem.page_cache import FileIdRegistry, PageCache


def test_charge_file_counts_pages():
    cache = PageCache()
    fresh = cache.charge_file(1, 10 * PAGE_SIZE)
    assert fresh == 10
    assert cache.cached_pages == 10
    assert cache.cached_bytes == 10 * PAGE_SIZE


def test_recaching_same_file_is_free():
    cache = PageCache()
    cache.charge_file(1, 4 * PAGE_SIZE)
    fresh = cache.charge_file(1, 4 * PAGE_SIZE)
    assert fresh == 0
    assert cache.hits == 4


def test_different_files_duplicate():
    cache = PageCache()
    cache.charge_file(1, 4 * PAGE_SIZE)
    fresh = cache.charge_file(2, 4 * PAGE_SIZE)
    assert fresh == 4
    assert cache.cached_pages == 8


def test_offset_ranges_overlap_correctly():
    cache = PageCache()
    cache.charge_file(1, 4 * PAGE_SIZE, offset=0)
    fresh = cache.charge_file(1, 4 * PAGE_SIZE, offset=2 * PAGE_SIZE)
    assert fresh == 2


def test_evict_file():
    cache = PageCache()
    cache.charge_file(1, 4 * PAGE_SIZE)
    cache.charge_file(2, 2 * PAGE_SIZE)
    assert cache.evict_file(1) == 4
    assert cache.cached_pages == 2


def test_drop_all():
    cache = PageCache()
    cache.charge_file(1, 4 * PAGE_SIZE)
    assert cache.drop_all() == 4
    assert cache.cached_pages == 0


def test_delta_callback_fires():
    deltas = []
    cache = PageCache(on_delta=deltas.append)
    cache.charge_file(1, 3 * PAGE_SIZE)
    cache.evict_file(1)
    assert deltas == [3, -3]


def test_partial_page_rounds_up():
    cache = PageCache()
    assert cache.charge_file(1, 1) == 1


def test_file_id_registry_stable():
    reg = FileIdRegistry()
    a = reg.file_id("base-image", "python")
    b = reg.file_id("base-image", "python")
    c = reg.file_id("base-image", "node")
    assert a == b
    assert a != c
