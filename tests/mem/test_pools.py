import numpy as np
import pytest

from repro.mem.layout import MB, PAGE_SIZE
from repro.mem.pools import (CXLPool, DedupStore, NASPool, RDMAPool,
                             TieredPool)


def test_allocate_pages_returns_distinct_offsets():
    pool = CXLPool(capacity_bytes=16 * MB)
    a = pool.allocate_pages(4)
    b = pool.allocate_pages(4)
    assert len(np.intersect1d(a, b)) == 0
    assert pool.used_pages == 8


def test_pool_capacity_enforced():
    pool = RDMAPool(capacity_bytes=2 * PAGE_SIZE)
    pool.allocate_pages(2)
    with pytest.raises(MemoryError):
        pool.allocate_pages(1)


def test_cxl_is_byte_addressable_rdma_is_not():
    assert CXLPool(MB).byte_addressable
    assert not RDMAPool(MB).byte_addressable
    assert not NASPool(MB).byte_addressable


def test_rdma_fetch_slower_than_cxl():
    cxl = CXLPool(MB)
    rdma = RDMAPool(MB)
    assert rdma.fetch_time(100) > cxl.fetch_time(100)


def test_nas_fetch_slowest():
    assert NASPool(MB).fetch_time(10) > RDMAPool(MB).fetch_time(10)


def test_rdma_tail_inflates_under_contention():
    rdma = RDMAPool(MB)
    calm = rdma.fetch_time(100, concurrency=1)
    stormy = rdma.fetch_time(100, concurrency=64)
    assert stormy > 2 * calm


def test_cxl_read_overhead_positive_and_linear():
    cxl = CXLPool(MB)
    one = cxl.read_overhead(1000)
    two = cxl.read_overhead(2000)
    assert one > 0
    assert two == pytest.approx(2 * one)


def test_rdma_read_overhead_zero():
    assert RDMAPool(MB).read_overhead(10_000) == 0.0


class TestDedupStore:
    def test_first_image_stores_all_pages(self):
        store = DedupStore(CXLPool(64 * MB))
        block = store.store_image(np.arange(100))
        assert block.npages == 100
        assert store.unique_pages_stored == 100
        assert store.dedup_ratio == 0.0

    def test_identical_image_fully_deduped(self):
        store = DedupStore(CXLPool(64 * MB))
        first = store.store_image(np.arange(100))
        second = store.store_image(np.arange(100))
        assert store.unique_pages_stored == 100
        assert np.array_equal(first.offsets, second.offsets)
        assert store.dedup_ratio == pytest.approx(0.5)

    def test_partial_overlap(self):
        store = DedupStore(CXLPool(64 * MB))
        store.store_image(np.arange(0, 100))
        store.store_image(np.arange(50, 150))
        assert store.unique_pages_stored == 150
        assert store.pool.used_pages == 150

    def test_duplicate_pages_within_one_image(self):
        store = DedupStore(CXLPool(64 * MB))
        block = store.store_image(np.array([7, 7, 7, 8]))
        assert store.unique_pages_stored == 2
        assert block.offsets[0] == block.offsets[1] == block.offsets[2]
        assert block.offsets[3] != block.offsets[0]

    def test_block_nbytes(self):
        store = DedupStore(CXLPool(64 * MB))
        block = store.store_image(np.arange(3))
        assert block.nbytes == 3 * PAGE_SIZE


class TestTieredPool:
    def test_hot_fraction_bounds(self):
        with pytest.raises(ValueError):
            TieredPool(CXLPool(MB), RDMAPool(MB), hot_fraction=1.5)

    def test_allocation_splits_between_tiers(self):
        hot, cold = CXLPool(64 * MB), RDMAPool(64 * MB)
        tiered = TieredPool(hot, cold, hot_fraction=0.25)
        tiered.allocate_pages(100)
        assert hot.used_pages == 25
        assert cold.used_pages == 75

    def test_fetch_time_delegates_to_cold_tier(self):
        # Demand fetches only happen on cold pages (hot pages get valid
        # PTEs), so the fetch cost is the cold tier's.
        hot, cold = CXLPool(64 * MB), RDMAPool(64 * MB)
        tiered = TieredPool(hot, cold, hot_fraction=0.5)
        assert tiered.fetch_time(100) == RDMAPool(MB).fetch_time(100)

    def test_valid_mask_marks_hot_pages_only(self):
        import numpy as np
        hot, cold = CXLPool(64 * MB), RDMAPool(64 * MB)
        tiered = TieredPool(hot, cold, hot_fraction=0.5)
        offsets = tiered.allocate_pages(10)
        mask = tiered.valid_mask(offsets)
        assert mask.sum() == 5
        # A cold-hot tiered pool with non-addressable hot tier: nothing
        # can be valid.
        nas_tiered = TieredPool(RDMAPool(MB), NASPool(MB))
        offsets = nas_tiered.allocate_pages(4)
        assert not nas_tiered.valid_mask(offsets).any()

    def test_pure_pool_valid_masks(self):
        import numpy as np
        offs = np.arange(5)
        assert CXLPool(MB).valid_mask(offs).all()
        assert not RDMAPool(MB).valid_mask(offs).any()

    def test_byte_addressability_follows_hot_tier(self):
        assert TieredPool(CXLPool(MB), RDMAPool(MB)).byte_addressable
        assert not TieredPool(RDMAPool(MB), NASPool(MB)).byte_addressable

    def test_split_offsets_roundtrip(self):
        hot, cold = CXLPool(64 * MB), RDMAPool(64 * MB)
        tiered = TieredPool(hot, cold, hot_fraction=0.5)
        offsets = tiered.allocate_pages(10)
        hot_offs, cold_offs = tiered.split_offsets(offsets)
        assert len(hot_offs) == 5
        assert len(cold_offs) == 5
        assert (cold_offs < 1 << 40).all()
