import numpy as np
import pytest

from repro.faults.errors import (PoolExhaustedError, PoolTimeoutError,
                                 PoolUnavailableError)
from repro.mem.layout import MB, PAGE_SIZE
from repro.mem.pools import (CXLPool, DedupStore, NASPool, RDMAPool,
                             TieredPool)


def test_allocate_pages_returns_distinct_offsets():
    pool = CXLPool(capacity_bytes=16 * MB)
    a = pool.allocate_pages(4)
    b = pool.allocate_pages(4)
    assert len(np.intersect1d(a, b)) == 0
    assert pool.used_pages == 8


def test_pool_capacity_enforced():
    pool = RDMAPool(capacity_bytes=2 * PAGE_SIZE)
    pool.allocate_pages(2)
    with pytest.raises(MemoryError):
        pool.allocate_pages(1)


def test_exhaustion_error_is_typed_and_a_memory_error():
    pool = RDMAPool(capacity_bytes=2 * PAGE_SIZE)
    pool.allocate_pages(2)
    with pytest.raises(PoolExhaustedError, match="rdma"):
        pool.allocate_pages(1)
    assert not pool.can_allocate(1)
    assert pool.can_allocate(0)
    # The failed attempt reserved nothing.
    assert pool.used_pages == 2


def test_forced_exhaustion_window():
    pool = CXLPool(64 * MB)
    pool.exhaust()
    assert not pool.can_allocate(1)
    with pytest.raises(PoolExhaustedError):
        pool.allocate_pages(1)
    pool.replenish()
    assert len(pool.allocate_pages(1)) == 1


def test_cxl_is_byte_addressable_rdma_is_not():
    assert CXLPool(MB).byte_addressable
    assert not RDMAPool(MB).byte_addressable
    assert not NASPool(MB).byte_addressable


def test_rdma_fetch_slower_than_cxl():
    cxl = CXLPool(MB)
    rdma = RDMAPool(MB)
    assert rdma.fetch_time(100) > cxl.fetch_time(100)


def test_nas_fetch_slowest():
    assert NASPool(MB).fetch_time(10) > RDMAPool(MB).fetch_time(10)


def test_rdma_tail_inflates_under_contention():
    rdma = RDMAPool(MB)
    calm = rdma.fetch_time(100, concurrency=1)
    stormy = rdma.fetch_time(100, concurrency=64)
    assert stormy > 2 * calm


def test_cxl_read_overhead_positive_and_linear():
    cxl = CXLPool(MB)
    one = cxl.read_overhead(1000)
    two = cxl.read_overhead(2000)
    assert one > 0
    assert two == pytest.approx(2 * one)


def test_rdma_read_overhead_zero():
    assert RDMAPool(MB).read_overhead(10_000) == 0.0


class TestDedupStore:
    def test_first_image_stores_all_pages(self):
        store = DedupStore(CXLPool(64 * MB))
        block = store.store_image(np.arange(100))
        assert block.npages == 100
        assert store.unique_pages_stored == 100
        assert store.dedup_ratio == 0.0

    def test_identical_image_fully_deduped(self):
        store = DedupStore(CXLPool(64 * MB))
        first = store.store_image(np.arange(100))
        second = store.store_image(np.arange(100))
        assert store.unique_pages_stored == 100
        assert np.array_equal(first.offsets, second.offsets)
        assert store.dedup_ratio == pytest.approx(0.5)

    def test_partial_overlap(self):
        store = DedupStore(CXLPool(64 * MB))
        store.store_image(np.arange(0, 100))
        store.store_image(np.arange(50, 150))
        assert store.unique_pages_stored == 150
        assert store.pool.used_pages == 150

    def test_duplicate_pages_within_one_image(self):
        store = DedupStore(CXLPool(64 * MB))
        block = store.store_image(np.array([7, 7, 7, 8]))
        assert store.unique_pages_stored == 2
        assert block.offsets[0] == block.offsets[1] == block.offsets[2]
        assert block.offsets[3] != block.offsets[0]

    def test_block_nbytes(self):
        store = DedupStore(CXLPool(64 * MB))
        block = store.store_image(np.arange(3))
        assert block.nbytes == 3 * PAGE_SIZE


class TestTieredPool:
    def test_hot_fraction_bounds(self):
        with pytest.raises(ValueError):
            TieredPool(CXLPool(MB), RDMAPool(MB), hot_fraction=1.5)

    def test_allocation_splits_between_tiers(self):
        hot, cold = CXLPool(64 * MB), RDMAPool(64 * MB)
        tiered = TieredPool(hot, cold, hot_fraction=0.25)
        tiered.allocate_pages(100)
        assert hot.used_pages == 25
        assert cold.used_pages == 75

    def test_fetch_time_delegates_to_cold_tier(self):
        # Demand fetches only happen on cold pages (hot pages get valid
        # PTEs), so the fetch cost is the cold tier's.
        hot, cold = CXLPool(64 * MB), RDMAPool(64 * MB)
        tiered = TieredPool(hot, cold, hot_fraction=0.5)
        assert tiered.fetch_time(100) == RDMAPool(MB).fetch_time(100)

    def test_valid_mask_marks_hot_pages_only(self):
        import numpy as np
        hot, cold = CXLPool(64 * MB), RDMAPool(64 * MB)
        tiered = TieredPool(hot, cold, hot_fraction=0.5)
        offsets = tiered.allocate_pages(10)
        mask = tiered.valid_mask(offsets)
        assert mask.sum() == 5
        # A cold-hot tiered pool with non-addressable hot tier: nothing
        # can be valid.
        nas_tiered = TieredPool(RDMAPool(MB), NASPool(MB))
        offsets = nas_tiered.allocate_pages(4)
        assert not nas_tiered.valid_mask(offsets).any()

    def test_pure_pool_valid_masks(self):
        import numpy as np
        offs = np.arange(5)
        assert CXLPool(MB).valid_mask(offs).all()
        assert not RDMAPool(MB).valid_mask(offs).any()

    def test_byte_addressability_follows_hot_tier(self):
        assert TieredPool(CXLPool(MB), RDMAPool(MB)).byte_addressable
        assert not TieredPool(RDMAPool(MB), NASPool(MB)).byte_addressable

    def test_split_offsets_roundtrip(self):
        hot, cold = CXLPool(64 * MB), RDMAPool(64 * MB)
        tiered = TieredPool(hot, cold, hot_fraction=0.5)
        offsets = tiered.allocate_pages(10)
        hot_offs, cold_offs = tiered.split_offsets(offsets)
        assert len(hot_offs) == 5
        assert len(cold_offs) == 5
        assert (cold_offs < 1 << 40).all()

    def test_masked_allocation_respects_tier_capacity(self):
        # Hot tier fits 2 pages; asking for 3 hot pages must fail even
        # though the combined capacity would cover them.
        hot, cold = CXLPool(2 * PAGE_SIZE), RDMAPool(64 * MB)
        tiered = TieredPool(hot, cold)
        mask = np.array([True, True, True, False])
        with pytest.raises(PoolExhaustedError, match="tiered"):
            tiered.allocate_pages_masked(mask)

    def test_masked_allocation_is_atomic(self):
        # A request that overflows the cold tier must not leak pages
        # into the hot tier (and vice versa).
        hot, cold = CXLPool(64 * MB), RDMAPool(2 * PAGE_SIZE)
        tiered = TieredPool(hot, cold)
        mask = np.array([True, False, False, False])  # 3 cold > capacity
        with pytest.raises(MemoryError):
            tiered.allocate_pages_masked(mask)
        assert hot.used_pages == 0
        assert cold.used_pages == 0
        assert tiered.used_bytes == 0
        # A fitting request afterwards still succeeds.
        ok = tiered.allocate_pages_masked(np.array([True, False]))
        assert len(ok) == 2


class TestPoolHealth:
    def test_offline_pool_raises_typed_fault(self):
        pool = RDMAPool(MB)
        pool.fail("link down")
        assert not pool.available
        with pytest.raises(PoolUnavailableError, match="link down"):
            pool.fetch_time(10)
        with pytest.raises(PoolUnavailableError):
            pool.read_overhead(10)
        pool.recover()
        assert pool.available
        assert pool.fetch_time(10) > 0

    def test_degrade_multiplies_and_restores_exactly(self):
        pool = CXLPool(MB)
        base_fetch = pool.fetch_time(100)
        base_read = pool.read_overhead(100)
        pool.degrade(3.0)
        assert pool.fetch_time(100) == pytest.approx(3.0 * base_fetch)
        assert pool.read_overhead(100) == pytest.approx(3.0 * base_read)
        pool.restore_speed()
        # Bit-exact: factor 1.0 never multiplies.
        assert pool.fetch_time(100) == base_fetch
        assert pool.read_overhead(100) == base_read

    def test_degrade_below_one_rejected(self):
        with pytest.raises(ValueError):
            RDMAPool(MB).degrade(0.5)

    def test_timeout_budget_consumed_per_fetch(self):
        pool = RDMAPool(MB)
        pool.inject_timeouts(1)
        with pytest.raises(PoolTimeoutError):
            pool.fetch_time(1)
        assert pool.fetch_time(1) > 0
        assert pool.timeouts_served == 1

    def test_tiered_health_follows_sub_pools(self):
        hot, cold = CXLPool(64 * MB), RDMAPool(64 * MB)
        tiered = TieredPool(hot, cold)
        # Demand fetches go to the cold tier, so a cold-tier outage
        # surfaces through the tiered pool's fetch path.
        cold.fail("rdma down")
        with pytest.raises(PoolUnavailableError):
            tiered.fetch_time(10)
        cold.recover()
        hot.fail("cxl offline")
        with pytest.raises(PoolUnavailableError):
            tiered.read_overhead(10)


class TestDedupStoreVectorised:
    def _reference_offsets(self, images):
        """The original dict-based dedup as ground truth."""
        index = {}
        next_offset = 0
        out = []
        for cids in images:
            missing = sorted(set(int(c) for c in cids) - index.keys())
            for cid in missing:
                index[cid] = next_offset
                next_offset += 1
            out.append(np.array([index[int(c)] for c in cids]))
        return out

    def test_offsets_match_dict_reference(self):
        rng = np.random.default_rng(42)
        images = [rng.integers(0, 500, size=300),
                  rng.integers(200, 900, size=400),
                  rng.integers(0, 1000, size=250)]
        store = DedupStore(CXLPool(64 * MB))
        got = [store.store_image(np.asarray(img, dtype=np.int64)).offsets
               for img in images]
        want = self._reference_offsets(images)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_large_image_with_heavy_duplication(self):
        rng = np.random.default_rng(7)
        cids = rng.integers(0, 1000, size=50_000)
        store = DedupStore(CXLPool(64 * MB))
        block = store.store_image(cids)
        assert store.unique_pages_stored == len(np.unique(cids))
        # Every page with the same content id shares one offset.
        for cid in (int(cids[0]), int(cids[-1])):
            offs = block.offsets[cids == cid]
            assert (offs == offs[0]).all()
