import pytest

from repro.mem.accounting import MemoryAccountant
from repro.mem.layout import MB, PAGE_SIZE


def test_charge_and_breakdown():
    acct = MemoryAccountant()
    acct.charge("anon", 10 * MB)
    acct.charge("cache", 5 * MB)
    assert acct.current_mb == pytest.approx(15.0)
    assert acct.breakdown_mb() == {"anon": 10.0, "cache": 5.0}


def test_peak_tracks_maximum():
    acct = MemoryAccountant()
    acct.charge("anon", 10 * MB)
    acct.charge("anon", -4 * MB)
    acct.charge("anon", 2 * MB)
    assert acct.peak_mb == pytest.approx(10.0)
    assert acct.current_mb == pytest.approx(8.0)


def test_negative_category_raises():
    acct = MemoryAccountant()
    acct.charge("anon", MB)
    with pytest.raises(AssertionError):
        acct.charge("anon", -2 * MB)


def test_charge_pages():
    acct = MemoryAccountant()
    acct.charge_pages("anon", 3)
    assert acct.current_bytes == 3 * PAGE_SIZE


def test_page_delta_hook():
    acct = MemoryAccountant()
    hook = acct.page_delta_hook("heap")
    hook(5)
    hook(-2)
    assert acct.current_bytes == 3 * PAGE_SIZE


def test_soft_cap_violations_counted():
    acct = MemoryAccountant(soft_cap_bytes=5 * MB)
    acct.charge("anon", 4 * MB)
    assert acct.cap_violations == 0
    acct.charge("anon", 2 * MB)
    assert acct.cap_violations == 1
    assert acct.over_soft_cap()


def test_timeline_follows_clock():
    t = [0.0]
    acct = MemoryAccountant(clock=lambda: t[0])
    acct.charge("anon", MB)
    t[0] = 5.0
    acct.charge("anon", MB)
    times = [when for when, _ in acct.timeline]
    assert times == [0.0, 5.0]


def test_peak_time_recorded():
    t = [0.0]
    acct = MemoryAccountant(clock=lambda: t[0])
    acct.charge("anon", MB)
    t[0] = 3.0
    acct.charge("anon", MB)
    t[0] = 4.0
    acct.charge("anon", -MB)
    assert acct.peak_time == 3.0


def test_integral_mb_seconds():
    t = [0.0]
    acct = MemoryAccountant(clock=lambda: t[0])
    acct.charge("anon", 10 * MB)   # 10 MB from t=0
    t[0] = 10.0
    acct.charge("anon", -10 * MB)  # back to 0 at t=10
    assert acct.integral_mb_seconds() == pytest.approx(100.0)


def test_zero_delta_is_noop():
    acct = MemoryAccountant()
    acct.charge("anon", 0)
    assert acct.usage == {}
    assert acct.timeline == []
