import numpy as np
import pytest

from repro.mem.address_space import (MAP_PRIVATE, PROT_READ, PROT_WRITE,
                                     PTE_LOCAL, PTE_NONE, PTE_REMOTE_INVALID,
                                     PTE_REMOTE_RO, AddressSpace)
from repro.mem.layout import MB, PAGE_SIZE
from repro.mem.pools import CXLPool, DedupStore, RDMAPool


def make_space(npages=100, name="test"):
    space = AddressSpace(name)
    space.add_vma("heap", npages)
    return space


def cxl_bound_space(npages=100):
    space = make_space(npages)
    store = DedupStore(CXLPool(64 * MB))
    block = store.store_image(np.arange(npages))
    space.bind_remote(space.find_vma("heap"), block, valid=True)
    return space


def rdma_bound_space(npages=100):
    space = make_space(npages)
    store = DedupStore(RDMAPool(64 * MB))
    block = store.store_image(np.arange(npages))
    space.bind_remote(space.find_vma("heap"), block, valid=False)
    return space


def arr(*values):
    return np.array(values, dtype=np.int64)


class TestLayout:
    def test_add_vma_assigns_disjoint_ranges(self):
        space = AddressSpace()
        a = space.add_vma("text", 10)
        b = space.add_vma("data", 10)
        assert b.start > a.end

    def test_add_vma_rejects_empty(self):
        with pytest.raises(ValueError):
            AddressSpace().add_vma("x", 0)

    def test_find_vma_missing(self):
        with pytest.raises(KeyError):
            make_space().find_vma("nope")

    def test_total_pages(self):
        space = AddressSpace()
        space.add_vma("a", 10)
        space.add_vma("b", 5)
        assert space.total_pages == 15

    def test_grow_extends_with_demand_zero(self):
        space = make_space(10)
        space.grow_vma("heap", 5)
        vma = space.find_vma("heap")
        assert vma.npages == 15
        assert (vma.state[10:] == PTE_NONE).all()


class TestDemandZero:
    def test_read_of_untouched_costs_minor_fault_no_memory(self):
        space = make_space()
        out = space.access(arr(0, 1, 2), arr())
        assert out.minor_faults == 3
        assert space.local_pages == 0

    def test_write_allocates_local(self):
        space = make_space()
        out = space.access(arr(), arr(0, 1))
        assert out.minor_faults == 2
        assert out.local_pages_allocated == 2
        assert space.local_pages == 2

    def test_second_write_is_free(self):
        space = make_space()
        space.access(arr(), arr(0))
        out = space.access(arr(), arr(0))
        assert out.minor_faults == 0
        assert space.local_pages == 1


class TestCXLPath:
    def test_bind_remote_sets_valid_ro_ptes(self):
        space = cxl_bound_space()
        vma = space.find_vma("heap")
        assert (vma.state == PTE_REMOTE_RO).all()
        assert space.local_pages == 0

    def test_reads_cost_nothing(self):
        space = cxl_bound_space()
        out = space.access(np.arange(50), arr())
        assert out.minor_faults == 0
        assert out.major_faults == 0
        assert space.local_pages == 0

    def test_reads_count_remote_loads(self):
        space = cxl_bound_space()
        out = space.access(np.arange(50), arr(), read_loads=1000)
        assert out.remote_loads == 1000

    def test_write_triggers_cow(self):
        space = cxl_bound_space()
        out = space.access(arr(), arr(3, 4))
        assert out.cow_faults == 2
        assert out.local_pages_allocated == 2
        assert space.local_pages == 2
        vma = space.find_vma("heap")
        assert vma.state[3] == PTE_LOCAL
        assert vma.state[5] == PTE_REMOTE_RO

    def test_cow_only_once_per_page(self):
        space = cxl_bound_space()
        space.access(arr(), arr(3))
        out = space.access(arr(), arr(3))
        assert out.cow_faults == 0
        assert space.local_pages == 1

    def test_remote_loads_scale_with_residency(self):
        space = cxl_bound_space(100)
        # CoW half the pages; loads should be apportioned to the
        # still-remote half.
        space.access(arr(), np.arange(50))
        out = space.access(np.arange(100), arr(), read_loads=1000)
        assert out.remote_loads == pytest.approx(500, abs=10)


class TestRDMAPath:
    def test_bind_lazy_sets_invalid_ptes(self):
        space = rdma_bound_space()
        vma = space.find_vma("heap")
        assert (vma.state == PTE_REMOTE_INVALID).all()

    def test_read_fetches_and_allocates_local(self):
        space = rdma_bound_space()
        out = space.access(np.arange(30), arr())
        assert out.major_faults == 30
        assert out.pages_fetched == 30
        assert out.fetch_pools == {"rdma": 30}
        assert space.local_pages == 30

    def test_second_read_is_free(self):
        space = rdma_bound_space()
        space.access(np.arange(30), arr())
        out = space.access(np.arange(30), arr())
        assert out.major_faults == 0

    def test_write_fetches_then_cows(self):
        space = rdma_bound_space()
        out = space.access(arr(), arr(1, 2))
        assert out.major_faults == 2
        assert out.cow_faults == 2
        assert space.local_pages == 2

    def test_no_remote_loads_for_rdma(self):
        space = rdma_bound_space()
        out = space.access(np.arange(10), arr(), read_loads=500)
        assert out.remote_loads == 0


class TestProtection:
    def test_write_to_readonly_vma_raises(self):
        space = AddressSpace()
        space.add_vma("text", 10, prot=PROT_READ)
        with pytest.raises(PermissionError):
            space.access(arr(), arr(0))

    def test_bind_remote_size_mismatch(self):
        space = make_space(10)
        store = DedupStore(CXLPool(MB))
        block = store.store_image(np.arange(5))
        with pytest.raises(ValueError):
            space.bind_remote(space.find_vma("heap"), block, valid=True)


class TestFlatIndexing:
    def test_split_across_vmas(self):
        space = AddressSpace()
        space.add_vma("a", 10)
        space.add_vma("b", 10)
        out = space.access(arr(), arr(5, 15))
        assert space.local_pages == 2
        assert space.vmas[0].state[5] == PTE_LOCAL
        assert space.vmas[1].state[5] == PTE_LOCAL

    def test_out_of_range_raises(self):
        space = make_space(10)
        with pytest.raises(IndexError):
            space.access(arr(10), arr())
        with pytest.raises(IndexError):
            space.access(arr(), arr(-1))

    def test_flatten_invalidated_by_growth(self):
        space = make_space(10)
        space.access(arr(9), arr())
        space.grow_vma("heap", 10)
        out = space.access(arr(), arr(15))
        assert space.local_pages == 1


class TestAccounting:
    def test_local_delta_callback(self):
        deltas = []
        space = AddressSpace(on_local_delta=deltas.append)
        space.add_vma("heap", 10)
        space.access(arr(), arr(0, 1, 2))
        space.destroy()
        assert sum(deltas) == 0
        assert deltas[0] == 3
        assert deltas[-1] == -3

    def test_destroy_idempotent(self):
        space = make_space()
        space.access(arr(), arr(0))
        assert space.destroy() == 1
        assert space.destroy() == 0

    def test_populate_local_charges_all_pages(self):
        space = make_space(20)
        space.populate_local(space.find_vma("heap"))
        assert space.local_pages == 20

    def test_bind_remote_releases_local(self):
        space = make_space(10)
        space.populate_local(space.find_vma("heap"))
        store = DedupStore(CXLPool(MB))
        block = store.store_image(np.arange(10))
        space.bind_remote(space.find_vma("heap"), block, valid=True)
        assert space.local_pages == 0

    def test_page_state_counts(self):
        space = cxl_bound_space(10)
        space.access(arr(), arr(0, 1))
        counts = space.page_state_counts()
        assert counts[PTE_LOCAL] == 2
        assert counts[PTE_REMOTE_RO] == 8


class TestSnapshotHelpers:
    def test_content_image_concatenates(self):
        space = AddressSpace()
        a = space.add_vma("a", 2)
        b = space.add_vma("b", 3)
        space.populate_local(a, content_base=100)
        space.populate_local(b, content_base=200)
        image = space.content_image()
        assert list(image) == [100, 101, 200, 201, 202]

    def test_clone_metadata_shares_nothing_mutable(self):
        space = cxl_bound_space(10)
        vma = space.find_vma("heap")
        clone = vma.clone_metadata()
        clone.state[0] = PTE_LOCAL
        assert vma.state[0] == PTE_REMOTE_RO
        assert clone.pool is vma.pool
