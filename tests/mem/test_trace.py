import numpy as np
import pytest

from repro.mem.trace import AccessTrace
from repro.sim.rng import SeededRNG


def test_generate_respects_fractions():
    rng = SeededRNG(1)
    trace = AccessTrace.generate(rng, total_pages=1000, touch_fraction=0.5,
                                 write_fraction=0.2)
    assert trace.distinct_reads == 500
    assert trace.distinct_writes == 100


def test_generate_deterministic_per_seed():
    a = AccessTrace.generate(SeededRNG(5), 1000, 0.5, 0.3)
    b = AccessTrace.generate(SeededRNG(5), 1000, 0.5, 0.3)
    assert np.array_equal(a.read_pages, b.read_pages)
    assert np.array_equal(a.write_pages, b.write_pages)


def test_writes_are_subset_of_reads():
    trace = AccessTrace.generate(SeededRNG(2), 1000, 0.4, 0.5)
    assert np.isin(trace.write_pages, trace.read_pages).all()


def test_read_only_ratio_matches_write_fraction():
    trace = AccessTrace.generate(SeededRNG(3), 10_000, 0.5, 0.25)
    assert trace.read_only_ratio == pytest.approx(0.75, abs=0.01)


def test_pages_within_bounds_and_distinct():
    trace = AccessTrace.generate(SeededRNG(4), 500, 1.0, 1.0)
    assert trace.read_pages.min() >= 0
    assert trace.read_pages.max() < 500
    assert len(np.unique(trace.read_pages)) == len(trace.read_pages)


def test_invalid_fractions_raise():
    rng = SeededRNG(0)
    with pytest.raises(ValueError):
        AccessTrace.generate(rng, 100, 1.5, 0.5)
    with pytest.raises(ValueError):
        AccessTrace.generate(rng, 100, 0.5, -0.1)


def test_read_loads_scale_with_touched():
    trace = AccessTrace.generate(SeededRNG(6), 1000, 0.5, 0.1,
                                 loads_per_read_page=10)
    assert trace.read_loads == 5000


def test_subset_shrinks_trace():
    rng = SeededRNG(7)
    trace = AccessTrace.generate(rng, 1000, 0.8, 0.2)
    sub = trace.subset(0.5, rng.fork("ws"))
    assert sub.distinct_reads == trace.distinct_reads // 2
    assert np.isin(sub.read_pages, trace.read_pages).all()
    assert np.isin(sub.write_pages, trace.write_pages).all()


def test_subset_zero_and_full():
    rng = SeededRNG(8)
    trace = AccessTrace.generate(rng, 100, 0.5, 0.5)
    empty = trace.subset(0.0, rng.fork("a"))
    assert empty.distinct_reads == 0
    full = trace.subset(1.0, rng.fork("b"))
    assert full.distinct_reads == trace.distinct_reads


def test_subset_invalid_fraction():
    rng = SeededRNG(9)
    trace = AccessTrace.generate(rng, 100, 0.5, 0.5)
    with pytest.raises(ValueError):
        trace.subset(2.0, rng)


def test_touched_pages_counts_union():
    trace = AccessTrace(read_pages=np.array([1, 2, 3]),
                        write_pages=np.array([3, 4]), read_loads=0)
    assert trace.touched_pages == 4
