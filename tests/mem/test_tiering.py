import numpy as np
import pytest

from repro.mem.layout import GB, MB
from repro.mem.pools import CXLPool, DedupStore, RDMAPool, TieredPool
from repro.mem.tiering import AccessFrequencyTracker, working_set_hot_mask
from repro.mem.trace import AccessTrace
from repro.sim.rng import SeededRNG
from repro.workloads.functions import function_by_name


class TestWorkingSetMask:
    def test_mask_covers_exactly_the_base_trace(self):
        profile = function_by_name("JS")
        rng = SeededRNG(1)
        mask = working_set_hot_mask(profile, rng)
        base = profile.base_trace(rng)
        assert mask.sum() == len(base.read_pages)
        assert mask[base.read_pages].all()

    def test_budget_truncates(self):
        profile = function_by_name("JS")
        rng = SeededRNG(1)
        mask = working_set_hot_mask(profile, rng, budget_fraction=0.01)
        assert mask.sum() <= int(profile.image_pages * 0.01)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            working_set_hot_mask(function_by_name("JS"), SeededRNG(1),
                                 budget_fraction=1.5)


class TestFrequencyTracker:
    def make_trace(self, pages):
        arr = np.array(pages, dtype=np.int64)
        return AccessTrace(read_pages=arr, write_pages=arr[:0], read_loads=0)

    def test_hot_mask_ranks_by_count(self):
        tracker = AccessFrequencyTracker(10)
        tracker.observe(self.make_trace([1, 2, 3]))
        tracker.observe(self.make_trace([2, 3]))
        tracker.observe(self.make_trace([3]))
        mask = tracker.hot_mask(0.2)   # budget: 2 pages
        assert mask[3]
        assert mask[2]
        assert mask.sum() == 2

    def test_untouched_pages_never_hot(self):
        tracker = AccessFrequencyTracker(10)
        tracker.observe(self.make_trace([0]))
        mask = tracker.hot_mask(1.0)
        assert mask.sum() == 1

    def test_empty_tracker_returns_empty_mask(self):
        tracker = AccessFrequencyTracker(10)
        assert tracker.hot_mask(0.5).sum() == 0

    def test_touch_rate(self):
        tracker = AccessFrequencyTracker(4)
        tracker.observe(self.make_trace([0, 1]))
        tracker.observe(self.make_trace([0]))
        rate = tracker.touch_rate()
        assert rate[0] == 1.0
        assert rate[1] == 0.5
        assert rate[2] == 0.0

    def test_out_of_range_trace_rejected(self):
        tracker = AccessFrequencyTracker(4)
        with pytest.raises(IndexError):
            tracker.observe(self.make_trace([7]))

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            AccessFrequencyTracker(4).hot_mask(2.0)


class TestMaskedPlacement:
    def test_masked_allocation_places_by_mask(self):
        hot, cold = CXLPool(64 * MB), RDMAPool(64 * MB)
        tiered = TieredPool(hot, cold)
        mask = np.array([True, False, True, False])
        offsets = tiered.allocate_pages_masked(mask)
        valid = tiered.valid_mask(offsets)
        assert np.array_equal(valid, mask)
        assert hot.used_pages == 2
        assert cold.used_pages == 2

    def test_store_image_with_mask(self):
        hot, cold = CXLPool(64 * MB), RDMAPool(64 * MB)
        store = DedupStore(TieredPool(hot, cold))
        content = np.arange(10)
        mask = np.zeros(10, dtype=bool)
        mask[:4] = True
        block = store.store_image(content, hot_mask=mask)
        assert hot.used_pages == 4
        assert cold.used_pages == 6
        valid = store.pool.valid_mask(block.offsets)
        assert np.array_equal(valid, mask)

    def test_first_store_wins_placement(self):
        hot, cold = CXLPool(64 * MB), RDMAPool(64 * MB)
        store = DedupStore(TieredPool(hot, cold))
        content = np.arange(10)
        store.store_image(content, hot_mask=np.ones(10, dtype=bool))
        # Second store demands cold placement — but pages already exist.
        store.store_image(content, hot_mask=np.zeros(10, dtype=bool))
        assert hot.used_pages == 10
        assert cold.used_pages == 0

    def test_mask_on_flat_pool_rejected(self):
        store = DedupStore(CXLPool(64 * MB))
        with pytest.raises(TypeError):
            store.store_image(np.arange(4), hot_mask=np.ones(4, dtype=bool))


class TestEndToEnd:
    def test_ws_tiering_beats_naive_fraction(self):
        """Working-set placement should serve reads from CXL even with a
        small hot tier, unlike the naive 50/50 split."""
        from repro.core.mm_template import (MMTemplateRegistry,
                                            build_template_for_function)
        from repro.criu.images import SnapshotImage
        from repro.mem.address_space import AddressSpace
        from repro.sim.engine import Simulator

        profile = function_by_name("IR")   # touches only ~5% of 855 MB
        image = SnapshotImage.from_profile(profile)
        rng = SeededRNG(5)
        trace = profile.make_trace(rng, invocation=1)

        def run(hot_mask):
            sim = Simulator()
            registry = MMTemplateRegistry(sim)
            tiered = TieredPool(CXLPool(2 * GB), RDMAPool(8 * GB),
                                hot_fraction=0.10)
            store = DedupStore(tiered)
            template = build_template_for_function(registry, image, store,
                                                   hot_mask=hot_mask)
            space = AddressSpace("x")

            def proc():
                yield registry.mmt_attach(template, space)

            sim.run_process(proc())
            return space.access(trace.read_pages, trace.write_pages)

        naive = run(None)                       # first 10% of pages hot
        ws = run(working_set_hot_mask(profile, rng))
        # The working-set plan serves almost all reads without fetches.
        assert ws.major_faults < naive.major_faults / 3
