import pytest

from repro.mem.layout import (PAGE_SIZE, is_page_aligned, page_align,
                              page_align_up, pages_for_bytes)


def test_pages_for_bytes_exact():
    assert pages_for_bytes(PAGE_SIZE) == 1
    assert pages_for_bytes(10 * PAGE_SIZE) == 10


def test_pages_for_bytes_rounds_up():
    assert pages_for_bytes(1) == 1
    assert pages_for_bytes(PAGE_SIZE + 1) == 2


def test_pages_for_bytes_zero():
    assert pages_for_bytes(0) == 0


def test_pages_for_bytes_negative_raises():
    with pytest.raises(ValueError):
        pages_for_bytes(-1)


def test_page_align():
    assert page_align(0) == 0
    assert page_align(PAGE_SIZE - 1) == 0
    assert page_align(PAGE_SIZE) == PAGE_SIZE
    assert page_align(PAGE_SIZE + 5) == PAGE_SIZE


def test_page_align_up():
    assert page_align_up(0) == 0
    assert page_align_up(1) == PAGE_SIZE
    assert page_align_up(PAGE_SIZE) == PAGE_SIZE


def test_is_page_aligned():
    assert is_page_aligned(0)
    assert is_page_aligned(PAGE_SIZE * 7)
    assert not is_page_aligned(123)
