"""Unit tests for the copy-on-write page-array module (repro.mem.cow)."""

import numpy as np
import pytest

from repro.mem.cow import (CHUNK_PAGES, CowPageArray, TemplateBase,
                           as_dense, count_equal)


def make_pair(n=3 * CHUNK_PAGES + 100, dtype=np.int64):
    dense = np.arange(n, dtype=dtype)
    base = TemplateBase(dense.copy())
    return base, CowPageArray(base)


class TestTemplateBase:
    def test_freezes_array(self):
        base, _ = make_pair()
        with pytest.raises(ValueError):
            base.array[0] = 99

    def test_count_is_cached_and_correct(self):
        arr = np.array([0, 1, 1, 2, 1], dtype=np.uint8)
        base = TemplateBase(arr)
        assert base.count(1) == 3
        assert base.count(1) == 3   # cached path
        assert base.count(7) == 0


class TestCloneSharing:
    def test_clone_holds_no_private_storage(self):
        _, cow = make_pair()
        assert cow.materialized_chunks == 0
        assert cow.private_nbytes == 0

    def test_reads_pass_through_to_base(self):
        base, cow = make_pair()
        assert cow[5] == 5
        idx = np.array([0, CHUNK_PAGES, 2 * CHUNK_PAGES + 7])
        np.testing.assert_array_equal(cow[idx], base.array[idx])
        np.testing.assert_array_equal(np.asarray(cow), base.array)

    def test_bool_mask_gather(self):
        base, cow = make_pair(n=10)
        mask = np.zeros(10, dtype=bool)
        mask[[2, 5]] = True
        np.testing.assert_array_equal(cow[mask], base.array[mask])


class TestCopyOnWrite:
    def test_write_does_not_touch_base(self):
        base, cow = make_pair()
        snapshot = base.array.copy()
        cow[np.array([0, CHUNK_PAGES + 1])] = -5
        np.testing.assert_array_equal(base.array, snapshot)
        assert cow[0] == -5
        assert cow[CHUNK_PAGES + 1] == -5
        assert cow[1] == 1   # untouched page still reads through

    def test_private_bytes_scale_with_chunks_touched_not_size(self):
        _, cow = make_pair(n=64 * CHUNK_PAGES)
        cow[np.array([3])] = -1          # one page => one chunk
        assert cow.materialized_chunks == 1
        assert cow.private_nbytes <= CHUNK_PAGES * cow.dtype.itemsize

    def test_overlay_gather_mixes_private_and_shared(self):
        base, cow = make_pair(n=64 * CHUNK_PAGES)
        cow[np.array([3, CHUNK_PAGES + 1])] = -1
        assert cow.materialized_chunks == 2   # overlay, not collapsed
        idx = np.array([3, 4, CHUNK_PAGES + 1, 5 * CHUNK_PAGES])
        np.testing.assert_array_equal(
            cow[idx], np.array([-1, 4, -1, 5 * CHUNK_PAGES]))
        assert cow[3] == -1
        assert cow[4] == 4

    def test_overlay_scatter_with_array_value(self):
        _, cow = make_pair(n=64 * CHUNK_PAGES)
        idx = np.array([1, CHUNK_PAGES + 2])
        cow[idx] = np.array([-1, -2])
        assert cow.materialized_chunks == 2
        assert cow[1] == -1 and cow[CHUNK_PAGES + 2] == -2
        assert cow.count(-1) == 1 and cow.count(-2) == 1

    def test_single_chunk_array_goes_dense_on_first_write(self):
        dense = np.zeros(100, dtype=np.uint8)
        cow = CowPageArray(TemplateBase(dense))
        cow[3] = 1
        assert cow.materialized_chunks == -1   # dense
        assert cow[3] == 1 and cow[0] == 0

    def test_collapse_when_most_chunks_materialized(self):
        _, cow = make_pair(n=4 * CHUNK_PAGES)
        cow[np.arange(0, 2 * CHUNK_PAGES)] = -1   # half the chunks
        assert cow.materialized_chunks == -1
        assert cow[0] == -1
        assert cow[3 * CHUNK_PAGES] == 3 * CHUNK_PAGES

    def test_full_slice_overwrite_drops_base(self):
        _, cow = make_pair(n=2 * CHUNK_PAGES)
        cow[:] = 7
        assert cow.materialized_chunks == -1
        assert count_equal(cow, 7) == 2 * CHUNK_PAGES

    def test_scatter_with_array_value(self):
        _, cow = make_pair(n=2 * CHUNK_PAGES)
        idx = np.array([1, CHUNK_PAGES + 2])
        cow[idx] = np.array([-1, -2])
        assert cow[1] == -1 and cow[CHUNK_PAGES + 2] == -2


class TestQueries:
    def test_count_tracks_writes(self):
        dense = np.zeros(2 * CHUNK_PAGES, dtype=np.uint8)
        cow = CowPageArray(TemplateBase(dense))
        assert cow.count(0) == 2 * CHUNK_PAGES
        cow[np.array([0, 1, CHUNK_PAGES])] = 1
        assert cow.count(1) == 3
        assert cow.count(0) == 2 * CHUNK_PAGES - 3

    def test_equality_protocol(self):
        _, cow = make_pair(n=10)
        assert int(np.count_nonzero(cow == 5)) == 1
        assert int(np.count_nonzero(cow != 5)) == 9

    def test_copy_is_independent(self):
        _, cow = make_pair(n=2 * CHUNK_PAGES)
        cow[np.array([0])] = -1
        dup = cow.copy()
        dup[np.array([1])] = -2
        assert cow[1] == 1
        assert dup[0] == -1

    def test_helpers_accept_plain_ndarray(self):
        arr = np.array([1, 1, 2])
        assert count_equal(arr, 1) == 2
        assert as_dense(arr) is arr

    def test_to_ndarray_merges_overlay(self):
        base, cow = make_pair(n=2 * CHUNK_PAGES)
        cow[np.array([CHUNK_PAGES])] = -9
        out = cow.to_ndarray()
        assert out[CHUNK_PAGES] == -9
        np.testing.assert_array_equal(out[:CHUNK_PAGES],
                                      base.array[:CHUNK_PAGES])
