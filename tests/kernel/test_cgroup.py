import pytest

from repro.kernel.cgroup import Cgroup, CgroupLimits, CgroupManager
from repro.sim.engine import Simulator


def run(gen):
    sim = Simulator()
    mgr = CgroupManager(sim)
    return sim, mgr


def test_create_within_paper_bounds():
    sim = Simulator()
    mgr = CgroupManager(sim)

    def proc():
        cg = yield mgr.create("sandbox-1")
        return cg, sim.now

    cg, now = sim.run_process(proc())
    assert isinstance(cg, Cgroup)
    assert 0.016 <= now <= 0.032


def test_migrate_within_paper_bounds():
    sim = Simulator()
    mgr = CgroupManager(sim)

    def proc():
        cg = yield mgr.create("sandbox-1")
        start = sim.now
        yield mgr.migrate(1234, cg)
        return cg, sim.now - start

    cg, elapsed = sim.run_process(proc())
    assert 0.010 <= elapsed <= 0.050
    assert 1234 in cg.procs


def test_clone_into_is_two_orders_faster():
    sim = Simulator()
    mgr = CgroupManager(sim)

    def proc():
        cg = yield mgr.create("sandbox-1")
        start = sim.now
        yield mgr.clone_into(1234, cg)
        return sim.now - start

    elapsed = sim.run_process(proc())
    assert 0.0001 <= elapsed <= 0.0003


def test_reconfigure_updates_limits():
    sim = Simulator()
    mgr = CgroupManager(sim)

    def proc():
        cg = yield mgr.create("pooled", CgroupLimits(cpu_quota=1.0))
        yield mgr.reconfigure(cg, CgroupLimits(cpu_quota=2.0,
                                               memory_bytes=4 << 30))
        return cg

    cg = sim.run_process(proc())
    assert cg.limits.cpu_quota == 2.0
    assert cg.limits.memory_bytes == 4 << 30


def test_stats_track_operations():
    sim = Simulator()
    mgr = CgroupManager(sim)

    def proc():
        cg = yield mgr.create("a")
        yield mgr.migrate(1, cg)
        yield mgr.clone_into(2, cg)
        yield mgr.reconfigure(cg, CgroupLimits())
        return cg

    sim.run_process(proc())
    assert mgr.stats == {"create": 1, "migrate": 1, "clone_into": 1,
                         "reconfigure": 1}


def test_remove_proc_and_empty():
    sim = Simulator()
    mgr = CgroupManager(sim)

    def proc():
        cg = yield mgr.create("a")
        yield mgr.clone_into(7, cg)
        return cg

    cg = sim.run_process(proc())
    assert not cg.empty
    mgr.remove_proc(7, cg)
    assert cg.empty


def test_limits_equality():
    assert CgroupLimits() == CgroupLimits()
    assert CgroupLimits(cpu_quota=2.0) != CgroupLimits()


def test_deterministic_costs_per_seed():
    def run_once():
        sim = Simulator()
        mgr = CgroupManager(sim)

        def proc():
            yield mgr.create("x")
            return sim.now

        return sim.run_process(proc())

    assert run_once() == run_once()
