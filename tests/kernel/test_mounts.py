import pytest

from repro.kernel.mounts import MountTable, OverlayFS, SimpleFS
from repro.sim.engine import Simulator


def make_table():
    sim = Simulator()
    return sim, MountTable(sim)


class TestOverlayFS:
    def test_requires_lower_layer(self):
        with pytest.raises(ValueError):
            OverlayFS(())

    def test_write_lands_in_upper(self):
        fs = OverlayFS(("base",))
        fs.write_file("/tmp/out", 1000)
        assert fs.upper_bytes == 1000
        assert fs.dirty

    def test_delete_creates_whiteout(self):
        fs = OverlayFS(("base",))
        fs.delete_file("/etc/conf")
        assert not fs.read_visible("/etc/conf")
        assert fs.dirty

    def test_write_after_delete_restores_visibility(self):
        fs = OverlayFS(("base",))
        fs.delete_file("/a")
        fs.write_file("/a", 10)
        assert fs.read_visible("/a")

    def test_purge_upper_removes_all_modifications(self):
        fs = OverlayFS(("base",))
        fs.write_file("/a", 10)
        fs.write_file("/b", 20)
        fs.delete_file("/c")
        assert fs.purge_upper() == 3
        assert not fs.dirty
        assert fs.upper_bytes == 0
        # Purge does not clear the inode cache; a remount must do that.
        assert fs.stale_inode_cache

    def test_lower_layers_immutable_tuple(self):
        fs = OverlayFS(("base", "python-deps"))
        assert fs.lower_layers == ("base", "python-deps")


class TestMountTable:
    def test_mount_and_visible(self):
        sim, table = make_table()

        def proc():
            yield table.mount("/sys", SimpleFS("sysfs"))

        sim.run_process(proc())
        assert table.visible("/sys").fstype == "sysfs"

    def test_overmount_shadows_and_umount_reveals(self):
        sim, table = make_table()
        base = OverlayFS(("base",), label="base")
        fn = OverlayFS(("fn-deps",), label="fn")

        def proc():
            yield table.mount("/app", base)
            yield table.mount("/app", fn, fast=True)
            assert table.visible("/app") is fn
            assert table.mount_depth("/app") == 2
            popped = yield table.umount("/app")
            return popped

        popped = sim.run_process(proc())
        assert popped is fn
        assert table.visible("/app") is base

    def test_umount_empty_raises(self):
        sim, table = make_table()

        def proc():
            yield table.umount("/nope")

        with pytest.raises(KeyError):
            sim.run_process(proc())

    def test_fast_mount_cheaper_than_cold(self):
        sim, table = make_table()

        def cold():
            yield table.mount("/a", SimpleFS("tmpfs"))
            return sim.now

        cold_t = sim.run_process(cold())

        sim2, table2 = make_table()

        def fast():
            yield table2.mount("/a", SimpleFS("tmpfs"), fast=True)
            return sim2.now

        fast_t = sim2.run_process(fast())
        assert fast_t < cold_t / 5

    def test_remount_clears_stale_cache(self):
        sim, table = make_table()
        fs = OverlayFS(("base",))
        fs.write_file("/x", 1)
        fs.purge_upper()

        def proc():
            yield table.mount("/", fs)
            yield table.remount("/")

        sim.run_process(proc())
        assert not fs.stale_inode_cache

    def test_mknod_and_pivot_root(self):
        sim, table = make_table()

        def proc():
            yield table.mknod("/dev/null")
            yield table.mknod("/dev/zero")
            yield table.pivot_root()

        sim.run_process(proc())
        assert table.device_nodes == ["/dev/null", "/dev/zero"]
        assert table.root_pivoted
        assert table.stats["mknod"] == 2

    def test_mounted_paths_sorted(self):
        sim, table = make_table()

        def proc():
            yield table.mount("/sys", SimpleFS("sysfs"))
            yield table.mount("/proc", SimpleFS("proc"))

        sim.run_process(proc())
        assert table.mounted_paths() == ["/proc", "/sys"]
