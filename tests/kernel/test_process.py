import numpy as np
import pytest

from repro.kernel.cgroup import CgroupManager
from repro.kernel.process import Process, ProcessTable
from repro.sim.engine import Simulator


def setup():
    sim = Simulator()
    cgm = CgroupManager(sim)
    table = ProcessTable(sim, cgroups=cgm)
    return sim, cgm, table


def test_spawn_allocates_pid_and_registers():
    sim, _cgm, table = setup()

    def proc():
        p = yield table.spawn("worker")
        return p

    p = sim.run_process(proc())
    assert isinstance(p, Process)
    assert p.pid >= 100
    assert table.procs[p.pid] is p
    assert table.live_count == 1


def test_spawn_into_cgroup_faster_than_migrate():
    def run(into):
        sim, cgm, table = setup()

        def proc():
            cg = yield cgm.create("sb")
            start = sim.now
            yield table.spawn("w", cgroup=cg, into_cgroup=into)
            return sim.now - start

        return sim.run_process(proc())

    fast = run(True)
    slow = run(False)
    assert fast < slow
    assert slow - fast > 0.009  # at least the min migration cost


def test_spawn_with_cgroup_requires_manager():
    sim = Simulator()
    table = ProcessTable(sim)
    from repro.kernel.cgroup import Cgroup, CgroupLimits
    cg = Cgroup("x", CgroupLimits())

    def proc():
        yield table.spawn("w", cgroup=cg)

    with pytest.raises(RuntimeError):
        sim.run_process(proc())


def test_clone_threads():
    sim, _cgm, table = setup()

    def proc():
        p = yield table.spawn("w")
        yield table.clone_threads(p, 13)
        return p

    p = sim.run_process(proc())
    assert p.threads == 14


def test_clone_threads_negative_rejected():
    sim, _cgm, table = setup()

    def proc():
        p = yield table.spawn("w")
        yield table.clone_threads(p, -1)

    with pytest.raises(ValueError):
        sim.run_process(proc())


def test_kill_releases_memory_and_cgroup():
    sim, cgm, table = setup()

    def proc():
        cg = yield cgm.create("sb")
        p = yield table.spawn("w", cgroup=cg, into_cgroup=True)
        p.address_space.add_vma("heap", 10)
        p.address_space.access(np.array([], dtype=np.int64),
                               np.arange(10))
        assert p.memory_bytes > 0
        yield table.kill(p)
        return p, cg

    p, cg = sim.run_process(proc())
    assert not p.alive
    assert p.address_space.destroyed
    assert cg.empty
    assert table.live_count == 0


def test_kill_tree_reaps_children():
    sim, _cgm, table = setup()

    def proc():
        parent = yield table.spawn("parent")
        child = yield table.spawn("child", parent=parent)
        grand = yield table.spawn("grand", parent=child)
        yield table.kill_tree(parent)
        return parent, child, grand

    parent, child, grand = sim.run_process(proc())
    assert not parent.alive and not child.alive and not grand.alive
    assert table.live_count == 0


def test_kill_idempotent():
    sim, _cgm, table = setup()

    def proc():
        p = yield table.spawn("w")
        yield table.kill(p)
        yield table.kill(p)
        return p

    p = sim.run_process(proc())
    assert not p.alive


def test_open_fd():
    p = Process(1, "x")
    fd = p.open_fd("socket:tcp")
    assert p.fds[fd] == "socket:tcp"
    assert fd == 3
