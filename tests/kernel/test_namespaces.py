import pytest

from repro.kernel.namespaces import (NamespaceManager, NetNamespace)
from repro.sim.engine import Delay, Simulator
from repro.sim.latency import LatencyModel


def test_netns_creation_cost_at_low_concurrency():
    sim = Simulator()
    mgr = NamespaceManager(sim)

    def proc():
        ns = yield mgr.create_netns()
        return ns, sim.now

    ns, now = sim.run_process(proc())
    assert isinstance(ns, NetNamespace)
    assert now == pytest.approx(0.080, rel=0.01)


def test_netns_contention_inflates_cost():
    """§3.3: 15 concurrent creates -> ~400 ms network setup."""
    sim = Simulator()
    mgr = NamespaceManager(sim)
    finish = []

    def proc():
        yield mgr.create_netns()
        finish.append(sim.now)

    for _ in range(15):
        sim.spawn(proc())
    sim.run()
    assert max(finish) == pytest.approx(0.402, rel=0.05)


def test_netns_cost_capped():
    lat = LatencyModel()
    assert lat.ns.netns_create(10_000) == lat.ns.netns_max


def test_in_flight_counter_returns_to_zero():
    sim = Simulator()
    mgr = NamespaceManager(sim)

    def proc():
        yield mgr.create_netns()

    for _ in range(3):
        sim.spawn(proc())
    sim.run()
    assert mgr.netns_in_flight == 0
    assert mgr.created["net"] == 3


def test_netns_connection_lifecycle():
    ns = NetNamespace()
    ns.open_connection(1, nbytes=100)
    ns.open_connection(2)
    assert ns.leaks_execution_data
    assert ns.terminate_connections() == 2
    assert not ns.leaks_execution_data
    # Statistics persist across reuse (§8.1.1).
    assert ns.veth_rx_bytes == 100


def test_netns_customisation_and_reset():
    ns = NetNamespace()
    ns.add_firewall_rule("drop tcp/25")
    assert ns.customised
    ns.reset_configuration()
    assert not ns.customised
    assert ns.firewall_rules == []
    assert ns.routing_entries == ["default"]


def test_light_namespaces_cheap():
    sim = Simulator()
    mgr = NamespaceManager(sim)

    def proc():
        nss = yield mgr.create_light_set()
        return nss, sim.now

    nss, now = sim.run_process(proc())
    assert set(nss) == {"pid", "uts", "ipc", "time"}
    assert now < 0.001


def test_light_namespace_unknown_kind():
    sim = Simulator()
    mgr = NamespaceManager(sim)
    with pytest.raises(ValueError):
        sim.run_process(mgr.create_light("bogus"))


def test_mntns_creation():
    sim = Simulator()
    mgr = NamespaceManager(sim)

    def proc():
        ns = yield mgr.create_mntns()
        return ns

    ns = sim.run_process(proc())
    assert ns.kind == "mnt"


def test_namespace_ids_unique():
    a, b = NetNamespace(), NetNamespace()
    assert a.ns_id != b.ns_id
