"""ControlPlane glue: preview/claim/settle around dispatch attempts."""

from types import SimpleNamespace

from repro.control.breaker import HALF_OPEN, OPEN
from repro.control.config import BreakerConfig, ControlConfig
from repro.control.plane import ControlPlane
from repro.sim.engine import Simulator


def fake_platform(name):
    return SimpleNamespace(node=SimpleNamespace(name=name))


def make_plane(**cfg_kwargs):
    defaults = dict(node_breaker=BreakerConfig(
        window=10.0, min_samples=2, failure_threshold=0.5,
        open_duration=5.0, half_open_probes=2, close_after=1))
    defaults.update(cfg_kwargs)
    return ControlPlane(Simulator(), ControlConfig(**defaults))


def trip_node(plane, node, at=0.0):
    plane.observe_attempt(node, at, False, 0.0)
    plane.observe_attempt(node, at + 0.1, False, 0.0)
    assert plane.node_breaker(node).state == OPEN


class TestPreviewClaimSettle:
    def test_filter_is_non_claiming(self):
        # Regression: previewing a half-open node across many dispatch
        # rounds must not consume its probe slots — before the fix,
        # half_open_probes unpicked previews wedged the breaker in
        # half-open with allow() False forever.
        plane = make_plane()
        platforms = [fake_platform("node0"), fake_platform("node1")]
        trip_node(plane, "node0")
        # Past cool-off: node0 is previewable again, repeatedly.
        for _ in range(10):
            allowed = plane.filter_candidates(platforms, 6.0)
            assert [p.node.name for p in allowed] == ["node0", "node1"]
        # All probe slots must still be available for the real pick.
        assert plane.claim_attempt("node0", 6.0)
        assert plane.claim_attempt("node0", 6.1)
        breaker = plane.node_breaker("node0")
        assert breaker.state == HALF_OPEN
        assert not plane.claim_attempt("node0", 6.2)

    def test_claimed_probe_outcome_drives_state(self):
        plane = make_plane()
        trip_node(plane, "node0")
        assert plane.claim_attempt("node0", 6.0)
        plane.observe_attempt("node0", 6.5, True, 0.5)
        assert plane.node_breaker("node0").state == "closed"

    def test_settle_attempt_returns_probe_without_outcome(self):
        # Regression companion: an invocation-deadline abort settles the
        # claimed probe without feeding the breaker a failure, so a
        # healthy node is neither wedged nor re-opened.
        plane = make_plane(node_breaker=BreakerConfig(
            window=10.0, min_samples=2, failure_threshold=0.5,
            open_duration=5.0, half_open_probes=1, close_after=1))
        trip_node(plane, "node0")
        assert plane.claim_attempt("node0", 6.0)
        assert not plane.claim_attempt("node0", 6.1)  # single slot taken
        plane.settle_attempt("node0")                 # deadline abort
        breaker = plane.node_breaker("node0")
        assert breaker.state == HALF_OPEN             # not re-opened
        assert plane.claim_attempt("node0", 6.2)      # slot reusable
        plane.observe_attempt("node0", 6.5, True, 0.3)
        assert breaker.state == "closed"

    def test_filter_claim_settle_noop_when_breakers_off(self):
        plane = make_plane(node_breaker=None)
        platforms = [fake_platform("node0")]
        assert plane.filter_candidates(platforms, 0.0) == platforms
        assert plane.claim_attempt("node0", 0.0)
        plane.settle_attempt("node0")                 # must not raise
