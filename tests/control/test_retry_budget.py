"""Retry budget: token-bucket arithmetic, no clock involved."""

import pytest

from repro.control.config import RetryBudgetConfig
from repro.control.retry_budget import RetryBudget


def test_starts_full_and_spends():
    b = RetryBudget(RetryBudgetConfig(capacity=3.0,
                                      earn_per_invocation=0.5))
    assert b.try_spend()
    assert b.try_spend()
    assert b.try_spend()
    assert not b.try_spend()             # empty
    assert b.spent == 3
    assert b.denied == 1


def test_earning_is_capped_at_capacity():
    b = RetryBudget(RetryBudgetConfig(capacity=2.0,
                                      earn_per_invocation=1.0))
    for _ in range(10):
        b.earn()
    assert b.tokens == 2.0               # never above capacity


def test_earn_fraction_bounds_amplification():
    # 10% earn rate: once the initial allowance is gone, 100 admitted
    # invocations bank 10 tokens — but never more than capacity, which
    # also caps the retry burst a quiet period can store up.
    b = RetryBudget(RetryBudgetConfig(capacity=5.0,
                                      earn_per_invocation=0.1))
    for _ in range(5):
        assert b.try_spend()
    assert not b.try_spend()
    for _ in range(100):
        b.earn()
    granted = 0
    while b.try_spend():
        granted += 1
    assert granted == 5                  # min(capacity, 100 * 0.1)
    assert b.earned == pytest.approx(10.0)


def test_partial_token_is_not_spendable():
    b = RetryBudget(RetryBudgetConfig(capacity=4.0,
                                      earn_per_invocation=0.3))
    for _ in range(4):
        assert b.try_spend()
    b.earn()                              # 0.3 tokens: not enough
    assert not b.try_spend()
    b.earn()
    b.earn()
    b.earn()                              # 1.2 tokens
    assert b.try_spend()


def test_summary():
    b = RetryBudget(RetryBudgetConfig(capacity=2.0))
    b.try_spend()
    s = b.summary()
    assert s == {"tokens_left": 1.0, "spent": 1, "denied": 0}
