"""SLO burn-rate accounting: windows, the AND rule, degrade signal."""

import pytest

from repro.control.config import ControlConfig, SLOTarget
from repro.control.slo import SLOTracker, _WindowCounter


def make_tracker(**slo_kwargs):
    defaults = dict(threshold=1.0, objective=0.9, fast_window=30.0,
                    slow_window=300.0, fast_burn=2.0, slow_burn=1.0)
    defaults.update(slo_kwargs)
    cfg = ControlConfig(slos={"DH": SLOTarget(**defaults)},
                        slo_bucket=5.0, degrade_burn=3.0)
    return SLOTracker(cfg)


class TestWindowCounter:
    def test_counts_and_fraction(self):
        w = _WindowCounter(window=30.0, bucket=5.0)
        w.observe(0.0, ok=True)
        w.observe(1.0, ok=False)
        assert w.bad_fraction(1.0) == 0.5

    def test_pruning_forgets_old_buckets(self):
        w = _WindowCounter(window=10.0, bucket=5.0)
        w.observe(0.0, ok=False)
        assert w.bad_fraction(5.0) == 1.0
        # Bucket [0,5) fully leaves the 10s window only after t=20
        # (its end must be older than the horizon).
        assert w.bad_fraction(20.1) == 0.0
        assert w.good == 0 and w.bad == 0

    def test_bucket_capped_at_window(self):
        w = _WindowCounter(window=2.0, bucket=5.0)
        assert w.bucket == 2.0

    def test_empty_window_is_clean(self):
        w = _WindowCounter(window=10.0, bucket=5.0)
        assert w.bad_fraction(100.0) == 0.0


class TestBurnRates:
    def test_burn_is_bad_fraction_over_budget(self):
        t = make_tracker(objective=0.9)        # budget = 0.1
        t.observe("DH", 0.0, e2e=0.5)          # good
        t.observe("DH", 1.0, e2e=5.0)          # bad
        fast, slow = t.burn("DH", 1.0)
        assert fast == pytest.approx(5.0)      # 0.5 / 0.1
        assert slow == pytest.approx(5.0)

    def test_unconfigured_function_is_silent(self):
        t = make_tracker()
        t.observe("IR", 0.0, e2e=100.0)
        assert t.burn("IR", 0.0) == (0.0, 0.0)
        assert not t.shed_active("IR", 0.0)

    def test_two_window_and_rule(self):
        # fast_burn=2, slow_burn=1, budget=0.1: a short burst of misses
        # saturates the fast window but the slow window lags.
        t = make_tracker(objective=0.9, fast_window=30.0,
                         slow_window=300.0, fast_burn=2.0, slow_burn=1.0)
        # A long healthy history dilutes the slow window.
        for i in range(200):
            t.observe("DH", float(i), e2e=0.1)
        # Now a burst of misses.
        for i in range(8):
            t.observe("DH", 200.0 + i, e2e=10.0)
        fast, slow = t.burn("DH", 208.0)
        assert fast >= 2.0                     # fast window: burning hot
        assert slow < 1.0                      # slow window: still diluted
        assert not t.shed_active("DH", 208.0)  # AND rule holds it back
        # Sustained misses push the slow window over too.
        for i in range(40):
            t.observe("DH", 209.0 + i, e2e=10.0)
        assert t.shed_active("DH", 249.0)

    def test_recovery_unlatches_shed(self):
        t = make_tracker(fast_window=10.0, slow_window=10.0,
                         fast_burn=1.0, slow_burn=1.0)
        for i in range(10):
            t.observe("DH", float(i), e2e=10.0)
        assert t.shed_active("DH", 9.0)
        # No new observations: the windows drain and shedding stops.
        assert not t.shed_active("DH", 60.0)

    def test_degrade_active_uses_fast_window_only(self):
        t = make_tracker(objective=0.9)        # degrade_burn = 3.0
        for i in range(4):
            t.observe("DH", float(i), e2e=10.0)
        assert t.degrade_active(4.0)           # fast burn = 10 >= 3
        assert not t.degrade_active(400.0)     # drained


class TestReport:
    def test_lifetime_attainment(self):
        t = make_tracker(objective=0.9)
        for i in range(9):
            t.observe("DH", float(i), e2e=0.1)
        t.observe("DH", 9.0, e2e=10.0)
        rep = t.report(10.0)["DH"]
        assert rep["observed"] == 10
        assert rep["good"] == 9 and rep["bad"] == 1
        assert rep["attainment"] == pytest.approx(0.9)
        assert rep["met"] is True

    def test_empty_report_is_met(self):
        rep = make_tracker().report(0.0)["DH"]
        assert rep["observed"] == 0
        assert rep["attainment"] == 1.0
        assert rep["met"] is True
