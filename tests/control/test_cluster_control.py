"""The control plane on the cluster dispatch path, end to end."""

import pytest

from repro.control.config import ControlConfig, SLOTarget, TimeoutConfig
from repro.mem.layout import GB
from repro.mem.pools import CXLPool
from repro.serverless.cluster import make_trenv_cluster
from repro.workloads.functions import function_by_name
from repro.workloads.synthetic import make_scaleout_uniform


def make_workload(seed=3, rate=30.0, duration=8.0,
                  functions=("CH", "CR", "IP")):
    suite = [function_by_name(n) for n in functions]
    return make_scaleout_uniform(seed=seed, functions=suite,
                                 duration=duration, rate=rate)


def run_cluster(control, seed=3, n_nodes=2, cores=2, **wl_kwargs):
    cluster = make_trenv_cluster(n_nodes, CXLPool(64 * GB), seed=seed,
                                 cores=cores, control=control)
    return cluster.run_workload(make_workload(seed=seed, **wl_kwargs))


def overload_config(**kwargs):
    defaults = dict(
        default_concurrency=2,
        queue_capacity=4,
        shed_policy="deadline",
        timeouts=TimeoutConfig(per_attempt=2.0, per_invocation=3.0),
        slos={fn: SLOTarget(threshold=3.0, objective=0.9)
              for fn in ("CH", "CR", "IP")},
    )
    defaults.update(kwargs)
    return ControlConfig(**defaults)


class TestArmedButPermissive:
    def test_no_limits_matches_uncontrolled_bit_for_bit(self):
        # An armed plane with every knob open must not perturb the
        # simulated run: same completions, same latencies, same
        # dispatch spread as the pre-control path.
        baseline = run_cluster(None, rate=10.0)
        permissive = run_cluster(ControlConfig(node_breaker=None,
                                               pool_breaker=None),
                                 rate=10.0)
        assert permissive.control is not None
        assert baseline.control is None
        assert permissive.dispatch_counts == baseline.dispatch_counts
        assert permissive.failed == [] and baseline.failed == []
        assert (permissive.recorder.e2e_percentile(99)
                == baseline.recorder.e2e_percentile(99))
        assert (sorted(r.e2e for r in permissive.recorder.results)
                == sorted(r.e2e for r in baseline.recorder.results))

    def test_closed_breakers_do_not_perturb_dispatch(self):
        baseline = run_cluster(None, rate=10.0)
        armed = run_cluster(ControlConfig(), rate=10.0)   # breakers on
        assert armed.dispatch_counts == baseline.dispatch_counts
        assert (armed.recorder.e2e_percentile(99)
                == baseline.recorder.e2e_percentile(99))


class TestOverloadBehaviour:
    def test_sheds_and_aborts_are_accounted(self):
        result = run_cluster(overload_config(), rate=60.0)
        n = len(result.recorder.results) + len(result.failed)
        assert n == make_workload(rate=60.0).n_invocations
        assert len(result.failed) > 0
        # Every failure is categorised, never silent.
        for _fn, _arrival, reason in result.failed:
            kind, _, cause = reason.partition(":")
            assert kind in ("shed", "abort")
            assert cause in ("burn", "queue-full", "evicted", "expired",
                             "deadline", "retry-budget",
                             "dispatch-budget")
        summary = result.control
        sheds = sum(summary["admission"]["shed"].values())
        aborts = sum(summary["aborts"].values())
        assert sheds + aborts == len(result.failed)
        assert summary["completions"] == len(result.recorder.results)

    def test_deadline_bounds_completed_tail(self):
        result = run_cluster(overload_config(), rate=60.0)
        deadline = 3.0
        # Completed invocations all made their per-invocation deadline
        # (plus the final attempt's grace: none here, since aborts fire
        # exactly at the deadline event).
        assert result.recorder.e2e_percentile(100) <= deadline + 1e-9

    def test_deterministic_under_overload(self):
        a = run_cluster(overload_config(), rate=60.0)
        b = run_cluster(overload_config(), rate=60.0)
        assert a.failed == b.failed
        assert a.dispatch_counts == b.dispatch_counts
        assert a.control == b.control
        assert ([r.e2e for r in a.recorder.results]
                == [r.e2e for r in b.recorder.results])

    def test_slo_report_in_summary(self):
        result = run_cluster(overload_config(), rate=60.0)
        slo = result.control["slo"]
        assert set(slo) == {"CH", "CR", "IP"}
        for rep in slo.values():
            assert 0.0 <= rep["attainment"] <= 1.0
            assert rep["observed"] == rep["good"] + rep["bad"]


class TestConfigMistakes:
    def test_inverted_hierarchy_rejected_before_running(self):
        with pytest.raises(ValueError, match="hierarchy"):
            overload_config(
                timeouts=TimeoutConfig(per_attempt=5.0,
                                       per_invocation=3.0))
