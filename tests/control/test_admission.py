"""Admission control: caps, queueing, all four shed policies."""

import pytest

from repro.control.admission import GO, AdmissionController
from repro.control.config import ControlConfig, SLOTarget
from repro.control.slo import SLOTracker
from repro.sim.engine import Simulator


def make_admission(**cfg_kwargs):
    defaults = dict(default_concurrency=1, queue_capacity=2)
    defaults.update(cfg_kwargs)
    cfg = ControlConfig(**defaults)
    sim = Simulator()
    return AdmissionController(sim, cfg, SLOTracker(cfg))


class TestConcurrencyGate:
    def test_unlimited_always_admits(self):
        adm = make_admission(default_concurrency=None)
        for i in range(100):
            assert adm.request("DH", float(i), float(i), None)[0] == "admit"
        adm.release("DH", 100.0)           # no-op, never underflows
        assert adm.admitted == 100

    def test_admits_up_to_limit_then_queues(self):
        adm = make_admission(default_concurrency=2)
        assert adm.request("DH", 0.0, 0.0, None)[0] == "admit"
        assert adm.request("DH", 0.1, 0.1, None)[0] == "admit"
        status, entry = adm.request("DH", 0.2, 0.2, None)
        assert status == "wait"
        assert adm.queue_depth("DH") == 1

    def test_limits_are_per_function(self):
        adm = make_admission(default_concurrency=1)
        assert adm.request("DH", 0.0, 0.0, None)[0] == "admit"
        assert adm.request("IR", 0.0, 0.0, None)[0] == "admit"
        assert adm.request("DH", 0.1, 0.1, None)[0] == "wait"

    def test_release_hands_slot_to_head(self):
        adm = make_admission(default_concurrency=1)
        adm.request("DH", 0.0, 0.0, None)
        _, first = adm.request("DH", 0.1, 0.1, None)
        _, second = adm.request("DH", 0.2, 0.2, None)
        adm.release("DH", 1.0)
        assert first.gate.triggered and first.gate.value == GO
        assert not second.gate.triggered   # strictly FIFO hand-off
        adm.release("DH", 2.0)
        assert second.gate.value == GO

    def test_release_with_empty_queue_frees_slot(self):
        adm = make_admission(default_concurrency=1)
        adm.request("DH", 0.0, 0.0, None)
        adm.release("DH", 1.0)
        assert adm.request("DH", 2.0, 2.0, None)[0] == "admit"

    def test_expired_entries_shed_at_handoff(self):
        adm = make_admission(default_concurrency=1)
        adm.request("DH", 0.0, 0.0, None)
        _, expired = adm.request("DH", 0.1, 0.1, deadline=0.5)
        _, alive = adm.request("DH", 0.2, 0.2, deadline=100.0)
        adm.release("DH", 1.0)             # past expired's deadline
        assert expired.gate.value == "shed:expired"
        assert alive.gate.value == GO
        assert adm.shed_counts == {"expired": 1}


class TestShedPolicies:
    def fill(self, adm, deadlines=(10.0, 20.0), priorities=None):
        adm.request("DH", 0.0, 0.0, None)  # takes the one slot
        entries = []
        for i, deadline in enumerate(deadlines):
            _, e = adm.request("DH", 1.0 + i, 1.0 + i, deadline)
            entries.append(e)
        return entries

    def test_drop_newest_rejects_arrival(self):
        adm = make_admission(shed_policy="drop-newest")
        queued = self.fill(adm)
        status, reason = adm.request("DH", 5.0, 5.0, None)
        assert (status, reason) == ("shed", "queue-full")
        assert not any(e.gate.triggered for e in queued)

    def test_drop_oldest_evicts_head(self):
        adm = make_admission(shed_policy="drop-oldest")
        queued = self.fill(adm)
        status, entry = adm.request("DH", 5.0, 5.0, None)
        assert status == "wait"            # newcomer got the vacated spot
        assert queued[0].gate.value == "shed:evicted"
        assert not queued[1].gate.triggered

    def test_drop_oldest_with_no_queue_sheds_newcomer(self):
        # Regression: queue_capacity=0 is legal (no queue at all); the
        # newcomer is then the only eviction candidate, not queue[0] of
        # an empty list (which raised IndexError).
        adm = make_admission(shed_policy="drop-oldest", queue_capacity=0)
        adm.request("DH", 0.0, 0.0, None)  # takes the one slot
        status, reason = adm.request("DH", 1.0, 1.0, None)
        assert (status, reason) == ("shed", "queue-full")
        assert adm.queue_depth("DH") == 0

    @pytest.mark.parametrize("policy", ["drop-newest", "deadline",
                                        "priority"])
    def test_zero_capacity_sheds_over_limit_for_every_policy(self, policy):
        adm = make_admission(shed_policy=policy, queue_capacity=0)
        adm.request("DH", 0.0, 0.0, None)
        status, reason = adm.request("DH", 1.0, 1.0, 5.0)
        assert (status, reason) == ("shed", "queue-full")

    def test_deadline_evicts_least_slack(self):
        adm = make_admission(shed_policy="deadline")
        queued = self.fill(adm, deadlines=(10.0, 20.0))
        # Newcomer has more slack than both: the tightest queued entry
        # (deadline 10) is the wasted-work candidate.
        status, _ = adm.request("DH", 5.0, 5.0, deadline=30.0)
        assert status == "wait"
        assert queued[0].gate.value == "shed:evicted"

    def test_deadline_sheds_newcomer_when_tightest(self):
        adm = make_admission(shed_policy="deadline")
        self.fill(adm, deadlines=(10.0, 20.0))
        status, reason = adm.request("DH", 5.0, 5.0, deadline=6.0)
        assert (status, reason) == ("shed", "queue-full")

    def test_deadline_less_entries_preferred_survivors(self):
        adm = make_admission(shed_policy="deadline")
        queued = self.fill(adm, deadlines=(None, None))
        # Deadline-less entries are never wasted work, so any entry
        # with a deadline — here the newcomer — loses to them.
        status, reason = adm.request("DH", 5.0, 5.0, deadline=60.0)
        assert (status, reason) == ("shed", "queue-full")
        assert not any(e.gate.triggered for e in queued)
        # Among only deadline-less candidates, the newest loses.
        status, reason = adm.request("DH", 6.0, 6.0, deadline=None)
        assert (status, reason) == ("shed", "queue-full")

    def test_priority_evicts_least_important(self):
        # The policy function itself, over a mixed-priority candidate
        # set (priorities are per-function config; exercised directly).
        from repro.control.admission import PendingEntry
        adm = make_admission(shed_policy="priority")
        sim = Simulator()
        imp = PendingEntry("DH", 0.0, None, priority=1, seq=0,
                           gate=sim.event())
        bg = PendingEntry("BG", 1.0, None, priority=100, seq=1,
                          gate=sim.event())
        newcomer = PendingEntry("DH", 2.0, None, priority=1, seq=2,
                                gate=sim.event())
        assert adm._pick_victim([imp, bg], newcomer) is bg

    def test_priority_ties_drop_newest(self):
        adm = make_admission(shed_policy="priority")
        queued = self.fill(adm)
        status, reason = adm.request("DH", 5.0, 5.0, None)
        # Same priority everywhere: the newcomer (highest seq) loses.
        assert (status, reason) == ("shed", "queue-full")
        assert not any(e.gate.triggered for e in queued)


class TestCancel:
    def test_cancel_removes_queued_entry(self):
        adm = make_admission()
        adm.request("DH", 0.0, 0.0, None)
        _, e1 = adm.request("DH", 1.0, 1.0, None)
        _, e2 = adm.request("DH", 2.0, 2.0, None)
        adm.cancel(e1)
        adm.release("DH", 3.0)
        assert not e1.gate.triggered       # gone, not granted
        assert e2.gate.value == GO

    def test_cancel_after_go_releases_onward(self):
        adm = make_admission()
        adm.request("DH", 0.0, 0.0, None)
        _, e1 = adm.request("DH", 1.0, 1.0, None)
        _, e2 = adm.request("DH", 2.0, 2.0, None)
        adm.release("DH", 3.0)             # e1 holds the slot now
        adm.cancel(e1)                     # interrupted in the same tick
        assert e2.gate.value == GO         # slot flowed onward


class TestBurnShed:
    def test_burning_slo_sheds_at_the_door(self):
        cfg = ControlConfig(
            default_concurrency=8,
            slos={"DH": SLOTarget(threshold=0.5, objective=0.9,
                                  fast_window=10.0, slow_window=10.0,
                                  fast_burn=1.0, slow_burn=1.0)})
        sim = Simulator()
        slo = SLOTracker(cfg)
        adm = AdmissionController(sim, cfg, slo)
        for i in range(10):
            slo.observe("DH", float(i), e2e=10.0)
        status, reason = adm.request("DH", 9.0, 9.0, None)
        assert (status, reason) == ("shed", "burn")
        assert adm.shed_counts == {"burn": 1}
        # Other functions are unaffected.
        assert adm.request("IR", 9.0, 9.0, None)[0] == "admit"


def test_summary_shape():
    adm = make_admission()
    adm.request("DH", 0.0, 0.0, None)
    adm.request("DH", 1.0, 1.0, None)
    s = adm.summary()
    assert s["admitted"] == 1
    assert s["queued"] == 1
    assert s["shed"] == {}
    assert s["shed_total"] == 0
