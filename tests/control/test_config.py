"""Validation of the control-plane configuration surface."""

import pytest

from repro.control.config import (SHED_POLICIES, BreakerConfig,
                                  ControlConfig, RetryBudgetConfig,
                                  SLOTarget, TimeoutConfig,
                                  overload_defaults)


class TestSLOTarget:
    def test_defaults(self):
        slo = SLOTarget(threshold=1.0)
        assert slo.objective == 0.99
        assert slo.error_budget == pytest.approx(0.01)

    @pytest.mark.parametrize("kwargs", [
        dict(threshold=0.0),
        dict(threshold=-1.0),
        dict(threshold=1.0, objective=0.0),
        dict(threshold=1.0, objective=1.0),
        dict(threshold=1.0, fast_window=0.0),
        dict(threshold=1.0, fast_window=60.0, slow_window=30.0),
        dict(threshold=1.0, fast_burn=0.0),
        dict(threshold=1.0, slow_burn=-2.0),
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SLOTarget(**kwargs)


class TestBreakerConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(window=0.0),
        dict(min_samples=0),
        dict(failure_threshold=0.0),
        dict(failure_threshold=1.5),
        dict(latency_threshold=0.0),
        dict(open_duration=0.0),
        dict(half_open_probes=0),
        dict(close_after=0),
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)


class TestRetryBudgetConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RetryBudgetConfig(capacity=0.0)
        with pytest.raises(ValueError):
            RetryBudgetConfig(earn_per_invocation=-0.1)


class TestTimeoutHierarchy:
    def test_attempt_must_not_exceed_invocation(self):
        with pytest.raises(ValueError, match="hierarchy"):
            TimeoutConfig(per_attempt=5.0, per_invocation=2.0)
        # Equal is allowed (one attempt gets the whole deadline).
        TimeoutConfig(per_attempt=2.0, per_invocation=2.0)

    def test_either_side_optional(self):
        TimeoutConfig(per_attempt=1.0)
        TimeoutConfig(per_invocation=1.0)
        TimeoutConfig()

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TimeoutConfig(per_attempt=0.0)
        with pytest.raises(ValueError):
            TimeoutConfig(per_invocation=-1.0)

    def test_slo_sits_above_invocation_timeout(self):
        timeouts = TimeoutConfig(per_attempt=1.0, per_invocation=4.0)
        with pytest.raises(ValueError, match="hierarchy"):
            ControlConfig(timeouts=timeouts,
                          slos={"DH": SLOTarget(threshold=2.0)})
        ControlConfig(timeouts=timeouts,
                      slos={"DH": SLOTarget(threshold=4.0)})


class TestControlConfig:
    def test_rejects_unknown_shed_policy(self):
        with pytest.raises(ValueError, match="shed policy"):
            ControlConfig(shed_policy="coin-flip")

    def test_known_policies_accepted(self):
        for policy in SHED_POLICIES:
            ControlConfig(shed_policy=policy)

    def test_rejects_bad_concurrency(self):
        with pytest.raises(ValueError):
            ControlConfig(default_concurrency=0)
        with pytest.raises(ValueError):
            ControlConfig(concurrency_limits={"DH": 0})

    def test_concurrency_lookup(self):
        cfg = ControlConfig(default_concurrency=8,
                            concurrency_limits={"IR": 2})
        assert cfg.concurrency_for("IR") == 2
        assert cfg.concurrency_for("DH") == 8
        assert ControlConfig().concurrency_for("DH") is None

    def test_priority_lookup(self):
        cfg = ControlConfig(priorities={"IR": 1})
        assert cfg.priority_for("IR") == 1
        assert cfg.priority_for("DH") == cfg.default_priority

    def test_overload_defaults_preset(self):
        cfg = overload_defaults(("DH", "IR"), concurrency=16,
                                slo_threshold=2.0)
        assert cfg.default_concurrency == 16
        assert cfg.queue_capacity == 64
        assert set(cfg.slos) == {"DH", "IR"}
        assert cfg.timeouts.per_invocation == 2.0
        cfg.validate_hierarchy()
