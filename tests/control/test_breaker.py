"""Circuit-breaker state machine on the virtual clock."""

from repro.control.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.control.config import BreakerConfig


def make_breaker(**kwargs):
    defaults = dict(window=10.0, min_samples=4, failure_threshold=0.5,
                    open_duration=5.0, half_open_probes=2, close_after=2)
    defaults.update(kwargs)
    return CircuitBreaker("test", BreakerConfig(**defaults))


def trip(breaker, at=0.0, n=4):
    for i in range(n):
        breaker.record(at + 0.1 * i, ok=False)


class TestClosedState:
    def test_allows_and_stays_closed_on_success(self):
        b = make_breaker()
        for i in range(20):
            assert b.allow(float(i))
            b.record(float(i), ok=True)
        assert b.state == CLOSED
        assert b.transitions == 0

    def test_needs_min_samples_before_opening(self):
        b = make_breaker(min_samples=4)
        for i in range(3):
            b.record(float(i), ok=False)
        assert b.state == CLOSED          # 3 failures, below min_samples
        b.record(3.0, ok=False)
        assert b.state == OPEN

    def test_failure_fraction_threshold(self):
        b = make_breaker(min_samples=4, failure_threshold=0.5)
        # 2 failures out of 4 = exactly 0.5: opens (>= threshold).
        b.record(0.0, ok=True)
        b.record(0.1, ok=True)
        b.record(0.2, ok=False)
        b.record(0.3, ok=False)
        assert b.state == OPEN

    def test_window_prunes_old_failures(self):
        b = make_breaker(window=10.0, min_samples=4)
        b.record(0.0, ok=False)
        b.record(0.1, ok=False)
        # Much later: the early failures have left the window, so these
        # two successes + one failure never reach the threshold.
        b.record(20.0, ok=True)
        b.record(20.1, ok=True)
        b.record(20.2, ok=True)
        b.record(20.3, ok=False)
        assert b.state == CLOSED

    def test_latency_threshold(self):
        b = make_breaker(min_samples=4, failure_threshold=1.0,
                         latency_threshold=1.0)
        for i in range(4):
            b.record(0.1 * i, ok=True, latency=2.0)
        assert b.state == OPEN            # all successes, but slow


class TestOpenAndHalfOpen:
    def test_open_refuses_until_cooloff(self):
        b = make_breaker(open_duration=5.0)
        trip(b)
        assert b.state == OPEN
        assert not b.allow(1.0)
        assert b.rejections == 1
        # Cool-off elapsed: half-opens and hands out a probe slot.
        assert b.allow(6.0)
        assert b.state == HALF_OPEN

    def test_probe_slots_bounded(self):
        b = make_breaker(open_duration=5.0, half_open_probes=2)
        trip(b)
        assert b.allow(6.0)
        assert b.allow(6.1)
        assert not b.allow(6.2)          # both probe slots claimed

    def test_probe_successes_close(self):
        b = make_breaker(close_after=2)
        trip(b)
        assert b.allow(6.0) and b.allow(6.1)
        b.record(6.5, ok=True)
        assert b.state == HALF_OPEN      # one success, need two
        b.record(6.6, ok=True)
        assert b.state == CLOSED
        # The window restarted: old failures don't linger.
        assert b.allow(7.0)
        b.record(7.0, ok=False)
        assert b.state == CLOSED

    def test_probe_failure_reopens(self):
        b = make_breaker(open_duration=5.0)
        trip(b)
        assert b.allow(6.0)
        b.record(6.5, ok=False)
        assert b.state == OPEN
        assert b.open_count == 2
        # The open clock restarted at the probe failure.
        assert not b.allow(10.0)
        assert b.allow(12.0)

    def test_straggler_while_open_ignored(self):
        b = make_breaker()
        trip(b)
        b.record(1.0, ok=True)           # completion from before the open
        assert b.state == OPEN

    def test_would_allow_never_claims_probe_slots(self):
        # Regression: previewing many candidates must not consume the
        # half-open probe budget, or unpicked candidates wedge the
        # breaker in half-open forever.
        b = make_breaker(open_duration=5.0, half_open_probes=2)
        trip(b)
        assert not b.would_allow(1.0)     # still cooling off
        assert b.state == OPEN            # preview didn't transition
        for _ in range(10):
            assert b.would_allow(6.0)     # repeated previews are free
        assert b.state == OPEN
        assert b.rejections == 0          # and don't count rejections
        assert b.allow(6.0)               # the real claim still works
        assert b.state == HALF_OPEN
        assert b.allow(6.1)
        assert not b.would_allow(6.2)     # both slots genuinely taken
        assert not b.allow(6.2)

    def test_release_probe_returns_unsettled_slot(self):
        b = make_breaker(open_duration=5.0, half_open_probes=1)
        trip(b)
        assert b.allow(6.0)               # the single probe slot
        assert not b.would_allow(6.1)
        b.release_probe()                 # abandoned without an outcome
        assert b.state == HALF_OPEN
        assert b.allow(6.2)               # slot is usable again
        b.record(6.5, ok=True)

    def test_release_probe_noop_outside_half_open(self):
        b = make_breaker()
        b.release_probe()
        assert b.state == CLOSED
        trip(b)
        b.release_probe()
        assert b.state == OPEN

    def test_summary_counts(self):
        b = make_breaker()
        trip(b)
        b.allow(1.0)
        s = b.summary()
        assert s["state"] == OPEN
        assert s["opens"] == 1
        assert s["rejections"] == 1
        assert s["transitions"] == 1
