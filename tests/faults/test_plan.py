import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(1.0, "meteor-strike", "rdma")

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="negative fault time"):
            FaultEvent(-1.0, FaultKind.POOL_OFFLINE, "rdma")

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(1.0, FaultKind.POOL_OFFLINE, "rdma", duration=0.0)

    def test_rejects_speedup_degrade(self):
        with pytest.raises(ValueError, match="degrade factor"):
            FaultEvent(1.0, FaultKind.POOL_DEGRADE, "rdma", factor=0.5)

    def test_timeout_burst_needs_count(self):
        with pytest.raises(ValueError, match="count"):
            FaultEvent(1.0, FaultKind.FETCH_TIMEOUT, "rdma")


class TestFaultPlanBuilding:
    def test_builders_chain_and_sort_by_time(self):
        plan = (FaultPlan()
                .pool_offline(5.0, "rdma", duration=1.0)
                .node_crash(2.0, "node0")
                .fetch_timeouts(9.0, "rdma", count=3))
        assert len(plan) == 3
        assert [e.time for e in plan] == [2.0, 5.0, 9.0]

    def test_link_flap_is_short_offline(self):
        plan = FaultPlan().link_flap(1.0, "rdma", duration=0.25)
        (event,) = plan.events
        assert event.kind == FaultKind.POOL_OFFLINE
        assert event.duration == 0.25

    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert len(plan) == 0
        assert plan.signature() == ()

    def test_signature_identifies_schedule(self):
        a = FaultPlan().pool_offline(1.0, "rdma").node_crash(2.0, "n0")
        b = FaultPlan().node_crash(2.0, "n0").pool_offline(1.0, "rdma")
        c = FaultPlan().pool_offline(1.5, "rdma").node_crash(2.0, "n0")
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()


class TestChaosGeneration:
    def test_same_seed_same_plan(self):
        kwargs = dict(duration=600.0, pools=("rdma",), nodes=("node0",))
        a = FaultPlan.chaos(7, **kwargs)
        b = FaultPlan.chaos(7, **kwargs)
        assert a.signature() == b.signature()

    def test_different_seed_different_plan(self):
        kwargs = dict(duration=600.0, pools=("rdma",), nodes=("node0",))
        a = FaultPlan.chaos(7, **kwargs)
        b = FaultPlan.chaos(8, **kwargs)
        assert a.signature() != b.signature()

    def test_events_fit_window_and_menu(self):
        plan = FaultPlan.chaos(3, duration=600.0, pools=("rdma",),
                               nodes=("node0",), mean_interval=30.0)
        assert len(plan) > 0
        for event in plan:
            assert 0.0 <= event.time < 600.0
            assert event.target in ("rdma", "node0")
            if event.kind == FaultKind.NODE_CRASH:
                assert event.target == "node0"

    def test_needs_targets(self):
        with pytest.raises(ValueError, match="at least one pool or node"):
            FaultPlan.chaos(1, duration=100.0)
