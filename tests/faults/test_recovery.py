"""Failure recovery: retries, degradation ladder, crash re-dispatch."""

import pytest

from repro.core.platform import TrEnvPlatform
from repro.criu.images import SnapshotImage
from repro.faults import (FaultInjector, FaultPlan, NodeCrashedError)
from repro.mem.layout import GB
from repro.mem.pools import CXLPool, DedupStore, NASPool, RDMAPool
from repro.node import Node
from repro.serverless.base import Instance, ServerlessPlatform
from repro.serverless.baselines import FaasdPlatform
from repro.serverless.cluster import make_trenv_cluster
from repro.sim.cpu import FairShareCPU
from repro.sim.engine import Delay, Interrupt, Simulator
from repro.workloads.functions import function_by_name
from repro.workloads.synthetic import make_w1_bursty


def small_workload(seed=0):
    return make_w1_bursty(seed=seed, duration=700.0, burst_size=4,
                          bursts_per_function=1)


def remote_bound_instance(node, platform, pool, function="DH"):
    """An instance whose memory is lazily bound to ``pool``."""
    profile = function_by_name(function)
    platform.functions[profile.name] = profile
    image = SnapshotImage.from_profile(profile)
    space = image.build_address_space("x")
    store = DedupStore(pool)
    for vma, content in zip(space.vmas,
                            [c for _v, c in image.vma_content_slices()]):
        space.bind_remote(vma, store.store_image(content), valid=False)
    return Instance(profile, space), profile


class TestRetries:
    def test_timeout_burst_retried_then_succeeds(self):
        node = Node(seed=21)
        pool = RDMAPool(64 * GB, node.latency)
        platform = TrEnvPlatform(node, pool)
        platform.register_function(function_by_name("DH"))
        pool.inject_timeouts(2)
        r = node.sim.run_process(platform.invoke("DH"))
        assert r.retries == 2
        assert not r.degraded
        assert platform.pool_fault_count == 2
        assert platform.stats()["fault_retries"] == 2

    def test_backoff_lets_a_flap_heal(self):
        """An outage shorter than the total backoff is ridden out."""
        node = Node(seed=22)
        pool = RDMAPool(64 * GB, node.latency)
        platform = ServerlessPlatform(node)
        platform.register_pool(pool)
        inst, profile = remote_bound_instance(node, platform, pool)
        pool.fail("short flap")
        # Recover before the retry budget runs out.
        node.sim.call_at(platform.retry_policy.backoff(0) / 2, pool.recover)

        def driver():
            retries, degraded = yield platform.execute(inst, profile, 0)
            return retries, degraded

        retries, degraded = node.sim.run_process(driver())
        assert retries >= 1
        assert not degraded


class TestDegradationLadder:
    def test_dead_pool_degrades_to_local_copy(self):
        node = Node(seed=23)
        pool = RDMAPool(8 * GB, node.latency)
        platform = ServerlessPlatform(node)
        platform.register_pool(pool)
        inst, profile = remote_bound_instance(node, platform, pool)
        pool.fail("rdma link down")

        def driver():
            retries, degraded = yield platform.execute(inst, profile, 0)
            return retries, degraded

        retries, degraded = node.sim.run_process(driver())
        assert degraded
        assert retries == platform.retry_policy.max_retries
        assert platform.degraded_invocations == 0  # counted by invoke()

    def test_dead_pool_prefers_nas_fallback(self):
        node = Node(seed=23)
        pool = RDMAPool(8 * GB, node.latency)
        nas = NASPool(8 * GB, node.latency)
        platform = ServerlessPlatform(node)
        platform.register_pool(pool)
        platform.set_fallback_pool(nas)
        inst, profile = remote_bound_instance(node, platform, pool)
        pool.fail("rdma link down")

        def driver():
            out = yield platform.execute(inst, profile, 0)
            return out

        _retries, degraded = node.sim.run_process(driver())
        assert degraded
        # NAS actually served the fallback fetches.
        assert nas.available

    def test_trenv_cold_start_survives_offline_pool(self):
        node = Node(seed=24)
        pool = RDMAPool(64 * GB, node.latency)
        platform = TrEnvPlatform(node, pool)
        platform.register_function(function_by_name("DH"))
        pool.fail("device offline")
        r = node.sim.run_process(platform.invoke("DH"))
        assert r.degraded
        assert platform.degraded_acquires >= 1
        assert platform.stats()["degraded_invocations"] == 1
        # Memory arrived fully resident via the copy path.
        assert r.startup > 0


class TestPlatformCrash:
    def test_crash_drops_warm_state_and_blocks_invokes(self):
        node = Node(seed=25)
        platform = FaasdPlatform(node)
        platform.register_function(function_by_name("DH"))
        node.sim.run_process(platform.invoke("DH"))
        assert len(platform.warm) == 1
        platform.crash()
        assert len(platform.warm) == 0
        assert platform.stats()["crashes"] == 1
        with pytest.raises(NodeCrashedError):
            node.sim.run_process(platform.invoke("DH"))
        platform.recover()
        r = node.sim.run_process(platform.invoke("DH"))
        assert r.start_kind == "cold"

    def test_trenv_crash_clears_sandbox_pool(self):
        node = Node(seed=26)
        platform = TrEnvPlatform(node, CXLPool(64 * GB, node.latency))
        platform.register_function(function_by_name("DH"))

        def driver():
            yield platform.invoke("DH")
            yield Delay(700.0)  # keep-alive expiry → cleanse into pool

        node.sim.run_process(driver())
        node.sim.run()
        assert len(platform.sandbox_pool) > 0
        platform.crash()
        assert len(platform.sandbox_pool) == 0


class TestClusterRecovery:
    def test_node_crash_redispatches_and_everything_completes(self):
        pool = CXLPool(128 * GB)
        cluster = make_trenv_cluster(2, pool)
        wl = small_workload()
        first_t = wl.events[0].time
        plan = FaultPlan().node_crash(first_t + 0.01, "node0",
                                      duration=50.0)
        FaultInjector.for_cluster(cluster, plan).arm()
        result = cluster.run_workload(wl)
        assert result.node_crashes == 1
        assert result.redispatches >= 1
        assert result.availability["completed"] == wl.n_invocations
        assert result.availability["failed"] == 0

    def test_whole_rack_down_records_failures_not_hangs(self):
        pool = CXLPool(128 * GB)
        cluster = make_trenv_cluster(1, pool)
        wl = small_workload()
        plan = FaultPlan().node_crash(0.0, "node0")
        FaultInjector.for_cluster(cluster, plan).arm()
        result = cluster.run_workload(wl)
        assert result.availability["completed"] == 0
        assert result.availability["failed"] == wl.n_invocations
        assert len(result.failed) == wl.n_invocations
        assert result.availability["success_rate"] == 0.0

    def test_empty_plan_is_bit_identical_to_no_injector(self):
        result_a = make_trenv_cluster(2, CXLPool(128 * GB)).run_workload(
            small_workload())
        cluster_b = make_trenv_cluster(2, CXLPool(128 * GB))
        FaultInjector.for_cluster(cluster_b, FaultPlan()).arm()
        result_b = cluster_b.run_workload(small_workload())
        key = lambda rec: [(r.function, r.arrival, r.start_kind, r.e2e,
                            r.startup, r.queue) for r in rec.results]
        assert key(result_a.recorder) == key(result_b.recorder)
        assert result_b.availability["degraded"] == 0
        assert result_b.availability["retries_total"] == 0
        assert result_b.redispatches == 0


class TestInterruptSafety:
    def test_interrupting_a_sleeper_cancels_stale_wakeup(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield Delay(5.0)
                log.append("woke")
            except Interrupt:
                log.append("interrupted")
                yield Delay(1.0)
                log.append("resumed")

        waiter = sim.spawn(sleeper())
        sim.call_at(1.0, lambda: waiter.interrupt("crash"))
        sim.run()
        assert log == ["interrupted", "resumed"]
        assert sim.now == pytest.approx(2.0)

    def test_interrupted_compute_releases_cpu_share(self):
        sim = Simulator()
        cpu = FairShareCPU(sim, cores=1)

        def worker():
            try:
                yield from cpu.compute(10.0)
            except Interrupt:
                pass

        waiter = sim.spawn(worker())
        sim.call_at(1.0, lambda: waiter.interrupt("crash"))
        sim.run()
        assert cpu.load == 0
