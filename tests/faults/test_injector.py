import pytest

from repro.faults import (FaultInjector, FaultKind, FaultPlan,
                          PoolExhaustedError, PoolTimeoutError,
                          PoolUnavailableError)
from repro.mem.layout import MB, PAGE_SIZE
from repro.mem.pools import RDMAPool
from repro.sim.engine import Simulator


def make_injector(plan, pool=None):
    sim = Simulator()
    pool = pool or RDMAPool(64 * MB)
    return sim, pool, FaultInjector(sim, plan, pools={pool.name: pool})


class TestArming:
    def test_arm_twice_raises(self):
        sim, pool, injector = make_injector(FaultPlan())
        injector.arm()
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()

    def test_unknown_pool_target_raises_at_arm(self):
        sim, pool, injector = make_injector(
            FaultPlan().pool_offline(1.0, "nonexistent"))
        with pytest.raises(KeyError, match="unknown pool"):
            injector.arm()
        # A failed arm leaves the injector re-armable with nothing queued.
        assert not injector.armed
        sim.run()
        assert injector.timeline() == ()

    def test_empty_plan_schedules_nothing(self):
        sim, pool, injector = make_injector(FaultPlan())
        injector.arm()
        sim.run()
        assert sim.now == 0.0
        assert injector.timeline() == ()


class TestOfflineWindow:
    def test_pool_fails_then_recovers_on_the_virtual_clock(self):
        plan = FaultPlan().pool_offline(2.0, "rdma", duration=1.5)
        sim, pool, injector = make_injector(plan)
        injector.arm()
        assert pool.available
        sim.run(until=2.5)
        assert not pool.available
        with pytest.raises(PoolUnavailableError):
            pool.fetch_time(10)
        sim.run(until=4.0)
        assert pool.available
        assert pool.fetch_time(10) > 0
        assert injector.timeline() == (
            (2.0, FaultKind.POOL_OFFLINE, "rdma"),
            (3.5, FaultKind.POOL_OFFLINE + "-end", "rdma"),
        )

    def test_permanent_offline_without_duration(self):
        plan = FaultPlan().pool_offline(1.0, "rdma")
        sim, pool, injector = make_injector(plan)
        injector.arm()
        sim.run()
        assert not pool.available
        assert len(injector.timeline()) == 1


class TestOtherKinds:
    def test_timeout_burst_fails_exactly_n_fetches(self):
        plan = FaultPlan().fetch_timeouts(1.0, "rdma", count=2)
        sim, pool, injector = make_injector(plan)
        injector.arm()
        sim.run()
        for _ in range(2):
            with pytest.raises(PoolTimeoutError):
                pool.fetch_time(5)
        assert pool.fetch_time(5) > 0
        assert pool.timeouts_served == 2

    def test_degrade_window_multiplies_fetch_time(self):
        plan = FaultPlan().pool_degrade(1.0, "rdma", factor=4.0,
                                        duration=2.0)
        sim, pool, injector = make_injector(plan)
        baseline = pool.fetch_time(100)
        injector.arm()
        sim.run(until=1.5)
        assert pool.fetch_time(100) == pytest.approx(4.0 * baseline)
        sim.run(until=5.0)
        assert pool.fetch_time(100) == pytest.approx(baseline)

    def test_exhaust_window_blocks_allocations(self):
        plan = FaultPlan().pool_exhaust(1.0, "rdma", duration=1.0)
        sim, pool, injector = make_injector(plan)
        injector.arm()
        sim.run(until=1.5)
        with pytest.raises(PoolExhaustedError):
            pool.allocate_pages(1)
        # The typed error still satisfies legacy MemoryError handlers.
        with pytest.raises(MemoryError):
            pool.allocate_pages(1)
        sim.run(until=3.0)
        assert len(pool.allocate_pages(1)) == 1


class TestNodeCrashDispatch:
    def test_platform_crash_and_recover(self):
        class FakePlatform:
            def __init__(self):
                self.node = type("N", (), {"name": "node0"})()
                self.crashed = False

            def crash(self):
                self.crashed = True

            def recover(self):
                self.crashed = False

        sim = Simulator()
        platform = FakePlatform()
        plan = FaultPlan().node_crash(1.0, "node0", duration=2.0)
        injector = FaultInjector(sim, plan, platforms=[platform])
        injector.arm()
        sim.run(until=1.5)
        assert platform.crashed
        sim.run(until=4.0)
        assert not platform.crashed
        assert injector.timeline() == (
            (1.0, FaultKind.NODE_CRASH, "node0"),
            (3.0, FaultKind.NODE_CRASH + "-end", "node0"),
        )

    def test_unknown_node_raises_at_arm(self):
        sim = Simulator()
        injector = FaultInjector(sim, FaultPlan().node_crash(1.0, "ghost"))
        with pytest.raises(KeyError, match="unknown node"):
            injector.arm()
