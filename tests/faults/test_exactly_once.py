"""Exactly-once property: node crashes never duplicate or drop work.

Crash-aware re-dispatch interrupts in-flight invocations on a dying
node and re-runs them elsewhere.  The invariant: over any schedule of
recovering node crashes, every workload event completes *exactly once*
— the multiset of completed (function, arrival) pairs equals the
multiset of arrival events.  A lost wake-up would drop one; a stale
wake-up surviving the interrupt would double one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, FaultPlan
from repro.mem.layout import GB
from repro.mem.pools import CXLPool
from repro.serverless.cluster import make_trenv_cluster
from repro.workloads.synthetic import make_w1_bursty

N_NODES = 3

crash_events = st.lists(
    st.tuples(
        st.floats(5.0, 400.0),            # crash time
        st.integers(0, N_NODES - 1),      # victim node
        st.floats(20.0, 200.0),           # outage (always recovers)
    ),
    min_size=1, max_size=3,
)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 50), crashes=crash_events)
def test_crashes_never_duplicate_or_drop(seed, crashes):
    plan = FaultPlan()
    for time, node, outage in crashes:
        plan.node_crash(time, f"node{node}", duration=outage)

    cluster = make_trenv_cluster(N_NODES, CXLPool(64 * GB), seed=seed)
    FaultInjector.for_cluster(cluster, plan).arm()
    workload = make_w1_bursty(seed=seed, duration=500.0, burst_size=4,
                              bursts_per_function=1)
    result = cluster.run_workload(workload)

    # Nothing dropped (the uncontrolled cluster aborts nothing) and
    # nothing double-completed: exact multiset equality.
    assert result.failed == []
    completed = sorted((r.function, r.arrival)
                       for r in result.recorder.results)
    expected = sorted((e.function, e.time) for e in workload.events)
    assert completed == expected

    # Re-dispatches (if the crashes caught anything in flight) are
    # visible as extra dispatch attempts, never extra completions.
    total_dispatches = sum(result.dispatch_counts.values())
    assert total_dispatches == len(expected) + result.redispatches
