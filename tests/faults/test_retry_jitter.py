"""Seeded backoff jitter: de-synchronised retries, bit-identical runs.

The jitter draw must flow through the caller's SeededRNG substream —
never module-level RNG state — so two identical chaos runs produce
identical retry timelines.
"""

import pytest

from repro.core.platform import TrEnvPlatform
from repro.faults import FaultInjector, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.mem.layout import GB
from repro.mem.pools import NASPool, RDMAPool
from repro.node import Node
from repro.serverless.cluster import make_trenv_cluster
from repro.sim.rng import SeededRNG
from repro.workloads.functions import function_by_name
from repro.workloads.synthetic import make_w1_bursty


class TestBackoffJitter:
    def test_zero_jitter_makes_no_draw(self):
        policy = RetryPolicy(jitter=0.0)
        rng = SeededRNG(7, "retry")
        twin = SeededRNG(7, "retry")
        waits = [policy.backoff(a, rng) for a in range(3)]
        # The stream was never consulted: the twin is still in lockstep.
        assert rng.uniform(0.0, 1.0) == twin.uniform(0.0, 1.0)
        assert waits == [policy.backoff(a) for a in range(3)]

    def test_jitter_without_rng_raises(self):
        with pytest.raises(ValueError, match="seeded RNG"):
            RetryPolicy(jitter=0.5).backoff(0)

    def test_jitter_bounds_and_cap(self):
        policy = RetryPolicy(jitter=0.5, backoff_base=1e-3,
                             backoff_multiplier=4.0, backoff_cap=0.1)
        rng = SeededRNG(7, "retry")
        for attempt in range(6):
            base = min(0.1, 1e-3 * 4.0 ** attempt)
            wait = policy.backoff(attempt, rng)
            assert base <= wait + 1e-12
            assert wait <= min(0.1, base * 1.5) + 1e-12

    def test_identical_substreams_give_identical_waits(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff(i, SeededRNG(3, "node0/retry"))
             for i in range(4)]
        b = [policy.backoff(i, SeededRNG(3, "node0/retry"))
             for i in range(4)]
        assert a == b

    def test_forked_substreams_diverge(self):
        policy = RetryPolicy(jitter=0.5)
        a = RetryPolicy(jitter=0.5).backoff(2, SeededRNG(3, "node0/retry"))
        b = policy.backoff(2, SeededRNG(3, "node1/retry"))
        assert a != b

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)


def invoke_with_timeouts(seed):
    """One invocation that retries through two injected pool timeouts."""
    node = Node(seed=seed)
    pool = RDMAPool(64 * GB, node.latency)
    platform = TrEnvPlatform(node, pool)
    platform.retry_policy = RetryPolicy(jitter=0.5, max_retries=3)
    platform.register_function(function_by_name("DH"))
    pool.inject_timeouts(2)
    r = node.sim.run_process(platform.invoke("DH"))
    return r.retries, r.e2e


class TestChaosRunDeterminism:
    def test_single_invocation_timeline_identical(self):
        first = invoke_with_timeouts(seed=31)
        second = invoke_with_timeouts(seed=31)
        assert first[0] == 2               # the retries really happened
        assert first == second             # jitter included, bit-identical

    def test_cluster_chaos_run_identical_retry_timeline(self):
        def run():
            pool = RDMAPool(64 * GB)
            cluster = make_trenv_cluster(2, pool, seed=5,
                                         fallback_pool=NASPool(64 * GB))
            for platform in cluster.platforms:
                platform.retry_policy = RetryPolicy(jitter=0.5,
                                                    max_retries=2)
            # Transient fetch timeouts (not a hard outage): these raise
            # PoolFaults that the platforms retry with jittered backoff.
            plan = FaultPlan().fetch_timeouts(0.0, "rdma", 20)
            FaultInjector.for_cluster(cluster, plan).arm()
            workload = make_w1_bursty(seed=5, duration=700.0,
                                      burst_size=4,
                                      bursts_per_function=1)
            result = cluster.run_workload(workload)
            timeline = sorted((r.function, r.arrival, r.retries, r.e2e)
                              for r in result.recorder.results)
            faults = sum(p.pool_fault_count for p in cluster.platforms)
            return timeline, faults

        timeline_a, faults_a = run()
        timeline_b, faults_b = run()
        assert faults_a > 0                # the outage was felt
        assert any(retries > 0 for _f, _a, retries, _e in timeline_a)
        assert faults_a == faults_b
        assert timeline_a == timeline_b    # jittered waits replay exactly
