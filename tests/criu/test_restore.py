import pytest

from repro.criu.images import SnapshotImage
from repro.criu.restore import CRIUEngine
from repro.kernel.process import ProcessTable
from repro.mem.layout import MB
from repro.sim.engine import Simulator
from repro.workloads.functions import function_by_name


def make_engine():
    sim = Simulator()
    procs = ProcessTable(sim)
    return sim, CRIUEngine(sim, procs)


def restore(engine, sim, image):
    def proc():
        p = yield engine.restore_full(image)
        return p, sim.now

    return sim.run_process(proc())


def test_restore_materialises_all_pages():
    sim, engine = make_engine()
    image = SnapshotImage.from_profile(function_by_name("JS"))
    proc, _t = restore(engine, sim, image)
    assert proc.address_space.local_pages == image.total_pages
    assert proc.threads == image.n_threads
    assert len(proc.fds) == 3 + image.n_fds


def test_restore_time_scales_with_image_size():
    """Figure 4: memory copy dominates; 60 MB ~ 60 ms, 360 MB ~ 220 ms."""
    sim1, e1 = make_engine()
    _p, t_small = restore(e1, sim1, SnapshotImage.from_profile(
        function_by_name("DH")))    # 50 MB
    sim2, e2 = make_engine()
    _p, t_large = restore(e2, sim2, SnapshotImage.from_profile(
        function_by_name("IR")))    # 855 MB
    assert t_large > 5 * t_small
    # 855 MB at ~0.53 ms/MB ≈ 450 ms; allow process misc on top.
    assert 0.3 < t_large < 0.8


def test_small_image_restore_in_tens_of_ms():
    """§3.3: a ~60 MB image takes over 60 ms to restore."""
    sim, engine = make_engine()
    image = SnapshotImage.from_profile(function_by_name("DH"))  # 50 MB
    _p, t = restore(engine, sim, image)
    assert 0.03 < t < 0.12


def test_restore_stats_tracked():
    sim, engine = make_engine()
    image = SnapshotImage.from_profile(function_by_name("JS"))
    restore(engine, sim, image)
    assert engine.stats.full_restores == 1
    assert engine.stats.bytes_copied == image.nbytes
    assert engine.stats.mmap_calls == len(image.vmas)
    assert engine.stats.threads_restored == image.n_threads - 1


def test_checkpoint_timed_and_counted():
    sim, engine = make_engine()
    image = SnapshotImage.from_profile(function_by_name("JS"))

    def proc():
        class FakeProc:
            pass
        yield engine.checkpoint(FakeProc(), image)
        return sim.now

    t = sim.run_process(proc())
    assert t > 0.04  # dump cost is at least the memory walk
    assert engine.stats.snapshots == 1


def test_restore_charges_accountant():
    from repro.mem.accounting import MemoryAccountant
    sim, engine = make_engine()
    acct = MemoryAccountant()
    image = SnapshotImage.from_profile(function_by_name("DH"))

    def proc():
        p = yield engine.restore_full(image,
                                      on_local_delta=acct.page_delta_hook("anon"))
        return p

    p = sim.run_process(proc())
    assert acct.current_bytes == p.address_space.local_bytes
    assert acct.current_mb == pytest.approx(50.4, rel=0.01)


def test_threads_restoration_cost_visible_for_pr():
    """PR restores 395 threads; thread recovery must cost visibly more."""
    sim1, e1 = make_engine()
    _p, t_pr = restore(e1, sim1, SnapshotImage.from_profile(
        function_by_name("PR")))
    sim2, e2 = make_engine()
    _p, t_js = restore(e2, sim2, SnapshotImage.from_profile(
        function_by_name("JS")))
    # PR's image is only moderately bigger but has 28x the threads.
    pr_misc = 395 * 55e-6
    assert t_pr - t_js > pr_misc / 2
