import numpy as np
import pytest

from repro.criu.images import SnapshotImage, VMADescriptor
from repro.mem.address_space import PROT_READ, PROT_WRITE
from repro.mem.layout import MB
from repro.workloads.functions import FUNCTIONS, function_by_name


@pytest.mark.parametrize("profile", FUNCTIONS, ids=lambda p: p.name)
def test_from_profile_covers_exactly_image(profile):
    image = SnapshotImage.from_profile(profile)
    assert image.total_pages == profile.image_pages
    assert image.nbytes == pytest.approx(profile.mem_bytes, abs=4096)


def test_vma_count_tracks_profile():
    profile = function_by_name("IR")
    image = SnapshotImage.from_profile(profile)
    assert len(image.vmas) == pytest.approx(profile.n_vmas, rel=0.25)


def test_metadata_is_small():
    """§4: an mm-template's metadata is < 1 MB even for large images."""
    image = SnapshotImage.from_profile(function_by_name("IR"))
    assert image.metadata_bytes < 2 * MB
    small = SnapshotImage.from_profile(function_by_name("JS"))
    assert small.metadata_bytes < 0.5 * MB


def test_runtime_vmas_read_only():
    image = SnapshotImage.from_profile(function_by_name("JS"))
    for vma in image.vmas:
        if vma.name.startswith(("runtime", "lib")):
            assert not vma.writable
        if vma.name in ("heap",) or vma.name.startswith("stack"):
            assert vma.writable


def test_content_slices_partition_ids():
    image = SnapshotImage.from_profile(function_by_name("DH"))
    slices = image.vma_content_slices()
    rebuilt = np.concatenate([ids for _vma, ids in slices])
    assert np.array_equal(rebuilt, image.content_ids)


def test_content_mismatch_rejected():
    with pytest.raises(ValueError):
        SnapshotImage("x", [VMADescriptor("a", 4, PROT_READ)],
                      np.arange(3), n_threads=1, n_fds=0)


def test_build_address_space_layout():
    image = SnapshotImage.from_profile(function_by_name("CR"))
    space = image.build_address_space()
    assert space.total_pages == image.total_pages
    assert [v.name for v in space.vmas] == [v.name for v in image.vmas]
    # Content ids preserved for later dedup.
    assert np.array_equal(space.content_image(), image.content_ids)
    # Nothing resident yet.
    assert space.local_pages == 0


def test_heap_is_majority_of_private_pages():
    image = SnapshotImage.from_profile(function_by_name("VP"))
    heap = next(v for v in image.vmas if v.name == "heap")
    private = sum(v.npages for v in image.vmas if v.writable)
    assert heap.npages > 0.6 * private


def test_thread_and_fd_counts_carried():
    profile = function_by_name("PR")
    image = SnapshotImage.from_profile(profile)
    assert image.n_threads == 395
    assert image.n_fds == profile.n_fds
