"""Detailed behaviour of the lazy-restore VM baselines."""

import pytest

from repro.node import Node
from repro.serverless.baselines import (FaasnapPlatform, ReapPlatform,
                                        UffdTmpfsPool)
from repro.sim.engine import Delay
from repro.workloads.functions import function_by_name


def single_invocation(platform_cls, fn="CH", **kwargs):
    node = Node(cores=64, seed=37)
    platform = platform_cls(node, **kwargs)
    platform.register_function(function_by_name(fn))

    def driver():
        r = yield platform.invoke(fn)
        return r

    return node, platform, node.sim.run_process(driver())


class TestUffdTmpfsPool:
    def test_per_page_cost_includes_uffd_and_exit(self):
        pool = UffdTmpfsPool(1 << 30)
        per_page = pool.fetch_time(1)
        lat = pool.latency
        assert per_page > lat.mem.userfaultfd_fault
        assert per_page < 20e-6

    def test_not_byte_addressable(self):
        assert not UffdTmpfsPool(1 << 30).byte_addressable
        assert UffdTmpfsPool(1 << 30).read_overhead(1000) == 0.0


class TestPrefetchDistinction:
    def test_reap_blocks_on_full_ws_read(self):
        _n, _p, reap = single_invocation(ReapPlatform)
        _n, _p, snap = single_invocation(FaasnapPlatform)
        # FaaSnap overlaps most of the working-set read with execution.
        assert snap.startup < reap.startup
        profile = function_by_name("CH")
        ws_read = profile.touched_pages * 4096 * 0.53e-3 / (1 << 20)
        assert reap.startup - snap.startup > 0.4 * ws_read

    def test_both_materialise_working_set_memory(self):
        node_r, _p, _r = single_invocation(ReapPlatform)
        node_f, _p, _r = single_invocation(FaasnapPlatform)
        # Same memory footprint (modulo per-platform trace streams):
        # the difference is timing, not residency.
        assert (node_r.memory.usage["vm-guest-anon"]
                == pytest.approx(node_f.memory.usage["vm-guest-anon"],
                                 rel=0.05))
        assert node_r.memory.usage["vm-guest-anon"] > 0


class TestNetnsPoolVariants:
    def test_non_plus_pays_netns_every_time(self):
        node = Node(cores=64, seed=37)
        platform = ReapPlatform(node, netns_pool=False, keep_alive=1.0)
        platform.register_function(function_by_name("DH"))

        def driver():
            a = yield platform.invoke("DH")
            yield Delay(5.0)           # warm instance expires (1 s)
            b = yield platform.invoke("DH")
            return a, b

        a, b = node.sim.run_process(driver())
        # Without the pool, the second start pays netns again: the two
        # cold startups are comparable.
        assert b.startup > 0.7 * a.startup

    def test_plus_recycles_netns(self):
        node = Node(cores=64, seed=37)
        platform = ReapPlatform(node, netns_pool=True, keep_alive=1.0)
        platform.register_function(function_by_name("DH"))

        def driver():
            a = yield platform.invoke("DH")
            yield Delay(5.0)
            b = yield platform.invoke("DH")
            return a, b

        a, b = node.sim.run_process(driver())
        # The recycled netns saves ~80 ms on the second start.
        assert a.startup - b.startup > 0.05


class TestVMFileIO:
    def test_guest_cache_grows_with_invocations(self):
        node = Node(cores=64, seed=37)
        platform = ReapPlatform(node)
        platform.register_function(function_by_name("VP"))   # 130 MB IO

        def driver():
            yield platform.invoke("VP")

        node.sim.run_process(driver())
        profile = function_by_name("VP")
        # Guest cache holds the VM's file reads and writes.
        assert node.memory.usage["vm-guest-cache"] > 0.7 * profile.file_io_bytes

    def test_host_cache_duplicates_guest(self):
        node = Node(cores=64, seed=37)
        platform = ReapPlatform(node)
        platform.register_function(function_by_name("VP"))

        def driver():
            yield platform.invoke("VP")

        node.sim.run_process(driver())
        assert node.memory.usage["host-page-cache"] > 0
