import pytest

from repro.mem.layout import GB
from repro.mem.pools import CXLPool, DedupStore
from repro.node import Node
from repro.serverless.cluster import (Cluster, LeastLoaded, RoundRobin,
                                      WarmAffinity, make_trenv_cluster)
from repro.sim.engine import Simulator
from repro.workloads.functions import FUNCTIONS
from repro.workloads.synthetic import make_w1_bursty


def small_workload(seed=0):
    return make_w1_bursty(seed=seed, duration=700.0, burst_size=4,
                          bursts_per_function=1)


class TestConstruction:
    def test_requires_platforms(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_requires_shared_simulator(self):
        from repro.core.platform import TrEnvPlatform
        a = Node(seed=1)
        b = Node(seed=2)   # different sim
        pa = TrEnvPlatform(a, CXLPool(8 * GB, a.latency))
        pb = TrEnvPlatform(b, CXLPool(8 * GB, b.latency))
        with pytest.raises(ValueError):
            Cluster([pa, pb])

    def test_factory_builds_shared_rack(self):
        pool = CXLPool(128 * GB)
        cluster = make_trenv_cluster(3, pool)
        assert len(cluster.platforms) == 3
        assert all(p.pool is pool for p in cluster.platforms)
        assert len({id(p.store) for p in cluster.platforms}) == 1


class TestDispatch:
    def test_round_robin_spreads(self):
        pool = CXLPool(128 * GB)
        cluster = make_trenv_cluster(4, pool, policy=RoundRobin())
        result = cluster.run_workload(small_workload())
        assert len(result.dispatch_counts) == 4
        counts = list(result.dispatch_counts.values())
        assert max(counts) - min(counts) <= 1

    def test_warm_affinity_reuses_hosts(self):
        pool = CXLPool(128 * GB)
        cluster = make_trenv_cluster(4, pool, policy=WarmAffinity())
        result = cluster.run_workload(small_workload())
        # Warm hits dominate: repeat invocations land on warm hosts.
        kinds = result.recorder.start_kind_counts()
        assert kinds.get("warm", 0) > 0

    def test_least_loaded_picks_idle_host(self):
        pool = CXLPool(128 * GB)
        cluster = make_trenv_cluster(2, pool, policy=LeastLoaded())
        result = cluster.run_workload(small_workload())
        assert result.recorder.count() == small_workload().n_invocations


class TestRackSharing:
    def test_pool_stores_one_copy_for_all_hosts(self):
        pool = CXLPool(128 * GB)
        cluster = make_trenv_cluster(4, pool, policy=RoundRobin())
        cluster.run_workload(small_workload())
        total_images = sum(f.mem_bytes for f in FUNCTIONS)
        # Rack pool holds at most one deduplicated copy of the suite.
        assert pool.used_bytes < total_images

    def test_all_invocations_complete_and_merge(self):
        pool = CXLPool(128 * GB)
        wl = small_workload()
        cluster = make_trenv_cluster(2, pool)
        result = cluster.run_workload(wl)
        assert result.recorder.count() == wl.n_invocations
        assert result.total_peak_mb == pytest.approx(
            sum(result.per_node_peak_mb))
        assert result.pool_used_mb > 0

    def test_per_node_memory_far_below_image_total(self):
        pool = CXLPool(128 * GB)
        cluster = make_trenv_cluster(2, pool)
        result = cluster.run_workload(small_workload())
        total_images_mb = sum(f.mem_bytes for f in FUNCTIONS) / (1 << 20)
        for peak in result.per_node_peak_mb:
            assert peak < total_images_mb / 2
