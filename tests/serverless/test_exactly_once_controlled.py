"""Exactly-once accounting with the control plane armed.

With admission control, deadlines and a retry budget in the loop, an
invocation may legitimately *not* run — but then it must appear in the
failed list with a categorised reason.  The invariant: completed
results plus failed entries partition the workload's arrival multiset
exactly, under concurrent node crashes included.
"""

import pytest

from repro.control.config import ControlConfig, TimeoutConfig
from repro.faults import FaultInjector, FaultPlan
from repro.mem.layout import GB
from repro.mem.pools import CXLPool
from repro.serverless.cluster import make_trenv_cluster
from repro.workloads.synthetic import make_w1_bursty

SCENARIOS = {
    "single-crash": [(40.0, "node1", 60.0)],
    "double-crash": [(40.0, "node1", 60.0), (45.0, "node2", 80.0)],
    "overlapping-majority": [(30.0, "node0", 100.0),
                             (35.0, "node1", 100.0),
                             (40.0, "node2", 50.0)],
}


def run_controlled(crashes, seed=9):
    plan = FaultPlan()
    for time, node, outage in crashes:
        plan.node_crash(time, node, duration=outage)
    control = ControlConfig(
        default_concurrency=6,
        queue_capacity=8,
        shed_policy="deadline",
        timeouts=TimeoutConfig(per_attempt=3.0, per_invocation=6.0),
    )
    cluster = make_trenv_cluster(3, CXLPool(64 * GB), seed=seed,
                                 cores=4, control=control)
    FaultInjector.for_cluster(cluster, plan).arm()
    workload = make_w1_bursty(seed=seed, duration=300.0, burst_size=10,
                              bursts_per_function=1)
    return workload, cluster.run_workload(workload)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_completed_plus_failed_partition_the_workload(scenario):
    workload, result = run_controlled(SCENARIOS[scenario])
    completed = [(r.function, r.arrival) for r in result.recorder.results]
    failed = [(fn, arrival) for fn, arrival, _reason in result.failed]
    expected = sorted((e.function, e.time) for e in workload.events)
    # Exact multiset partition: nothing dropped, nothing duplicated,
    # nothing both completed and failed.
    assert sorted(completed + failed) == expected
    # Every failure carries a reason the operator can act on.
    assert all(reason.partition(":")[0] in ("shed", "abort")
               for _f, _a, reason in result.failed)


def test_crashed_attempts_are_not_double_counted():
    workload, result = run_controlled(SCENARIOS["double-crash"])
    # Dispatch attempts = completions + aborted-after-dispatch work +
    # crash/timeout re-dispatches; completions alone never exceed the
    # events, even with re-dispatch in play.
    assert len(result.recorder.results) <= workload.n_invocations
    counts = [(r.function, r.arrival) for r in result.recorder.results]
    assert len(counts) == len(set(counts))
