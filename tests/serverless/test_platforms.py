"""Behavioural tests for the evaluated platforms on a single node."""

import pytest

from repro.core.config import TrEnvConfig
from repro.core.platform import TrEnvPlatform
from repro.mem.layout import GB, MB
from repro.mem.pools import CXLPool, RDMAPool
from repro.node import Node
from repro.serverless.baselines import (CRIUPlatform, FaasdPlatform,
                                        FaasnapPlatform, ReapPlatform)
from repro.workloads.functions import function_by_name


def make_node():
    return Node(cores=64, seed=1)


def make_trenv(node=None, pool=None, config=None):
    node = node or make_node()
    pool = pool or CXLPool(64 * GB, node.latency)
    return TrEnvPlatform(node, pool, config=config)


def invoke_n(platform, fn, n=1, gap=0.0):
    """Invoke ``fn`` n times sequentially; returns results."""
    platform.register_function(function_by_name(fn))
    results = []

    def driver():
        from repro.sim.engine import Delay
        for _ in range(n):
            r = yield platform.invoke(fn)
            results.append(r)
            if gap:
                yield Delay(gap)

    platform.node.sim.run_process(driver())
    return results


class TestFaasd:
    def test_cold_then_warm(self):
        platform = FaasdPlatform(make_node())
        r1, r2 = invoke_n(platform, "JS", 2)
        assert r1.start_kind == "cold"
        assert r2.start_kind == "warm"
        assert r2.e2e < r1.e2e / 5

    def test_cold_includes_bootstrap(self):
        platform = FaasdPlatform(make_node())
        (r,) = invoke_n(platform, "IR", 1)
        # IR bootstraps in ~3 s; cold start must exceed that.
        assert r.startup > 3.0


class TestCRIU:
    def test_restore_faster_than_bootstrap(self):
        faasd = FaasdPlatform(make_node())
        (cold,) = invoke_n(faasd, "IR", 1)
        criu = CRIUPlatform(make_node())
        (restored,) = invoke_n(criu, "IR", 1)
        assert restored.start_kind == "restored"
        assert restored.startup < cold.startup / 2

    def test_criu_memory_is_full_copy(self):
        criu = CRIUPlatform(make_node())
        invoke_n(criu, "JS", 1)
        profile = function_by_name("JS")
        assert criu.node.memory.usage["function-anon"] == pytest.approx(
            profile.mem_bytes, abs=1 * MB)

    def test_cr_startup_around_paper_value(self):
        """§9.2.1: launching a CR instance takes ~1.7 s at P99 under load;
        uncontended it is hundreds of ms (memory copy + sandbox)."""
        criu = CRIUPlatform(make_node())
        (r,) = invoke_n(criu, "CR", 1)
        assert 0.15 < r.startup < 0.6


class TestLazyVM:
    def test_reap_restores_with_prefetch(self):
        reap = ReapPlatform(make_node())
        (r,) = invoke_n(reap, "CH", 1)
        assert r.start_kind == "restored"
        # Startup: cgroup + vmm + resume + blocking WS read.
        assert 0.05 < r.startup < 0.25

    def test_faasnap_startup_below_reap(self):
        reap = ReapPlatform(make_node())
        (r_reap,) = invoke_n(reap, "CH", 1)
        snap = FaasnapPlatform(make_node())
        (r_snap,) = invoke_n(snap, "CH", 1)
        assert r_snap.startup < r_reap.startup

    def test_netns_pool_recycled_after_retirement(self):
        node = make_node()
        reap = ReapPlatform(node, keep_alive=1.0)
        invoke_n(reap, "DH", 1)
        node.sim.run()   # let keep-alive expire and retire the VM
        assert reap._free_netns == 1

    def test_vm_memory_overheads_charged(self):
        node = make_node()
        reap = ReapPlatform(node)
        invoke_n(reap, "CH", 1)
        usage = node.memory.usage
        assert usage["vmm-overhead"] > 0
        assert usage["vm-guest-kernel"] > 0
        assert usage["vm-guest-anon"] > 0      # prefetched working set
        assert usage["vm-guest-cache"] > 0     # guest page cache (file IO)
        assert usage["host-page-cache"] > 0    # duplicated host cache

    def test_execution_pays_uncovered_faults(self):
        """Second invocation's jittered pages fault through userfaultfd."""
        node = make_node()
        reap = ReapPlatform(node)
        r1, r2 = invoke_n(reap, "PR", 2)
        profile = function_by_name("PR")
        # Warm reuse: startup ~0, but exec still above ideal because of
        # jitter faults.
        assert r2.start_kind == "warm"
        assert r2.exec >= profile.exec_cpu


class TestTrEnv:
    def test_first_invocation_cold_but_no_bootstrap(self):
        trenv = make_trenv()
        (r,) = invoke_n(trenv, "IR", 1)
        assert r.start_kind == "cold"
        # Even cold, no bootstrap and no memory copy: well under faasd.
        assert r.startup < 0.5

    def test_warm_hit_on_repeat(self):
        trenv = make_trenv()
        r1, r2 = invoke_n(trenv, "JS", 2)
        assert r2.start_kind == "warm"

    def test_repurposes_expired_instances(self):
        node = make_node()
        trenv = make_trenv(node)
        trenv.register_function(function_by_name("JS"))
        trenv.register_function(function_by_name("CR"))

        def driver():
            from repro.sim.engine import Delay
            r1 = yield trenv.invoke("JS")
            yield Delay(trenv.keep_alive * 1.2)   # let JS instance expire
            r2 = yield trenv.invoke("CR")
            return r1, r2

        r1, r2 = node.sim.run_process(driver())
        assert r1.start_kind == "cold"
        assert r2.start_kind == "repurposed"
        # §1: repurposed startup takes ~10 ms.
        assert r2.startup < 0.015

    def test_steals_idle_warm_instance_of_other_function(self):
        node = make_node()
        trenv = make_trenv(node)
        trenv.register_function(function_by_name("JS"))
        trenv.register_function(function_by_name("CR"))

        def driver():
            yield trenv.invoke("JS")     # leaves a warm JS instance
            r = yield trenv.invoke("CR")  # no pool, steal the JS instance
            return r

        r = node.sim.run_process(driver())
        assert r.start_kind == "repurposed"
        assert trenv.runtime.cold_creates == 1   # only the first

    def test_cxl_memory_usage_is_cow_only(self):
        node = make_node()
        trenv = make_trenv(node)
        invoke_n(trenv, "IR", 1)
        profile = function_by_name("IR")
        used = node.memory.usage["function-anon"]
        written = profile.touched_pages * profile.write_fraction * 4096
        assert used < 3 * written
        assert used < profile.mem_bytes / 50

    def test_rdma_backend_materialises_touched_pages(self):
        node = make_node()
        pool = RDMAPool(64 * GB, node.latency)
        trenv = make_trenv(node, pool)
        invoke_n(trenv, "IR", 1)
        profile = function_by_name("IR")
        used = node.memory.usage["function-anon"]
        touched = profile.touched_pages * 4096
        assert used == pytest.approx(touched, rel=0.1)

    def test_cxl_exec_beats_rdma_exec(self):
        """§9.5: T-CXL outperforms T-RDMA on execution."""
        (r_cxl,) = invoke_n(make_trenv(), "PR", 1)
        node = make_node()
        trenv_rdma = make_trenv(node, RDMAPool(64 * GB, node.latency))
        (r_rdma,) = invoke_n(trenv_rdma, "PR", 1)
        assert r_cxl.exec < r_rdma.exec

    def test_ablation_config_no_reconfig_behaves_like_criu(self):
        config = TrEnvConfig(reconfig=False, clone_into_cgroup=False,
                             mm_template=False)
        node = make_node()
        trenv = make_trenv(node, config=config)
        r1, r2 = invoke_n(trenv, "JS", 2, gap=700.0)  # past keep-alive
        assert r1.start_kind == "cold"
        assert r2.start_kind == "cold"
        # Full restore path: memory copy dominates.
        assert r2.startup > 0.1

    def test_stats_exposed(self):
        trenv = make_trenv()
        invoke_n(trenv, "JS", 3)
        stats = trenv.stats()
        assert stats["warm_hits"] == 2
        assert stats["cold_creates"] == 1
        assert stats["pool_used_mb"] > 0


class TestMemoryPressure:
    def test_soft_cap_evicts_warm_instances(self):
        node = Node(cores=64, seed=1,
                    soft_cap_bytes=int(1.2 * GB))
        faasd = FaasdPlatform(node)
        # IR is 855 MB resident under faasd; two warm IR instances would
        # exceed the cap, so the first must be evicted.
        faasd.register_function(function_by_name("IR"))
        faasd.register_function(function_by_name("VP"))

        def driver():
            yield faasd.invoke("IR")
            yield faasd.invoke("VP")

        node.sim.run_process(driver())
        node.sim.run()
        assert len(faasd.warm) < 2
