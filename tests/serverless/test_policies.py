import pytest

from repro.core.platform import TrEnvPlatform
from repro.mem.layout import GB
from repro.mem.pools import CXLPool
from repro.node import Node
from repro.serverless.baselines import FaasdPlatform
from repro.serverless.policies import (FixedKeepAlive, HistogramKeepAlive,
                                       NoKeepAlive,
                                       PressureAwareKeepAlive)
from repro.sim.engine import Delay
from repro.workloads.functions import function_by_name


class TestFixed:
    def test_constant_window(self):
        policy = FixedKeepAlive(300.0)
        assert policy.window("anything") == 300.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedKeepAlive(-1.0)


class TestNone:
    def test_zero_window(self):
        assert NoKeepAlive().window("x") == 0.0

    def test_platform_with_no_keepalive_always_colds(self):
        node = Node(seed=3)
        platform = FaasdPlatform(node)
        platform.keep_alive_policy = NoKeepAlive()
        platform.register_function(function_by_name("DH"))

        def driver():
            a = yield platform.invoke("DH")
            yield Delay(1.0)
            b = yield platform.invoke("DH")
            return a, b

        a, b = node.sim.run_process(driver())
        assert a.start_kind == "cold"
        assert b.start_kind == "cold"


class TestHistogram:
    def test_default_until_enough_samples(self):
        policy = HistogramKeepAlive(default=600.0, min_samples=4)
        policy.observe_arrival("f", 0.0)
        policy.observe_arrival("f", 10.0)
        assert policy.window("f") == 600.0

    def test_adapts_to_interarrival_tail(self):
        policy = HistogramKeepAlive(min_samples=4, min_window=1.0)
        t = 0.0
        for _ in range(20):
            policy.observe_arrival("f", t)
            t += 10.0
        # p95 of ~10s gaps * 1.1 margin ~= 11s.
        assert policy.window("f") == pytest.approx(11.0, rel=0.1)

    def test_bounds_applied(self):
        policy = HistogramKeepAlive(min_samples=2, min_window=60.0,
                                    max_window=120.0)
        t = 0.0
        for _ in range(10):
            policy.observe_arrival("fast", t)
            t += 0.5
        assert policy.window("fast") == 60.0
        t = 0.0
        for _ in range(10):
            policy.observe_arrival("slow", t)
            t += 10_000.0
        assert policy.window("slow") == 120.0

    def test_history_bounded(self):
        policy = HistogramKeepAlive(history_limit=16)
        for i in range(100):
            policy.observe_arrival("f", float(i))
        assert policy.samples("f") == 16

    def test_percentile_validated(self):
        with pytest.raises(ValueError):
            HistogramKeepAlive(percentile=0.0)

    def test_adaptive_policy_keeps_warm_for_periodic_function(self):
        """A function arriving every 50 s with a 60 s adaptive floor
        stays warm, while a 30 s fixed window would cold-start it."""
        def run(policy):
            node = Node(seed=4)
            pool = CXLPool(16 * GB, node.latency)
            platform = TrEnvPlatform(node, pool)
            platform.keep_alive_policy = policy
            platform.register_function(function_by_name("DH"))
            kinds = []

            def driver():
                for _ in range(8):
                    r = yield platform.invoke("DH")
                    kinds.append(r.start_kind)
                    yield Delay(50.0)

            node.sim.run_process(driver())
            return kinds

        adaptive = run(HistogramKeepAlive(min_samples=2, min_window=60.0))
        fixed_short = run(FixedKeepAlive(30.0))
        assert adaptive.count("warm") > fixed_short.count("warm")


class TestPressureAware:
    def test_passthrough_when_calm(self):
        policy = PressureAwareKeepAlive(FixedKeepAlive(600.0),
                                       under_pressure=lambda: False)
        assert policy.window("f") == 600.0

    def test_shrinks_under_pressure(self):
        pressured = [False]
        policy = PressureAwareKeepAlive(FixedKeepAlive(600.0),
                                       under_pressure=lambda: pressured[0],
                                       shrink=0.25)
        assert policy.window("f") == 600.0
        pressured[0] = True
        assert policy.window("f") == 150.0
        pressured[0] = False                  # recovery restores windows
        assert policy.window("f") == 600.0

    def test_arrivals_feed_the_inner_policy(self):
        inner = HistogramKeepAlive(min_samples=2)
        policy = PressureAwareKeepAlive(inner,
                                       under_pressure=lambda: False)
        for i in range(4):
            policy.observe_arrival("f", 50.0 * i)
        assert inner.samples("f") == 3

    def test_shrink_validated(self):
        with pytest.raises(ValueError):
            PressureAwareKeepAlive(FixedKeepAlive(600.0),
                                   under_pressure=lambda: False,
                                   shrink=1.5)

    def test_burn_driven_shrink_via_control_plane(self):
        # Wired the way a cluster would: the control plane's degrade
        # signal drives the shrink.
        from repro.control.config import ControlConfig, SLOTarget
        from repro.control.slo import SLOTracker
        cfg = ControlConfig(slos={"f": SLOTarget(threshold=0.5,
                                                 objective=0.9)},
                            degrade_burn=3.0)
        slo = SLOTracker(cfg)
        now = [0.0]
        policy = PressureAwareKeepAlive(
            FixedKeepAlive(600.0),
            under_pressure=lambda: slo.degrade_active(now[0]))
        assert policy.window("f") == 600.0
        for i in range(5):
            slo.observe("f", float(i), e2e=10.0)   # hard SLO misses
        now[0] = 5.0
        assert policy.window("f") == 150.0
