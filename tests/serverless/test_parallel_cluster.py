"""Golden bit-identity of the sharded cluster runner.

`run_cluster_parallel` must produce the same `ClusterResult`,
invocation records and metrics registry as the serial reference for
every worker count — including counts that do not divide the node
count — and ineligible configurations (state-reading policies, an
armed control plane, injected faults, the flag off) must take the
serial path with the reasons recorded.
"""

import json

import pytest

from repro import optflags
from repro.control.config import ControlConfig
from repro.control.plane import PARALLEL_UNSAFE_REASON
from repro.mem.layout import GB, MB
from repro.mem.pools import CXLPool
from repro.serverless.parallel import ScriptedPolicy, run_cluster_parallel
from repro.serverless.partition import (FAULTS_UNSAFE_REASON, ClusterSpec,
                                        PoolSpec, SerialFallback,
                                        node_groups_for, plan_shards)
from repro.workloads.synthetic import make_scaleout_uniform, make_w2_diurnal


def _w2(seed=1, duration=120.0):
    return make_w2_diurnal(seed=seed, duration=duration, mean_rate=1.6,
                           soft_cap_bytes=5 * GB)


def _scaleout(seed=7, duration=60.0, rate=30.0):
    return make_scaleout_uniform(seed=seed, duration=duration, rate=rate)


def _signature(outcome):
    """Everything a ClusterResult asserts bit-identity over."""
    r = outcome.result
    return (
        tuple((s.function, s.arrival, s.start_kind, s.startup, s.exec,
               s.e2e, s.queue) for s in r.recorder.results),
        tuple(r.per_node_peak_mb),
        r.total_peak_mb,
        r.pool_used_mb,
        tuple(sorted(r.dispatch_counts.items())),
        r.duration,
        tuple(sorted(r.availability.items())),
        tuple(r.failed),
    )


def _registry_json(outcome):
    return json.dumps(outcome.registry, sort_keys=True)


# ------------------------------------------------------------ bit-identity --

def test_w2_parallel_bit_identical_across_worker_counts():
    """Golden W2 rack: jobs 1/2/3 merge to one result and one registry."""
    workload = _w2()
    spec = ClusterSpec(n_nodes=3, seed=1)
    serial = run_cluster_parallel(spec, workload, jobs=1,
                                  obs_level="metrics")
    assert serial.report.mode == "fallback"
    assert "single shard" in serial.report.reasons[0]
    ref_sig = _signature(serial)
    ref_reg = _registry_json(serial)
    for jobs in (2, 3):
        par = run_cluster_parallel(spec, workload, jobs=jobs,
                                   obs_level="metrics")
        assert par.report.mode == "parallel"
        assert par.report.n_shards == jobs
        assert _signature(par) == ref_sig
        assert _registry_json(par) == ref_reg


def test_non_dividing_worker_count_is_bit_identical():
    """5 nodes over 2 and 4 workers: uneven contiguous blocks."""
    workload = _scaleout()
    spec = ClusterSpec(n_nodes=5, seed=7)
    serial = run_cluster_parallel(spec, workload, jobs=1,
                                  obs_level="metrics")
    ref_sig = _signature(serial)
    ref_reg = _registry_json(serial)
    for jobs in (2, 4):
        par = run_cluster_parallel(spec, workload, jobs=jobs,
                                   obs_level="metrics")
        assert par.report.mode == "parallel"
        assert _signature(par) == ref_sig
        assert _registry_json(par) == ref_reg


def test_parallel_report_structure():
    workload = _scaleout()
    spec = ClusterSpec(n_nodes=5, seed=7)
    par = run_cluster_parallel(spec, workload, jobs=2)
    report = par.report.to_dict()
    assert report["mode"] == "parallel"
    assert report["n_shards"] == 2
    assert report["n_windows"] > 0
    assert report["lookahead_s"] > 0
    assert len(report["shard_digests"]) == 2
    # Same plan in every shard, different shard ids: digests are equal
    # iff the shards crossed the same barriers (the window structure),
    # which they must.
    assert len(set(report["shard_digests"])) == 1


# --------------------------------------------------------------- fallbacks --

def test_optflag_off_takes_serial_path():
    workload = _scaleout()
    spec = ClusterSpec(n_nodes=5, seed=7)
    ref = run_cluster_parallel(spec, workload, jobs=1)
    with optflags.disabled("parallel_sim"):
        off = run_cluster_parallel(spec, workload, jobs=4)
    assert off.report.mode == "serial"
    assert off.report.reasons == ["optflags.parallel_sim disabled"]
    assert _signature(off) == _signature(ref)


def test_state_reading_policy_falls_back_bit_identically():
    workload = _w2(duration=60.0)
    spec = ClusterSpec(n_nodes=3, seed=1, policy="warm-affinity")
    par = run_cluster_parallel(spec, workload, jobs=3)
    assert par.report.mode == "fallback"
    assert any("warm-affinity" in r for r in par.report.reasons)
    ref = spec.build().run_workload(workload)
    assert par.result.dispatch_counts == ref.dispatch_counts
    assert [s.e2e for s in par.result.recorder.results] == \
        [s.e2e for s in ref.recorder.results]


def test_control_plane_armed_falls_back():
    workload = _scaleout(duration=30.0)
    spec = ClusterSpec(n_nodes=4, seed=2, control=ControlConfig())
    plan = plan_shards(spec, workload, 4)
    assert isinstance(plan, SerialFallback)
    assert PARALLEL_UNSAFE_REASON in plan.reasons
    par = run_cluster_parallel(spec, workload, jobs=4)
    assert par.report.mode == "fallback"
    assert PARALLEL_UNSAFE_REASON in par.report.reasons
    assert par.result.control is not None


def test_faults_armed_falls_back():
    workload = _scaleout(duration=30.0)
    spec = ClusterSpec(n_nodes=4, seed=2)
    plan = plan_shards(spec, workload, 4, faults_armed=True)
    assert isinstance(plan, SerialFallback)
    assert FAULTS_UNSAFE_REASON in plan.reasons


def test_empty_workload_falls_back():
    from repro.workloads.synthetic import Workload
    empty = Workload(name="empty", events=[], duration=10.0,
                     soft_cap_bytes=None)
    plan = plan_shards(ClusterSpec(n_nodes=4, seed=0), empty, 4)
    assert isinstance(plan, SerialFallback)
    assert any("empty workload" in r for r in plan.reasons)


# ------------------------------------------------------------- partitioning --

def test_node_groups_are_contiguous_and_cover():
    for n_nodes in (1, 3, 5, 10):
        for n_shards in range(1, n_nodes + 1):
            groups = node_groups_for(n_nodes, n_shards)
            assert groups[0][0] == 0
            assert groups[-1][1] == n_nodes
            for (a1, a2), (b1, b2) in zip(groups, groups[1:]):
                assert a2 == b1
                assert a1 < a2
    with pytest.raises(ValueError):
        node_groups_for(2, 3)
    with pytest.raises(ValueError):
        node_groups_for(2, 0)


def test_owned_events_partition_the_workload():
    workload = _scaleout()
    spec = ClusterSpec(n_nodes=5, seed=7)
    plan = plan_shards(spec, workload, 3)
    assert not isinstance(plan, SerialFallback)
    seen = []
    for shard in range(plan.n_shards):
        seen.extend(plan.owned_events(shard))
    assert sorted(seen) == list(range(len(workload.events)))
    # Round-robin static assignment: event i -> node i mod N.
    assert plan.assignment == tuple(i % 5
                                    for i in range(len(workload.events)))


def test_jobs_clamped_to_node_count():
    workload = _scaleout()
    spec = ClusterSpec(n_nodes=2, seed=7)
    par = run_cluster_parallel(spec, workload, jobs=16)
    assert par.report.n_shards == 2


def test_scripted_policy_rejects_unknown_node():
    policy = ScriptedPolicy(["nodeX"])

    class _FakeNode:
        name = "node0"

    class _FakePlatform:
        node = _FakeNode()

    with pytest.raises(RuntimeError):
        policy.pick([_FakePlatform()], "fn")


# ------------------------------------------------------ rack pool reporting --

def test_rack_pool_used_counts_shared_pool_once():
    pool = CXLPool(1 * GB)
    from repro.serverless.cluster import make_trenv_cluster
    cluster = make_trenv_cluster(3, pool, seed=0)
    pool.allocate_pages(256)          # 1 MB
    assert cluster.rack_pool_used_mb() == pool.used_bytes / (1 << 20)


def test_rack_pool_used_sums_distinct_pools():
    from repro.serverless.cluster import make_trenv_cluster
    pool_a = CXLPool(1 * GB)
    cluster = make_trenv_cluster(2, pool_a, seed=0)
    pool_b = CXLPool(1 * GB)
    cluster.platforms[1].pool = pool_b
    pool_a.allocate_pages(256)        # 1 MB
    pool_b.allocate_pages(512)        # 2 MB
    assert cluster.rack_pool_used_mb() == pytest.approx(3.0)
    assert MB == 1 << 20
