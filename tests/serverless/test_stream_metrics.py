"""Streaming metrics: LogHistogram and the O(bins) recorder paths.

The ``stream_metrics`` optflag folds every invocation into fixed-bin
log-scale histograms; below :data:`EXACT_SAMPLE_CAP` samples the
histogram retains the raw values and answers quantiles bit-exactly, so
every paper experiment (small-sample) is unaffected while trace-scale
runs get O(bins) memory and queries.
"""

import math

import numpy as np
import pytest

from repro import optflags
from repro.serverless.metrics import (BINS_PER_DECADE, EXACT_SAMPLE_CAP,
                                      InvocationResult, LatencyRecorder,
                                      LogHistogram)
from repro.sim.rng import SeededRNG


def _result(function="IR", arrival=10.0, e2e=0.5, startup=0.0,
            exec_=0.0, start_kind="warm"):
    # e2e must cover queue+startup+exec (InvocationResult invariant).
    e2e = max(e2e, startup + exec_)
    return InvocationResult(function=function, arrival=arrival,
                            start_kind=start_kind, startup=startup,
                            exec=exec_, e2e=e2e, queue=0.0)


# -- LogHistogram ---------------------------------------------------------------


def test_histogram_exact_below_cap():
    rng = SeededRNG(1, "hist")
    values = [rng.uniform(0.001, 50.0) for _ in range(500)]
    h = LogHistogram()
    for v in values:
        h.add(v)
    assert h.exact
    assert h.count == 500
    for p in (0, 25, 50, 90, 99, 100):
        assert h.quantile(p) == pytest.approx(
            float(np.percentile(values, p)), abs=0.0)
    assert h.mean() == pytest.approx(float(np.mean(values)))


def test_histogram_binned_above_cap_bounded_error():
    rng = SeededRNG(2, "hist")
    values = [rng.uniform(0.001, 50.0) for _ in range(EXACT_SAMPLE_CAP + 500)]
    h = LogHistogram()
    for v in values:
        h.add(v)
    assert not h.exact
    assert h.count == len(values)
    # A log-bin quantile is off by at most one bin width (a factor of
    # 10**(1/BINS_PER_DECADE)) from the true value.
    tol = 10.0 ** (1.5 / BINS_PER_DECADE)
    for p in (10, 50, 99):
        true = float(np.percentile(values, p))
        assert h.quantile(p) / true < tol
        assert true / h.quantile(p) < tol
    assert h.quantile(0) == pytest.approx(min(values))
    assert h.quantile(100) == pytest.approx(max(values))
    assert h.mean() == pytest.approx(float(np.mean(values)))


def test_histogram_empty_and_range_checks():
    h = LogHistogram()
    assert math.isnan(h.quantile(50))
    assert math.isnan(h.mean())
    with pytest.raises(ValueError):
        h.quantile(101)


def test_histogram_merge_preserves_exactness_under_cap():
    a, b = LogHistogram(), LogHistogram()
    for v in (0.1, 0.2, 0.3):
        a.add(v)
    for v in (0.4, 0.5):
        b.add(v)
    a.merge(b)
    assert a.exact and a.count == 5
    assert a.quantile(100) == pytest.approx(0.5)
    assert a.quantile(0) == pytest.approx(0.1)


def test_histogram_merge_overflows_to_binned():
    a, b = LogHistogram(exact_cap=4), LogHistogram(exact_cap=4)
    for v in (0.1, 0.2, 0.3):
        a.add(v)
    for v in (0.4, 0.5):
        b.add(v)
    a.merge(b)
    assert not a.exact
    assert a.count == 5
    assert a.mean() == pytest.approx(0.3)


def test_histogram_cdf_modes():
    h = LogHistogram(exact_cap=8)
    vals = [0.1 * (i + 1) for i in range(6)]
    for v in vals:
        h.add(v)
    xs, ps = h.cdf_points()
    assert list(xs) == pytest.approx(sorted(vals))
    assert ps[-1] == pytest.approx(1.0)
    for v in vals:
        h.add(v)  # now 12 > cap: binned
    xs, ps = h.cdf_points()
    assert not h.exact
    assert ps[-1] == pytest.approx(1.0)
    assert list(xs) == sorted(xs)


# -- LatencyRecorder streaming modes -------------------------------------------


def test_streaming_only_recorder_matches_exact_aggregates():
    rng = SeededRNG(3, "rec")
    results = [_result(function="IR" if i % 2 else "IFR",
                       arrival=float(i),
                       e2e=rng.uniform(1.4, 2.0),
                       startup=rng.uniform(0.0, 0.3),
                       exec_=rng.uniform(0.01, 1.0))
               for i in range(300)]
    exact = LatencyRecorder(keep_results=True)
    stream = LatencyRecorder(keep_results=False)
    for r in results:
        exact.record(r)
        stream.record(r)
    assert stream.streaming
    assert not stream.results  # nothing retained
    for fn in (None, "IR", "IFR"):
        for p in (50, 99):
            assert stream.e2e_percentile(p, fn) == pytest.approx(
                exact.e2e_percentile(p, fn))
        assert stream.mean_e2e(fn) == pytest.approx(exact.mean_e2e(fn))
    assert stream.count() == exact.count() == 300
    assert stream.start_kind_counts() == exact.start_kind_counts()
    assert stream.functions() == ["IFR", "IR"]


def test_streaming_only_recorder_forbids_measured():
    rec = LatencyRecorder(keep_results=False)
    rec.record(_result())
    with pytest.raises(RuntimeError):
        rec.measured()


def test_streaming_only_recorder_forbids_late_warmup():
    rec = LatencyRecorder(keep_results=False)
    rec.record(_result(arrival=5.0))
    with pytest.raises(RuntimeError):
        rec.warmup = 1.0


def test_streaming_warmup_filters_at_record_time():
    rec = LatencyRecorder(warmup=10.0, keep_results=False)
    rec.record(_result(arrival=5.0, e2e=100.0))   # inside warm-up
    rec.record(_result(arrival=15.0, e2e=0.5))
    assert rec.count() == 1
    assert rec.e2e_percentile(50) == pytest.approx(0.5)


def test_merge_from_streaming_shards():
    shards = []
    for s in range(3):
        rec = LatencyRecorder(keep_results=False)
        for i in range(50):
            rec.record(_result(arrival=float(i), e2e=0.1 * (s + 1)))
        shards.append(rec)
    merged = LatencyRecorder(keep_results=False)
    for shard in shards:
        merged.merge_from(shard)
    assert merged.count() == 150
    assert merged.mean_e2e() == pytest.approx((0.1 + 0.2 + 0.3) / 3)


def test_merge_from_streaming_requires_matching_warmup():
    src = LatencyRecorder(warmup=5.0, keep_results=False)
    src.record(_result(arrival=10.0))
    dst = LatencyRecorder(warmup=0.0, keep_results=False)
    with pytest.raises(RuntimeError):
        dst.merge_from(src)


def test_merge_streaming_into_exact_only_rejected():
    src = LatencyRecorder(keep_results=False)
    src.record(_result())
    with optflags.disabled("stream_metrics"):
        dst = LatencyRecorder(keep_results=True)
    assert not dst.streaming
    with pytest.raises(RuntimeError):
        dst.merge_from(src)


def test_stream_flag_does_not_change_retained_results():
    results = [_result(arrival=float(i), e2e=0.1 + 0.01 * i)
               for i in range(40)]
    on = LatencyRecorder()
    with optflags.disabled("stream_metrics"):
        off = LatencyRecorder()
    for r in results:
        on.record(r)
        off.record(r)
    assert on.results == off.results
    assert on.e2e_percentile(99) == pytest.approx(off.e2e_percentile(99))
    assert on.mean_e2e() == pytest.approx(off.mean_e2e())
