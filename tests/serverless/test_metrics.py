import math

import pytest

from repro.serverless.metrics import (InvocationResult, LatencyRecorder,
                                      percentile)


def result(fn="DH", arrival=0.0, kind="cold", startup=0.1, exec_=0.2):
    return InvocationResult(function=fn, arrival=arrival, start_kind=kind,
                            startup=startup, exec=exec_,
                            e2e=startup + exec_)


def test_percentile_basic():
    assert percentile([1, 2, 3, 4, 5], 50) == 3.0
    assert percentile([1, 2, 3, 4, 5], 100) == 5.0
    assert percentile([1, 2, 3, 4, 5], 0) == 1.0


def test_percentile_empty_is_nan():
    assert math.isnan(percentile([], 50))


def test_percentile_out_of_range():
    with pytest.raises(ValueError):
        percentile([1], 150)


def test_result_consistency_enforced():
    with pytest.raises(ValueError):
        InvocationResult(function="x", arrival=0, start_kind="cold",
                         startup=1.0, exec=1.0, e2e=0.5)


def test_recorder_filters_warmup():
    rec = LatencyRecorder(warmup=100.0)
    rec.record(result(arrival=50.0))
    rec.record(result(arrival=150.0))
    assert rec.count() == 1
    assert rec.measured()[0].arrival == 150.0


def test_recorder_per_function_selection():
    rec = LatencyRecorder()
    rec.record(result(fn="A", startup=0.1))
    rec.record(result(fn="B", startup=0.5))
    assert rec.functions() == ["A", "B"]
    assert rec.count("A") == 1
    assert rec.startup_percentile(50, "B") == pytest.approx(0.5)


def test_cdf_monotone():
    rec = LatencyRecorder()
    for i in range(10):
        rec.record(result(startup=0.1 * i))
    vals, probs = rec.cdf()
    assert (vals[1:] >= vals[:-1]).all()
    assert probs[-1] == 1.0
    assert len(vals) == 10


def test_cdf_empty():
    rec = LatencyRecorder()
    vals, probs = rec.cdf()
    assert len(vals) == 0


def test_start_kind_counts():
    rec = LatencyRecorder()
    rec.record(result(kind="cold"))
    rec.record(result(kind="warm"))
    rec.record(result(kind="warm"))
    assert rec.start_kind_counts() == {"cold": 1, "warm": 2}


def test_summary_shape():
    rec = LatencyRecorder()
    for i in range(5):
        rec.record(result(fn="A", startup=0.01 * i))
    summary = rec.summary()
    assert set(summary) == {"A"}
    assert summary["A"]["count"] == 5
    assert summary["A"]["p99_e2e"] >= summary["A"]["p50_e2e"]


def test_mean_e2e():
    rec = LatencyRecorder()
    rec.record(result(startup=0.1, exec_=0.1))
    rec.record(result(startup=0.3, exec_=0.1))
    assert rec.mean_e2e() == pytest.approx(0.3)
