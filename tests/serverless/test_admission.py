"""Per-function concurrency limits and FIFO admission queueing."""

import pytest

from repro.node import Node
from repro.serverless.baselines import FaasdPlatform
from repro.sim.engine import Delay
from repro.workloads.functions import function_by_name


def make_platform(limit=None, fn="CR"):
    node = Node(cores=64, seed=27)
    platform = FaasdPlatform(node)
    platform.register_function(function_by_name(fn))
    if limit is not None:
        platform.set_concurrency_limit(fn, limit)
    return node, platform


def burst(node, platform, fn, count):
    results = []

    def one():
        r = yield platform.invoke(fn)
        results.append(r)

    for _ in range(count):
        node.sim.spawn(one())
    node.sim.run()
    return results


class TestAdmission:
    def test_unlimited_by_default_no_queue(self):
        node, platform = make_platform()
        results = burst(node, platform, "CR", 6)
        assert all(r.queue == 0.0 for r in results)

    def test_limit_serialises_excess(self):
        node, platform = make_platform(limit=2)
        results = burst(node, platform, "CR", 6)
        queued = [r for r in results if r.queue > 0]
        assert len(queued) == 4
        # e2e includes the queueing delay.
        for r in queued:
            assert r.e2e >= r.queue + r.startup + r.exec - 1e9 * 0

    def test_admission_never_oversubscribes(self):
        node, platform = make_platform(limit=1, fn="DH")
        window = []
        orig_execute = platform.execute

        def tracking_execute(inst, profile, inv_idx):
            window.append(+1)
            assert sum(window) <= 1
            result = yield orig_execute(inst, profile, inv_idx)
            window.append(-1)
            return result

        platform.execute = tracking_execute
        burst(node, platform, "DH", 5)

    def test_queue_time_excluded_from_startup(self):
        node, platform = make_platform(limit=1)
        results = burst(node, platform, "CR", 3)
        # All executions run in the same warm instance once it's built;
        # queued requests report warm startup (sub-ms), not queue time.
        warm = [r for r in results if r.start_kind == "warm"]
        assert warm
        for r in warm:
            assert r.startup < 0.01
            assert r.queue > 0.1

    def test_zero_limit_rejected(self):
        _node, platform = make_platform()
        with pytest.raises(ValueError):
            platform.set_concurrency_limit("CR", 0)

    def test_limit_can_be_removed(self):
        node, platform = make_platform(limit=1)
        platform.set_concurrency_limit("CR", None)
        results = burst(node, platform, "CR", 4)
        assert all(r.queue == 0.0 for r in results)

    def test_limits_are_per_function(self):
        node, platform = make_platform(limit=1, fn="CR")
        platform.register_function(function_by_name("DH"))
        results = burst(node, platform, "DH", 4)
        assert all(r.queue == 0.0 for r in results)
