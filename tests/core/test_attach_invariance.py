"""Attach-cost invariance: the TrEnv property the CoW clone preserves.

§5.1 / Figure 11: ``mmt_attach`` copies metadata only, so attach cost is
(nearly) independent of image size.  These tests pin both halves of the
reproduction's version of that claim:

* **simulated** — attaching the 855 MB / 218 880-page IR-sized template
  stays sub-millisecond and within a small constant factor of a
  1024-page one (the residual slope is the 1.2 ns/PTE metadata walk);
* **host** — the clone allocates O(chunks-touched) private bytes, i.e.
  zero at attach time regardless of template size, and accounting
  (``local_pages``) is unchanged by lazy CoW materialisation.
"""

import numpy as np
import pytest

from repro import optflags
from repro.bench.perf import _build_synthetic_template
from repro.core.mm_template import MMTemplateRegistry
from repro.mem.address_space import AddressSpace, PTE_LOCAL
from repro.mem.cow import CowPageArray
from repro.sim.engine import Simulator

SMALL_PAGES = 1024
LARGE_PAGES = 218880   # the IR image of Table 4 (855 MB)


def attach(template, registry=None):
    """Attach ``template`` to a fresh space; returns (space, sim cost)."""
    registry = registry or MMTemplateRegistry(Simulator())
    space = AddressSpace("inst")
    sim = registry.sim
    t0 = sim.now
    sim.run_process(registry.mmt_attach(template, space))
    return space, sim.now - t0


class TestSimulatedInvariance:
    def test_large_attach_is_submillisecond_and_nearly_flat(self):
        _, small_cost = attach(_build_synthetic_template(SMALL_PAGES))
        _, large_cost = attach(_build_synthetic_template(LARGE_PAGES))
        assert large_cost < 1e-3          # 219k pages in under a millisecond
        assert large_cost < 2 * small_cost   # ~flat despite 213x more pages

    def test_simulated_cost_identical_with_and_without_cow(self):
        """The CoW flag changes host behaviour only, never virtual time."""
        _, on_cost = attach(_build_synthetic_template(LARGE_PAGES))
        with optflags.optimizations_disabled():
            _, off_cost = attach(_build_synthetic_template(LARGE_PAGES))
        assert on_cost == off_cost


class TestHostInvariance:
    def test_attach_allocates_zero_private_bytes_at_any_size(self):
        for pages in (SMALL_PAGES, LARGE_PAGES):
            space, _ = attach(_build_synthetic_template(pages))
            for vma in space.vmas:
                assert isinstance(vma.state, CowPageArray)
                assert vma.state.private_nbytes == 0
                assert vma.offsets.private_nbytes == 0
                assert vma.content.private_nbytes == 0

    def test_private_bytes_scale_with_pages_touched_not_template_size(self):
        space, _ = attach(_build_synthetic_template(LARGE_PAGES))
        trace = np.array([0, 1, 2, 3], dtype=np.int64)
        space.access(read_pages=np.array([], dtype=np.int64),
                     write_pages=trace)
        private = sum(v.state.private_nbytes + v.offsets.private_nbytes +
                      v.content.private_nbytes for v in space.vmas
                      if isinstance(v.state, CowPageArray))
        # One chunk of state materialised at most (offsets/content may
        # densify small VMAs); nowhere near the 219k-page template.
        assert 0 < private < LARGE_PAGES * 8

    def test_local_pages_accounting_matches_copying_baseline(self):
        rng = np.random.default_rng(7)
        writes = np.sort(rng.choice(LARGE_PAGES, size=512, replace=False))
        reads = np.sort(rng.choice(LARGE_PAGES, size=512, replace=False))

        def run():
            space, _ = attach(_build_synthetic_template(LARGE_PAGES))
            out = space.access(read_pages=reads.astype(np.int64),
                               write_pages=writes.astype(np.int64))
            counts = space.page_state_counts()
            return (space.local_pages, counts[PTE_LOCAL],
                    out.minor_faults, out.cow_faults, out.remote_loads)

        with_cow = run()
        with optflags.optimizations_disabled():
            without = run()
        assert with_cow == without
        assert with_cow[0] == len(writes)   # each written page now local
