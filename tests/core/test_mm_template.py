import numpy as np
import pytest

from repro.core.mm_template import (MMTemplateError, MMTemplateRegistry,
                                    build_template_for_function)
from repro.criu.images import SnapshotImage
from repro.mem.address_space import (AddressSpace, PROT_READ, PROT_WRITE,
                                     PTE_LOCAL, PTE_REMOTE_INVALID,
                                     PTE_REMOTE_RO)
from repro.mem.layout import GB, MB
from repro.mem.pools import CXLPool, DedupStore, RDMAPool
from repro.sim.engine import Simulator
from repro.workloads.functions import function_by_name


def setup(pool_cls=CXLPool):
    sim = Simulator()
    registry = MMTemplateRegistry(sim)
    store = DedupStore(pool_cls(8 * GB))
    return sim, registry, store


def build(sim, registry, store, func="JS"):
    image = SnapshotImage.from_profile(function_by_name(func))
    return image, build_template_for_function(registry, image, store)


class TestRegistry:
    def test_create_and_get(self):
        sim, registry, _store = setup()
        t = registry.mmt_create("X")
        assert registry.mmt_get(t.template_id) is t
        assert len(registry) == 1

    def test_get_unknown_raises(self):
        sim, registry, _store = setup()
        with pytest.raises(MMTemplateError):
            registry.mmt_get(999)

    def test_delete(self):
        sim, registry, _store = setup()
        t = registry.mmt_create("X")
        registry.mmt_delete(t.template_id)
        assert len(registry) == 0
        with pytest.raises(MMTemplateError):
            registry.mmt_delete(t.template_id)

    def test_root_required(self):
        """§8.1: the pseudo-device is root-only."""
        sim, registry, _store = setup()
        with pytest.raises(MMTemplateError, match="root"):
            registry.mmt_create("X", as_root=False)
        t = registry.mmt_create("X")
        with pytest.raises(MMTemplateError, match="root"):
            registry.mmt_add_map(t, "heap", 4, PROT_READ | PROT_WRITE,
                                 as_root=False)

    def test_setup_pt_size_mismatch(self):
        sim, registry, store = setup()
        t = registry.mmt_create("X")
        registry.mmt_add_map(t, "heap", 10, PROT_READ | PROT_WRITE)
        block = store.store_image(np.arange(5))
        with pytest.raises(MMTemplateError):
            registry.mmt_setup_pt(t, "heap", block)


class TestBuild:
    def test_cxl_template_has_valid_ro_ptes(self):
        sim, registry, store = setup(CXLPool)
        _image, t = build(sim, registry, store)
        for vma in t.vmas:
            assert (vma.state == PTE_REMOTE_RO).all()
            assert vma.pool is store.pool

    def test_rdma_template_has_invalid_ptes(self):
        sim, registry, store = setup(RDMAPool)
        _image, t = build(sim, registry, store)
        for vma in t.vmas:
            assert (vma.state == PTE_REMOTE_INVALID).all()

    def test_template_covers_image(self):
        sim, registry, store = setup()
        image, t = build(sim, registry, store)
        assert t.total_pages == image.total_pages
        assert t.metadata_bytes < 2 * MB

    def test_dedup_across_same_language_functions(self):
        """Figure 12: duplicated regions map to the same pool block."""
        sim, registry, store = setup()
        build(sim, registry, store, "JS")
        stored_after_first = store.unique_pages_stored
        build(sim, registry, store, "DH")
        shared_pages = (38 * MB) // 4096
        dh_pages = function_by_name("DH").image_pages
        expected_new = dh_pages - shared_pages
        assert store.unique_pages_stored == pytest.approx(
            stored_after_first + expected_new, abs=2)


class TestAttach:
    def test_attach_copies_metadata_only(self):
        sim, registry, store = setup()
        image, t = build(sim, registry, store)
        space = AddressSpace("restored")

        def proc():
            yield registry.mmt_attach(t, space)
            return sim.now

        elapsed = sim.run_process(proc())
        # Metadata-only: sub-millisecond even for tens of MB (§9.4).
        assert elapsed < 0.002
        assert space.total_pages == image.total_pages
        assert space.local_pages == 0
        assert t.attach_count == 1

    def test_attach_multiple_times_shares_pool_pages(self):
        sim, registry, store = setup()
        image, t = build(sim, registry, store)
        pool_pages_before = store.pool.used_pages
        spaces = [AddressSpace(f"r{i}") for i in range(5)]

        def proc():
            for s in spaces:
                yield registry.mmt_attach(t, s)

        sim.run_process(proc())
        assert store.pool.used_pages == pool_pages_before  # no new storage
        assert t.attach_count == 5

    def test_attached_instances_cow_independently(self):
        sim, registry, store = setup()
        _image, t = build(sim, registry, store)
        a, b = AddressSpace("a"), AddressSpace("b")

        def proc():
            yield registry.mmt_attach(t, a)
            yield registry.mmt_attach(t, b)

        sim.run_process(proc())
        # Write to the tail of the space (heap/stack region, writable).
        tail = np.arange(a.total_pages - 100, a.total_pages)
        a.access(np.array([], dtype=np.int64), tail)
        assert a.local_pages == 100
        assert b.local_pages == 0
        # Template itself is untouched.
        assert all((v.state != PTE_LOCAL).all() for v in t.vmas)

    def test_attach_cost_scales_with_pages_not_bytes(self):
        sim, registry, store = setup()
        _imgJS, tJS = build(sim, registry, store, "JS")   # 95 MB
        _imgIR, tIR = build(sim, registry, store, "IR")   # 855 MB

        def timed(template):
            space = AddressSpace("x")
            start = sim.now

            def proc():
                yield registry.mmt_attach(template, space)
                return sim.now - start

            return sim.run_process(proc())

        t_small = timed(tJS)
        t_big = timed(tIR)
        # Both are sub-ms; big is more costly but nowhere near the ~450 ms
        # a full 855 MB copy would take.
        assert t_small < t_big < 0.002

    def test_same_virtual_layout_attached(self):
        """§8.1.2: all restored instances share the template's layout
        (ASLR is defeated — a documented limitation)."""
        sim, registry, store = setup()
        _image, t = build(sim, registry, store)
        a, b = AddressSpace("a"), AddressSpace("b")

        def proc():
            yield registry.mmt_attach(t, a)
            yield registry.mmt_attach(t, b)

        sim.run_process(proc())
        assert [v.start for v in a.vmas] == [v.start for v in b.vmas]
