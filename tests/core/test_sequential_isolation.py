"""Groundhog-style sequential request isolation (§10)."""

import numpy as np
import pytest

from repro.core.config import TrEnvConfig
from repro.core.platform import TrEnvPlatform
from repro.mem.address_space import PTE_LOCAL
from repro.mem.layout import GB
from repro.mem.pools import CXLPool
from repro.node import Node
from repro.workloads.functions import function_by_name


def make_platform(sequential):
    node = Node(cores=8, seed=9)
    pool = CXLPool(64 * GB, node.latency)
    config = TrEnvConfig(sequential_isolation=sequential)
    return node, TrEnvPlatform(node, pool, config=config)


def invoke_twice(platform, fn="JS"):
    platform.register_function(function_by_name(fn))
    results = []

    def driver():
        results.append((yield platform.invoke(fn)))
        results.append((yield platform.invoke(fn)))

    platform.node.sim.run_process(driver())
    return results


def warm_instance(platform, fn="JS"):
    return platform.warm.idle_instances()[0]


def test_rollback_clears_dirty_state_between_requests():
    node, platform = make_platform(sequential=True)
    invoke_twice(platform)
    inst = warm_instance(platform)
    # After the rollback, the warm instance holds zero private pages:
    # the previous request's writes are gone.
    assert inst.space.local_pages == 0
    counts = inst.space.page_state_counts()
    assert counts[PTE_LOCAL] == 0


def test_without_isolation_dirty_state_persists():
    node, platform = make_platform(sequential=False)
    invoke_twice(platform)
    inst = warm_instance(platform)
    assert inst.space.local_pages > 0


def test_isolation_keeps_warm_reuse_fast():
    _node, platform = make_platform(sequential=True)
    r1, r2 = invoke_twice(platform)
    assert r2.start_kind == "warm"
    # Rollback costs one mmt_attach, not a restore: warm stays ~free.
    assert r2.startup < 0.005


def test_isolation_costs_rewrites_on_every_request():
    """With rollback, each request re-CoWs its pages (the Groundhog
    trade-off); without, the second request writes mostly free."""
    _n1, with_iso = make_platform(sequential=True)
    _n2, without = make_platform(sequential=False)
    r_iso = invoke_twice(with_iso)
    r_plain = invoke_twice(without)
    assert r_iso[1].exec >= r_plain[1].exec


def test_process_address_space_swapped():
    node, platform = make_platform(sequential=True)
    invoke_twice(platform)
    inst = warm_instance(platform)
    sandbox = inst.payload
    fn_procs = [p for p in sandbox.live_processes
                if p is not sandbox.init_process]
    assert any(p.address_space is inst.space for p in fn_procs)


def test_memory_accounting_balanced_after_rollbacks():
    node, platform = make_platform(sequential=True)
    invoke_twice(platform)
    # function-anon equals exactly the live instances' local pages.
    total_local = sum(i.space.local_bytes
                      for i in platform.warm.idle_instances())
    assert node.memory.usage.get("function-anon", 0) == total_local
