import numpy as np
import pytest

from repro.container.container import SandboxState
from repro.container.runtime import ContainerRuntime
from repro.core.config import TrEnvConfig
from repro.core.mm_template import MMTemplateRegistry, build_template_for_function
from repro.core.repurpose import RepurposableSandboxPool, Repurposer
from repro.criu.images import SnapshotImage
from repro.mem.layout import GB
from repro.mem.pools import CXLPool, DedupStore
from repro.node import Node
from repro.workloads.functions import function_by_name


def setup(config=None):
    node = Node()
    runtime = ContainerRuntime(node)
    registry = MMTemplateRegistry(node.sim, node.latency)
    store = DedupStore(CXLPool(8 * GB))
    rep = Repurposer(node, runtime, registry, config=config)
    return node, runtime, registry, store, rep


def prepare(registry, store, func):
    profile = function_by_name(func)
    image = SnapshotImage.from_profile(profile)
    template = build_template_for_function(registry, image, store)
    return profile, image, template


def run(node, gen):
    return node.sim.run_process(gen)


def make_used_sandbox(node, runtime, func="JS"):
    """A sandbox that ran a function and made a mess."""
    def proc():
        sb = yield runtime.create_sandbox_cold(func)
        p = yield runtime.bootstrap_function(sb, function_by_name(func))
        sb.netns.open_connection(1, nbytes=2048)
        sb.function_overlay.write_file("/tmp/result.json", 1 << 20)
        return sb

    return run(node, proc())


class TestCleanse:
    def test_cleanse_removes_all_tenant_state(self):
        node, runtime, registry, store, rep = setup()
        sb = make_used_sandbox(node, runtime)

        def proc():
            yield rep.cleanse(sb)

        run(node, proc())
        node.sim.run()   # drain the async overlay purge
        assert not sb.leaks_previous_tenant()
        assert len(sb.live_processes) == 1   # init only
        assert sb.function is None
        assert sb.netns.connections == set()

    def test_cleanse_frees_function_memory(self):
        node, runtime, registry, store, rep = setup()
        sb = make_used_sandbox(node, runtime)
        assert node.memory.usage["function-anon"] > 0

        def proc():
            yield rep.cleanse(sb)

        run(node, proc())
        assert node.memory.usage["function-anon"] == 0

    def test_cleanse_resets_customised_network(self):
        node, runtime, registry, store, rep = setup()
        sb = make_used_sandbox(node, runtime)
        sb.netns.add_firewall_rule("drop tcp/25")

        def proc():
            yield rep.cleanse(sb)

        run(node, proc())
        assert not sb.netns.customised

    def test_cleansed_overlay_returns_to_pool(self):
        node, runtime, registry, store, rep = setup()
        sb = make_used_sandbox(node, runtime, "JS")

        def proc():
            yield rep.cleanse(sb)

        run(node, proc())
        node.sim.run()
        assert rep.overlays.pooled_count("JS") == 1


class TestPool:
    def test_put_take_lifo(self):
        node, runtime, registry, store, rep = setup()
        pool = RepurposableSandboxPool(limit=4)
        sandboxes = []
        for _ in range(2):
            sb = make_used_sandbox(node, runtime)
            run(node, rep.cleanse(sb))
            pool.put(sb)
            sandboxes.append(sb)
        assert len(pool) == 2
        assert pool.take() is sandboxes[-1]
        assert pool.hits == 1

    def test_pool_rejects_dirty_sandbox(self):
        node, runtime, registry, store, rep = setup()
        sb = make_used_sandbox(node, runtime)
        pool = RepurposableSandboxPool()
        with pytest.raises(AssertionError):
            pool.put(sb)

    def test_pool_limit(self):
        node, runtime, registry, store, rep = setup()
        pool = RepurposableSandboxPool(limit=1)
        a = make_used_sandbox(node, runtime)
        b = make_used_sandbox(node, runtime)
        run(node, rep.cleanse(a))
        run(node, rep.cleanse(b))
        assert pool.put(a)
        assert not pool.put(b)

    def test_take_empty_counts_miss(self):
        pool = RepurposableSandboxPool()
        assert pool.take() is None
        assert pool.misses == 1


class TestRepurpose:
    def test_repurpose_across_function_types(self):
        """The headline capability: a JS (python) sandbox becomes a CR
        (nodejs) instance."""
        node, runtime, registry, store, rep = setup()
        sb = make_used_sandbox(node, runtime, "JS")
        profile, image, template = prepare(registry, store, "CR")

        rep.overlays.prewarm("CR")

        def proc():
            yield rep.cleanse(sb)
            start = node.now
            p = yield rep.repurpose(sb, profile, image, template)
            return p, node.now - start

        p, elapsed = run(node, proc())
        assert sb.function == "CR"
        assert sb.state == SandboxState.ACTIVE
        assert p.threads == profile.n_threads
        assert sb.generation == 1
        # §1: repurposing a container takes <10 ms.
        assert elapsed < 0.010

    def test_repurposed_memory_is_template_backed(self):
        node, runtime, registry, store, rep = setup()
        sb = make_used_sandbox(node, runtime, "JS")
        profile, image, template = prepare(registry, store, "DH")

        def proc():
            yield rep.cleanse(sb)
            p = yield rep.repurpose(sb, profile, image, template)
            return p

        p = run(node, proc())
        # No local pages yet: everything maps the CXL pool.
        assert p.address_space.local_pages == 0
        assert p.address_space.total_pages == image.total_pages

    def test_repurpose_without_template_copies_memory(self):
        """The Figure 21 'Cgroup' configuration: sandbox reuse but
        copy-based restore."""
        config = TrEnvConfig(mm_template=False)
        node, runtime, registry, store, rep = setup(config)
        sb = make_used_sandbox(node, runtime, "JS")
        profile, image, template = prepare(registry, store, "DH")

        def proc():
            yield rep.cleanse(sb)
            start = node.now
            p = yield rep.repurpose(sb, profile, image, None)
            return p, node.now - start

        p, elapsed = run(node, proc())
        # Full copy: all pages local, tens of ms for a 50 MB image.
        assert p.address_space.local_pages == image.total_pages
        assert elapsed > 0.025

    def test_clone_into_toggle_affects_latency(self):
        def run_with(flag):
            config = TrEnvConfig(clone_into_cgroup=flag)
            node, runtime, registry, store, rep = setup(config)
            sb = make_used_sandbox(node, runtime, "JS")
            profile, image, template = prepare(registry, store, "DH")

            def proc():
                yield rep.cleanse(sb)
                start = node.now
                yield rep.repurpose(sb, profile, image, template)
                return node.now - start

            return run(node, proc())

        fast = run_with(True)
        slow = run_with(False)
        assert slow - fast > 0.009   # at least the min migrate cost

    def test_repeated_repurposing_no_leak(self):
        node, runtime, registry, store, rep = setup()
        sb = make_used_sandbox(node, runtime, "JS")
        names = ["DH", "CR", "IP", "JJS"]

        for name in names:
            rep.overlays.prewarm(name)

        def proc():
            for name in names:
                profile, image, template = prepare(registry, store, name)
                yield rep.cleanse(sb)
                p = yield rep.repurpose(sb, profile, image, template)
                # Simulate some dirtying (write to the writable tail).
                total = p.address_space.total_pages
                p.address_space.access(np.array([], dtype=np.int64),
                                       np.arange(total - 50, total))
                sb.netns.open_connection(9)
            return sb

        run(node, proc())
        assert sb.generation == len(names)
        assert sb.function == "JJS"
        # One init + one function process only.
        assert len(sb.live_processes) == 2
