"""Chrome-trace export schema and the phase-breakdown aggregation."""

import json

from repro.obs.export import (PHASE_ORDER, chrome_trace_events,
                              phase_breakdown, phase_table, to_chrome_trace,
                              write_chrome_trace)
from repro.obs.trace import SpanTracer


def _sample_tracer():
    tracer = SpanTracer()
    ctx = tracer.begin("fn-a", 0.0)
    tracer.bind(ctx, "node0")
    tracer.span(ctx, "fn-a", 0.0, 3.0, cat="invocation",
                args={"kind": "cold"})
    tracer.span(ctx, "mmt_attach", 0.0, 1.0)
    tracer.span(ctx, "exec", 1.0, 3.0)
    tracer.finish(ctx, 3.0)
    warm = tracer.begin("fn-a", 4.0)
    tracer.bind(warm, "node1")
    tracer.span(warm, "fn-a", 4.0, 5.0, cat="invocation",
                args={"kind": "warm"})
    tracer.span(warm, "exec", 4.0, 5.0)
    tracer.finish(warm, 5.0)
    tracer.instant("fault:node-crash", 2.5, args={"target": "node0"})
    tracer.node_span("node0", "retire", 5.0, 5.2)
    return tracer


def test_chrome_events_schema():
    events = chrome_trace_events(_sample_tracer())
    assert events, "no events exported"
    for ev in events:
        assert ev["ph"] in ("X", "i", "M")
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        if ev["ph"] == "X":
            assert isinstance(ev["ts"], float) and ev["ts"] >= 0
            assert isinstance(ev["dur"], float) and ev["dur"] >= 0
        elif ev["ph"] == "i":
            assert ev["s"] == "t"


def test_chrome_events_metadata_and_order():
    tracer = _sample_tracer()
    events = chrome_trace_events(tracer)
    meta = [ev for ev in events if ev["ph"] == "M"]
    names = {(ev["pid"], ev["tid"]): ev["args"]["name"]
             for ev in meta if ev["name"] == "process_name"}
    assert names[(0, 0)] == "rack"
    assert set(names.values()) == {"rack", "node0", "node1"}
    lanes = [ev["args"]["name"] for ev in meta
             if ev["name"] == "thread_name" and ev["tid"] > 0]
    assert "lane-1" in lanes
    # Timed events are begin-sorted; at equal ts longer spans come first
    # (parents before children on the same lane).
    timed = [ev for ev in events if ev["ph"] in ("X", "i")]
    keys = [(ev["ts"], -ev.get("dur", 0.0)) for ev in timed]
    assert keys == sorted(keys)
    # Virtual seconds became microseconds.
    root = next(ev for ev in timed if ev.get("cat") == "invocation")
    assert root["ts"] == 0.0 and root["dur"] == 3.0 * 1e6


def test_trace_id_lands_in_args():
    events = chrome_trace_events(_sample_tracer())
    phased = [ev for ev in events if ev.get("cat") == "phase"]
    assert phased
    assert all("trace_id" in ev["args"] for ev in phased)


def test_write_chrome_trace_is_loadable(tmp_path):
    path = tmp_path / "trace.json"
    n = write_chrome_trace(_sample_tracer(), path, metadata={"b": 1, "a": 2})
    data = json.loads(path.read_text())
    assert len(data["traceEvents"]) == n > 0
    assert data["displayTimeUnit"] == "ms"
    assert list(data["otherData"]) == ["a", "b"]


def test_to_chrome_trace_without_metadata():
    out = to_chrome_trace(_sample_tracer())
    assert "otherData" not in out


def test_phase_breakdown_groups_by_kind():
    breakdown = phase_breakdown(_sample_tracer())
    assert sorted(breakdown) == ["cold", "warm"]
    assert breakdown["cold"]["mmt_attach"]["count"] == 1
    assert breakdown["cold"]["exec"]["mean_ms"] == 2000.0
    assert breakdown["warm"]["exec"]["count"] == 1
    assert "retire" not in breakdown.get("cold", {})  # node spans excluded
    # Phases listed in lifecycle order.
    cold_phases = list(breakdown["cold"])
    assert cold_phases == [p for p in PHASE_ORDER if p in cold_phases]


def test_phase_table_renders_all_rows():
    table = phase_table(_sample_tracer())
    lines = table.splitlines()
    assert "start kind" in lines[0]
    assert any("mmt_attach" in ln for ln in lines)
    assert any(ln.startswith("warm") for ln in lines)
