"""MetricsRegistry: label normalization, merge algebra, exposition."""

import pytest

from repro.obs.registry import MetricsRegistry, render_key


def test_label_order_is_irrelevant():
    reg = MetricsRegistry()
    reg.inc("hits", a="1", b="2")
    reg.inc("hits", b="2", a="1")
    assert reg.counter("hits", b="2", a="1") == 2.0


def test_render_key_sorted_labels():
    reg = MetricsRegistry()
    reg.inc("hits", zebra="z", alpha="a")
    assert reg.totals() == {'hits{alpha="a",zebra="z"}': 1.0}
    assert render_key(("plain", ())) == "plain"


def test_gauges_and_histograms():
    reg = MetricsRegistry()
    reg.set_gauge("level", 5.0, node="n0")
    reg.add_gauge("level", -2.0, node="n0")
    assert reg.gauge("level", node="n0") == 3.0
    assert reg.gauge("missing") == 0.0
    for v in (0.001, 0.01, 0.1):
        reg.observe("lat", v)
    hist = reg.histogram("lat")
    assert hist is not None and hist.count == 3
    assert reg.histogram("lat", other="label") is None
    assert len(reg) == 2  # one gauge key + one histogram key


def _make(seed_values):
    reg = MetricsRegistry()
    for i, v in enumerate(seed_values):
        reg.inc("c", v, shard=str(i % 2))
        reg.set_gauge("g", v)
        reg.observe("h", max(v, 1e-6))
    return reg


def test_merge_semantics():
    a, b = _make([1.0, 2.0]), _make([10.0])
    a.merge_from(b)
    assert a.counter("c", shard="0") == 11.0  # counters add
    assert a.counter("c", shard="1") == 2.0
    assert a.gauge("g") == 10.0              # gauges take the max
    assert a.histogram("h").count == 3       # histograms pool samples


def test_merge_is_associative():
    regs = [_make([1.0, 2.0]), _make([3.0]), _make([5.0, 8.0, 13.0])]

    def fold(order):
        acc = MetricsRegistry()
        for idx in order:
            acc.merge_from(MetricsRegistry.from_dict(regs[idx].to_dict()))
        return acc.to_dict()

    left = fold([0, 1, 2])
    right = fold([2, 1, 0])
    assert left == right


def test_to_from_dict_roundtrip():
    reg = _make([0.5, 2.0, 7.0])
    clone = MetricsRegistry.from_dict(reg.to_dict())
    assert clone.to_dict() == reg.to_dict()
    assert clone.totals() == reg.totals()
    assert clone.prometheus_text() == reg.prometheus_text()


def test_prometheus_text_format():
    reg = MetricsRegistry()
    reg.inc("hits_total", 3, node="n0")
    reg.set_gauge("depth", 2.5)
    reg.observe("lat_seconds", 0.010)
    reg.observe("lat_seconds", 0.012)
    text = reg.prometheus_text()
    lines = text.splitlines()
    assert text.endswith("\n")
    assert "# TYPE hits_total counter" in lines
    assert "# TYPE depth gauge" in lines
    assert "# TYPE lat_seconds histogram" in lines
    assert 'hits_total{node="n0"} 3' in lines
    assert "depth 2.5" in lines
    # Cumulative buckets end in +Inf == _count, plus _sum and _count.
    buckets = [ln for ln in lines if ln.startswith("lat_seconds_bucket")]
    assert buckets[-1] == 'lat_seconds_bucket{le="+Inf"} 2'
    counts = [int(ln.rsplit(" ", 1)[1]) for ln in buckets]
    assert counts == sorted(counts)  # cumulative, never decreasing
    assert "lat_seconds_count 2" in lines
    assert any(ln.startswith("lat_seconds_sum ") for ln in lines)
    # Each TYPE line appears exactly once per metric family.
    assert len([ln for ln in lines if ln.startswith("# TYPE")]) == 3


def test_empty_registry_exposition():
    assert MetricsRegistry().prometheus_text() == ""
    assert MetricsRegistry().totals() == {}


def test_observability_rejects_off_level():
    from repro.obs.observer import Observability
    with pytest.raises(ValueError):
        Observability("off")
    with pytest.raises(ValueError):
        Observability("bogus")


def test_level_from_env(monkeypatch):
    from repro.obs.observer import level_from_env
    for raw, want in (("", "off"), ("0", "off"), ("off", "off"),
                      ("1", "spans"), ("true", "spans"),
                      ("spans", "spans"), ("metrics", "metrics")):
        monkeypatch.setenv("REPRO_OBS", raw)
        assert level_from_env() == want
    monkeypatch.setenv("REPRO_OBS", "verbose")
    with pytest.raises(ValueError):
        level_from_env()
