"""MetricsRegistry: label normalization, merge algebra, exposition."""

import pytest

from repro.obs.registry import MetricsRegistry, render_key


def test_label_order_is_irrelevant():
    reg = MetricsRegistry()
    reg.inc("hits", a="1", b="2")
    reg.inc("hits", b="2", a="1")
    assert reg.counter("hits", b="2", a="1") == 2.0


def test_render_key_sorted_labels():
    reg = MetricsRegistry()
    reg.inc("hits", zebra="z", alpha="a")
    assert reg.totals() == {'hits{alpha="a",zebra="z"}': 1.0}
    assert render_key(("plain", ())) == "plain"


def test_gauges_and_histograms():
    reg = MetricsRegistry()
    reg.set_gauge("level", 5.0, node="n0")
    reg.add_gauge("level", -2.0, node="n0")
    assert reg.gauge("level", node="n0") == 3.0
    assert reg.gauge("missing") == 0.0
    for v in (0.001, 0.01, 0.1):
        reg.observe("lat", v)
    hist = reg.histogram("lat")
    assert hist is not None and hist.count == 3
    assert reg.histogram("lat", other="label") is None
    assert len(reg) == 2  # one gauge key + one histogram key


def _make(seed_values):
    reg = MetricsRegistry()
    for i, v in enumerate(seed_values):
        reg.inc("c", v, shard=str(i % 2))
        reg.set_gauge("g", v)
        reg.observe("h", max(v, 1e-6))
    return reg


def test_merge_semantics():
    a, b = _make([1.0, 2.0]), _make([10.0])
    a.merge_from(b)
    assert a.counter("c", shard="0") == 11.0  # counters add
    assert a.counter("c", shard="1") == 2.0
    assert a.gauge("g") == 10.0              # gauges take the max
    assert a.histogram("h").count == 3       # histograms pool samples


def test_merge_is_associative():
    regs = [_make([1.0, 2.0]), _make([3.0]), _make([5.0, 8.0, 13.0])]

    def fold(order):
        acc = MetricsRegistry()
        for idx in order:
            acc.merge_from(MetricsRegistry.from_dict(regs[idx].to_dict()))
        return acc.to_dict()

    left = fold([0, 1, 2])
    right = fold([2, 1, 0])
    assert left == right


def test_to_from_dict_roundtrip():
    reg = _make([0.5, 2.0, 7.0])
    clone = MetricsRegistry.from_dict(reg.to_dict())
    assert clone.to_dict() == reg.to_dict()
    assert clone.totals() == reg.totals()
    assert clone.prometheus_text() == reg.prometheus_text()


def test_prometheus_text_format():
    reg = MetricsRegistry()
    reg.inc("hits_total", 3, node="n0")
    reg.set_gauge("depth", 2.5)
    reg.observe("lat_seconds", 0.010)
    reg.observe("lat_seconds", 0.012)
    text = reg.prometheus_text()
    lines = text.splitlines()
    assert text.endswith("\n")
    assert "# TYPE hits_total counter" in lines
    assert "# TYPE depth gauge" in lines
    assert "# TYPE lat_seconds histogram" in lines
    assert 'hits_total{node="n0"} 3' in lines
    assert "depth 2.5" in lines
    # Cumulative buckets end in +Inf == _count, plus _sum and _count.
    buckets = [ln for ln in lines if ln.startswith("lat_seconds_bucket")]
    assert buckets[-1] == 'lat_seconds_bucket{le="+Inf"} 2'
    counts = [int(ln.rsplit(" ", 1)[1]) for ln in buckets]
    assert counts == sorted(counts)  # cumulative, never decreasing
    assert "lat_seconds_count 2" in lines
    assert any(ln.startswith("lat_seconds_sum ") for ln in lines)
    # Each TYPE line appears exactly once per metric family.
    assert len([ln for ln in lines if ln.startswith("# TYPE")]) == 3


def test_empty_registry_exposition():
    assert MetricsRegistry().prometheus_text() == ""
    assert MetricsRegistry().totals() == {}


def test_exposition_grammar_help_and_type():
    """Every family: one # HELP then one # TYPE, before its samples."""
    reg = MetricsRegistry()
    reg.inc("hits_total", 3, node="n0")
    reg.inc("hits_total", 1, node="n1")
    reg.set_gauge("depth", 2.5)
    reg.observe("lat_seconds", 0.01)
    lines = reg.prometheus_text().splitlines()
    seen = set()
    for i, line in enumerate(lines):
        if line.startswith("# HELP "):
            family = line.split(" ", 3)[2]
            assert family not in seen, f"duplicate HELP for {family}"
            seen.add(family)
            # The grammar: HELP first, TYPE immediately after, samples
            # of that family only below.
            assert lines[i + 1].startswith(f"# TYPE {family} ")
        elif not line.startswith("#"):
            family = line.split("{", 1)[0].split(" ", 1)[0]
            base = family
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
            assert base in seen, f"sample before HELP/TYPE: {line}"
    # All three families announced.
    assert {"hits_total", "depth", "lat_seconds"} <= seen


def test_label_value_escaping():
    reg = MetricsRegistry()
    reg.inc("hits_total", 2, path='a\\b"c\nd')
    text = reg.prometheus_text()
    assert 'hits_total{path="a\\\\b\\"c\\nd"} 2' in text.splitlines()
    # The internal canonical form (totals) is untouched.
    assert 'hits_total{path="a\\b"c\nd"}' in reg.totals()


def test_help_text_escaping_and_suffix_stripping():
    from repro.obs.registry import _escape_help, metric_help
    assert metric_help("pool_fetch_seconds") == "pool fetch (repro.obs)"
    assert metric_help("invocations_total") == "invocations (repro.obs)"
    assert metric_help("depth") == "depth (repro.obs)"
    assert _escape_help("a\\b\nc") == "a\\\\b\\nc"


def test_observability_rejects_off_level():
    from repro.obs.observer import Observability
    with pytest.raises(ValueError):
        Observability("off")
    with pytest.raises(ValueError):
        Observability("bogus")


def test_level_from_env(monkeypatch):
    from repro.obs.observer import level_from_env
    for raw, want in (("", "off"), ("0", "off"), ("off", "off"),
                      ("1", "spans"), ("true", "spans"),
                      ("spans", "spans"), ("metrics", "metrics")):
        monkeypatch.setenv("REPRO_OBS", raw)
        assert level_from_env() == want
    monkeypatch.setenv("REPRO_OBS", "verbose")
    with pytest.raises(ValueError):
        level_from_env()
