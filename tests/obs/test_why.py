"""The why engine: cohorts, verdicts, determinism, CLI surface."""

import json

from repro.obs.causal import CausalGraph
from repro.obs.trace import SpanTracer
from repro.obs.why import (percentile_index, render_text,
                           run_why_scenario, tail_cohort_diff, why_report)


def _tracer_with(durations):
    """One invocation per duration, all exec-only on node0."""
    tracer = SpanTracer()
    for i, dur in enumerate(durations):
        t0 = float(10 * i)
        ctx = tracer.begin("fn", t0)
        tracer.bind(ctx, "node0")
        tracer.span(ctx, "exec", t0, t0 + dur)
        tracer.span(ctx, "fn", t0, t0 + dur, cat="invocation",
                    args={"kind": "warm"})
        tracer.finish(ctx, t0 + dur)
    return tracer


def test_percentile_index_nearest_rank():
    assert percentile_index(1, 0.99) == 0
    assert percentile_index(100, 0.50) == 49
    assert percentile_index(100, 0.99) == 98
    assert percentile_index(101, 0.99) == 99
    assert percentile_index(3, 1.0) == 2


def test_tail_cohort_diff_blames_the_slow_phase():
    durations = [0.1] * 98 + [0.1, 2.0]
    paths = CausalGraph(_tracer_with(durations)).all_paths()
    diff = tail_cohort_diff(paths, tail_q=0.99)
    assert diff["n"] == 100
    assert diff["tail"]["n"] == 2          # ranks 98..99
    assert diff["baseline"]["n"] == 50
    assert diff["culprits"] == ["exec"]
    assert diff["delta_s"]["exec"] > 0
    assert "exec" in diff["verdict"]


def test_tail_cohort_diff_empty_and_uniform():
    assert tail_cohort_diff([])["verdict"] == "no completed invocations"
    uniform = CausalGraph(_tracer_with([0.5] * 10)).all_paths()
    diff = tail_cohort_diff(uniform)
    assert diff["culprits"] == []
    assert "identical" in diff["verdict"]


def test_why_report_shape_and_exactness():
    tracer = _tracer_with([0.1, 0.2, 0.4])
    report = why_report(tracer, "synthetic", meta={"label": "test"})
    assert report["invocations"] == 3
    assert report["blame_sums_exact"] is True
    assert set(report["blame"]["by_phase_s"]) == {"exec"}
    assert abs(report["blame"]["by_phase_s"]["exec"] - 0.7) < 1e-9
    assert report["label"] == "test"
    assert len(report["slowest"]) == 3
    assert abs(report["slowest"][0]["e2e_s"] - 0.4) < 1e-9
    assert report["folded_stacks"].startswith("warm;node0;exec ")
    text = render_text(report)
    assert "blame sums exact: True" in text
    assert "verdict:" in text


def test_why_cluster_deterministic_and_jobs_invariant():
    kwargs = dict(duration=30.0, seed=3, nodes=2)
    first = run_why_scenario("cluster", jobs=1, **kwargs)
    again = run_why_scenario("cluster", jobs=1, **kwargs)
    sharded = run_why_scenario("cluster", jobs=2, **kwargs)
    as_json = lambda r: json.dumps(r, sort_keys=True)
    assert as_json(first) == as_json(again)
    assert first["blame_sums_exact"] is True
    # The sharded run differs only in how the trace was obtained.
    for report in (first, sharded):
        report["parallel"] = None
        report["span_merge"] = None
    assert as_json(first) == as_json(sharded)


def test_why_overload_has_pre_dispatch_waits():
    report = run_why_scenario("overload", duration=15.0, seed=1, nodes=2)
    assert report["blame_sums_exact"] is True
    assert report["blame"]["pre_wait_s"].get("admission_wait", 0) > 0
    assert report["blame"]["pre_wait_s"].get("slot_grant", 0) > 0
    assert report["parallel"]["mode"] == "fallback"


def test_cli_why_json_and_out(tmp_path, capsys):
    from repro.cli import main
    out = tmp_path / "why.json"
    assert main(["why", "w2", "--duration", "15", "--format", "json",
                 "--out", str(out)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["scenario"] == "w2"
    assert report["blame_sums_exact"] is True
    assert json.loads(out.read_text()) == report


def test_cli_why_text_default(capsys):
    from repro.cli import main
    assert main(["why", "w2", "--duration", "15"]) == 0
    text = capsys.readouterr().out
    assert text.startswith("why w2:")
    assert "verdict:" in text


def test_cli_list_mentions_why(capsys):
    from repro.cli import main
    assert main(["list"]) == 0
    assert "why" in capsys.readouterr().out.split()
