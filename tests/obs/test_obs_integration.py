"""End-to-end observability: real runs emit the full span taxonomy."""

import json

import pytest

from repro.bench.harness import run_platform_workload
from repro.mem.layout import GB
from repro.obs.export import phase_breakdown
from repro.obs.observer import observed
from repro.workloads.synthetic import make_w2_diurnal


@pytest.fixture(scope="module")
def w2_spans():
    """One W2 slice traced at spans level, shared across assertions."""
    wl = make_w2_diurnal(seed=1, duration=150.0, mean_rate=1.6,
                         soft_cap_bytes=5 * GB)
    with observed("spans") as obs:
        result = run_platform_workload("t-cxl", wl, seed=1)
    return obs, result


def test_span_taxonomy_covers_lifecycle(w2_spans):
    obs, _ = w2_spans
    names = {s[4] for s in obs.tracer.spans}
    for required in ("dispatch", "acquire", "mmt_attach",
                     "proc_state_restore", "fault_replay", "exec",
                     "teardown", "warm_hit", "retire"):
        assert required in names, f"missing span {required!r}"


def test_cold_and_warm_kinds_decomposed(w2_spans):
    obs, result = w2_spans
    kinds = result.recorder.start_kind_counts()
    assert kinds.get("warm", 0) > 0 and kinds.get("cold", 0) > 0
    breakdown = phase_breakdown(obs.tracer)
    # Cold starts pay the restore/attach path; warm hits skip it.
    assert breakdown["cold"]["mmt_attach"]["count"] > 0
    assert breakdown["cold"]["exec"]["count"] > 0
    assert breakdown["warm"]["warm_hit"]["count"] > 0
    assert breakdown["warm"]["exec"]["count"] > 0
    assert "mmt_attach" not in breakdown["warm"]


def test_root_spans_match_recorder(w2_spans):
    obs, result = w2_spans
    roots = [s for s in obs.tracer.spans if s[5] == "invocation"]
    assert len(roots) == result.recorder.count()
    # Every root span closes after it opens and carries the kind the
    # recorder saw.
    kinds = set(result.recorder.start_kind_counts())
    for t0, t1, _pid, _tid, _name, _cat, trace_id, args in roots:
        assert t1 >= t0 and trace_id > 0
        assert args["kind"] in kinds


def test_registry_counts_match_recorder(w2_spans):
    obs, result = w2_spans
    totals = obs.registry.totals()
    invoked = sum(v for k, v in totals.items()
                  if k.startswith("invocations_total{"))
    assert invoked == result.recorder.count()
    attaches = obs.registry.counter("mmt_attaches_total")
    assert attaches > 0


def test_criu_platform_emits_restore_spans():
    wl = make_w2_diurnal(seed=1, duration=60.0, mean_rate=1.6,
                         soft_cap_bytes=5 * GB)
    with observed("spans") as obs:
        run_platform_workload("criu", wl, seed=1)
    names = {s[4] for s in obs.tracer.spans}
    assert "criu_restore" in names
    assert obs.registry.counter("criu_restores_total") > 0


def test_metrics_level_has_no_tracer():
    wl = make_w2_diurnal(seed=1, duration=30.0, mean_rate=1.6,
                         soft_cap_bytes=5 * GB)
    with observed("metrics") as obs:
        run_platform_workload("t-cxl", wl, seed=1)
    assert obs.tracer is None
    assert len(obs.registry) > 0
    assert obs.registry.prometheus_text()


def test_cluster_trace_has_node_tracks():
    from repro.mem.pools import CXLPool
    from repro.serverless.cluster import make_trenv_cluster
    cluster = make_trenv_cluster(3, CXLPool(128 * GB), seed=3)
    wl = make_w2_diurnal(seed=3, duration=90.0, mean_rate=1.6)
    with observed("spans") as obs:
        result = cluster.run_workload(wl)
    procs = obs.tracer.processes()
    assert "rack" in procs
    assert sum(1 for n in procs if n != "rack") == 3
    dispatched = sum(v for k, v in obs.registry.totals().items()
                     if k.startswith("dispatches_total{"))
    assert dispatched >= result.recorder.count()
    assert any(s[4] == "dispatch" for s in obs.tracer.spans)


def test_cli_trace_writes_loadable_json(tmp_path, capsys):
    from repro.cli import main
    out = tmp_path / "trace.json"
    assert main(["trace", "w2", "--duration", "20", "--out", str(out),
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["obs_level"] == "spans"
    assert report["trace_events"] > 0
    data = json.loads(out.read_text())
    assert data["traceEvents"]
    assert {ev["ph"] for ev in data["traceEvents"]} <= {"X", "i", "M"}


def test_cli_trace_metrics_level(tmp_path, capsys):
    from repro.cli import main
    assert main(["trace", "w2", "--duration", "20", "--obs-level",
                 "metrics", "--out", str(tmp_path / "t.json"),
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["metrics_totals"]
    assert "n_spans" not in report
    assert not (tmp_path / "t.json").exists()


def test_sweep_shard_merge_matches_serial():
    """Parallel shard registries merge to the serial run's totals."""
    from repro.bench.sweep import SweepConfig, run_sweep
    grid = [
        SweepConfig(seed=1, policy="warm-affinity", n_nodes=2,
                    trace="W2", duration=60.0),
        SweepConfig(seed=2, policy="least-loaded", n_nodes=2,
                    trace="scaleout", duration=30.0, rate=20.0),
    ]
    serial = run_sweep(grid, jobs=1, out_path=None, obs_level="metrics")
    fanned = run_sweep(grid, jobs=2, out_path=None, obs_level="metrics")
    assert serial["obs"]["totals"]
    assert serial["obs"]["totals"] == fanned["obs"]["totals"]
    assert serial["obs"]["registry"] == fanned["obs"]["registry"]
    assert serial["shards"] == fanned["shards"]
