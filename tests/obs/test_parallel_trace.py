"""Span-complete parallel traces: shard merge equals serial, byte for byte."""

import json

import pytest

from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.merge import (SpanMergeError, merge_shard_tracers,
                             serial_trace_ids, shard_remaps)
from repro.serverless.parallel import run_cluster_parallel
from repro.serverless.partition import ClusterSpec, plan_shards
from repro.workloads.synthetic import make_scaleout_uniform


def _setup(duration=30.0, nodes=4, seed=7, rate=20.0):
    workload = make_scaleout_uniform(seed=seed, duration=duration,
                                     rate=rate)
    return ClusterSpec(n_nodes=nodes, seed=seed), workload


# ---------------------------------------------------------------- id remap --

def test_serial_trace_ids_follow_wake_order():
    # Wake order sorts by (time, index); ids are 1-based positions.
    assert serial_trace_ids([0.0, 2.0, 1.0]) == [1, 3, 2]
    assert serial_trace_ids([5.0, 5.0, 1.0]) == [2, 3, 1]
    # Negative times clamp to "now" (0) but keep index order.
    assert serial_trace_ids([-1.0, 0.0, -2.0]) == [1, 2, 3]
    assert serial_trace_ids([]) == []


def test_shard_remaps_cover_ids_exactly_once():
    spec, workload = _setup()
    plan = plan_shards(spec, workload, 3)
    remaps = shard_remaps([e.time for e in workload.events], plan)
    assert len(remaps) == plan.n_shards
    seen = [sid for remap in remaps for sid in remap.values()]
    assert sorted(seen) == list(range(1, len(workload.events) + 1))
    for remap in remaps:
        assert sorted(remap) == list(range(1, len(remap) + 1))


# ------------------------------------------------------------ byte identity --

def test_parallel_trace_byte_identical_to_serial():
    spec, workload = _setup()
    serial = run_cluster_parallel(spec, workload, jobs=1,
                                  obs_level="spans")
    assert serial.span_merge == "serial"
    ref = json.dumps(to_chrome_trace(serial.tracer))
    for jobs in (2, 3, 4):
        par = run_cluster_parallel(spec, workload, jobs=jobs,
                                   obs_level="spans")
        assert par.span_merge == "merged"
        assert json.dumps(to_chrome_trace(par.tracer)) == ref
    assert validate_chrome_trace(json.loads(ref)) == []


def test_merged_tracer_is_shard_count_invariant():
    spec, workload = _setup(nodes=3)
    two = run_cluster_parallel(spec, workload, jobs=2, obs_level="spans")
    three = run_cluster_parallel(spec, workload, jobs=3,
                                 obs_level="spans")
    assert two.tracer.to_dict() == three.tracer.to_dict()


def test_metrics_level_records_no_trace():
    spec, workload = _setup(duration=10.0, nodes=2)
    par = run_cluster_parallel(spec, workload, jobs=2,
                               obs_level="metrics")
    assert par.tracer is None
    assert par.span_merge is None
    assert par.registry is not None


# ------------------------------------------------------- fallback reasons --

def test_merge_rejects_missing_shard_trace():
    with pytest.raises(SpanMergeError, match="no span trace"):
        merge_shard_tracers([None], [{}])
    with pytest.raises(SpanMergeError, match="no shard traces"):
        merge_shard_tracers([], [])


def test_merge_rejects_disagreeing_pid_maps():
    from repro.obs.trace import SpanTracer
    a, b = SpanTracer(), SpanTracer()
    a.prebind_nodes(["node0", "node1"])
    b.prebind_nodes(["node1", "node0"])
    with pytest.raises(SpanMergeError, match="pid map differs"):
        merge_shard_tracers([a.to_dict(), b.to_dict()], [{}, {}])


def test_merge_rejects_begin_count_mismatch():
    from repro.obs.trace import SpanTracer
    tracer = SpanTracer()
    tracer.begin("fn", 0.0)
    with pytest.raises(SpanMergeError, match="owns 2 events"):
        merge_shard_tracers([tracer.to_dict()], [{1: 1, 2: 2}])


def test_merge_failure_surfaces_reason_and_reruns_serial(monkeypatch):
    """A broken merge invariant falls back with an explicit reason."""
    from repro.serverless import parallel as par_mod

    def broken_merge(dicts, remaps):
        raise SpanMergeError("synthetic invariant breach")

    monkeypatch.setattr("repro.obs.merge.merge_shard_tracers",
                        broken_merge)
    spec, workload = _setup(duration=10.0, nodes=2)
    out = par_mod.run_cluster_parallel(spec, workload, jobs=2,
                                       obs_level="spans")
    assert out.report.mode == "parallel"
    assert out.span_merge == "fallback: synthetic invariant breach"
    # The trace still exists (serial re-run) and is the serial trace.
    serial = par_mod.run_cluster_parallel(spec, workload, jobs=1,
                                          obs_level="spans")
    assert json.dumps(to_chrome_trace(out.tracer)) == \
        json.dumps(to_chrome_trace(serial.tracer))


def test_capture_report_surfaces_span_merge(tmp_path):
    from repro.obs.capture import run_traced_scenario
    out = tmp_path / "trace.json"
    report = run_traced_scenario("cluster", duration=10.0, nodes=2,
                                 jobs=2, out=str(out))
    assert report["parallel"]["mode"] == "parallel"
    assert report["parallel"]["span_merge"] == "merged"
    assert report["n_links"] >= 0
    assert validate_chrome_trace(json.loads(out.read_text())) == []
