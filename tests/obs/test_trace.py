"""SpanTracer mechanics: lanes, binding, span/instant placement."""

from repro.obs.trace import CONTROL_TID, RACK_PID, SpanTracer


def test_begin_is_unbound():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 1.0)
    assert not ctx.bound
    assert ctx.pid == -1 and ctx.tid == -1
    assert ctx.function == "fn" and ctx.t_begin == 1.0


def test_trace_ids_are_unique_and_increasing():
    tracer = SpanTracer()
    ids = [tracer.begin("fn", 0.0).trace_id for _ in range(5)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5
    assert 0 not in ids  # 0 is reserved for node control spans


def test_pid_assignment_first_use_order():
    tracer = SpanTracer()
    assert tracer.pid_for("node1") == 1
    assert tracer.pid_for("node0") == 2
    assert tracer.pid_for("node1") == 1  # stable on reuse
    assert tracer.processes() == {"rack": RACK_PID, "node1": 1, "node0": 2}


def test_lanes_recycle_smallest_first():
    tracer = SpanTracer()
    a, b, c = (tracer.begin(f, 0.0) for f in "abc")
    tracer.bind(a, "node0")
    tracer.bind(b, "node0")
    tracer.bind(c, "node0")
    assert (a.tid, b.tid, c.tid) == (1, 2, 3)
    # Free the middle and first lanes; the next bind takes the smallest.
    tracer.finish(a, 1.0)
    tracer.finish(b, 1.0)
    d = tracer.begin("d", 2.0)
    tracer.bind(d, "node0")
    assert d.tid == 1
    e = tracer.begin("e", 2.0)
    tracer.bind(e, "node0")
    assert e.tid == 2
    # Lane high-water mark is 3: no lane above c's was ever allocated.
    assert tracer.lane_count(d.pid) == 3


def test_rebind_releases_old_lane():
    tracer = SpanTracer()
    a = tracer.begin("a", 0.0)
    tracer.bind(a, "node0")
    old_pid, old_tid = a.pid, a.tid
    tracer.bind(a, "node1")  # re-dispatch after crash
    assert a.pid != old_pid
    # The old lane is free again on node0.
    b = tracer.begin("b", 1.0)
    tracer.bind(b, "node0")
    assert (b.pid, b.tid) == (old_pid, old_tid)


def test_span_on_unbound_or_none_ctx_is_noop():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 0.0)
    tracer.span(ctx, "exec", 0.0, 1.0)
    tracer.span(None, "exec", 0.0, 1.0)
    assert tracer.n_spans == 0


def test_span_records_lane_and_trace_id():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 0.0)
    tracer.bind(ctx, "node0")
    tracer.span(ctx, "exec", 1.0, 2.5, args={"k": "v"})
    (t0, t1, pid, tid, name, cat, trace_id, args), = tracer.spans
    assert (t0, t1) == (1.0, 2.5)
    assert (pid, tid) == (ctx.pid, ctx.tid)
    assert name == "exec" and cat == "phase"
    assert trace_id == ctx.trace_id
    assert args == {"k": "v"}


def test_node_span_uses_control_tid():
    tracer = SpanTracer()
    tracer.node_span("node0", "retire", 1.0, 2.0)
    (t0, t1, pid, tid, name, cat, trace_id, args), = tracer.spans
    assert pid == tracer.pid_for("node0") and tid == CONTROL_TID
    assert cat == "node" and trace_id == 0


def test_instant_placement_precedence():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 0.0)
    tracer.bind(ctx, "node0")
    tracer.instant("on_lane", 1.0, node="node0", ctx=ctx)
    tracer.instant("on_node", 2.0, node="node0")
    tracer.instant("on_rack", 3.0)
    lane, node, rack = tracer.instants
    assert lane[1:3] == (ctx.pid, ctx.tid)
    assert node[1:3] == (tracer.pid_for("node0"), CONTROL_TID)
    assert rack[1:3] == (RACK_PID, CONTROL_TID)
    assert tracer.n_instants == 3
