"""SpanTracer mechanics: lanes, binding, span/instant placement."""

from repro.obs.trace import CONTROL_TID, RACK_PID, SpanTracer


def test_begin_is_unbound():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 1.0)
    assert not ctx.bound
    assert ctx.pid == -1 and ctx.tid == -1
    assert ctx.function == "fn" and ctx.t_begin == 1.0


def test_trace_ids_are_unique_and_increasing():
    tracer = SpanTracer()
    ids = [tracer.begin("fn", 0.0).trace_id for _ in range(5)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5
    assert 0 not in ids  # 0 is reserved for node control spans


def test_pid_assignment_first_use_order():
    tracer = SpanTracer()
    assert tracer.pid_for("node1") == 1
    assert tracer.pid_for("node0") == 2
    assert tracer.pid_for("node1") == 1  # stable on reuse
    assert tracer.processes() == {"rack": RACK_PID, "node1": 1, "node0": 2}


def test_lanes_recycle_smallest_first():
    tracer = SpanTracer()
    a, b, c = (tracer.begin(f, 0.0) for f in "abc")
    tracer.bind(a, "node0")
    tracer.bind(b, "node0")
    tracer.bind(c, "node0")
    assert (a.tid, b.tid, c.tid) == (1, 2, 3)
    # Free the middle and first lanes; the next bind takes the smallest.
    tracer.finish(a, 1.0)
    tracer.finish(b, 1.0)
    d = tracer.begin("d", 2.0)
    tracer.bind(d, "node0")
    assert d.tid == 1
    e = tracer.begin("e", 2.0)
    tracer.bind(e, "node0")
    assert e.tid == 2
    # Lane high-water mark is 3: no lane above c's was ever allocated.
    assert tracer.lane_count(d.pid) == 3


def test_rebind_releases_old_lane():
    tracer = SpanTracer()
    a = tracer.begin("a", 0.0)
    tracer.bind(a, "node0")
    old_pid, old_tid = a.pid, a.tid
    tracer.bind(a, "node1")  # re-dispatch after crash
    assert a.pid != old_pid
    # The old lane is free again on node0.
    b = tracer.begin("b", 1.0)
    tracer.bind(b, "node0")
    assert (b.pid, b.tid) == (old_pid, old_tid)


def test_span_on_unbound_or_none_ctx_is_noop():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 0.0)
    tracer.span(ctx, "exec", 0.0, 1.0)
    tracer.span(None, "exec", 0.0, 1.0)
    assert tracer.n_spans == 0


def test_span_records_lane_and_trace_id():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 0.0)
    tracer.bind(ctx, "node0")
    tracer.span(ctx, "exec", 1.0, 2.5, args={"k": "v"})
    (t0, t1, pid, tid, name, cat, trace_id, args), = tracer.spans
    assert (t0, t1) == (1.0, 2.5)
    assert (pid, tid) == (ctx.pid, ctx.tid)
    assert name == "exec" and cat == "phase"
    assert trace_id == ctx.trace_id
    assert args == {"k": "v"}


def test_node_span_uses_control_tid():
    tracer = SpanTracer()
    tracer.node_span("node0", "retire", 1.0, 2.0)
    (t0, t1, pid, tid, name, cat, trace_id, args), = tracer.spans
    assert pid == tracer.pid_for("node0") and tid == CONTROL_TID
    assert cat == "node" and trace_id == 0


def test_instant_placement_precedence():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 0.0)
    tracer.bind(ctx, "node0")
    tracer.instant("on_lane", 1.0, node="node0", ctx=ctx)
    tracer.instant("on_node", 2.0, node="node0")
    tracer.instant("on_rack", 3.0)
    lane, node, rack = tracer.instants
    assert lane[1:3] == (ctx.pid, ctx.tid)
    assert node[1:3] == (tracer.pid_for("node0"), CONTROL_TID)
    assert rack[1:3] == (RACK_PID, CONTROL_TID)
    assert tracer.n_instants == 3


def test_finish_emits_invocation_close_instant():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 0.0)
    tracer.bind(ctx, "node0")
    pid, tid, trace_id = ctx.pid, ctx.tid, ctx.trace_id
    tracer.finish(ctx, 4.5)
    (t, ipid, itid, name, args), = tracer.instants
    assert (t, ipid, itid) == (4.5, pid, tid)
    assert name == "invocation_close"
    assert args == {"trace_id": trace_id}
    # The finish timestamp is recorded, not silently dropped, and the
    # lane is free again.
    assert not ctx.bound


def test_finish_unbound_context_is_silent():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 0.0)   # shed before any bind
    tracer.finish(ctx, 1.0)
    assert tracer.n_instants == 0
    # Double-finish after a bind is also safe (lane released once).
    ctx2 = tracer.begin("fn", 0.0)
    tracer.bind(ctx2, "node0")
    tracer.finish(ctx2, 1.0)
    tracer.finish(ctx2, 2.0)
    assert tracer.n_instants == 1


def test_prebind_pins_pids_to_given_order():
    tracer = SpanTracer()
    tracer.prebind_nodes(["node0", "node1", "node2"])
    assert tracer.processes() == {"rack": RACK_PID, "node0": 1,
                                  "node1": 2, "node2": 3}
    # First-bind order no longer matters.
    ctx = tracer.begin("fn", 0.0)
    tracer.bind(ctx, "node2")
    assert ctx.pid == 3


def test_links_accept_contexts_and_raw_ids():
    tracer = SpanTracer()
    src = tracer.begin("granter", 0.0)
    dst = tracer.begin("waiter", 0.0)
    tracer.link("slot_grant", 1.0, 2.0, src=src, dst=dst,
                args={"function": "fn"})
    tracer.link("backoff", 3.0, 4.0, dst=dst.trace_id)
    assert tracer.n_links == 2
    grant, backoff = tracer.links
    assert grant == (1.0, 2.0, "slot_grant", src.trace_id, dst.trace_id,
                     {"function": "fn"})
    assert backoff == (3.0, 4.0, "backoff", 0, dst.trace_id, None)
    # Links need no lane: neither context was ever bound.
    assert not src.bound and not dst.bound


def test_to_dict_roundtrip_preserves_everything():
    tracer = SpanTracer()
    tracer.prebind_nodes(["node0", "node1"])
    a = tracer.begin("a", 0.0)
    tracer.bind(a, "node1")
    tracer.span(a, "exec", 0.5, 1.5, args={"k": "v"})
    tracer.instant("mark", 0.7, ctx=a)
    tracer.link("pool_fetch", 0.5, 0.6, dst=a, args={"pool": "cxl"})
    tracer.finish(a, 2.0)
    clone = SpanTracer.from_dict(tracer.to_dict())
    assert clone.processes() == tracer.processes()
    assert clone.spans == tracer.spans
    assert clone.instants == tracer.instants
    assert clone.links == tracer.links
    assert clone.lane_count(2) == tracer.lane_count(2)
    # Fresh ids continue where the original left off.
    assert clone.begin("b", 3.0).trace_id == tracer.begin("b", 3.0).trace_id
