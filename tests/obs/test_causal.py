"""Causal graph + critical path: exact blame, clipping, link fills."""

from fractions import Fraction

from repro.mem.layout import GB
from repro.obs.causal import (UNATTRIBUTED, BlameProfile, CausalGraph,
                              folded_stacks)
from repro.obs.observer import observed
from repro.obs.trace import SpanTracer


def _invocation(tracer, function, node, t0, t1, kind="cold",
                phases=()):
    """Record one complete invocation with the given phase spans."""
    ctx = tracer.begin(function, t0)
    tracer.bind(ctx, node)
    for name, p0, p1, args in phases:
        tracer.span(ctx, name, p0, p1, args=args)
    tracer.span(ctx, function, t0, t1, cat="invocation",
                args={"kind": kind})
    tracer.finish(ctx, t1)
    return ctx


def test_blame_tiles_root_exactly():
    tracer = SpanTracer()
    _invocation(tracer, "fn", "node0", 0.0, 1.0, phases=[
        ("acquire", 0.0, 0.4, None),
        ("exec", 0.4, 1.0, None),
    ])
    path = CausalGraph(tracer).critical_path(1)
    assert path is not None
    # Exact float semantics: 0.4 is not 2/5, and the blame must carry
    # the actual IEEE values so the telescoped sum is bit-exact.
    assert path.blame == {"acquire": Fraction(0.4),
                          "exec": Fraction(1.0) - Fraction(0.4)}
    assert path.total_s() == path.e2e == 1.0
    assert [s.label for s in path.segments] == ["acquire", "exec"]


def test_nested_phase_gets_deepest_blame():
    tracer = SpanTracer()
    _invocation(tracer, "fn", "node0", 0.0, 1.0, phases=[
        ("acquire", 0.0, 0.8, None),
        ("mmt_attach", 0.2, 0.5, {"pool": "cxl"}),
        ("exec", 0.8, 1.0, None),
    ])
    path = CausalGraph(tracer).critical_path(1)
    # The inner attach claims its window; acquire keeps the remainder.
    assert path.blame["mmt_attach"] == Fraction(0.5) - Fraction(0.2)
    assert path.blame["acquire"] == (Fraction(0.8) - Fraction(0.5)
                                     + Fraction(0.2))
    assert path.pools == {"cxl": Fraction(0.5) - Fraction(0.2)}
    assert path.total_s() == path.e2e


def test_uncovered_gap_falls_to_link_then_unattributed():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 0.0)
    tracer.bind(ctx, "node0")
    tracer.span(ctx, "exec", 0.5, 1.0)
    tracer.link("slot_grant", 0.0, 0.25, dst=ctx)
    tracer.span(ctx, "fn", 0.0, 1.0, cat="invocation",
                args={"kind": "warm"})
    tracer.finish(ctx, 1.0)
    path = CausalGraph(tracer).critical_path(ctx.trace_id)
    labels = {s.label: s for s in path.segments}
    assert labels["wait:slot_grant"].source == "link"
    assert labels[UNATTRIBUTED].source == "gap"
    assert path.blame["wait:slot_grant"] == Fraction(1, 4)
    assert path.blame[UNATTRIBUTED] == Fraction(1, 4)
    assert path.total_s() == path.e2e


def test_crashed_attempt_spans_clip_out():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 0.0)
    tracer.bind(ctx, "node0")
    # The first attempt's work, then the node crashed at t=0.3.
    tracer.span(ctx, "acquire", 0.0, 0.3)
    tracer.link("crash_redispatch", 0.3, 0.5, dst=ctx,
                args={"from": "node0"})
    tracer.bind(ctx, "node1")
    tracer.span(ctx, "acquire", 0.5, 0.7)
    tracer.span(ctx, "exec", 0.7, 1.0)
    tracer.span(ctx, "fn", 0.5, 1.0, cat="invocation",
                args={"kind": "cold"})
    tracer.finish(ctx, 1.0)
    path = CausalGraph(tracer).critical_path(ctx.trace_id)
    # Only the successful attempt's interval is blamed...
    assert path.total_s() == path.e2e == 0.5
    assert path.blame == {"acquire": Fraction(0.7) - Fraction(0.5),
                          "exec": Fraction(1.0) - Fraction(0.7)}
    assert path.node == "node1"
    # ...and the re-dispatch wait shows up as a pre-root wait.
    assert path.pre_waits == {
        "crash_redispatch": Fraction(0.5) - Fraction(0.3)}


def test_incomplete_invocation_has_no_path():
    tracer = SpanTracer()
    ctx = tracer.begin("fn", 0.0)
    tracer.bind(ctx, "node0")
    tracer.span(ctx, "acquire", 0.0, 0.2)   # no root: never completed
    graph = CausalGraph(tracer)
    assert graph.critical_path(ctx.trace_id) is None
    assert graph.trace_ids() == []


def test_waiters_on_inverts_links():
    tracer = SpanTracer()
    granter = tracer.begin("g", 0.0)
    waiter = tracer.begin("w", 0.0)
    tracer.link("slot_grant", 1.0, 2.0, src=granter, dst=waiter)
    graph = CausalGraph(tracer)
    (link,) = graph.waiters_on(granter.trace_id)
    assert link[2] == "slot_grant" and link[4] == waiter.trace_id
    assert graph.waiters_on(waiter.trace_id) == []


def test_blame_profile_merge_matches_single_pass():
    tracer = SpanTracer()
    for i in range(6):
        _invocation(tracer, "fn", f"node{i % 2}", float(i), i + 0.5,
                    kind=("warm" if i % 3 else "cold"),
                    phases=[("exec", float(i), i + 0.5, None)])
    paths = CausalGraph(tracer).all_paths()
    whole = BlameProfile()
    for path in paths:
        whole.add_path(path)
    left, right = BlameProfile(), BlameProfile()
    for path in paths[:2]:
        left.add_path(path)
    for path in paths[2:]:
        right.add_path(path)
    left.merge_from(right)
    assert left.to_dict() == whole.to_dict()
    assert whole.n == 6


def test_folded_stacks_format():
    tracer = SpanTracer()
    _invocation(tracer, "fn", "node0", 0.0, 1.0, kind="cold", phases=[
        ("exec", 0.0, 1.0, None)])
    out = folded_stacks(CausalGraph(tracer).all_paths())
    assert out == "cold;node0;exec 1000000\n"


def test_real_run_is_fully_attributed():
    """W2 on t-cxl: every path exact, no unattributed time."""
    from repro.bench.harness import run_platform_workload
    from repro.workloads.synthetic import make_w2_diurnal

    wl = make_w2_diurnal(seed=1, duration=60.0, mean_rate=1.6,
                         soft_cap_bytes=5 * GB)
    with observed("spans") as obs:
        result = run_platform_workload("t-cxl", wl, seed=1)
    paths = CausalGraph(obs.tracer).all_paths()
    assert len(paths) == result.recorder.count()
    for path in paths:
        assert path.total_s() == path.e2e
        assert all(seg.label != UNATTRIBUTED for seg in path.segments)
    # Recorded e2e values line up 1:1 with the root spans.
    recorded = sorted(r.e2e for r in result.recorder.results)
    attributed = sorted(p.e2e for p in paths)
    assert recorded == attributed
