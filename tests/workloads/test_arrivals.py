import pytest

from repro.mem.layout import GB
from repro.workloads.azure import make_azure_workload
from repro.workloads.functions import FUNCTIONS
from repro.workloads.huawei import make_huawei_workload
from repro.workloads.synthetic import (ArrivalEvent, Workload,
                                       make_w1_bursty, make_w2_diurnal)

ALL_NAMES = {f.name for f in FUNCTIONS}


@pytest.mark.parametrize("maker", [make_w1_bursty, make_w2_diurnal,
                                   make_azure_workload, make_huawei_workload])
class TestCommonInvariants:
    def test_events_sorted_and_in_range(self, maker):
        wl = maker(seed=1, duration=600.0)
        wl.validate()

    def test_deterministic_per_seed(self, maker):
        a = maker(seed=7, duration=600.0)
        b = maker(seed=7, duration=600.0)
        assert a.events == b.events

    def test_different_seeds_differ(self, maker):
        a = maker(seed=1, duration=600.0)
        b = maker(seed=2, duration=600.0)
        assert a.events != b.events

    def test_functions_from_suite(self, maker):
        wl = maker(seed=3, duration=600.0)
        assert set(wl.functions_used()) <= ALL_NAMES

    def test_nonempty(self, maker):
        wl = maker(seed=3, duration=600.0)
        assert wl.n_invocations > 10


class TestW1:
    def test_interburst_gap_exceeds_keepalive(self):
        wl = make_w1_bursty(seed=0, duration=1800.0, keep_alive=600.0)
        per_func = {}
        for e in wl.events:
            per_func.setdefault(e.function, []).append(e.time)
        for times in per_func.values():
            times.sort()
            # Identify burst boundaries: gaps much larger than the spread.
            gaps = [b - a for a, b in zip(times, times[1:]) if b - a > 60.0]
            for gap in gaps:
                assert gap > 600.0

    def test_burst_size_respected(self):
        wl = make_w1_bursty(seed=0, duration=1800.0, burst_size=12,
                            bursts_per_function=2)
        counts = {}
        for e in wl.events:
            counts[e.function] = counts.get(e.function, 0) + 1
        for name, count in counts.items():
            assert count <= 24

    def test_too_short_duration_clamps_bursts(self):
        wl = make_w1_bursty(duration=100.0, keep_alive=600.0,
                            bursts_per_function=3, burst_size=5)
        counts = {}
        for e in wl.events:
            counts[e.function] = counts.get(e.function, 0) + 1
        # Only one burst fits per function.
        for count in counts.values():
            assert count <= 5


class TestW2:
    def test_tight_memory_cap(self):
        wl = make_w2_diurnal(seed=0, duration=600.0)
        assert wl.soft_cap_bytes == 32 * GB

    def test_rate_varies_over_time(self):
        wl = make_w2_diurnal(seed=0, duration=1800.0, mean_rate=2.0,
                             cycles=3.0)
        # Split into 6 windows; diurnal modulation should create clear
        # high/low alternation.
        windows = [0] * 6
        for e in wl.events:
            windows[min(5, int(e.time / 300.0))] += 1
        assert max(windows) > 1.5 * max(1, min(windows))


class TestTraces:
    def test_azure_skewed_popularity(self):
        wl = make_azure_workload(seed=0, duration=1800.0)
        counts = {}
        for e in wl.events:
            counts[e.function] = counts.get(e.function, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        # Zipf: top function well above the median one.
        assert ordered[0] > 3 * ordered[len(ordered) // 2]

    def test_huawei_has_spiky_minutes(self):
        wl = make_huawei_workload(seed=0, duration=1800.0)
        per_minute = {}
        for e in wl.events:
            per_minute[int(e.time // 60)] = per_minute.get(int(e.time // 60), 0) + 1
        counts = sorted(per_minute.values())
        assert counts[-1] > 3 * counts[len(counts) // 2]


def test_workload_validate_rejects_unsorted():
    wl = Workload("bad", [ArrivalEvent(5.0, "DH"), ArrivalEvent(1.0, "DH")],
                  duration=10.0)
    with pytest.raises(ValueError):
        wl.validate()


def test_workload_validate_rejects_out_of_range():
    wl = Workload("bad", [ArrivalEvent(11.0, "DH")], duration=10.0)
    with pytest.raises(ValueError):
        wl.validate()
