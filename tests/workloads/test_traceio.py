"""Tests for real-trace CSV loading (Azure wide / Huawei long formats)."""

from pathlib import Path

import pytest

from repro.workloads.functions import FUNCTIONS
from repro.workloads.traceio import (load_counts_csv, load_workload,
                                     map_trace_functions,
                                     workload_from_counts)

FIXTURES = Path(__file__).parent.parent / "fixtures"
AZURE = FIXTURES / "azure_sample.csv"
HUAWEI = FIXTURES / "huawei_sample.csv"


class TestWideFormat:
    def test_parses_minutes_and_counts(self):
        counts = load_counts_csv(AZURE)
        # Column "1" is minute 0.
        assert counts[0]["funcA"] == 12
        assert counts[3]["funcA"] == 44
        assert counts[1]["funcC"] == 25
        # Zero counts omitted.
        assert "funcC" not in counts[0]

    def test_metadata_columns_ignored(self):
        counts = load_counts_csv(AZURE)
        all_fns = {fn for per in counts.values() for fn in per}
        assert all_fns == {"funcA", "funcB", "funcC"}


class TestLongFormat:
    def test_parses_rows(self):
        counts = load_counts_csv(HUAWEI)
        assert counts[0] == {"svc-alpha": 10, "svc-beta": 2}
        assert counts[1] == {"svc-alpha": 120}
        assert counts[4] == {"svc-alpha": 3}

    def test_bad_numbers_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("minute,function,count\n0,f,notanumber\n")
        with pytest.raises(ValueError, match="bad number"):
            load_counts_csv(bad)

    def test_negative_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("minute,function,count\n-1,f,3\n")
        with pytest.raises(ValueError, match="negative"):
            load_counts_csv(bad)

    def test_missing_function_column(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("minute,count\n0,3\n")
        with pytest.raises(ValueError, match="function column"):
            load_counts_csv(bad)


class TestMapping:
    def test_popularity_rank_mapping(self):
        counts = load_counts_csv(HUAWEI)
        mapping = map_trace_functions(counts)
        # svc-alpha (133 total) is the most popular -> first suite fn.
        assert mapping["svc-alpha"] == FUNCTIONS[0].name
        assert mapping["svc-gamma"] == FUNCTIONS[1].name
        assert mapping["svc-beta"] == FUNCTIONS[2].name

    def test_round_robin_wraps(self):
        counts = {0: {f"f{i}": 10 - i for i in range(len(FUNCTIONS) + 2)}}
        mapping = map_trace_functions(counts)
        assert mapping[f"f{len(FUNCTIONS)}"] == FUNCTIONS[0].name


class TestWorkloadSynthesis:
    def test_counts_preserved(self):
        counts = load_counts_csv(HUAWEI)
        wl = workload_from_counts(counts, "huawei-sample", seed=1)
        total = sum(c for per in counts.values() for c in per.values())
        assert wl.n_invocations == total
        wl.validate()

    def test_events_stay_in_their_minute(self):
        counts = load_counts_csv(HUAWEI)
        wl = workload_from_counts(counts, "x", seed=1)
        spikes = [e for e in wl.events if e.time >= 60.0 and e.time < 120.0]
        assert len(spikes) == 120   # svc-alpha's minute-1 burst

    def test_deterministic_per_seed(self):
        counts = load_counts_csv(AZURE)
        a = workload_from_counts(counts, "x", seed=4)
        b = workload_from_counts(counts, "x", seed=4)
        assert a.events == b.events

    def test_one_call_loader(self):
        wl = load_workload(AZURE, seed=2)
        assert wl.name == "azure_sample"
        assert wl.n_invocations > 0
        assert wl.duration == 5 * 60.0

    def test_loaded_workload_runs_end_to_end(self):
        from repro.bench.harness import make_platform
        from repro.serverless.runner import run_workload

        wl = load_workload(HUAWEI, seed=2)
        result = run_workload(make_platform("t-cxl", seed=2), wl)
        assert result.recorder.count() == wl.n_invocations


def test_empty_file_rejected(tmp_path):
    empty = tmp_path / "empty.csv"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_counts_csv(empty)
