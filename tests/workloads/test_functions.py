import numpy as np
import pytest

from repro.mem.layout import MB
from repro.sim.rng import SeededRNG
from repro.workloads.functions import (FUNCTIONS, FunctionProfile,
                                       function_by_name)


def test_table4_suite_complete():
    names = [f.name for f in FUNCTIONS]
    assert names == ["DH", "JS", "PR", "IR", "IP", "VP", "CH", "CR", "JJS",
                     "IFR"]


def test_table4_memory_sizes():
    assert function_by_name("DH").mem_bytes == pytest.approx(50.4 * MB)
    assert function_by_name("IR").mem_bytes == pytest.approx(855 * MB)
    assert function_by_name("VP").mem_bytes == pytest.approx(324 * MB)


def test_table4_thread_counts():
    assert function_by_name("PR").n_threads == 395
    assert function_by_name("IR").n_threads == 141
    assert function_by_name("DH").n_threads == 14


def test_languages():
    assert function_by_name("CR").lang == "nodejs"
    assert function_by_name("JJS").lang == "nodejs"
    assert function_by_name("IFR").lang == "nodejs"
    assert function_by_name("IR").lang == "python"


def test_read_only_ratios_span_paper_range():
    """§5.1: 24% to 90% of pages are read-only."""
    ratios = [f.read_only_ratio for f in FUNCTIONS]
    assert min(ratios) == pytest.approx(0.24, abs=0.01)
    assert max(ratios) == pytest.approx(0.90, abs=0.01)


def test_ir_read_heavy_ifr_write_heavy():
    assert function_by_name("IR").read_only_ratio > 0.85
    assert function_by_name("IFR").read_only_ratio < 0.30


def test_short_functions_under_100ms():
    """§9.2.1: DH and IR have <100 ms runtimes."""
    assert function_by_name("DH").exec_time_ideal < 0.1
    assert function_by_name("IR").exec_time_ideal < 0.1


def test_ch_is_io_bound():
    ch = function_by_name("CH")
    assert ch.io_time > ch.exec_cpu


def test_touch_fraction_within_unit():
    for f in FUNCTIONS:
        assert 0.0 < f.touch_fraction <= 1.0


def test_unknown_function_raises():
    with pytest.raises(KeyError):
        function_by_name("NOPE")


def test_make_trace_deterministic():
    rng = SeededRNG(3)
    f = function_by_name("JS")
    a = f.make_trace(SeededRNG(3), invocation=5)
    b = f.make_trace(SeededRNG(3), invocation=5)
    c = f.make_trace(SeededRNG(3), invocation=6)
    assert np.array_equal(a.read_pages, b.read_pages)
    assert not np.array_equal(a.read_pages, c.read_pages)


def test_trace_matches_profile_stats():
    f = function_by_name("IR")
    trace = f.make_trace(SeededRNG(1))
    assert trace.distinct_reads == pytest.approx(f.touched_pages, rel=0.01)
    assert trace.read_only_ratio == pytest.approx(f.read_only_ratio, abs=0.02)


def test_invocation_traces_mostly_overlap():
    """Consecutive invocations touch mostly the same pages (what REAP's
    recorded working set exploits)."""
    f = function_by_name("JS")
    base = f.base_trace(SeededRNG(1))
    inv = f.make_trace(SeededRNG(1), invocation=3)
    overlap = len(np.intersect1d(base.read_pages, inv.read_pages))
    assert overlap > 0.85 * len(inv.read_pages)
    assert overlap < len(inv.read_pages)  # but not identical


def test_content_ids_shared_prefix_across_same_language():
    a = function_by_name("JS").content_ids()
    b = function_by_name("DH").content_ids()
    shared = min(len(a), len(b), 9000)
    # The runtime prefix must be identical (dedupable).
    n_shared_pages = (38 * MB) // 4096
    assert np.array_equal(a[:n_shared_pages], b[:n_shared_pages])
    # Function-specific tails must differ.
    assert a[n_shared_pages + 1] != b[n_shared_pages + 1]


def test_content_ids_disjoint_across_languages():
    py = function_by_name("JS").content_ids()
    js = function_by_name("JJS").content_ids()
    assert len(np.intersect1d(py, js)) == 0


def test_content_ids_stable():
    a = function_by_name("PR").content_ids()
    b = function_by_name("PR").content_ids()
    assert np.array_equal(a, b)


def test_image_pages_consistent():
    f = function_by_name("CR")
    assert f.image_pages == (f.mem_bytes + 4095) // 4096
