"""Regression tests for the base-trace memo (found by `lint --deep`).

The original ``_BASE_TRACE_CACHE`` was a plain unbounded dict that
memoised unconditionally — it ignored :data:`repro.optflags.trace_cache`
(the A/B contract every optimisation flag must honour) and grew without
limit across long parameter sweeps.  It now routes through
:func:`repro.workloads.cache.memoized`: flag-gated, bounded LRU, and
certified shard-safe (the value is a pure function of the key).
"""

import numpy as np

from repro import optflags
from repro.sim.rng import SeededRNG
from repro.workloads import functions as fmod
from repro.workloads.cache import MAX_ENTRIES
from repro.workloads.functions import FUNCTIONS, function_by_name


def setup_function(_):
    fmod._BASE_TRACE_CACHE.clear()
    fmod._INV_TRACE_CACHE.clear()


def traces_equal(a, b):
    return (np.array_equal(a.read_pages, b.read_pages)
            and np.array_equal(a.write_pages, b.write_pages))


def test_base_trace_cache_respects_the_flag():
    f = function_by_name("DH")
    with optflags.disabled("trace_cache"):
        f.base_trace(SeededRNG(7))
        assert len(fmod._BASE_TRACE_CACHE) == 0  # flag off -> no memo
    f.base_trace(SeededRNG(7))
    assert len(fmod._BASE_TRACE_CACHE) == 1


def test_base_trace_identical_with_and_without_cache():
    f = function_by_name("IR")
    cached_cold = f.base_trace(SeededRNG(11))
    cached_warm = f.base_trace(SeededRNG(11))
    assert cached_warm is cached_cold  # memo hit
    with optflags.disabled("trace_cache"):
        uncached = f.base_trace(SeededRNG(11))
    assert uncached is not cached_cold
    assert traces_equal(uncached, cached_cold)


def test_base_trace_cache_is_bounded():
    rngs = [SeededRNG(seed) for seed in range(12)]
    for rng in rngs:
        for f in FUNCTIONS:
            f.base_trace(rng)
    assert len(fmod._BASE_TRACE_CACHE) <= MAX_ENTRIES


def test_distinct_keys_get_distinct_traces():
    f = function_by_name("DH")
    a = f.base_trace(SeededRNG(1))
    b = f.base_trace(SeededRNG(2))
    assert not traces_equal(a, b)
