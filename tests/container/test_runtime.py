import pytest

from repro.container.container import SANDBOX_KERNEL_OVERHEAD, SandboxState
from repro.container.rootfs import (FUNCTION_MOUNTPOINT, FunctionOverlayPool,
                                    RootfsBuilder)
from repro.container.runtime import ContainerRuntime
from repro.kernel.mounts import MountTable
from repro.node import Node
from repro.workloads.functions import function_by_name


def make_runtime():
    node = Node()
    return node, ContainerRuntime(node)


class TestColdCreate:
    def test_cold_create_assembles_everything(self):
        node, runtime = make_runtime()

        def proc():
            sb = yield runtime.create_sandbox_cold("JS")
            return sb, node.now

        sb, elapsed = sim_run(node, proc())
        assert sb.state == SandboxState.ACTIVE
        assert sb.function == "JS"
        assert sb.mount_table.root_pivoted
        assert len(sb.mount_table.device_nodes) == 6
        assert sb.mount_table.visible(FUNCTION_MOUNTPOINT) is sb.function_overlay
        assert len(sb.live_processes) == 1        # the init proc
        # Cold path: netns (80 ms) + rootfs + cgroup create + migrate.
        assert 0.12 < elapsed < 0.30

    def test_cold_create_charges_kernel_overhead(self):
        node, runtime = make_runtime()
        sim_run(node, _create(runtime, "JS"))
        assert node.memory.usage["sandbox-kernel"] == SANDBOX_KERNEL_OVERHEAD

    def test_concurrent_cold_creates_contend_on_netns(self):
        node, runtime = make_runtime()
        finish = []

        def one():
            yield runtime.create_sandbox_cold("JS")
            finish.append(node.now)

        for _ in range(15):
            node.sim.spawn(one())
        node.sim.run()
        # §3.3: 15 concurrent starts push network setup alone to ~400 ms.
        assert max(finish) > 0.4

    def test_clone_into_cgroup_variant_faster(self):
        def run(flag):
            node, runtime = make_runtime()

            def proc():
                yield runtime.create_sandbox_cold("JS",
                                                  clone_into_cgroup=flag)
                return node.now

            return sim_run_value(node, proc())

        assert run(True) < run(False)


class TestDestroy:
    def test_destroy_releases_everything(self):
        node, runtime = make_runtime()

        def proc():
            sb = yield runtime.create_sandbox_cold("JS")
            yield runtime.destroy_sandbox(sb)
            return sb

        sb = sim_run_value(node, proc())
        assert sb.state == SandboxState.DESTROYED
        assert not sb.live_processes
        assert node.memory.usage["sandbox-kernel"] == 0


class TestBootstrap:
    def test_bootstrap_populates_full_image(self):
        node, runtime = make_runtime()
        profile = function_by_name("JS")

        def proc():
            sb = yield runtime.create_sandbox_cold("JS")
            start = node.now
            p = yield runtime.bootstrap_function(sb, profile)
            return sb, p, node.now - start

        sb, p, elapsed = sim_run(node, proc())
        assert p.threads == profile.n_threads
        assert p.address_space.local_pages == profile.image_pages
        assert elapsed > profile.bootstrap_time
        assert node.memory.usage["function-anon"] == pytest.approx(
            profile.mem_bytes, abs=4096)

    def test_bootstrap_cpu_shared_under_load(self):
        node = Node(cores=1)
        runtime = ContainerRuntime(node)
        profile = function_by_name("CR")  # 0.4 s bootstrap
        finish = []

        def one():
            sb = yield runtime.create_sandbox_cold("CR")
            yield runtime.bootstrap_function(sb, profile)
            finish.append(node.now)

        for _ in range(4):
            node.sim.spawn(one())
        node.sim.run()
        # 4 bootstraps on one core: ~4x one bootstrap's CPU time.
        assert max(finish) > 4 * profile.bootstrap_time


class TestOverlayPool:
    def test_acquire_miss_then_hit(self):
        node = Node()
        pool = FunctionOverlayPool(node.sim, node.latency)

        def proc():
            ov = yield pool.acquire("JS")
            yield pool.release("JS", ov)
            ov2 = yield pool.acquire("JS")
            return ov, ov2

        ov, ov2 = sim_run(node, proc())
        assert ov is ov2
        assert pool.hits == 1
        assert pool.misses == 1

    def test_release_purges_modifications(self):
        node = Node()
        pool = FunctionOverlayPool(node.sim, node.latency)

        def proc():
            ov = yield pool.acquire("JS")
            ov.write_file("/tmp/leak", 100)
            yield pool.release("JS", ov)
            ov2 = yield pool.acquire("JS")
            return ov2

        ov2 = sim_run(node, proc())
        assert not ov2.dirty
        assert not ov2.stale_inode_cache

    def test_pool_per_function(self):
        node = Node()
        pool = FunctionOverlayPool(node.sim, node.latency)

        def proc():
            ov = yield pool.acquire("JS")
            yield pool.release("JS", ov)
            other = yield pool.acquire("DH")
            return other

        other = sim_run(node, proc())
        assert "DH" in other.label
        assert pool.pooled_count("JS") == 1


class TestSwap:
    def test_swap_function_overlay_two_fast_mounts(self):
        node = Node()
        builder = RootfsBuilder(node.sim, node.latency)
        table = MountTable(node.sim, node.latency)

        def proc():
            yield builder.build_cold(table, "JS")
            mounts_before = table.stats["mount"]
            start = node.now
            pool = FunctionOverlayPool(node.sim, node.latency)
            ov = yield pool.acquire("DH")
            yield builder.swap_function_overlay(table, ov)
            return table.stats["mount"] - mounts_before, node.now - start

        extra_mounts, elapsed = sim_run(node, proc())
        assert extra_mounts == 2   # function overlay + /proc (§5.2.1)
        # Reconfiguration completes in ~1 ms plus overlay assembly.
        assert elapsed < 0.020


def sim_run(node, gen):
    return node.sim.run_process(gen)


def sim_run_value(node, gen):
    return node.sim.run_process(gen)


def _create(runtime, fn):
    def proc():
        sb = yield runtime.create_sandbox_cold(fn)
        return sb
    return proc()
