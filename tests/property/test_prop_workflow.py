"""Property tests: workflow DAG construction and execution invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.llm import LLMTrace, ReplayLLMServer
from repro.agents.spec import AGENTS, AgentSpec
from repro.agents.workflow_graph import GraphExecutor, WorkflowGraph
from repro.mem.layout import MB
from repro.sim.cpu import FairShareCPU
from repro.sim.engine import Simulator

spec_strategy = st.sampled_from(AGENTS)


def synthetic_spec(e2e, cpu, calls, workflow):
    return AgentSpec(
        name=f"syn-{workflow}-{calls}", framework="LangChain",
        description="synthetic", e2e_target=e2e,
        mem_bytes=64 * MB, cpu_time=cpu,
        input_tokens=1000 * calls, output_tokens=40 * calls,
        n_llm_calls=calls, workflow=workflow)


synthetic = st.builds(
    synthetic_spec,
    e2e=st.floats(10.0, 100.0),
    cpu=st.floats(0.1, 4.0),
    calls=st.integers(1, 12),
    workflow=st.sampled_from(["static", "mapreduce", "react"]),
)


@settings(max_examples=40, deadline=None)
@given(synthetic)
def test_every_node_executes_once(spec):
    graph = WorkflowGraph.from_spec(spec)
    sim = Simulator()
    executor = GraphExecutor(sim, FairShareCPU(sim, 16), ReplayLLMServer())

    def driver():
        yield executor.run(graph)

    sim.run_process(driver())
    assert sorted(executor.executed) == sorted(graph.nodes)


@settings(max_examples=40, deadline=None)
@given(synthetic)
def test_topological_order_respected(spec):
    graph = WorkflowGraph.from_spec(spec)
    sim = Simulator()
    executor = GraphExecutor(sim, FairShareCPU(sim, 16), ReplayLLMServer())

    def driver():
        yield executor.run(graph)

    sim.run_process(driver())
    position = {nid: i for i, nid in enumerate(executor.executed)}
    for node in graph.nodes.values():
        for child in node.children:
            assert position[node.node_id] < position[child]


@settings(max_examples=40, deadline=None)
@given(synthetic)
def test_elapsed_bounded_by_critical_path_and_serial_sum(spec):
    graph = WorkflowGraph.from_spec(spec)
    trace = LLMTrace.from_spec(spec)
    sim = Simulator()
    executor = GraphExecutor(sim, FairShareCPU(sim, 64), ReplayLLMServer())

    def driver():
        elapsed = yield executor.run(graph)
        return elapsed

    elapsed = sim.run_process(driver())
    lower = trace.critical_path_latency(spec.workflow)
    upper = trace.total_latency + spec.own_cpu + 1e-6
    assert lower - 1e-6 <= elapsed <= upper


@settings(max_examples=40, deadline=None)
@given(synthetic)
def test_trace_totals_always_match(spec):
    trace = LLMTrace.from_spec(spec)
    assert trace.total_input_tokens == spec.input_tokens
    assert trace.total_output_tokens == spec.output_tokens
    assert trace.critical_path_latency(spec.workflow) == pytest.approx(
        spec.llm_wait, rel=1e-6)
    assert all(c.latency >= 0 for c in trace.calls)


@settings(max_examples=20, deadline=None)
@given(spec_strategy)
def test_real_agents_graphs_valid(spec):
    graph = WorkflowGraph.from_spec(spec)
    trace = LLMTrace.from_spec(spec)
    graph.validate(trace)   # must not raise
    assert graph.root in graph.nodes
