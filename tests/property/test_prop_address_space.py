"""Property tests: address-space invariants under arbitrary access mixes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.address_space import (PTE_LOCAL, AddressSpace)
from repro.mem.layout import MB
from repro.mem.pools import CXLPool, DedupStore, RDMAPool


def pages_strategy(total):
    return st.lists(st.integers(0, total - 1), max_size=50).map(
        lambda xs: np.array(sorted(set(xs)), dtype=np.int64))


def make_space(total, backend=None):
    space = AddressSpace("prop")
    vma = space.add_vma("heap", total)
    if backend is not None:
        store = DedupStore(backend(64 * MB))
        block = store.store_image(np.arange(total))
        space.bind_remote(vma, block, valid=backend is CXLPool)
    return space


@settings(max_examples=60, deadline=None)
@given(st.data(), st.sampled_from([None, CXLPool, RDMAPool]))
def test_local_pages_matches_pte_states(data, backend):
    total = 200
    space = make_space(total, backend)
    for _ in range(data.draw(st.integers(1, 4))):
        reads = data.draw(pages_strategy(total))
        writes = data.draw(pages_strategy(total))
        space.access(reads, writes)
        counted = sum(int(np.count_nonzero(v.state == PTE_LOCAL))
                      for v in space.vmas)
        assert counted == space.local_pages


@settings(max_examples=60, deadline=None)
@given(st.data(), st.sampled_from([None, CXLPool, RDMAPool]))
def test_accountant_deltas_track_local_pages(data, backend):
    total = 150
    deltas = []
    space = AddressSpace("prop", on_local_delta=deltas.append)
    vma = space.add_vma("heap", total)
    if backend is not None:
        store = DedupStore(backend(64 * MB))
        space.bind_remote(vma, store.store_image(np.arange(total)),
                          valid=backend is CXLPool)
    reads = data.draw(pages_strategy(total))
    writes = data.draw(pages_strategy(total))
    space.access(reads, writes)
    assert sum(deltas) == space.local_pages
    space.destroy()
    assert sum(deltas) == 0


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_repeat_access_is_free(data):
    total = 120
    space = make_space(total, CXLPool)
    reads = data.draw(pages_strategy(total))
    writes = data.draw(pages_strategy(total))
    space.access(reads, writes)
    again = space.access(reads, writes)
    assert again.minor_faults == 0
    assert again.major_faults == 0
    assert again.cow_faults == 0
    assert again.local_pages_allocated == 0


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_local_pages_monotone_under_access(data):
    total = 120
    space = make_space(total, RDMAPool)
    previous = 0
    for _ in range(3):
        reads = data.draw(pages_strategy(total))
        writes = data.draw(pages_strategy(total))
        space.access(reads, writes)
        assert space.local_pages >= previous
        assert space.local_pages <= total
        previous = space.local_pages


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_writes_produce_at_least_as_much_memory_as_cow(data):
    total = 100
    space = make_space(total, CXLPool)
    writes = data.draw(pages_strategy(total))
    out = space.access(np.array([], dtype=np.int64), writes)
    assert out.cow_faults == len(writes)
    assert space.local_pages == len(writes)
