"""Property tests: shard-merge associativity/commutativity (SIM007's
runtime counterpart).

The sweep runner assumes per-shard metrics can be merged in *any*
order and grouping without changing the result.  These tests draw
random shard splits and random merge trees and assert the canonical
serializations are identical.

Values are dyadic rationals (n / 64) so float addition is exact and
bit-equality is the right assertion — with arbitrary floats the
*mathematical* property holds but rounding would differ.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import MetricsRegistry, _hist_to_dict
from repro.serverless.metrics import LogHistogram

dyadic = st.integers(1, 1 << 20).map(lambda n: n / 64.0)

events = st.lists(
    st.tuples(st.sampled_from(["inc", "add_gauge", "set_gauge", "observe"]),
              st.sampled_from(["lat", "bytes", "faults"]),
              dyadic),
    max_size=30)


def apply_events(reg, evs):
    for kind, name, value in evs:
        if kind == "inc":
            reg.inc(name, value, node="n0")
        elif kind == "add_gauge":
            reg.add_gauge(name, value, node="n0")
        elif kind == "set_gauge":
            reg.set_gauge(name, value, node="n0")
        else:
            reg.observe(name, value, node="n0")


def copy_registry(reg):
    return MetricsRegistry.from_dict(reg.to_dict())


def tree_merge_registries(shards, data):
    """Merge in a random binary grouping over a random order."""
    pool = [copy_registry(s) for s in shards]
    while len(pool) > 1:
        i = data.draw(st.integers(0, len(pool) - 2))
        left = pool.pop(i)
        j = data.draw(st.integers(0, len(pool) - 1))
        right = pool.pop(j)
        left.merge_from(right)
        pool.append(left)
    return pool[0]


@settings(max_examples=60, deadline=None)
@given(st.data(), st.lists(events, min_size=2, max_size=5))
def test_registry_merge_is_order_and_grouping_invariant(data, shard_events):
    shards = []
    for evs in shard_events:
        reg = MetricsRegistry()
        apply_events(reg, evs)
        shards.append(reg)

    fold = copy_registry(shards[0])
    for shard in shards[1:]:
        fold.merge_from(copy_registry(shard))
    random_tree = tree_merge_registries(shards, data)
    assert random_tree.to_dict() == fold.to_dict()


@settings(max_examples=60, deadline=None)
@given(st.lists(events, min_size=2, max_size=4))
def test_registry_merge_is_commutative_pairwise(shard_events):
    a = MetricsRegistry()
    b = MetricsRegistry()
    apply_events(a, shard_events[0])
    apply_events(b, shard_events[1])
    ab = copy_registry(a)
    ab.merge_from(copy_registry(b))
    ba = copy_registry(b)
    ba.merge_from(copy_registry(a))
    assert ab.to_dict() == ba.to_dict()


@settings(max_examples=60, deadline=None)
@given(st.data(),
       st.lists(dyadic, max_size=200),
       st.integers(2, 6),
       st.sampled_from([8, 64, 512]))
def test_histogram_split_merge_matches_single_recorder(data, values,
                                                       n_shards, cap):
    # Assign every value to a random shard, then merge the shard
    # histograms in a random order: the result must serialize exactly
    # like one histogram that saw every value.
    single = LogHistogram(exact_cap=cap)
    shards = [LogHistogram(exact_cap=cap) for _ in range(n_shards)]
    for value in values:
        single.add(value)
        shards[data.draw(st.integers(0, n_shards - 1))].add(value)

    order = data.draw(st.permutations(range(n_shards)))
    merged = LogHistogram(exact_cap=cap)
    for idx in order:
        merged.merge(shards[idx])
    assert _hist_to_dict(merged) == _hist_to_dict(single)


@settings(max_examples=60, deadline=None)
@given(st.lists(dyadic, max_size=80), st.lists(dyadic, max_size=80))
def test_histogram_merge_is_commutative(xs, ys):
    hx, hy = LogHistogram(), LogHistogram()
    for v in xs:
        hx.add(v)
    for v in ys:
        hy.add(v)
    xy = LogHistogram()
    xy.merge(hx)
    xy.merge(hy)
    yx = LogHistogram()
    yx.merge(hy)
    yx.merge(hx)
    assert _hist_to_dict(xy) == _hist_to_dict(yx)
