"""Property tests: EPT state machine, vCPU quotas, admission control."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.layout import MB
from repro.mem.pools import CXLPool, DedupStore, RDMAPool
from repro.sim.cpu import FairShareCPU, VCPUQuota
from repro.sim.engine import Delay, Simulator
from repro.vm.ept import ExtendedPageTable


def gpns(total):
    return st.lists(st.integers(0, total - 1), max_size=40).map(
        lambda xs: np.array(sorted(set(xs)), dtype=np.int64))


def make_ept(total, pool_cls, hot_fraction, data):
    ept = ExtendedPageTable(total)
    store = DedupStore(pool_cls(64 * MB))
    ept.bind_template(store.store_image(np.arange(total)))
    if hot_fraction > 0:
        mask = np.zeros(total, dtype=bool)
        mask[:int(total * hot_fraction)] = True
        ept.prepopulate(mask)
    return ept


@settings(max_examples=50, deadline=None)
@given(st.data(), st.sampled_from([CXLPool, RDMAPool]),
       st.floats(0.0, 1.0))
def test_ept_local_pages_consistent(data, pool_cls, hot_fraction):
    total = 150
    ept = make_ept(total, pool_cls, hot_fraction, data)
    for _ in range(3):
        reads = data.draw(gpns(total))
        writes = data.draw(gpns(total))
        ept.access(reads, writes)
        counted = int(np.count_nonzero(ept.state == 1))   # PTE_LOCAL
        assert counted == ept.local_pages
        assert ept.local_pages <= total


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_ept_repeat_access_idempotent(data):
    total = 100
    ept = make_ept(total, CXLPool, 0.5, data)
    reads = data.draw(gpns(total))
    writes = data.draw(gpns(total))
    ept.access(reads, writes)
    again = ept.access(reads, writes)
    assert again.vm_exits == 0
    assert again.pages_fetched == 0
    assert again.cow_faults == 0


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_ept_prepopulation_never_hurts(data):
    """Pre-population can only remove exits, never add them."""
    total = 120
    reads = data.draw(gpns(total))
    writes = data.draw(gpns(total))

    lazy = make_ept(total, CXLPool, 0.0, data)
    out_lazy = lazy.access(reads, writes)
    pre = make_ept(total, CXLPool, 1.0, data)
    out_pre = pre.access(reads, writes)
    assert out_pre.vm_exits <= out_lazy.vm_exits
    assert out_pre.local_pages_allocated <= out_lazy.local_pages_allocated


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(0.05, 1.0), min_size=1, max_size=8),
       st.integers(1, 4))
def test_vcpu_quota_conservation_and_bound(works, vcpus):
    sim = Simulator()
    cpu = FairShareCPU(sim, 64)   # cores never the bottleneck
    quota = VCPUQuota(cpu, vcpus)
    finish = []

    def task(w):
        yield from quota.compute(w)
        finish.append(sim.now)

    for w in works:
        sim.spawn(task(w))
    sim.run()
    total = sum(works)
    # Lower bound: perfect packing on vcpus lanes; upper: fully serial.
    assert sim.now >= total / vcpus - 1e-9
    assert sim.now <= total + 1e-9
    assert len(finish) == len(works)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 3), st.integers(1, 10))
def test_admission_limit_respected(limit, burst):
    from repro.node import Node
    from repro.serverless.baselines import FaasdPlatform
    from repro.workloads.functions import function_by_name

    node = Node(cores=64, seed=33)
    platform = FaasdPlatform(node)
    platform.register_function(function_by_name("DH"))
    platform.set_concurrency_limit("DH", limit)
    inflight = [0]
    peak = [0]
    orig = platform.execute

    def tracked(inst, profile, inv_idx):
        inflight[0] += 1
        peak[0] = max(peak[0], inflight[0])
        result = yield orig(inst, profile, inv_idx)
        inflight[0] -= 1
        return result

    platform.execute = tracked

    def one():
        yield platform.invoke("DH")

    for _ in range(burst):
        node.sim.spawn(one())
    node.sim.run()
    assert peak[0] <= limit
    assert platform.recorder.count() == burst
