"""Property tests: critical-path blame is exact, tiled, and mergeable."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.causal import BlameProfile, CausalGraph
from repro.obs.trace import SpanTracer

PHASES = ("queue", "acquire", "criu_restore", "mmt_attach",
          "fault_replay", "exec", "teardown")

# Virtual timestamps as short-mantissa floats: realistic (they come
# from float arithmetic in the simulator) yet varied enough to stress
# the Fraction-exact bookkeeping.
times = st.integers(0, 10**6).map(lambda n: n / 1024.0)
durs = st.integers(1, 10**5).map(lambda n: n / 1024.0)


@st.composite
def invocations(draw):
    """A batch of synthetic invocations: (t0, t1, phases, links)."""
    batch = []
    n = draw(st.integers(1, 8))
    for _ in range(n):
        t0 = draw(times)
        t1 = t0 + draw(durs)
        span = t1 - t0
        # Phase spans live anywhere inside (and sometimes outside —
        # e.g. a crashed attempt) the root window; overlap is allowed.
        phases = []
        for _ in range(draw(st.integers(0, 5))):
            name = draw(st.sampled_from(PHASES))
            p0 = t0 + draw(st.floats(-0.5, 1.0)) * span
            p1 = p0 + draw(st.floats(0.0, 1.0)) * span
            phases.append((name, p0, p1))
        links = []
        for _ in range(draw(st.integers(0, 2))):
            kind = draw(st.sampled_from(
                ("slot_grant", "backoff", "pool_fetch")))
            l0 = t0 + draw(st.floats(-1.0, 1.0)) * span
            l1 = l0 + draw(st.floats(0.0, 0.5)) * span
            links.append((kind, l0, l1))
        batch.append((t0, t1, phases, links))
    return batch


def _record(batch):
    tracer = SpanTracer()
    for i, (t0, t1, phases, links) in enumerate(batch):
        ctx = tracer.begin("fn", t0)
        tracer.bind(ctx, f"node{i % 3}")
        for name, p0, p1 in phases:
            tracer.span(ctx, name, p0, p1)
        for kind, l0, l1 in links:
            tracer.link(kind, l0, l1, dst=ctx)
        tracer.span(ctx, "fn", t0, t1, cat="invocation",
                    args={"kind": "cold"})
        tracer.finish(ctx, t1)
    return tracer


@settings(max_examples=80, deadline=None)
@given(invocations())
def test_blame_sums_exactly_to_e2e(batch):
    paths = CausalGraph(_record(batch)).all_paths()
    assert len(paths) == len(batch)
    for path in paths:
        # Bit-exact: the Fraction total *is* the float e2e.
        assert path.total == Fraction(path.t1) - Fraction(path.t0)
        assert path.total_s() == path.e2e
        assert sum(path.blame.values(), Fraction(0)) == path.total


@settings(max_examples=80, deadline=None)
@given(invocations())
def test_segments_tile_the_root_monotonically(batch):
    for path in CausalGraph(_record(batch)).all_paths():
        cursor = Fraction(path.t0)
        for seg in path.segments:
            assert Fraction(seg.t0) == cursor
            assert Fraction(seg.t1) > Fraction(seg.t0)
            cursor = Fraction(seg.t1)
        assert cursor == Fraction(path.t1)
        # Coalescing: no two adjacent segments share a label.
        labels = [s.label for s in path.segments]
        assert all(a != b for a, b in zip(labels, labels[1:]))


@settings(max_examples=40, deadline=None)
@given(invocations(), st.permutations(range(4)), st.integers(1, 3))
def test_blame_profile_merge_associative_order_invariant(batch, order,
                                                         split):
    paths = CausalGraph(_record(batch)).all_paths()
    # Split into 4 chunks, merge in an arbitrary order and grouping.
    chunks = [paths[i::4] for i in range(4)]

    def profile(chunk):
        prof = BlameProfile()
        for path in chunk:
            prof.add_path(path)
        return prof

    whole = profile(paths)
    left = BlameProfile()
    for i in order[:split]:
        left.merge_from(profile(chunks[i]))
    right = BlameProfile()
    for i in order[split:]:
        right.merge_from(profile(chunks[i]))
    left.merge_from(right)
    assert left.to_dict() == whole.to_dict()
    assert left.n == whole.n == len(paths)
