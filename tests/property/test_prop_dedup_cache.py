"""Property tests: dedup store and page cache invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.layout import MB, PAGE_SIZE
from repro.mem.page_cache import PageCache
from repro.mem.pools import CXLPool, DedupStore

images = st.lists(
    st.lists(st.integers(0, 500), min_size=1, max_size=80).map(
        lambda xs: np.array(xs, dtype=np.int64)),
    min_size=1, max_size=6)


@settings(max_examples=60, deadline=None)
@given(images)
def test_unique_pages_equals_union_of_contents(imgs):
    store = DedupStore(CXLPool(256 * MB))
    union = set()
    for img in imgs:
        store.store_image(img)
        union |= set(int(c) for c in img)
        assert store.unique_pages_stored == len(union)
        assert store.pool.used_pages == len(union)


@settings(max_examples=60, deadline=None)
@given(images)
def test_same_content_same_offset_across_images(imgs):
    store = DedupStore(CXLPool(256 * MB))
    seen = {}
    for img in imgs:
        block = store.store_image(img)
        for cid, off in zip(img, block.offsets):
            if int(cid) in seen:
                assert seen[int(cid)] == int(off)
            else:
                seen[int(cid)] = int(off)


@settings(max_examples=60, deadline=None)
@given(images)
def test_dedup_ratio_bounds(imgs):
    store = DedupStore(CXLPool(256 * MB))
    for img in imgs:
        store.store_image(img)
    assert 0.0 <= store.dedup_ratio < 1.0
    assert store.total_pages_presented == sum(len(i) for i in imgs)


file_ops = st.lists(
    st.tuples(st.integers(1, 5),                 # file id
              st.integers(1, 30),                # pages
              st.integers(0, 20)),               # offset pages
    min_size=1, max_size=40)


@settings(max_examples=60, deadline=None)
@given(file_ops)
def test_page_cache_counts_distinct_blocks(ops):
    cache = PageCache()
    expected = set()
    for fid, pages, off_pages in ops:
        cache.charge_file(fid, pages * PAGE_SIZE, offset=off_pages * PAGE_SIZE)
        for b in range(off_pages, off_pages + pages):
            expected.add((fid, b))
        assert cache.cached_pages == len(expected)


@settings(max_examples=60, deadline=None)
@given(file_ops, st.integers(1, 5))
def test_page_cache_evict_removes_exactly_one_file(ops, victim):
    cache = PageCache()
    expected = set()
    for fid, pages, off_pages in ops:
        cache.charge_file(fid, pages * PAGE_SIZE, offset=off_pages * PAGE_SIZE)
        for b in range(off_pages, off_pages + pages):
            expected.add((fid, b))
    victims = {key for key in expected if key[0] == victim}
    assert cache.evict_file(victim) == len(victims)
    assert cache.cached_pages == len(expected) - len(victims)


@settings(max_examples=40, deadline=None)
@given(file_ops)
def test_page_cache_delta_hook_consistent(ops):
    total = [0]
    cache = PageCache(on_delta=lambda d: total.__setitem__(0, total[0] + d))
    for fid, pages, off_pages in ops:
        cache.charge_file(fid, pages * PAGE_SIZE, offset=off_pages * PAGE_SIZE)
    assert total[0] == cache.cached_pages
    cache.drop_all()
    assert total[0] == 0
