"""Property tests: event engine, fair-share CPU, accounting, traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.accounting import MemoryAccountant
from repro.mem.trace import AccessTrace
from repro.sim.cpu import FairShareCPU
from repro.sim.engine import Delay, Simulator
from repro.sim.rng import SeededRNG


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1,
                max_size=20))
def test_clock_is_monotone_and_sums_delays(delays):
    sim = Simulator()
    stamps = []

    def proc():
        for d in delays:
            yield Delay(d)
            stamps.append(sim.now)

    sim.run_process(proc())
    assert stamps == sorted(stamps)
    assert sim.now == pytest.approx(sum(delays))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0.01, 3.0), min_size=1, max_size=12),
       st.integers(1, 4))
def test_processor_sharing_conservation(works, cores):
    """Total CPU work in == integrated busy time out."""
    sim = Simulator()
    cpu = FairShareCPU(sim, cores)

    def task(w):
        yield from cpu.compute(w)

    for w in works:
        sim.spawn(task(w))
    sim.run()
    total_work = sum(works)
    # Conservation: busy core-seconds equal the work submitted.
    assert cpu.utilization() * cores * sim.now == pytest.approx(
        total_work, rel=1e-6)
    # Makespan bounds: no faster than perfect parallelism, no slower
    # than fully serial.
    assert sim.now >= total_work / cores - 1e-9
    assert sim.now <= total_work + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0.01, 3.0), min_size=2, max_size=10))
def test_processor_sharing_fairness(works):
    """Equal work submitted together finishes together."""
    sim = Simulator()
    cpu = FairShareCPU(sim, 1)
    finish = []
    w = works[0]

    def task():
        yield from cpu.compute(w)
        finish.append(sim.now)

    n = len(works)
    for _ in range(n):
        sim.spawn(task())
    sim.run()
    assert max(finish) - min(finish) < 1e-9
    assert finish[0] == pytest.approx(w * n)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("abc"),
                          st.integers(-50, 100)), max_size=30))
def test_accounting_current_is_sum_of_categories(ops):
    acct = MemoryAccountant()
    applied = {}
    for cat, delta in ops:
        if applied.get(cat, 0) + delta < 0:
            continue  # accountant forbids negative categories
        acct.charge(cat, delta)
        applied[cat] = applied.get(cat, 0) + delta
    assert acct.current_bytes == sum(applied.values())
    assert acct.peak_bytes >= acct.current_bytes
    assert acct.peak_bytes >= 0


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**32), st.integers(100, 2000),
       st.floats(0.01, 1.0), st.floats(0.0, 1.0))
def test_trace_generation_invariants(seed, total, touch, write):
    rng = SeededRNG(seed)
    trace = AccessTrace.generate(rng, total, touch, write,
                                 writable_start=total // 4)
    assert np.isin(trace.write_pages, trace.read_pages).all()
    if len(trace.read_pages):
        assert trace.read_pages.min() >= 0
        assert trace.read_pages.max() < total
    if len(trace.write_pages):
        assert trace.write_pages.min() >= total // 4
    assert len(np.unique(trace.read_pages)) == len(trace.read_pages)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32), st.floats(0.0, 0.5))
def test_trace_jitter_preserves_invariants(seed, fraction):
    rng = SeededRNG(seed)
    total = 800
    base = AccessTrace.generate(rng, total, 0.4, 0.3,
                                writable_start=total // 5)
    jit = base.jittered(rng.fork("j"), total, fraction)
    assert np.isin(jit.write_pages, jit.read_pages).all()
    if len(jit.write_pages):
        assert jit.write_pages.min() >= total // 5
    assert len(np.unique(jit.read_pages)) == len(jit.read_pages)
    # Jitter keeps the trace roughly the same size.
    assert abs(len(jit.read_pages) - len(base.read_pages)) \
        <= max(10, 0.6 * fraction * len(base.read_pages) + 5)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31), st.text("abc/", min_size=1, max_size=12))
def test_rng_fork_determinism(seed, name):
    a = SeededRNG(seed).fork(name)
    b = SeededRNG(seed).fork(name)
    assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]
