"""Failure injection: exhausted pools, capped memory, runtime errors."""

import numpy as np
import pytest

from repro.core.platform import TrEnvPlatform
from repro.mem.layout import GB, MB
from repro.mem.pools import CXLPool, DedupStore, RDMAPool
from repro.node import Node
from repro.serverless.baselines import FaasdPlatform
from repro.sim.engine import Delay
from repro.workloads.functions import function_by_name


class TestPoolExhaustion:
    def test_registration_degrades_to_copy_restore(self):
        node = Node(seed=13)
        # A pool far too small for IR's 855 MB image.
        pool = CXLPool(64 * MB, node.latency)
        platform = TrEnvPlatform(node, pool)
        platform.register_function(function_by_name("IR"))
        assert "IR" in platform.pool_exhausted_functions
        assert "IR" not in platform.templates

        def driver():
            r = yield platform.invoke("IR")
            return r

        r = node.sim.run_process(driver())
        # Invocation still completes — via the copy path, so slower and
        # fully resident.
        assert r.start_kind == "cold"
        assert r.startup > 0.3
        assert node.memory.usage["function-anon"] == pytest.approx(
            function_by_name("IR").mem_bytes, rel=0.01)

    def test_exhaustion_only_degrades_the_overflowing_function(self):
        node = Node(seed=13)
        pool = CXLPool(int(120 * MB), node.latency)
        platform = TrEnvPlatform(node, pool)
        platform.register_function(function_by_name("DH"))   # 50 MB, fits
        platform.register_function(function_by_name("IR"))   # 855 MB, no
        assert "DH" in platform.templates
        assert "IR" in platform.pool_exhausted_functions

    def test_direct_pool_exhaustion_raises(self):
        pool = RDMAPool(2 * 4096)
        store = DedupStore(pool)
        store.store_image(np.arange(2))
        with pytest.raises(MemoryError):
            store.store_image(np.arange(100, 103))


class TestMemoryCap:
    def test_cap_violations_counted_and_recovered(self):
        node = Node(seed=14, soft_cap_bytes=int(0.8 * GB))
        platform = FaasdPlatform(node)
        platform.register_function(function_by_name("IR"))   # 855 MB warm

        def driver():
            yield platform.invoke("IR")
            yield Delay(1.0)

        node.sim.run_process(driver())
        node.sim.run()
        assert node.memory.cap_violations > 0
        # Pressure eviction kicked the warm instance out.
        assert len(platform.warm) == 0

    def test_platform_survives_sustained_pressure(self):
        node = Node(seed=15, soft_cap_bytes=int(1.2 * GB))
        platform = FaasdPlatform(node)
        for fn in ("IR", "VP", "IFR"):
            platform.register_function(function_by_name(fn))
        completed = []

        def one(fn):
            r = yield platform.invoke(fn)
            completed.append(r)

        for fn in ("IR", "VP", "IFR", "IR", "VP", "IFR"):
            node.sim.spawn(one(fn))
        node.sim.run()
        assert len(completed) == 6


class TestRuntimeErrors:
    def test_unknown_function_raises_cleanly(self):
        node = Node(seed=16)
        platform = FaasdPlatform(node)

        def driver():
            yield platform.invoke("NOPE")

        with pytest.raises(KeyError):
            node.sim.run_process(driver())

    def test_unregistered_pool_fetch_detected(self):
        """A platform that binds VMAs to a pool it never registered must
        fail loudly, not silently mis-time."""
        from repro.serverless.base import Instance, ServerlessPlatform

        node = Node(seed=17)
        platform = ServerlessPlatform(node)
        profile = function_by_name("DH")
        platform.functions[profile.name] = profile
        from repro.criu.images import SnapshotImage
        image = SnapshotImage.from_profile(profile)
        space = image.build_address_space("x")
        pool = RDMAPool(8 * GB, node.latency)   # never registered
        store = DedupStore(pool)
        for vma, content in zip(space.vmas,
                                [c for _v, c in image.vma_content_slices()]):
            space.bind_remote(vma, store.store_image(content), valid=False)
        inst = Instance(profile, space)

        def driver():
            yield platform.execute(inst, profile, 0)

        with pytest.raises(KeyError, match="unregistered pool"):
            node.sim.run_process(driver())


class TestEncryptedRDMA:
    def test_encryption_adds_per_page_cost(self):
        plain = RDMAPool(8 * GB)
        enc = RDMAPool(8 * GB, encrypted=True)
        assert enc.fetch_time(1000) > plain.fetch_time(1000)
        delta = enc.fetch_time(1000) - plain.fetch_time(1000)
        assert delta == pytest.approx(1000 * RDMAPool.ENCRYPTION_COST_PER_PAGE)

    def test_encrypted_platform_end_to_end(self):
        node = Node(seed=18)
        pool = RDMAPool(64 * GB, node.latency, encrypted=True)
        platform = TrEnvPlatform(node, pool, name="t-rdma-enc")
        platform.register_function(function_by_name("JS"))

        def driver():
            r = yield platform.invoke("JS")
            return r

        r = node.sim.run_process(driver())
        assert r.e2e > 0
