"""Security properties of repurposing (§8.1)."""

import numpy as np
import pytest

from repro.container.runtime import ContainerRuntime
from repro.core.mm_template import (MMTemplateError, MMTemplateRegistry,
                                    build_template_for_function)
from repro.core.repurpose import RepurposableSandboxPool, Repurposer
from repro.criu.images import SnapshotImage
from repro.mem.layout import GB
from repro.mem.pools import CXLPool, DedupStore
from repro.node import Node
from repro.workloads.functions import function_by_name


def setup():
    node = Node(seed=77)
    runtime = ContainerRuntime(node)
    registry = MMTemplateRegistry(node.sim, node.latency)
    store = DedupStore(CXLPool(8 * GB))
    rep = Repurposer(node, runtime, registry)
    return node, runtime, registry, store, rep


def run_messy_tenant(node, runtime, func="JS"):
    """A tenant that leaves every kind of residue behind."""
    def proc():
        sb = yield runtime.create_sandbox_cold(func)
        p = yield runtime.bootstrap_function(sb, function_by_name(func))
        # Residue: open connections, firewall edits, secret files,
        # dirty anonymous memory.
        sb.netns.open_connection(42, nbytes=1 << 20)
        sb.netns.add_firewall_rule("allow attacker")
        sb.function_overlay.write_file("/tmp/secrets.txt", 4096)
        sb.function_overlay.delete_file("/etc/passwd")
        total = p.address_space.total_pages
        p.address_space.access(np.array([], dtype=np.int64),
                               np.arange(total - 64, total))
        return sb

    return node.sim.run_process(proc())


class TestNoDataLeakAcrossTenants:
    def test_cleansed_sandbox_has_no_residue(self):
        node, runtime, registry, store, rep = setup()
        sb = run_messy_tenant(node, runtime)
        node.sim.run_process(rep.cleanse(sb))
        node.sim.run()
        assert not sb.leaks_previous_tenant()
        assert sb.netns.connections == set()
        assert sb.netns.firewall_rules == []        # customised => reset
        assert sb.function_overlay is None

    def test_next_tenant_sees_clean_overlay(self):
        node, runtime, registry, store, rep = setup()
        sb = run_messy_tenant(node, runtime, "JS")
        profile = function_by_name("CR")
        image = SnapshotImage.from_profile(profile)
        template = build_template_for_function(registry, image, store)

        def proc():
            yield rep.cleanse(sb)
            yield rep.repurpose(sb, profile, image, template)

        node.sim.run_process(proc())
        overlay = sb.function_overlay
        assert not overlay.dirty
        assert overlay.read_visible("/etc/passwd")   # whiteout purged
        assert "/tmp/secrets.txt" not in overlay.upper

    def test_previous_tenant_memory_is_gone(self):
        node, runtime, registry, store, rep = setup()
        sb = run_messy_tenant(node, runtime)
        old_procs = list(sb.live_processes)

        def proc():
            yield rep.cleanse(sb)

        node.sim.run_process(proc())
        for p in old_procs:
            if p is not sb.init_process:
                assert not p.alive
                assert p.address_space.destroyed

    def test_pool_refuses_leaky_sandbox(self):
        node, runtime, registry, store, rep = setup()
        sb = run_messy_tenant(node, runtime)
        pool = RepurposableSandboxPool()
        with pytest.raises(AssertionError):
            pool.put(sb)

    def test_netns_statistics_persist_but_carry_no_payload(self):
        """§8.1.1: veth byte counters survive reuse — they do not expose
        data produced during processing."""
        node, runtime, registry, store, rep = setup()
        sb = run_messy_tenant(node, runtime)
        node.sim.run_process(rep.cleanse(sb))
        assert sb.netns.veth_rx_bytes > 0
        assert sb.netns.connections == set()


class TestTemplateIsolation:
    def test_mm_template_device_is_root_only(self):
        node, *_ = setup()
        registry = MMTemplateRegistry(node.sim)
        with pytest.raises(MMTemplateError, match="root"):
            registry.mmt_create("X", as_root=False)

    def test_writes_never_reach_the_shared_pool(self):
        """CoW: instance writes must not mutate the pool-resident copy."""
        node, runtime, registry, store, rep = setup()
        profile = function_by_name("DH")
        image = SnapshotImage.from_profile(profile)
        template = build_template_for_function(registry, image, store)
        from repro.mem.address_space import AddressSpace, PTE_REMOTE_RO

        a, b = AddressSpace("a"), AddressSpace("b")

        def proc():
            yield registry.mmt_attach(template, a)
            yield registry.mmt_attach(template, b)

        node.sim.run_process(proc())
        total = a.total_pages
        a.access(np.array([], dtype=np.int64),
                 np.arange(total - 128, total))
        # b still maps the pristine shared pages.
        for vma in b.vmas:
            assert (vma.state != 1).all() or vma.name.startswith("heap")
        tail = b.vmas[-1]
        assert (tail.state == PTE_REMOTE_RO).all()

    def test_aslr_limitation_documented_in_behaviour(self):
        """§8.1.2(1): all instances of a template share the same layout
        — a known limitation of every C/R-based scheme."""
        node, runtime, registry, store, rep = setup()
        profile = function_by_name("DH")
        image = SnapshotImage.from_profile(profile)
        template = build_template_for_function(registry, image, store)
        from repro.mem.address_space import AddressSpace

        spaces = [AddressSpace(f"i{i}") for i in range(3)]

        def proc():
            for s in spaces:
                yield registry.mmt_attach(template, s)

        node.sim.run_process(proc())
        layouts = [[(v.name, v.start) for v in s.vmas] for s in spaces]
        assert layouts[0] == layouts[1] == layouts[2]
