"""End-to-end determinism: identical seeds give identical runs.

The paper engineers determinism via trace replay (§9.6); the simulator
must guarantee it everywhere — same seed, same workload, same platform
=> bit-identical latency sequences and memory peaks.
"""

import pytest

from repro.bench.harness import make_platform
from repro.serverless.runner import run_workload
from repro.workloads.synthetic import make_w1_bursty


def run_once(platform_name, seed):
    wl = make_w1_bursty(seed=seed, duration=700.0, burst_size=4,
                        bursts_per_function=1)
    result = run_workload(make_platform(platform_name, seed=seed), wl)
    latencies = [(r.function, r.start_kind, r.startup, r.exec, r.e2e)
                 for r in result.recorder.results]
    return latencies, result.peak_memory_bytes


@pytest.mark.parametrize("platform", ["criu", "reap+", "t-cxl", "t-rdma"])
def test_identical_seed_identical_run(platform):
    a = run_once(platform, seed=42)
    b = run_once(platform, seed=42)
    assert a == b


def test_different_seed_differs():
    a = run_once("t-cxl", seed=1)
    b = run_once("t-cxl", seed=2)
    assert a != b


def test_agent_platform_determinism():
    from repro.agents.platform import TrEnvVMPlatform
    from repro.agents.spec import agent_by_name
    from repro.node import Node

    def run(seed):
        node = Node(cores=4, seed=seed)
        platform = TrEnvVMPlatform(node, browser_sharing=True)
        spec = agent_by_name("shop-assistant")
        out = []

        def one():
            r = yield platform.run_agent(spec)
            out.append((r.startup, r.e2e, r.active_time))

        for _ in range(5):
            node.sim.spawn(one())
        node.sim.run()
        return out, node.memory.peak_bytes

    assert run(7) == run(7)


def test_cluster_determinism():
    from repro.mem.layout import GB
    from repro.mem.pools import CXLPool
    from repro.serverless.cluster import RoundRobin, make_trenv_cluster

    def run(seed):
        pool = CXLPool(128 * GB)
        cluster = make_trenv_cluster(2, pool, seed=seed,
                                     policy=RoundRobin())
        wl = make_w1_bursty(seed=seed, duration=700.0, burst_size=3,
                            bursts_per_function=1)
        result = cluster.run_workload(wl)
        return ([(r.function, r.e2e) for r in result.recorder.results],
                result.per_node_peak_mb)

    assert run(9) == run(9)
