"""Cross-node sharing: one rack-level pool serves several hosts (§8.2)."""

import pytest

from repro.core.platform import TrEnvPlatform
from repro.mem.layout import GB, MB
from repro.mem.pools import CXLPool, DedupStore, RDMAPool
from repro.node import Node
from repro.workloads.functions import FUNCTIONS, function_by_name


def test_second_host_adds_no_pool_storage():
    pool = CXLPool(128 * GB)
    store = DedupStore(pool)
    platforms = []
    for host in range(3):
        node = Node(seed=40 + host, name=f"host{host}")
        platform = TrEnvPlatform(node, pool, store=store,
                                 name=f"t-cxl-h{host}")
        for profile in FUNCTIONS:
            platform.register_function(profile)
        platforms.append(platform)
    used_after_first = None
    # After the first host registered everything, the pool is saturated:
    # re-register from a fresh platform and verify zero growth.
    used = pool.used_bytes
    node = Node(seed=99)
    extra = TrEnvPlatform(node, pool, store=store, name="t-cxl-h9")
    for profile in FUNCTIONS:
        extra.register_function(profile)
    assert pool.used_bytes == used


def test_shared_store_requires_matching_pool():
    pool_a = CXLPool(1 * GB)
    pool_b = CXLPool(1 * GB)
    store = DedupStore(pool_a)
    with pytest.raises(ValueError):
        TrEnvPlatform(Node(), pool_b, store=store)


def test_cross_host_invocations_share_read_only_pages():
    """Two hosts attach the same template; pool storage is single-copy
    while each host pays only for its own CoW pages."""
    pool = CXLPool(64 * GB)
    store = DedupStore(pool)
    results = []
    for host in range(2):
        node = Node(seed=50 + host, name=f"host{host}")
        platform = TrEnvPlatform(node, pool, store=store,
                                 name=f"t-cxl-h{host}")
        platform.register_function(function_by_name("IR"))

        def driver(p=platform):
            r = yield p.invoke("IR")
            return r

        r = node.sim.run_process(driver())
        results.append((node, r))
    profile = function_by_name("IR")
    # Pool holds one copy of the IR image (+ runtime shared with nobody
    # else here).
    assert pool.used_bytes <= profile.mem_bytes * 1.05
    for node, _r in results:
        local = node.memory.usage["function-anon"]
        assert local < profile.mem_bytes / 50


def test_language_runtime_dedups_across_functions_and_hosts():
    pool = CXLPool(64 * GB)
    store = DedupStore(pool)
    py_funcs = [f for f in FUNCTIONS if f.lang == "python"]
    total_presented = 0
    for host in range(2):
        node = Node(seed=60 + host)
        platform = TrEnvPlatform(node, pool, store=store,
                                 name=f"t-cxl-h{host}")
        for profile in py_funcs:
            platform.register_function(profile)
            total_presented += profile.mem_bytes
    # Shared python runtime (38 MB) stored once; everything else unique
    # per function but single-copy across hosts.
    unique_expected = sum(p.mem_bytes - p.runtime_shared_bytes
                          for p in py_funcs) + 38 * MB
    assert pool.used_bytes == pytest.approx(unique_expected, rel=0.02)
    assert store.dedup_ratio > 0.5
