"""Golden determinism: the perf optimizations never change results.

The CoW attach path, trace cache, fused fault handling, heap-based LRU
and the rest of the hot-path work are *host-side* optimizations: for a
fixed seed they must produce bit-identical invocation streams and memory
peaks, with only wall-clock and allocations allowed to differ.  This is
the regression gate for that contract — a fig17-style W2 slice run with
optimizations on and off (``optflags.optimizations_disabled()``),
compared field by field.
"""

import pytest

from repro import optflags
from repro.bench.harness import run_platform_workload
from repro.mem.layout import GB
from repro.workloads.synthetic import make_w2_diurnal


def run_w2_slice(platform, seed=1, duration=150.0):
    wl = make_w2_diurnal(seed=seed, duration=duration, mean_rate=1.6,
                         soft_cap_bytes=5 * GB)
    result = run_platform_workload(platform, wl, seed=seed)
    stream = [(r.function, r.arrival, r.start_kind, r.startup, r.exec,
               r.e2e, r.queue, r.retries, r.degraded)
              for r in result.recorder.results]
    return stream, result.peak_memory_bytes


@pytest.mark.parametrize("platform", ["t-cxl", "t-rdma", "criu"])
def test_optimizations_are_bit_identical(platform):
    optimized = run_w2_slice(platform)
    with optflags.optimizations_disabled():
        baseline = run_w2_slice(platform)
    assert optimized[0], "W2 slice produced no invocations"
    assert optimized == baseline


def test_flags_restored_after_context():
    assert optflags.cow_attach and optflags.trace_cache
    with optflags.optimizations_disabled():
        assert not optflags.cow_attach and not optflags.trace_cache
    assert optflags.cow_attach and optflags.trace_cache


@pytest.mark.parametrize("platform", ["t-cxl", "faasnap+"])
def test_w2_repeat_is_bit_identical(platform):
    """Teardown eviction order and page-cache counting are order-free.

    VM teardown evicts the private host-cache files of many VMs into a
    shared accountant; ``charge_file`` counts misses on a set.  Both ran
    over unordered sets before the SIM003 sweep — two identical-seed W2
    runs must agree on the full stream *and* the memory peak (which the
    eviction/charge timeline feeds).
    """
    assert run_w2_slice(platform) == run_w2_slice(platform)


#: The scale-out flags added for the trace-scale hot paths; each must
#: individually leave simulated results bit-identical.
SCALE_FLAGS = ("timer_wheel", "dispatch_index", "stream_metrics",
               "batch_arrivals")


@pytest.mark.parametrize("flag", SCALE_FLAGS)
def test_each_scale_flag_is_bit_identical(flag):
    """Toggling any single scale-out flag never changes results.

    The all-on/all-off test above can mask a pair of flags whose bugs
    cancel; this one isolates each flag against the otherwise-optimised
    configuration.
    """
    optimized = run_w2_slice("t-cxl")
    with optflags.disabled(flag):
        toggled = run_w2_slice("t-cxl")
    assert optimized[0], "W2 slice produced no invocations"
    assert optimized == toggled


def _cluster_stream(seed, flag_ctx=None):
    from repro.mem.pools import CXLPool
    from repro.serverless.cluster import make_trenv_cluster

    cluster = make_trenv_cluster(3, CXLPool(128 * GB), seed=seed)
    wl = make_w2_diurnal(seed=seed, duration=150.0, mean_rate=1.6)
    result = cluster.run_workload(wl)
    return ([(r.function, r.arrival, r.start_kind, r.e2e)
             for r in result.recorder.results],
            dict(result.dispatch_counts))


@pytest.mark.parametrize("flag", ["dispatch_index", "batch_arrivals"])
def test_cluster_scale_flags_bit_identical(flag):
    """Cluster-level streams agree with each scale flag off."""
    optimized = _cluster_stream(seed=3)
    with optflags.disabled(flag):
        toggled = _cluster_stream(seed=3)
    assert optimized[0]
    assert optimized == toggled


def test_sweep_parallel_is_bit_identical_to_serial():
    """Sweep shards agree bit-for-bit across pool sizes.

    ``jobs=1`` runs the shards serially in-process (the reference
    ordering); ``jobs=2`` fans them over a multiprocessing pool.  The
    ``results`` blocks must match exactly — only the ``host`` timing
    key may differ, and ``run_sweep`` already excludes it from the
    shard payloads.
    """
    from repro.bench.sweep import SweepConfig, run_sweep

    grid = [
        SweepConfig(seed=1, policy="warm-affinity", n_nodes=2,
                    trace="W2", duration=90.0),
        SweepConfig(seed=2, policy="least-loaded", n_nodes=2,
                    trace="scaleout", duration=30.0, rate=20.0),
        SweepConfig(seed=3, policy="round-robin", n_nodes=3,
                    trace="W2", duration=90.0),
    ]
    serial = run_sweep(grid, jobs=1, out_path=None)
    fanned = run_sweep(grid, jobs=2, out_path=None)
    assert serial["n_configs"] == 3
    assert list(serial["shards"]) == sorted(serial["shards"])
    assert serial["shards"] == fanned["shards"]


@pytest.mark.parametrize("level", ["metrics", "spans"])
def test_observability_is_bit_identical(level):
    """repro.obs never changes simulated results (the zero-cost contract).

    The same W2 slice runs unobserved and under each observability
    level; invocation streams and memory peaks must match bit-for-bit.
    """
    from repro.obs.observer import observed

    baseline = run_w2_slice("t-cxl")
    with observed(level) as obs:
        traced = run_w2_slice("t-cxl")
    assert baseline[0], "W2 slice produced no invocations"
    assert baseline == traced
    assert len(obs.registry) > 0
    if level == "spans":
        assert obs.tracer.n_spans > 0


def test_observability_cluster_bit_identical():
    """Same contract for the rack: dispatch spans don't perturb results."""
    from repro.obs.observer import observed

    baseline = _cluster_stream(seed=3)
    with observed("spans") as obs:
        traced = _cluster_stream(seed=3)
    assert baseline[0]
    assert baseline == traced
    assert obs.tracer.n_spans > 0


def test_w2_cluster_dispatch_counts_deterministic():
    """Cluster results expose dispatch counts in sorted-key order."""
    from repro.mem.layout import GB as _GB
    from repro.mem.pools import CXLPool
    from repro.serverless.cluster import make_trenv_cluster
    from repro.workloads.synthetic import make_w2_diurnal

    def run(seed):
        cluster = make_trenv_cluster(3, CXLPool(128 * _GB), seed=seed)
        wl = make_w2_diurnal(seed=seed, duration=150.0, mean_rate=1.6)
        result = cluster.run_workload(wl)
        return (list(result.dispatch_counts.items()),
                [(r.function, r.e2e) for r in result.recorder.results])

    first, second = run(3), run(3)
    assert first == second
    keys = [k for k, _ in first[0]]
    assert keys == sorted(keys)
