"""Golden determinism: the perf optimizations never change results.

The CoW attach path, trace cache, fused fault handling, heap-based LRU
and the rest of the hot-path work are *host-side* optimizations: for a
fixed seed they must produce bit-identical invocation streams and memory
peaks, with only wall-clock and allocations allowed to differ.  This is
the regression gate for that contract — a fig17-style W2 slice run with
optimizations on and off (``optflags.optimizations_disabled()``),
compared field by field.
"""

import pytest

from repro import optflags
from repro.bench.harness import run_platform_workload
from repro.mem.layout import GB
from repro.workloads.synthetic import make_w2_diurnal


def run_w2_slice(platform, seed=1, duration=150.0):
    wl = make_w2_diurnal(seed=seed, duration=duration, mean_rate=1.6,
                         soft_cap_bytes=5 * GB)
    result = run_platform_workload(platform, wl, seed=seed)
    stream = [(r.function, r.arrival, r.start_kind, r.startup, r.exec,
               r.e2e, r.queue, r.retries, r.degraded)
              for r in result.recorder.results]
    return stream, result.peak_memory_bytes


@pytest.mark.parametrize("platform", ["t-cxl", "t-rdma", "criu"])
def test_optimizations_are_bit_identical(platform):
    optimized = run_w2_slice(platform)
    with optflags.optimizations_disabled():
        baseline = run_w2_slice(platform)
    assert optimized[0], "W2 slice produced no invocations"
    assert optimized == baseline


def test_flags_restored_after_context():
    assert optflags.cow_attach and optflags.trace_cache
    with optflags.optimizations_disabled():
        assert not optflags.cow_attach and not optflags.trace_cache
    assert optflags.cow_attach and optflags.trace_cache


@pytest.mark.parametrize("platform", ["t-cxl", "faasnap+"])
def test_w2_repeat_is_bit_identical(platform):
    """Teardown eviction order and page-cache counting are order-free.

    VM teardown evicts the private host-cache files of many VMs into a
    shared accountant; ``charge_file`` counts misses on a set.  Both ran
    over unordered sets before the SIM003 sweep — two identical-seed W2
    runs must agree on the full stream *and* the memory peak (which the
    eviction/charge timeline feeds).
    """
    assert run_w2_slice(platform) == run_w2_slice(platform)


def test_w2_cluster_dispatch_counts_deterministic():
    """Cluster results expose dispatch counts in sorted-key order."""
    from repro.mem.layout import GB as _GB
    from repro.mem.pools import CXLPool
    from repro.serverless.cluster import make_trenv_cluster
    from repro.workloads.synthetic import make_w2_diurnal

    def run(seed):
        cluster = make_trenv_cluster(3, CXLPool(128 * _GB), seed=seed)
        wl = make_w2_diurnal(seed=seed, duration=150.0, mean_rate=1.6)
        result = cluster.run_workload(wl)
        return (list(result.dispatch_counts.items()),
                [(r.function, r.e2e) for r in result.recorder.results])

    first, second = run(3), run(3)
    assert first == second
    keys = [k for k, _ in first[0]]
    assert keys == sorted(keys)
