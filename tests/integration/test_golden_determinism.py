"""Golden determinism: the perf optimizations never change results.

The CoW attach path, trace cache, fused fault handling, heap-based LRU
and the rest of the hot-path work are *host-side* optimizations: for a
fixed seed they must produce bit-identical invocation streams and memory
peaks, with only wall-clock and allocations allowed to differ.  This is
the regression gate for that contract — a fig17-style W2 slice run with
optimizations on and off (``optflags.optimizations_disabled()``),
compared field by field.
"""

import pytest

from repro import optflags
from repro.bench.harness import run_platform_workload
from repro.mem.layout import GB
from repro.workloads.synthetic import make_w2_diurnal


def run_w2_slice(platform, seed=1, duration=150.0):
    wl = make_w2_diurnal(seed=seed, duration=duration, mean_rate=1.6,
                         soft_cap_bytes=5 * GB)
    result = run_platform_workload(platform, wl, seed=seed)
    stream = [(r.function, r.arrival, r.start_kind, r.startup, r.exec,
               r.e2e, r.queue, r.retries, r.degraded)
              for r in result.recorder.results]
    return stream, result.peak_memory_bytes


@pytest.mark.parametrize("platform", ["t-cxl", "t-rdma", "criu"])
def test_optimizations_are_bit_identical(platform):
    optimized = run_w2_slice(platform)
    with optflags.optimizations_disabled():
        baseline = run_w2_slice(platform)
    assert optimized[0], "W2 slice produced no invocations"
    assert optimized == baseline


def test_flags_restored_after_context():
    assert optflags.cow_attach and optflags.trace_cache
    with optflags.optimizations_disabled():
        assert not optflags.cow_attach and not optflags.trace_cache
    assert optflags.cow_attach and optflags.trace_cache
