"""Tests for Figure-2 workflow DAGs."""

import pytest

from repro.agents.llm import LLMTrace, ReplayLLMServer
from repro.agents.spec import agent_by_name
from repro.agents.workflow_graph import GraphExecutor, WorkflowGraph
from repro.sim.cpu import FairShareCPU
from repro.sim.engine import Simulator


def run_graph(graph, cores=8):
    sim = Simulator()
    cpu = FairShareCPU(sim, cores)
    llm = ReplayLLMServer()
    executor = GraphExecutor(sim, cpu, llm)

    def driver():
        elapsed = yield executor.run(graph)
        return elapsed

    elapsed = sim.run_process(driver())
    return elapsed, executor


class TestConstruction:
    def test_static_chain_uses_all_calls(self):
        spec = agent_by_name("bug-fixer")
        graph = WorkflowGraph.static_chain(spec)
        assert graph.llm_calls_used() == list(range(spec.n_llm_calls))

    def test_map_reduce_structure(self):
        spec = agent_by_name("map-reduce")
        graph = WorkflowGraph.map_reduce(spec)
        kinds = [n.kind for n in graph.nodes.values()]
        assert kinds.count("split") == 1
        assert kinds.count("join") == 1
        assert kinds.count("llm") == spec.n_llm_calls

    def test_react_alternates_llm_and_tool(self):
        spec = agent_by_name("game-design")
        graph = WorkflowGraph.react(spec)
        assert graph.llm_calls_used() == list(range(spec.n_llm_calls))

    def test_from_spec_dispatches_on_workflow_field(self):
        assert [n.kind for n in WorkflowGraph.from_spec(
            agent_by_name("map-reduce")).nodes.values()].count("split") == 1
        assert [n.kind for n in WorkflowGraph.from_spec(
            agent_by_name("bug-fixer")).nodes.values()].count("split") == 0

    def test_single_root_enforced(self):
        graph = WorkflowGraph(agent_by_name("blackjack"))
        graph.add("tool")
        graph.add("tool")
        with pytest.raises(ValueError):
            _ = graph.root

    def test_validation_rejects_wrong_call_set(self):
        spec = agent_by_name("blackjack")
        graph = WorkflowGraph(spec)
        a = graph.add("llm", llm_call=0)
        graph.link(a, graph.add("finish"))
        sim = Simulator()
        executor = GraphExecutor(sim, FairShareCPU(sim, 1),
                                 ReplayLLMServer())

        def driver():
            yield executor.run(graph)

        with pytest.raises(ValueError):
            sim.run_process(driver())


class TestExecution:
    def test_static_chain_latency_matches_spec(self):
        spec = agent_by_name("bug-fixer")
        elapsed, _ex = run_graph(WorkflowGraph.static_chain(spec))
        assert elapsed == pytest.approx(spec.llm_wait + spec.own_cpu,
                                        rel=0.02)

    def test_every_node_executes_exactly_once(self):
        spec = agent_by_name("map-reduce")
        graph = WorkflowGraph.map_reduce(spec)
        _elapsed, executor = run_graph(graph)
        assert sorted(executor.executed) == sorted(graph.nodes)

    def test_map_reduce_parallelism_beats_chain(self):
        """Fig 2b: parallel map branches overlap their LLM waits."""
        spec = agent_by_name("map-reduce")
        chain, _ = run_graph(WorkflowGraph.static_chain(spec))
        dag, _ = run_graph(WorkflowGraph.map_reduce(spec))
        assert dag < 0.6 * chain

    def test_map_reduce_bounded_below_by_longest_branch(self):
        spec = agent_by_name("map-reduce")
        trace = LLMTrace.from_spec(spec)
        dag, _ = run_graph(WorkflowGraph.map_reduce(spec))
        # At minimum: plan call + slowest map call + reduce call.
        lower = (trace.calls[0].latency
                 + max(c.latency for c in trace.calls[1:-1])
                 + trace.calls[-1].latency)
        assert dag >= lower - 1e-6

    def test_react_is_fully_sequential(self):
        spec = agent_by_name("game-design")
        elapsed, _ex = run_graph(WorkflowGraph.react(spec))
        assert elapsed == pytest.approx(spec.llm_wait + spec.own_cpu,
                                        rel=0.02)

    def test_cpu_contention_stretches_tool_steps(self):
        spec = agent_by_name("map-reduce")
        fast, _ = run_graph(WorkflowGraph.map_reduce(spec), cores=8)
        # One core shared by parallel branches: tools serialise.
        slow, _ = run_graph(WorkflowGraph.map_reduce(spec), cores=1)
        assert slow >= fast
