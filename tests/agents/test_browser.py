import pytest

from repro.agents.browser import (BROWSER_BASE_MB, TAB_RENDERER_MB, Browser,
                                  BrowserPool)
from repro.mem.accounting import MemoryAccountant
from repro.mem.layout import MB
from repro.sim.engine import Simulator


def make_pool(sharing=True, max_agents=10):
    sim = Simulator()
    acct = MemoryAccountant()
    return sim, acct, BrowserPool(sim, acct, sharing=sharing,
                                  max_agents=max_agents)


def acquire(sim, pool, agent_id):
    def proc():
        b = yield pool.acquire(agent_id)
        return b

    return sim.run_process(proc())


class TestBrowser:
    def test_memory_charged_on_create_and_attach(self):
        acct = MemoryAccountant()
        b = Browser(acct)
        assert acct.usage["browser"] == BROWSER_BASE_MB * MB
        b.attach(1)
        assert acct.usage["browser"] == (BROWSER_BASE_MB + TAB_RENDERER_MB) * MB

    def test_detach_and_close_release(self):
        acct = MemoryAccountant()
        b = Browser(acct)
        b.attach(1)
        b.open_tab(1)
        b.detach(1)
        b.close()
        assert acct.usage["browser"] == 0
        assert b.memory_bytes == 0

    def test_capacity_enforced(self):
        acct = MemoryAccountant()
        b = Browser(acct, max_agents=2)
        b.attach(1)
        b.attach(2)
        with pytest.raises(RuntimeError):
            b.attach(3)

    def test_double_attach_rejected(self):
        b = Browser(MemoryAccountant())
        b.attach(1)
        with pytest.raises(RuntimeError):
            b.attach(1)

    def test_open_tab_requires_attach(self):
        b = Browser(MemoryAccountant())
        with pytest.raises(KeyError):
            b.open_tab(5)


class TestBrowserPool:
    def test_sharing_packs_agents_into_one_browser(self):
        sim, acct, pool = make_pool(sharing=True)
        browsers = [acquire(sim, pool, i) for i in range(10)]
        assert len(set(id(b) for b in browsers)) == 1
        assert pool.launches == 1
        assert pool.attaches == 9

    def test_eleventh_agent_gets_second_browser(self):
        sim, acct, pool = make_pool(sharing=True)
        for i in range(11):
            acquire(sim, pool, i)
        assert pool.launches == 2

    def test_no_sharing_one_browser_each(self):
        sim, acct, pool = make_pool(sharing=False)
        for i in range(5):
            acquire(sim, pool, i)
        assert pool.launches == 5

    def test_shared_memory_much_lower(self):
        sim_s, acct_s, pool_s = make_pool(sharing=True)
        for i in range(10):
            acquire(sim_s, pool_s, i)
        sim_d, acct_d, pool_d = make_pool(sharing=False)
        for i in range(10):
            acquire(sim_d, pool_d, i)
        assert acct_s.usage["browser"] < acct_d.usage["browser"] / 3

    def test_attach_cheaper_than_launch(self):
        sim, acct, pool = make_pool(sharing=True)
        t0 = sim.now
        acquire(sim, pool, 1)
        launch_time = sim.now - t0
        t1 = sim.now
        acquire(sim, pool, 2)
        attach_time = sim.now - t1
        assert attach_time < launch_time / 10

    def test_release_closes_empty_browser(self):
        sim, acct, pool = make_pool(sharing=True)
        b = acquire(sim, pool, 1)
        pool.release(b, 1)
        assert acct.usage["browser"] == 0
        assert pool.browsers == []

    def test_cpu_multiplier(self):
        _s, _a, shared = make_pool(sharing=True)
        _s2, _a2, dedicated = make_pool(sharing=False)
        assert shared.cpu_multiplier() < 1.0
        assert dedicated.cpu_multiplier() == 1.0
