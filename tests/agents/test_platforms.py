import pytest

from repro.agents.platform import (E2BPlatform, E2BPlusPlatform,
                                   TrEnvVMPlatform, VanillaCHPlatform)
from repro.agents.spec import agent_by_name
from repro.node import Node


def run_agent(platform_cls, agent="blackjack", cores=64, **kwargs):
    node = Node(cores=cores, seed=3)
    platform = platform_cls(node, **kwargs)
    spec = agent_by_name(agent)

    def proc():
        r = yield platform.run_agent(spec)
        return r

    result = node.sim.run_process(proc())
    return node, platform, result


class TestStartup:
    def test_trenv_startup_below_e2b(self):
        """Figure 23: TrEnv reduces startup ~40-60% vs E2B/E2B+."""
        _n, _p, e2b = run_agent(E2BPlatform)
        _n, _p, e2bp = run_agent(E2BPlusPlatform)
        _n, _p, trenv = run_agent(TrEnvVMPlatform)
        assert trenv.startup < 0.65 * e2b.startup
        assert trenv.startup < 0.65 * e2bp.startup

    def test_vanilla_ch_exceeds_700ms(self):
        """§9.6.1: CH full-copy restore pushes startup past 700 ms."""
        _n, _p, ch = run_agent(VanillaCHPlatform)
        assert ch.startup > 0.7

    def test_e2bplus_not_faster_than_e2b(self):
        _n, _p, e2b = run_agent(E2BPlatform)
        _n, _p, e2bp = run_agent(E2BPlusPlatform)
        assert e2bp.startup >= e2b.startup

    def test_concurrent_startups_inflate_e2b_more(self):
        """Figure 23(b): 10 concurrent launches."""
        def concurrent(platform_cls):
            node = Node(cores=64, seed=3)
            platform = platform_cls(node)
            spec = agent_by_name("blackjack")
            results = []

            def one():
                r = yield platform.run_agent(spec)
                results.append(r)

            for _ in range(10):
                node.sim.spawn(one())
            node.sim.run()
            return max(r.startup for r in results)

        e2b = concurrent(E2BPlatform)
        trenv = concurrent(TrEnvVMPlatform)
        assert trenv < 0.6 * e2b


class TestE2E:
    @pytest.mark.parametrize("agent", ["blackjack", "bug-fixer",
                                       "map-reduce"])
    def test_uncontended_e2e_matches_table2(self, agent):
        spec = agent_by_name(agent)
        _n, _p, r = run_agent(E2BPlatform, agent)
        assert r.e2e == pytest.approx(spec.e2e_target, rel=0.10)

    def test_browser_agent_e2e_close_to_table2(self):
        spec = agent_by_name("shop-assistant")
        _n, _p, r = run_agent(E2BPlatform, "shop-assistant")
        # Browser launch adds a little over the recorded run.
        assert r.e2e == pytest.approx(spec.e2e_target, rel=0.10)

    def test_llm_wait_dominates(self):
        _n, _p, r = run_agent(E2BPlatform, "bug-fixer")
        assert r.llm_wait > 0.9 * r.e2e


class TestMemory:
    def test_trenv_peak_memory_below_e2b(self):
        """Figure 25 shape for a cache-heavy agent."""
        n_e2b, _p, _r = run_agent(E2BPlatform, "map-reduce")
        n_trenv, _p, _r = run_agent(TrEnvVMPlatform, "map-reduce")
        assert n_trenv.memory.peak_bytes < 0.9 * n_e2b.memory.peak_bytes

    def test_e2bplus_between_e2b_and_trenv(self):
        n_e2b, _p, _r = run_agent(E2BPlatform, "map-reduce")
        n_p, _p2, _r = run_agent(E2BPlusPlatform, "map-reduce")
        n_t, _p3, _r = run_agent(TrEnvVMPlatform, "map-reduce")
        assert n_t.memory.peak_bytes < n_p.memory.peak_bytes
        assert n_p.memory.peak_bytes < n_e2b.memory.peak_bytes

    def test_memory_released_after_session(self):
        node, _p, _r = run_agent(E2BPlatform, "blackjack")
        usage = node.memory.usage
        assert usage.get("vm-guest-anon", 0) == 0
        assert usage.get("vm-guest-cache", 0) == 0
        assert usage.get("vmm-overhead", 0) == 0
        assert usage.get("browser", 0) == 0


class TestBrowserSharing:
    def test_trenv_s_improves_browser_heavy_latency_under_overcommit(self):
        """Figure 24(b): blog-summary gains most from sharing."""
        def run_many(sharing, n=30, cores=4):
            node = Node(cores=cores, seed=5)
            platform = TrEnvVMPlatform(node, browser_sharing=sharing)
            spec = agent_by_name("blog-summary")
            results = []

            def one():
                r = yield platform.run_agent(spec)
                results.append(r)

            for _ in range(n):
                node.sim.spawn(one())
            node.sim.run()
            return max(r.startup + r.e2e for r in results)

        dedicated = run_many(False)
        shared = run_many(True)
        assert shared < dedicated

    def test_game_design_gains_little(self):
        """Figure 24(c): infrequent browser use => minimal improvement."""
        def run_one(sharing):
            _n, _p, r = run_agent(TrEnvVMPlatform, "game-design",
                                  browser_sharing=sharing)
            return r.e2e

        dedicated = run_one(False)
        shared = run_one(True)
        assert abs(dedicated - shared) / dedicated < 0.06

    def test_trenv_s_name(self):
        node = Node()
        assert TrEnvVMPlatform(node, browser_sharing=True).name == "trenv-s"
        assert TrEnvVMPlatform(Node(), browser_sharing=False).name == "trenv-vm"


class TestRecorder:
    def test_sessions_recorded(self):
        _n, platform, _r = run_agent(E2BPlatform)
        assert platform.recorder.count() == 1
        assert platform.sessions == 1
