"""Unit tests for the agent workflow runner."""

import pytest

from repro.agents.browser import BrowserPool
from repro.agents.llm import ReplayLLMServer
from repro.agents.runner import AgentResult, AgentWorkflow
from repro.agents.spec import agent_by_name
from repro.mem.accounting import MemoryAccountant
from repro.mem.layout import MB
from repro.mem.page_cache import FileIdRegistry, PageCache
from repro.node import Node
from repro.vm.microvm import GuestConfig, MicroVM, StorageMode


def make_vm(node, storage=StorageMode.VIRTIO_BLK):
    host_cache = PageCache("host")
    vm = MicroVM(GuestConfig(storage=storage), node.memory, host_cache,
                 FileIdRegistry())
    return vm


def run_workflow(agent="bug-fixer", sharing=True, cores=8):
    node = Node(cores=cores, seed=19)
    spec = agent_by_name(agent)
    vm = make_vm(node)
    llm = ReplayLLMServer()
    browsers = BrowserPool(node.sim, node.memory, node.latency,
                           sharing=sharing)
    workflow = AgentWorkflow(spec)

    def driver():
        active, wait = yield workflow.run(node.cpu, llm, vm, browsers)
        return active, wait

    active, wait = node.sim.run_process(driver())
    return node, spec, vm, active, wait


class TestWorkflow:
    def test_llm_wait_matches_trace(self):
        _node, spec, _vm, _active, wait = run_workflow("bug-fixer")
        assert wait == pytest.approx(spec.llm_wait, rel=0.01)

    def test_active_time_tracks_cpu_linear_agent(self):
        _node, spec, _vm, active, _wait = run_workflow("bug-fixer")
        assert active == pytest.approx(spec.cpu_time, rel=0.3)

    def test_mapreduce_active_wall_time_below_total_cpu(self):
        """Fig 2b: parallel map branches overlap their tool CPU, so the
        wall-clock active time undercuts the summed CPU time."""
        _node, spec, _vm, active, _wait = run_workflow("map-reduce",
                                                       cores=8)
        assert active < spec.cpu_time

    def test_mapreduce_serialises_on_one_core(self):
        _node, spec, _vm, active, _wait = run_workflow("map-reduce",
                                                       cores=1)
        assert active == pytest.approx(spec.cpu_time, rel=0.4)

    def test_anon_memory_grows_to_profile(self):
        node, spec, vm, *_ = run_workflow("map-reduce")
        workflow = AgentWorkflow(spec)
        expected = workflow.anon_bytes
        assert vm.guest_memory.local_bytes == pytest.approx(expected,
                                                            rel=0.05)

    def test_browser_agent_without_pool_rejected(self):
        node = Node(seed=19)
        spec = agent_by_name("shop-assistant")
        vm = make_vm(node)
        workflow = AgentWorkflow(spec)

        def driver():
            yield workflow.run(node.cpu, ReplayLLMServer(), vm, None)

        with pytest.raises(ValueError):
            node.sim.run_process(driver())

    def test_browser_released_on_completion(self):
        node = Node(cores=8, seed=19)
        spec = agent_by_name("shop-assistant")
        vm = make_vm(node)
        browsers = BrowserPool(node.sim, node.memory, node.latency)
        workflow = AgentWorkflow(spec)

        def driver():
            yield workflow.run(node.cpu, ReplayLLMServer(), vm, browsers)

        node.sim.run_process(driver())
        assert browsers.browsers == []
        assert node.memory.usage.get("browser", 0) == 0

    def test_file_io_charges_guest_and_host_caches(self):
        node, spec, vm, *_ = run_workflow("map-reduce")
        # virtio-blk: both caches populated by the workflow's IO.
        assert vm.guest_cache.cached_bytes > 0.5 * spec.file_io_bytes

    def test_anon_bytes_floors_at_32mb(self):
        spec = agent_by_name("blackjack")
        workflow = AgentWorkflow(spec)
        assert workflow.anon_bytes >= 32 * MB

    def test_agent_ids_unique(self):
        a = AgentWorkflow(agent_by_name("blackjack"))
        b = AgentWorkflow(agent_by_name("blackjack"))
        assert a.agent_id != b.agent_id


class TestAgentResult:
    def test_total(self):
        r = AgentResult(agent="x", startup=0.2, e2e=3.0, active_time=0.5,
                        llm_wait=2.5)
        assert r.total == pytest.approx(3.2)
