import pytest

from repro.agents.cost import (PriceConfig, billed_memory_bytes, cost_table,
                               llm_cost, relative_cost, serverless_cost)
from repro.agents.llm import LLMTrace, ReplayLLMServer
from repro.agents.spec import (AGENTS, agent_by_name, browser_agents,
                               lightweight_agents)
from repro.mem.layout import MB
from repro.sim.engine import Simulator


class TestSpecs:
    def test_table2_roster(self):
        names = [a.name for a in AGENTS]
        assert names == ["blackjack", "bug-fixer", "map-reduce",
                         "shop-assistant", "blog-summary", "game-design"]

    def test_table2_values(self):
        bj = agent_by_name("blackjack")
        assert bj.e2e_target == 3.2
        assert bj.mem_bytes == 74 * MB
        assert bj.cpu_time == pytest.approx(0.411)
        gd = agent_by_name("game-design")
        assert gd.e2e_target == 107.0
        assert gd.mem_bytes == 1389 * MB

    def test_table3_tokens(self):
        assert agent_by_name("blackjack").input_tokens == 1690
        assert agent_by_name("blackjack").output_tokens == 8
        assert agent_by_name("game-design").input_tokens == 75121
        assert agent_by_name("blog-summary").output_tokens == 2703

    def test_cpu_utilization_low(self):
        """§2.4: agents use <25% of allocated CPU."""
        for spec in AGENTS:
            assert spec.cpu_utilization < 0.30

    def test_game_design_utilization_about_7pct(self):
        assert agent_by_name("game-design").cpu_utilization == pytest.approx(
            0.07, abs=0.01)

    def test_taxonomy(self):
        assert {a.name for a in lightweight_agents()} == {
            "blackjack", "bug-fixer", "map-reduce"}
        assert {a.name for a in browser_agents()} == {
            "shop-assistant", "blog-summary", "game-design"}

    def test_llm_wait_positive(self):
        for spec in AGENTS:
            assert spec.llm_wait > 0
            assert spec.own_cpu >= 0

    def test_unknown_agent(self):
        with pytest.raises(KeyError):
            agent_by_name("skynet")


class TestLLMTrace:
    @pytest.mark.parametrize("spec", AGENTS, ids=lambda a: a.name)
    def test_totals_match_tables(self, spec):
        trace = LLMTrace.from_spec(spec)
        assert trace.total_input_tokens == spec.input_tokens
        assert trace.total_output_tokens == spec.output_tokens
        # The workflow's critical path of LLM time equals the measured
        # wait (for map-reduce the parallel maps overlap, Fig 2b).
        assert trace.critical_path_latency(spec.workflow) == pytest.approx(
            spec.llm_wait, rel=1e-6)
        assert len(trace.calls) == spec.n_llm_calls

    def test_context_grows(self):
        trace = LLMTrace.from_spec(agent_by_name("blog-summary"))
        inputs = [c.input_tokens for c in trace.calls]
        assert inputs[-1] > inputs[0]

    def test_replay_server_deterministic(self):
        spec = agent_by_name("bug-fixer")

        def run_once():
            sim = Simulator()
            server = ReplayLLMServer()

            def proc():
                for i in range(spec.n_llm_calls):
                    yield server.call(spec, i)
                return sim.now

            return sim.run_process(proc())

        assert run_once() == run_once()

    def test_replay_total_equals_llm_wait_for_linear_agent(self):
        spec = agent_by_name("bug-fixer")
        sim = Simulator()
        server = ReplayLLMServer()

        def proc():
            for i in range(spec.n_llm_calls):
                yield server.call(spec, i)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(spec.llm_wait)

    def test_mapreduce_critical_path_below_total(self):
        trace = LLMTrace.from_spec(agent_by_name("map-reduce"))
        assert trace.critical_path_latency("mapreduce") < trace.total_latency

    def test_out_of_range_call(self):
        spec = agent_by_name("blackjack")
        sim = Simulator()
        server = ReplayLLMServer()

        def proc():
            yield server.call(spec, 99)

        with pytest.raises(IndexError):
            sim.run_process(proc())

    def test_token_accounting(self):
        spec = agent_by_name("blackjack")
        sim = Simulator()
        server = ReplayLLMServer()

        def proc():
            for i in range(spec.n_llm_calls):
                yield server.call(spec, i)

        sim.run_process(proc())
        assert server.tokens_in == spec.input_tokens
        assert server.tokens_out == spec.output_tokens


class TestCostModel:
    def test_llm_cost_equation1(self):
        spec = agent_by_name("blackjack")
        prices = PriceConfig(input_per_mtok=1.0, output_per_mtok=2.0)
        expected = (1690 * 1.0 + 8 * 2.0) / 1e6
        assert llm_cost(spec, prices) == pytest.approx(expected)

    def test_billed_memory_rounds_up_to_128mb(self):
        assert billed_memory_bytes(74 * MB) == 128 * MB
        assert billed_memory_bytes(128 * MB) == 128 * MB
        assert billed_memory_bytes(129 * MB) == 256 * MB

    def test_billed_memory_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            billed_memory_bytes(0)

    def test_serverless_cost_equation2(self):
        spec = agent_by_name("blackjack")
        cost = serverless_cost(spec)
        expected = 3.2 * 1.67e-5 * (128 / 1024)
        assert cost == pytest.approx(expected, rel=1e-3)

    def test_relative_cost_substantial_for_complex_agents(self):
        """Figure 3: serverless can reach tens of percent of LLM cost."""
        ratios = {a.name: relative_cost(a) for a in AGENTS}
        assert max(ratios.values()) > 0.40
        assert ratios["blog-summary"] == max(ratios.values())

    def test_complex_agents_cost_more_relative(self):
        """§2.3 finding 2: complex agents incur higher serverless cost."""
        light = max(relative_cost(a) for a in lightweight_agents())
        heavy = max(relative_cost(a) for a in browser_agents())
        assert heavy > light

    def test_cost_table_covers_all(self):
        table = cost_table()
        assert set(table) == {a.name for a in AGENTS}
        for row in table.values():
            assert row["relative"] == pytest.approx(
                row["serverless_usd"] / row["llm_usd"])
