"""Tests for the processor-sharing CPU model."""

import pytest

from repro.sim.cpu import FairShareCPU
from repro.sim.engine import Delay, Simulator


def run_tasks(cores, works, stagger=0.0):
    """Run compute tasks; return dict of task index -> completion time."""
    sim = Simulator()
    cpu = FairShareCPU(sim, cores)
    finish = {}

    def task(i, work):
        yield Delay(stagger * i)
        yield from cpu.compute(work)
        finish[i] = sim.now

    for i, work in enumerate(works):
        sim.spawn(task(i, work))
    sim.run()
    return sim, cpu, finish


def test_single_task_full_speed():
    _sim, _cpu, finish = run_tasks(4, [2.0])
    assert finish[0] == pytest.approx(2.0)


def test_underloaded_tasks_run_in_parallel():
    _sim, _cpu, finish = run_tasks(4, [1.0, 2.0, 3.0])
    assert finish[0] == pytest.approx(1.0)
    assert finish[1] == pytest.approx(2.0)
    assert finish[2] == pytest.approx(3.0)


def test_overload_halves_rate():
    # 2 tasks of 1s work on 1 core: both progress at 0.5x -> finish at 2s.
    _sim, _cpu, finish = run_tasks(1, [1.0, 1.0])
    assert finish[0] == pytest.approx(2.0)
    assert finish[1] == pytest.approx(2.0)


def test_overload_unequal_work():
    # 1 core, works 1 and 2: share until short one leaves at t=2
    # (each got 1.0 work), then the long one runs alone until t=3.
    _sim, _cpu, finish = run_tasks(1, [1.0, 2.0])
    assert finish[0] == pytest.approx(2.0)
    assert finish[1] == pytest.approx(3.0)


def test_staggered_arrival_rerates():
    # 1 core. Task0 (2s work) starts at t=0; task1 (1s) at t=1.
    # t in [0,1): task0 alone, does 1s of its work.
    # t in [1,3): both share, each gets 1s work over 2s wall.
    # Task0 done at t=3; task1 done at t=3.
    _sim, _cpu, finish = run_tasks(1, [2.0, 1.0], stagger=1.0)
    assert finish[0] == pytest.approx(3.0)
    assert finish[1] == pytest.approx(3.0)


def test_zero_work_is_free():
    sim = Simulator()
    cpu = FairShareCPU(sim, 1)

    def proc():
        yield from cpu.compute(0.0)
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_load_and_rate_tracking():
    sim = Simulator()
    cpu = FairShareCPU(sim, 2)
    assert cpu.load == 0
    assert cpu.rate == 1.0

    def proc():
        yield from cpu.compute(1.0)

    for _ in range(4):
        sim.spawn(proc())
    sim.run(until=0.5)
    assert cpu.load == 4
    assert cpu.rate == pytest.approx(0.5)
    sim.run()
    assert cpu.load == 0


def test_utilization_accounting():
    sim, cpu, _finish = run_tasks(2, [1.0, 1.0])
    # Two tasks on two cores for 1s => both cores busy the whole time.
    assert cpu.utilization() == pytest.approx(1.0)


def test_utilization_partial():
    sim = Simulator()
    cpu = FairShareCPU(sim, 2)

    def proc():
        yield from cpu.compute(1.0)
        yield Delay(1.0)

    sim.run_process(proc())
    # 1 core busy for 1s out of 2 cores * 2s = 0.25.
    assert cpu.utilization() == pytest.approx(0.25)


def test_overcommit_stretch_matches_theory():
    # 10 tasks x 1s work on 2 cores: rate 0.2 each -> all done at 5s.
    _sim, _cpu, finish = run_tasks(2, [1.0] * 10)
    for t in finish.values():
        assert t == pytest.approx(5.0)


def test_invalid_core_count():
    with pytest.raises(ValueError):
        FairShareCPU(Simulator(), 0)


def test_stretch_advisory():
    sim = Simulator()
    cpu = FairShareCPU(sim, 1)
    assert cpu.stretch(2.0) == pytest.approx(2.0)


def test_many_tasks_complete_in_bounded_events():
    # Regression guard: 200 tasks should complete without quadratic blowup
    # in scheduled wakeups and produce exact processor-sharing times.
    _sim, _cpu, finish = run_tasks(20, [1.0] * 200)
    for t in finish.values():
        assert t == pytest.approx(10.0)
