"""The conservative PDES layer: windows, mailboxes, shard runners.

These tests pin the layer's determinism contracts in isolation from the
cluster: window boundaries cover the horizon exactly, ``run_window``
stepping reports the same final clock as an uninterrupted ``run()``,
mailbox drain order is a pure function of sender stamps (invariant to
any worker interleaving that preserves each sender's causal order —
hypothesis shuffles the interleaving), and the lockstep shard driver
produces identical digests under every per-window execution order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Delay, Simulator
from repro.sim.latency import LatencyModel
from repro.sim.parallel import (CLOSED_CHANNEL_WINDOWS, Mailbox,
                                MailboxRouter, ShardRunner, derive_lookahead,
                                drive_shards, plan_windows, resolve_jobs)


# ------------------------------------------------------------- lookahead --

def test_lookahead_is_min_cross_node_latency():
    lat = LatencyModel().mem
    assert derive_lookahead() == min(lat.mmt_attach_base,
                                     lat.rdma_fetch_4k,
                                     lat.nas_fetch_4k)
    assert derive_lookahead() > 0.0


def test_resolve_jobs_clamps_to_shards():
    assert resolve_jobs(4, 2) == 2
    assert resolve_jobs(1, 8) == 1
    assert resolve_jobs(3, 3) == 3
    assert resolve_jobs(5, 0) == 1
    # jobs <= 0 sizes to the CPU count, still capped by the shard count.
    assert 1 <= resolve_jobs(0, 64) <= 64
    assert resolve_jobs(0, 1) == 1


# --------------------------------------------------------------- windows --

def test_window_boundaries_cover_horizon_exactly():
    plan = plan_windows(1.0, 0.3, channels_open=True)
    bounds = plan.boundaries()
    assert bounds[-1] == 1.0
    assert bounds == sorted(bounds)
    assert all(b2 - b1 <= plan.width + 1e-12
               for b1, b2 in zip(bounds, bounds[1:]))


def test_open_channels_pin_width_to_lookahead():
    plan = plan_windows(100.0, 0.001, channels_open=True)
    assert plan.width == 0.001


def test_closed_channels_widen_windows():
    open_plan = plan_windows(100.0, 0.001, channels_open=True)
    closed = plan_windows(100.0, 0.001, channels_open=False)
    assert closed.width == 100.0 / CLOSED_CHANNEL_WINDOWS
    assert closed.n_windows < open_plan.n_windows


def test_plan_windows_rejects_nonpositive_lookahead():
    with pytest.raises(ValueError):
        plan_windows(10.0, 0.0)
    with pytest.raises(ValueError):
        plan_windows(10.0, -1.0)


@settings(max_examples=40, deadline=None)
@given(st.floats(0.01, 20.0), st.floats(1e-2, 10.0), st.booleans())
def test_window_boundaries_properties(horizon, lookahead, channels_open):
    plan = plan_windows(horizon, lookahead, channels_open=channels_open)
    bounds = plan.boundaries()
    assert len(bounds) == plan.n_windows
    assert bounds[-1] == horizon
    assert all(b > 0 for b in bounds)
    assert bounds == sorted(set(bounds))


# ------------------------------------------------------------ run_window --

def test_run_window_stepping_matches_uninterrupted_run():
    def build():
        sim = Simulator()
        log = []

        def proc():
            for d in (0.1, 0.25, 0.4, 1.3):
                yield Delay(d)
                log.append(sim.now)

        sim.spawn(proc())
        return sim, log

    ref_sim, ref_log = build()
    ref_sim.run()

    sim, log = build()
    for bound in (0.5, 1.0, 1.5, 2.0, 2.5):
        sim.run_window(bound)
    sim.run()
    assert log == ref_log
    # run_window leaves the clock at the last executed event (no
    # boundary padding), so the windowed run reports the same final
    # clock as the uninterrupted reference.
    assert sim.now == ref_sim.now


def test_run_window_boundary_event_belongs_to_closing_window():
    sim = Simulator()
    fired = []

    def proc():
        yield Delay(1.0)
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run_window(1.0)
    assert fired == [1.0]


# -------------------------------------------------------------- mailboxes --

def test_mailbox_stamps_fifo_seq():
    box = Mailbox(src=0, dst=1)
    a = box.post(1.0, "a")
    b = box.post(1.0, "b")
    assert (a.seq, b.seq) == (0, 1)
    assert len(box) == 2
    drained = box.drain()
    assert [m.payload for m in drained] == ["a", "b"]
    assert len(box) == 0


def test_router_bounds_shard_ids():
    router = MailboxRouter(n_shards=2)
    with pytest.raises(ValueError):
        router.post(0, 5, 1.0, None)
    with pytest.raises(ValueError):
        MailboxRouter(n_shards=0)


def test_router_pending_counts_all_inboxes():
    router = MailboxRouter(n_shards=3)
    router.post(0, 1, 0.5, None)
    router.post(2, 1, 0.7, None)
    assert router.pending() == 2
    assert [m.src for m in router.drain(1)] == [0, 2]
    assert router.pending() == 0


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 3),                        # src shard
              st.floats(0.0, 10.0, allow_nan=False)),   # send time
    min_size=1, max_size=40),
    st.randoms(use_true_random=False))
def test_router_drain_order_invariant_to_worker_interleaving(sends, rnd):
    """Drain order is (time, src, seq) — never the posting order.

    The global interleaving of posts models OS scheduling of worker
    processes; any interleaving that preserves each sender's own causal
    (per-pair FIFO) order must deliver identically.  Each sender's send
    times are made non-decreasing first — a shard's clock is monotone.
    """
    per_src = {}
    for src, time in sends:
        per_src.setdefault(src, []).append(time)
    for times in per_src.values():
        times.sort()

    def deliver(interleave_rnd):
        router = MailboxRouter(n_shards=4)
        cursors = {src: 0 for src in per_src}
        live = [s for s in per_src if per_src[s]]
        while live:
            src = live[interleave_rnd.randrange(len(live))] \
                if interleave_rnd is not None else live[0]
            router.post(src, 0, per_src[src][cursors[src]],
                        payload=(src, cursors[src]))
            cursors[src] += 1
            if cursors[src] == len(per_src[src]):
                live.remove(src)
        return [(m.time, m.src, m.seq, m.payload)
                for m in router.drain(0)]

    reference = deliver(None)
    shuffled = deliver(rnd)
    assert shuffled == reference
    assert [r[:3] for r in reference] == sorted(r[:3] for r in reference)


# ---------------------------------------------------------- shard runners --

def _make_runner(shard, plan, delays):
    sim = Simulator()

    def proc():
        for d in delays:
            yield Delay(d)

    sim.spawn(proc())
    return ShardRunner(shard, sim, plan)


def test_drive_shards_runs_every_window():
    plan = plan_windows(2.0, 0.5, channels_open=True)
    runners = [_make_runner(i, plan, (0.3, 0.6, 0.9)) for i in range(3)]
    drive_shards(runners)
    assert all(r.done for r in runners)
    assert all(r.windows_run == plan.n_windows for r in runners)


@settings(max_examples=30, deadline=None)
@given(st.randoms(use_true_random=False))
def test_drive_shards_digest_invariant_to_window_order(rnd):
    """Any per-window shard permutation yields identical digests."""
    plan = plan_windows(2.0, 0.5, channels_open=True)

    def digests(order):
        runners = [_make_runner(i, plan, (0.2, 0.45, 1.1))
                   for i in range(4)]
        clocks = drive_shards(runners, order=order)
        return [r.digest for r in runners], clocks

    reference = digests(None)

    def shuffled_orders():
        for _ in range(plan.n_windows):
            perm = list(range(4))
            rnd.shuffle(perm)
            yield perm

    assert digests(shuffled_orders()) == reference


def test_drive_shards_rejects_non_permutation_order():
    plan = plan_windows(1.0, 0.5, channels_open=True)
    runners = [_make_runner(i, plan, (0.2,)) for i in range(2)]
    with pytest.raises(ValueError):
        drive_shards(runners, order=iter([[0, 0]]))


def test_finish_requires_all_windows_done():
    plan = plan_windows(1.0, 0.5, channels_open=True)
    runner = _make_runner(0, plan, (0.2,))
    with pytest.raises(RuntimeError):
        runner.finish()


def test_runner_delivers_messages_at_barriers():
    plan = plan_windows(1.0, 0.5, channels_open=True)
    router = MailboxRouter(n_shards=2)
    delivered = []
    runner = ShardRunner(
        0, Simulator(), plan, router=router,
        deliver=lambda sim, msg: delivered.append(msg.payload))
    router.post(1, 0, 0.1, "hello")
    runner.advance_one_window()
    assert delivered == ["hello"]


def test_runner_without_deliver_hook_rejects_messages():
    plan = plan_windows(1.0, 0.5, channels_open=True)
    router = MailboxRouter(n_shards=2)
    runner = ShardRunner(0, Simulator(), plan, router=router)
    router.post(1, 0, 0.1, "boom")
    with pytest.raises(RuntimeError):
        runner.advance_one_window()
