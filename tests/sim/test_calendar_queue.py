"""Property tests: the calendar queue is pop-for-pop identical to heapq.

The ``timer_wheel`` optflag swaps the engine's global binary heap for a
:class:`~repro.sim.engine._CalendarQueue`.  The contract is exact: for
any push sequence (sequence numbers globally monotone, as the engine
guarantees), pop order is identical entry for entry to a reference
``heapq`` ordered by ``(time, seq)`` — cancellations included, since
both paths cancel by epoch-stamping rather than queue surgery.  These
tests drive randomized seeded workloads through both and diff the
streams.
"""

import heapq
from itertools import count

import pytest

from repro import optflags
from repro.sim.engine import Delay, Simulator, _CalendarQueue
from repro.sim.rng import SeededRNG


def _random_schedule(seed, n_events, time_values=16):
    """(time, payload) pushes with many same-tick collisions."""
    rng = SeededRNG(seed, "calq")
    times = [round(rng.uniform(0.0, 10.0), 1) for _ in range(time_values)]
    return [(times[rng.randint(0, time_values)], i) for i in range(n_events)]


@pytest.mark.parametrize("seed", [0, 1, 2, 7])
def test_pop_order_matches_heapq(seed):
    schedule = _random_schedule(seed, n_events=500)
    seq = count()
    wheel = _CalendarQueue()
    heap = []
    for time, payload in schedule:
        s = next(seq)
        wheel.push(time, (s, payload, None, 0))
        heapq.heappush(heap, (time, s, payload))
    wheel_order = []
    while len(wheel):
        t, s, payload, _value, _epoch = wheel.pop()
        wheel_order.append((t, s, payload))
    heap_order = [heapq.heappop(heap) for _ in range(len(heap))]
    assert wheel_order == heap_order


@pytest.mark.parametrize("seed", [3, 11])
def test_interleaved_push_pop_matches_heapq(seed):
    """Pops interleave with pushes at >= the current head time."""
    rng = SeededRNG(seed, "interleave")
    seq = count()
    wheel = _CalendarQueue()
    heap = []
    wheel_order, heap_order = [], []
    now = 0.0
    for i in range(400):
        # Engine invariant: every push lands at now + dt with dt >= 0.
        t = round(now + rng.uniform(0.0, 2.0), 1)
        s = next(seq)
        wheel.push(t, (s, i, None, 0))
        heapq.heappush(heap, (t, s, i))
        if rng.random() < 0.5 and len(wheel):
            wt, ws, wp, _v, _e = wheel.pop()
            wheel_order.append((wt, ws, wp))
            heap_order.append(heapq.heappop(heap))
            now = wt
    while len(wheel):
        wt, ws, wp, _v, _e = wheel.pop()
        wheel_order.append((wt, ws, wp))
        heap_order.append(heapq.heappop(heap))
    assert wheel_order == heap_order


def _randomized_workload(sim, trace, seed, n_procs=40):
    """Spawn sleeper processes, some of which interrupt others."""
    rng = SeededRNG(seed, "procs")

    def sleeper(pid, naps):
        for nap in naps:
            try:
                yield Delay(nap)
            except Exception:  # Interrupt
                trace.append((sim.now, pid, "interrupted"))
                return
            trace.append((sim.now, pid, "woke"))

    waiters = []
    for pid in range(n_procs):
        naps = [round(rng.uniform(0.0, 3.0), 1)
                for _ in range(rng.randint(1, 5))]
        waiters.append(sim.spawn(sleeper(pid, naps), name=f"p{pid}"))

    def saboteur():
        yield Delay(2.0)
        for pid in range(0, n_procs, 3):
            waiters[pid].interrupt("chaos")
        trace.append((sim.now, -1, "sabotage"))

    sim.spawn(saboteur(), name="saboteur")


@pytest.mark.parametrize("seed", [0, 5, 9])
def test_engine_trace_identical_with_and_without_wheel(seed):
    """Full-engine property test: wake order with cancellations.

    The same randomized workload (sleepers with same-tick collisions
    plus a saboteur interrupting a third of them mid-nap) must produce
    an identical (now, pid, event) trace whether the simulator was
    built on the calendar queue or the reference heap.
    """
    trace_wheel = []
    sim = Simulator()
    _randomized_workload(sim, trace_wheel, seed)
    end_wheel = sim.run()

    trace_heap = []
    with optflags.disabled("timer_wheel"):
        sim = Simulator()
        _randomized_workload(sim, trace_heap, seed)
        end_heap = sim.run()

    assert trace_wheel, "workload produced no events"
    assert any(e[2] == "interrupted" for e in trace_wheel), \
        "no cancellations exercised"
    assert trace_wheel == trace_heap
    assert end_wheel == end_heap


def test_spawn_at_many_matches_individual_spawn_at():
    """Batch spawning assigns the same sequence order as a spawn loop."""
    def build(batch):
        trace = []

        def body(i):
            trace.append((round(sim.now, 6), i))
            yield Delay(0.1)
            trace.append((round(sim.now, 6), i, "done"))

        sim = Simulator()
        rng = SeededRNG(13, "batch")
        schedule = [(round(rng.uniform(0.0, 4.0), 1), i)
                    for i in range(200)]
        schedule.sort()
        if batch:
            sim.spawn_at_many((t, body(i)) for t, i in schedule)
        else:
            for t, i in schedule:
                sim.spawn_at(t, body(i))
        sim.run()
        return trace

    assert build(batch=True) == build(batch=False)


def test_spawn_at_many_rejects_past_times():
    from repro.sim.engine import SimulationError

    def noop():
        return
        yield

    def nap():
        yield Delay(1.0)

    sim = Simulator()
    sim.spawn_at_many([(0.0, noop())])  # now == 0.0 is fine
    sim.run_process(nap())              # advances now to 1.0
    with pytest.raises(SimulationError):
        sim.spawn_at_many([(0.5, noop())])
