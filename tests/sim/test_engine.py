"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Delay, Interrupt, SimulationError, Simulator


def test_delay_advances_clock():
    sim = Simulator()

    def proc():
        yield Delay(1.5)
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(1.5)


def test_zero_delay_runs_same_time():
    sim = Simulator()

    def proc():
        yield Delay(0.0)
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1.0)


def test_subprocess_composition_returns_value():
    sim = Simulator()

    def inner():
        yield Delay(2.0)
        return "inner-done"

    def outer():
        value = yield inner()
        return value, sim.now

    value, now = sim.run_process(outer())
    assert value == "inner-done"
    assert now == pytest.approx(2.0)


def test_deeply_nested_subprocesses():
    sim = Simulator()

    def leaf(depth):
        yield Delay(0.1)
        return depth

    def walk(depth):
        if depth == 0:
            result = yield leaf(0)
            return result
        result = yield walk(depth - 1)
        return result + 1

    assert sim.run_process(walk(20)) == 20
    assert sim.now == pytest.approx(0.1)


def test_event_wakes_waiter_with_value():
    sim = Simulator()
    evt = sim.event()
    results = []

    def waiter():
        value = yield evt
        results.append((sim.now, value))

    def trigger():
        yield Delay(3.0)
        evt.trigger("payload")

    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert results == [(3.0, "payload")]


def test_event_triggered_before_wait_resolves_immediately():
    sim = Simulator()
    evt = sim.event()
    evt.trigger(42)

    def proc():
        value = yield evt
        return value

    assert sim.run_process(proc()) == 42


def test_event_double_trigger_is_error():
    sim = Simulator()
    evt = sim.event()
    evt.trigger()
    with pytest.raises(SimulationError):
        evt.trigger()


def test_waiter_result_and_done():
    sim = Simulator()

    def proc():
        yield Delay(1.0)
        return 7

    waiter = sim.spawn(proc())
    assert not waiter.done
    sim.run()
    assert waiter.done
    assert waiter.result == 7


def test_waiter_result_before_done_raises():
    sim = Simulator()
    waiter = sim.spawn(iter(()))  # never scheduled generator-ish
    # A plain empty iterator is not a generator; spawn a real one instead.
    def proc():
        yield Delay(1.0)
    waiter = sim.spawn(proc())
    with pytest.raises(SimulationError):
        _ = waiter.result


def test_yield_on_waiter_gets_return_value():
    sim = Simulator()

    def child():
        yield Delay(2.0)
        return "child"

    def parent():
        handle = sim.spawn(child())
        value = yield handle
        return value, sim.now

    value, now = sim.run_process(parent())
    assert value == "child"
    assert now == pytest.approx(2.0)


def test_yield_on_finished_waiter_immediate():
    sim = Simulator()

    def child():
        yield Delay(1.0)
        return 5

    def parent():
        handle = sim.spawn(child())
        yield Delay(4.0)
        value = yield handle  # already finished
        return value, sim.now

    value, now = sim.run_process(parent())
    assert value == 5
    assert now == pytest.approx(4.0)


def test_exception_propagates_to_parent_process():
    sim = Simulator()

    def child():
        yield Delay(0.5)
        raise ValueError("boom")

    def parent():
        try:
            yield child()
        except ValueError as exc:
            return f"caught {exc}"

    assert sim.run_process(parent()) == "caught boom"


def test_exception_propagates_through_waiter():
    sim = Simulator()

    def child():
        yield Delay(0.5)
        raise KeyError("k")

    def parent():
        handle = sim.spawn(child())
        try:
            yield handle
        except KeyError:
            return "caught"

    assert sim.run_process(parent()) == "caught"


def test_unobserved_exception_surfaces():
    sim = Simulator()

    def bad():
        yield Delay(0.1)
        raise RuntimeError("unobserved")

    sim.spawn(bad())
    with pytest.raises(RuntimeError, match="unobserved"):
        sim.run()


def test_interrupt_while_delayed():
    sim = Simulator()
    outcome = []

    def sleeper():
        try:
            yield Delay(100.0)
        except Interrupt as intr:
            outcome.append((sim.now, intr.cause))

    def interrupter(handle):
        yield Delay(1.0)
        handle.interrupt("wake-up")

    handle = sim.spawn(sleeper())
    sim.spawn(interrupter(handle))
    sim.run()
    assert outcome == [(1.0, "wake-up")]


def test_interrupt_while_waiting_on_event_detaches_waiter():
    sim = Simulator()
    evt = sim.event()
    log = []

    def waiter():
        try:
            yield evt
        except Interrupt:
            log.append("interrupted")

    handle = sim.spawn(waiter())

    def driver():
        yield Delay(1.0)
        handle.interrupt()
        yield Delay(1.0)
        evt.trigger("late")

    sim.spawn(driver())
    sim.run()
    assert log == ["interrupted"]


def test_run_until_stops_clock():
    sim = Simulator()

    def proc():
        yield Delay(10.0)

    sim.spawn(proc())
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == pytest.approx(10.0)


def test_deterministic_tie_breaking():
    sim = Simulator()
    order = []

    def proc(tag):
        yield Delay(1.0)
        order.append(tag)

    for tag in "abc":
        sim.spawn(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_call_at_callback():
    sim = Simulator()
    hits = []
    sim.call_at(2.0, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [2.0]


def test_call_at_past_raises():
    sim = Simulator()

    def proc():
        yield Delay(5.0)

    sim.run_process(proc())
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_all_of_gathers_results():
    sim = Simulator()

    def worker(i):
        yield Delay(float(i))
        return i * 10

    def main():
        handles = [sim.spawn(worker(i)) for i in (3, 1, 2)]
        results = yield sim.all_of(handles)
        return results, sim.now

    results, now = sim.run_process(main())
    assert results == [30, 10, 20]
    assert now == pytest.approx(3.0)


def test_yield_garbage_raises():
    sim = Simulator()

    def proc():
        yield "not-a-command"

    with pytest.raises(SimulationError):
        sim.run_process(proc())


def test_run_process_deadlock_detected():
    sim = Simulator()
    evt = sim.event()

    def stuck():
        yield evt

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(stuck())
