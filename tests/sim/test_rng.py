"""Tests for seeded RNG substreams."""

import numpy as np
import pytest

from repro.sim.rng import SeededRNG


def test_same_seed_same_stream():
    a = SeededRNG(7)
    b = SeededRNG(7)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_seed_different_stream():
    a = SeededRNG(1)
    b = SeededRNG(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_is_independent_of_draw_order():
    root1 = SeededRNG(3)
    _ = root1.random()  # consuming root entropy must not shift forks
    fork1 = root1.fork("child")

    root2 = SeededRNG(3)
    fork2 = root2.fork("child")
    assert [fork1.random() for _ in range(5)] == [fork2.random() for _ in range(5)]


def test_fork_names_differ():
    root = SeededRNG(3)
    a = root.fork("a")
    b = root.fork("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_nested_fork_path():
    rng = SeededRNG(0).fork("x").fork("y")
    assert rng.path == "root/x/y"


def test_uniform_bounds():
    rng = SeededRNG(11)
    for _ in range(100):
        v = rng.uniform(2.0, 3.0)
        assert 2.0 <= v < 3.0


def test_randint_bounds():
    rng = SeededRNG(11)
    vals = {rng.randint(0, 4) for _ in range(200)}
    assert vals == {0, 1, 2, 3}


def test_choice_and_weighted_choice():
    rng = SeededRNG(5)
    assert rng.choice(["only"]) == "only"
    picks = [rng.weighted_choice(["a", "b"], [0.0, 1.0]) for _ in range(20)]
    assert set(picks) == {"b"}


def test_weighted_choice_rejects_nonpositive():
    rng = SeededRNG(5)
    with pytest.raises(ValueError):
        rng.weighted_choice(["a"], [0.0])


def test_pareto_minimum():
    rng = SeededRNG(9)
    for _ in range(100):
        assert rng.pareto(2.0, 1.5) >= 1.5


def test_sample_pages_distinct_and_clipped():
    rng = SeededRNG(13)
    pages = rng.sample_pages(10, 20)
    assert len(pages) == 10
    assert len(np.unique(pages)) == 10
    pages = rng.sample_pages(100, 5)
    assert len(pages) == 5


def test_exponential_mean_roughly():
    rng = SeededRNG(17)
    draws = [rng.exponential(2.0) for _ in range(3000)]
    assert np.mean(draws) == pytest.approx(2.0, rel=0.15)


def test_shuffled_is_permutation():
    rng = SeededRNG(21)
    out = rng.shuffled(range(10))
    assert sorted(out) == list(range(10))
