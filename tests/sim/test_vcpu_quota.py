"""Tests for per-VM vCPU quotas."""

import pytest

from repro.sim.cpu import FairShareCPU, VCPUQuota
from repro.sim.engine import Delay, Simulator


def run_quota(vcpus, works, cores=16):
    sim = Simulator()
    cpu = FairShareCPU(sim, cores)
    quota = VCPUQuota(cpu, vcpus)
    finish = {}

    def task(i, w):
        yield from quota.compute(w)
        finish[i] = sim.now

    for i, w in enumerate(works):
        sim.spawn(task(i, w))
    sim.run()
    return sim, quota, finish


def test_single_vcpu_serialises():
    # 4 tasks of 1s on 1 vCPU with plenty of cores: strictly serial.
    _sim, _quota, finish = run_quota(1, [1.0] * 4)
    assert sorted(finish.values()) == pytest.approx([1.0, 2.0, 3.0, 4.0])


def test_two_vcpus_pairwise_parallel():
    _sim, _quota, finish = run_quota(2, [1.0] * 4)
    assert sorted(finish.values()) == pytest.approx([1.0, 1.0, 2.0, 2.0])


def test_quota_above_task_count_is_transparent():
    _sim, _quota, finish = run_quota(8, [1.0] * 4)
    assert all(t == pytest.approx(1.0) for t in finish.values())


def test_fifo_admission_order():
    sim = Simulator()
    cpu = FairShareCPU(sim, 16)
    quota = VCPUQuota(cpu, 1)
    order = []

    def task(tag, delay):
        yield Delay(delay)
        yield from quota.compute(1.0)
        order.append(tag)

    for i, tag in enumerate("abcd"):
        sim.spawn(task(tag, i * 0.01))
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_no_over_admission_on_release():
    """A new arrival racing a slot hand-off must not over-admit."""
    sim = Simulator()
    cpu = FairShareCPU(sim, 16)
    quota = VCPUQuota(cpu, 1)
    concurrent = []

    def task(start_delay):
        yield Delay(start_delay)
        yield from quota.compute(0.5)
        concurrent.append(quota._running)

    # Task C arrives exactly when A finishes and B (waiting) is woken.
    sim.spawn(task(0.0))
    sim.spawn(task(0.1))
    sim.spawn(task(0.5))
    sim.run()
    assert all(c <= 1 for c in concurrent)


def test_quota_composes_with_node_contention():
    # 1 core, two guests with 1 vCPU each: node-level sharing still
    # applies on top of per-guest serialisation.
    sim = Simulator()
    cpu = FairShareCPU(sim, 1)
    g1, g2 = VCPUQuota(cpu, 1), VCPUQuota(cpu, 1)
    finish = []

    def task(quota):
        yield from quota.compute(1.0)
        finish.append(sim.now)

    sim.spawn(task(g1))
    sim.spawn(task(g2))
    sim.run()
    # Both guests admitted (one slot each), sharing the single core.
    assert max(finish) == pytest.approx(2.0)


def test_zero_work_free():
    sim = Simulator()
    quota = VCPUQuota(FairShareCPU(sim, 1), 1)

    def proc():
        yield from quota.compute(0.0)
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_invalid_vcpus():
    sim = Simulator()
    with pytest.raises(ValueError):
        VCPUQuota(FairShareCPU(sim, 1), 0)


def test_queued_counter():
    sim = Simulator()
    cpu = FairShareCPU(sim, 16)
    quota = VCPUQuota(cpu, 1)

    def task():
        yield from quota.compute(1.0)

    for _ in range(3):
        sim.spawn(task())
    sim.run(until=0.5)
    assert quota.queued == 2
    sim.run()
    assert quota.queued == 0
