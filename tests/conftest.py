"""Suite-wide fixtures.

Setting ``REPRO_SANITIZE=1`` wraps every test in a runtime sanitizer
(:mod:`repro.analysis.sanitizer`): kernel-invariant shadow ledgers are
verified at each instrumentation hook and at a final barrier when the
test ends.  CI runs the ``tests/mem`` and ``tests/core`` slices this
way; locally it is off, so the hooks cost a single ``is None`` check.
"""

import pytest

from repro.analysis.sanitizer import maybe_sanitized


@pytest.fixture(autouse=True)
def _sanitize_if_requested():
    with maybe_sanitized() as sanitizer:
        yield sanitizer
