"""Suite-wide fixtures.

Setting ``REPRO_SANITIZE=1`` wraps every test in a runtime sanitizer
(:mod:`repro.analysis.sanitizer`): kernel-invariant shadow ledgers are
verified at each instrumentation hook and at a final barrier when the
test ends.  CI runs the ``tests/mem`` and ``tests/core`` slices this
way; locally it is off, so the hooks cost a single ``is None`` check.

Setting ``REPRO_OBS=1`` (or ``metrics``/``spans``) likewise wraps every
test in a :mod:`repro.obs` observer — the golden-determinism CI slice
runs with it on to prove observability never changes simulated results.
"""

import pytest

from repro.analysis.sanitizer import maybe_sanitized
from repro.obs.observer import maybe_observed


@pytest.fixture(autouse=True)
def _sanitize_if_requested():
    with maybe_sanitized() as sanitizer:
        yield sanitizer


@pytest.fixture(autouse=True)
def _observe_if_requested():
    with maybe_observed() as observer:
        yield observer
