"""Figure 19: normalized E2E latency without concurrency.

Bars split into startup (hatched in the paper) and execution; values
normalised against CRIU per function.
"""

from repro.bench import container, format_table
from repro.workloads.functions import FUNCTIONS


def test_fig19_noconc(run_once):
    data = run_once(container.run_fig19_noconc)

    rows = []
    for fn, per_platform in data.items():
        base = per_platform["criu"]["e2e"]
        for name, d in per_platform.items():
            rows.append((fn, name, d["startup"] * 1e3, d["exec"] * 1e3,
                         d["e2e"] / base))
    print()
    print(format_table(
        "Figure 19: uncontended latency (startup/exec ms, e2e vs CRIU)",
        ("func", "platform", "startup", "exec", "norm"), rows, width=13))

    for fn in (f.name for f in FUNCTIONS):
        per = data[fn]
        # TrEnv's startup is far below CRIU's everywhere.
        assert per["t-cxl"]["startup"] < per["criu"]["startup"] / 5
        # Lazy VMs beat CRIU on startup for big images.
        if fn in ("IR", "VP", "IFR"):
            assert per["reap+"]["startup"] < per["criu"]["startup"]
        # Execution: CRIU (local DRAM) is the floor; T-CXL pays the CXL
        # latency premium but stays within ~2.2x (paper: DH/IR nearly
        # double, others ~10%).
        assert per["t-cxl"]["exec"] < 2.3 * per["criu"]["exec"]
        # E2E: TrEnv still wins overall on every function uncontended.
        assert per["t-cxl"]["e2e"] < per["criu"]["e2e"] * 1.05
