"""Table 1: container component overheads vs TrEnv's solutions."""

from repro.bench import container, format_table


def test_table1_components(run_once):
    data = run_once(container.run_table1_components)

    rows = []
    for unit, vals in data.items():
        for op, seconds in vals.items():
            rows.append((unit, op, seconds * 1e3))
    print()
    print(format_table("Table 1: component overheads (ms)",
                       ("unit", "operation", "ms"), rows, width=18))

    # Paper bands: netns 80 ms - 10 s; rootfs 10-800 ms; cgroup
    # create+migrate 26-82 ms; other <1 ms; memory copy >60 ms for small
    # images while mmt_attach is sub-ms.
    net = data["network"]
    assert 0.05 <= net["create_single"] <= 10.0
    assert net["create_15way"] > 4 * net["create_single"]
    assert net["trenv_reuse"] == 0.0

    rootfs = data["rootfs"]
    assert 0.010 <= rootfs["create"] <= 0.800
    assert rootfs["trenv_reconfig"] < rootfs["create"] / 10

    cg = data["cgroup"]
    assert 0.016 <= cg["create"] <= 0.032
    assert 0.010 <= cg["migrate"] <= 0.050
    assert cg["trenv_clone_into"] < 0.001

    assert data["other_ns"]["create"] < 0.001

    mem = data["process_memory"]
    assert mem["criu_copy"] > 0.050          # >300 ms band covers larger fns
    assert mem["trenv_mmt_attach"] < 0.002

    assert 0.003 <= data["process_other"]["criu_misc"] <= 0.030
