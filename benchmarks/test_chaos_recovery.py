"""Chaos recovery: TrEnv availability when the remote pool dies (§8.1).

A seeded fault plan takes the rack's RDMA pool offline mid-workload.
The claim under test: the rack *degrades* — to the NAS tier or the
baseline copy-based cold start — and never errors, and the same seed
reproduces the identical fault timeline and counts.
"""

from repro.bench import faults, format_table


def test_chaos_recovery(run_once):
    data = run_once(faults.run_chaos_recovery)
    clean, faulty, replay = data["clean"], data["faulty"], data["replay"]

    rows = []
    for name, d in (("clean", clean), ("faulty", faulty),
                    ("replay", replay)):
        a = d["availability"]
        rows.append((name, a["completed"], a["failed"], a["degraded"],
                     a["retries_total"], d["p50_e2e"] * 1e3,
                     d["p99_e2e"] * 1e3))
    print()
    print(format_table(
        "Chaos recovery: RDMA pool outage mid-workload",
        ("run", "done", "fail", "degr", "retry", "p50_ms", "p99_ms"),
        rows, width=10))

    # Zero unhandled errors: every invocation completes despite the
    # pool being down for most of the run.
    n = faulty["n_invocations"]
    assert faulty["availability"]["completed"] == n
    assert faulty["availability"]["failed"] == 0
    assert faulty["availability"]["success_rate"] == 1.0
    # The outage was actually felt: degraded paths were taken.
    assert faulty["availability"]["degraded"] > 0
    assert faulty["pool_faults"] > 0
    assert faulty["degraded_acquires"] > 0
    # The fault-free control saw none of that.
    assert clean["availability"]["degraded"] == 0
    assert clean["availability"]["retries_total"] == 0
    assert clean["pool_faults"] == 0

    # Graceful degradation, not collapse: tail latency under the outage
    # stays within cold-start class of the fault-free tail (the ladder's
    # bottom rung is one local copy-based restore).
    assert faulty["p99_e2e"] <= clean["p99_e2e"] + 3 * faulty["cold_copy_bound"]

    # Determinism: the same seed reproduces the identical outage
    # timeline and the identical availability outcome.
    assert faulty["timeline"] == replay["timeline"]
    assert faulty["availability"] == replay["availability"]
    assert faulty["p99_e2e"] == replay["p99_e2e"]
    assert faulty["max_e2e"] == replay["max_e2e"]
