"""Figure 23: Blackjack agent startup latency across VM platforms."""

from repro.bench import agents, format_table


def test_fig23_startup(run_once):
    data = run_once(agents.run_fig23_startup)

    rows = [(name, data["single"][name] * 1e3,
             data["concurrent"][name]["mean"] * 1e3,
             data["concurrent"][name]["max"] * 1e3)
            for name in data["single"]]
    print()
    print(format_table(
        "Figure 23: Blackjack startup latency (ms)",
        ("platform", "single", "conc_mean", "conc_max"), rows, width=13))

    single = data["single"]
    conc = data["concurrent"]
    # §9.6.1: TrEnv cuts startup ~40-60% vs E2B and E2B+.
    assert single["trenv"] < 0.65 * single["e2b"]
    assert single["trenv"] < 0.65 * single["e2b+"]
    assert 0.2 < single["trenv"] / single["e2b"]
    # Vanilla CH full-copy restore exceeds 700 ms.
    assert single["ch"] > 0.7
    # Concurrency inflates E2B (network setup contention) but not TrEnv.
    assert conc["e2b"]["max"] > 1.2 * single["e2b"]
    assert conc["trenv"]["max"] < 1.2 * single["trenv"]
