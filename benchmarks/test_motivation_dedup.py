"""Motivation (§1/§3.2): state duplication and memory stranding.

Reproduces the claims TrEnv is built on: concurrent sandboxes hold
heavily duplicated state (Medes: ~80% occurrence), and keep-alive
caching strands large amounts of idle memory — both of which TrEnv's
shared pool removes by construction.
"""

from repro.bench import format_table
from repro.mem.dedup_analysis import duplication_report, stranding_report
from repro.node import Node
from repro.serverless.baselines import FaasdPlatform
from repro.sim.engine import Delay
from repro.workloads.functions import function_by_name

FUNCS = ("DH", "JS", "CH", "PR")


def run_motivation(instances_per_fn=3):
    node = Node(seed=31)
    platform = FaasdPlatform(node)
    for fn in FUNCS:
        platform.register_function(function_by_name(fn))

    def one(fn):
        yield platform.invoke(fn)

    # Populate the warm pool with several instances of each function
    # (concurrent burst so they cannot share a single instance).
    for fn in FUNCS:
        for _ in range(instances_per_fn):
            node.sim.spawn(one(fn))
    # Sample while the instances sit warm (before keep-alive expiry).
    node.sim.run(until=60.0)

    spaces = [inst.space for inst in platform.warm.idle_instances()]
    dup = duplication_report(spaces)
    strand = stranding_report(platform)
    return {
        "warm_instances": len(spaces),
        "duplication_occurrence": dup.duplication_occurrence,
        "duplication_ratio": dup.duplication_ratio,
        "stranded_mb": strand.idle_bytes / (1 << 20),
        "stranding_ratio": strand.stranding_ratio,
    }


def test_motivation_duplication_and_stranding(run_once):
    data = run_once(run_motivation)

    print()
    print(format_table(
        "Motivation: duplication + stranding across warm faasd instances",
        ("metric", "value"),
        [(k, v) for k, v in data.items()], width=26))

    # §1: ~80% occurrence of state duplication across sandboxes.
    assert data["duplication_occurrence"] > 0.7
    # Multiple copies of each function's image: a large share of the
    # resident bytes is redundant.
    assert data["duplication_ratio"] > 0.5
    # Keep-alive strands all of this memory while instances idle.
    assert data["stranding_ratio"] > 0.95
    assert data["stranded_mb"] > 500
