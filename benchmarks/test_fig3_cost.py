"""Figure 3: serverless cost relative to LLM API cost per agent."""

from repro.bench import agents, format_table


def test_fig3_cost(run_once):
    data = run_once(agents.run_fig3_cost)

    rows = [(name, v["llm_usd"] * 1e3, v["serverless_usd"] * 1e3,
             v["relative"] * 100)
            for name, v in data.items()]
    print()
    print(format_table("Figure 3: cost per run (mUSD) and C_s/C_LLM (%)",
                       ("agent", "llm_mUSD", "sls_mUSD", "ratio_%"), rows,
                       width=16))

    ratios = {name: v["relative"] for name, v in data.items()}
    # §1/abstract: serverless cost reaches a large fraction of the LLM
    # cost — up to ~70% for some agents.
    assert 0.30 < max(ratios.values()) < 1.0
    # §2.3 finding 2: complex (browser) agents sit above lightweight ones.
    light = max(ratios["blackjack"], ratios["bug-fixer"],
                ratios["map-reduce"])
    heavy = max(ratios["shop-assistant"], ratios["blog-summary"],
                ratios["game-design"])
    assert heavy > light
    # Blog summary is the worst case in our calibration.
    assert ratios["blog-summary"] == max(ratios.values())
