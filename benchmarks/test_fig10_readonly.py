"""Figure 10: read-only vs written memory ratio per function."""

from repro.bench import container, format_table
from repro.workloads.functions import FUNCTIONS


def test_fig10_readonly(run_once):
    data = run_once(container.run_fig10_readonly)

    rows = [(name, v["touched_pages"], v["written_pages"],
             v["read_only_ratio"] * 100)
            for name, v in data.items()]
    print()
    print(format_table("Figure 10: read-only page ratio (%)",
                       ("func", "touched", "written", "ro_%"), rows,
                       width=12))

    ratios = [v["read_only_ratio"] for v in data.values()]
    # §5.1: 24% to 90% of pages used during execution are read-only.
    assert 0.20 <= min(ratios) <= 0.30
    assert 0.85 <= max(ratios) <= 0.95
    # IR is the read-heavy extreme; IFR the write-heavy one (§9.5).
    assert data["IR"]["read_only_ratio"] == max(ratios)
    assert data["IFR"]["read_only_ratio"] == min(ratios)
    assert set(data) == {f.name for f in FUNCTIONS}
