"""Figure 4: latency breakdown of a Python function's startup paths."""

from repro.bench import container, format_table


def test_fig4_breakdown(run_once):
    data = run_once(container.run_fig4_breakdown)

    rows = []
    for path, parts in data.items():
        for part, seconds in parts.items():
            rows.append((path, part, seconds * 1e3))
    print()
    print(format_table("Figure 4: startup breakdown (ms)",
                       ("path", "component", "ms"), rows, width=16))

    cold = data["cold_start"]
    criu = data["criu"]
    trenv = data["trenv"]

    # Cold start: sandbox + bootstrap both substantial; bootstrap dominates.
    assert cold["sandbox"] > 0.1
    assert cold["bootstrap"] > cold["sandbox"]

    # CRIU kills the bootstrap but keeps the sandbox and pays the memory
    # copy (>50 ms for this ~95 MB image).
    assert criu["total"] < cold["total"] / 2
    assert criu["mem"] > 0.045
    assert criu["sandbox"] > 0.1

    # TrEnv removes both: ~10 ms total.
    assert trenv["total"] < 0.015
    assert trenv["total"] < criu["total"] / 10
