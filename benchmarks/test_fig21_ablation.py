"""Figure 21: contribution of each optimisation step (IR and JS)."""

from repro.bench import container, format_table


def test_fig21_ablation(run_once):
    data = run_once(container.run_fig21_ablation)

    rows = []
    for fn, steps in data.items():
        for label, d in steps.items():
            rows.append((fn, label, d["startup"] * 1e3, d["exec"] * 1e3,
                         d["kind"]))
    print()
    print(format_table("Figure 21: ablation ladder (ms)",
                       ("func", "step", "startup", "exec", "kind"), rows,
                       width=14))

    for fn in ("IR", "JS"):
        steps = data[fn]
        criu = steps["CRIU"]["startup"]
        reconfig = steps["Reconfig"]["startup"]
        cgroup = steps["Cgroup"]["startup"]
        full = steps["mm-template"]["startup"]
        # Monotone improvement down the ladder.
        assert criu > reconfig > cgroup > full
        # "Reconfig" saves on the order of 100-200 ms (paper: ~200 ms).
        assert criu - reconfig > 0.08
        # "Cgroup" saves the migration cost: 10-50 ms band.
        assert 0.005 < reconfig - cgroup < 0.08

    # mm-template alone: big for IR (paper: 290 ms), smaller for JS
    # (67 ms); final startups land near the paper's 18 ms / 8 ms.
    ir_gain = data["IR"]["Cgroup"]["startup"] - data["IR"]["mm-template"]["startup"]
    js_gain = data["JS"]["Cgroup"]["startup"] - data["JS"]["mm-template"]["startup"]
    assert ir_gain > 3 * js_gain
    assert data["IR"]["mm-template"]["startup"] < 0.040
    assert data["JS"]["mm-template"]["startup"] < 0.020

    # Remote memory costs execution a little (paper: +24 ms IR, +11 ms JS).
    for fn in ("IR", "JS"):
        delta = (data[fn]["mm-template"]["exec"]
                 - data[fn]["CRIU"]["exec"])
        assert 0.0 < delta < 0.1
