"""Figure 18: (a) peak memory under workloads; (b) 50-instance scaling."""

from repro.bench import container, format_table


def test_fig18a_peak_memory(run_once):
    data = run_once(container.run_fig17_fig18, "W1",
                    duration=1200.0, burst_size=8)
    plat = data["platforms"]
    rows = [(name, d["peak_memory_mb"]) for name, d in plat.items()]
    print()
    print(format_table("Figure 18a: peak memory, W1 (MB)",
                       ("platform", "peak_MB"), rows, width=14))

    t_cxl = plat["t-cxl"]["peak_memory_mb"]
    t_rdma = plat["t-rdma"]["peak_memory_mb"]
    # §9.2: T-CXL cuts memory 37-61% vs every baseline (avg 48%).
    for base in ("faasd", "criu", "reap+", "faasnap+"):
        saving = 1.0 - t_cxl / plat[base]["peak_memory_mb"]
        assert saving > 0.35, f"saving vs {base} only {saving:.0%}"
    # T-RDMA consumes somewhat more than T-CXL (§9.3: ~10% more).
    assert t_cxl < t_rdma < 2.5 * t_cxl


def test_fig18b_50_instances(run_once):
    def both():
        return {
            "IR": container.run_fig18b_scaling("IR", instances=50),
            "IFR": container.run_fig18b_scaling("IFR", instances=50),
        }

    data = run_once(both)
    rows = []
    for fn, per_platform in data.items():
        for name, mb in per_platform.items():
            rows.append((fn, name, mb))
    print()
    print(format_table("Figure 18b: memory after 50 concurrent starts (MB)",
                       ("func", "platform", "MB"), rows, width=14))

    ir, ifr = data["IR"], data["IFR"]
    # §9.2.2: REAP/FaaSnap roughly double T-CXL's usage at 50 instances.
    assert ir["reap+"] > 1.8 * ir["t-cxl"]
    assert ir["faasnap+"] > 1.8 * ir["t-cxl"]
    # §9.5: read-heavy IR — T-CXL saves a lot vs T-RDMA (paper: 43.5%);
    # write-heavy IFR — smaller gap (paper: 13%).
    ir_saving = 1.0 - ir["t-cxl"] / ir["t-rdma"]
    ifr_saving = 1.0 - ifr["t-cxl"] / ifr["t-rdma"]
    assert ir_saving > 0.25
    assert 0.0 <= ifr_saving < ir_saving
