"""Figure 25: peak memory of agents on E2B / E2B+ / TrEnv."""

from repro.bench import agents, format_table


def test_fig25_agent_memory(run_once):
    data = run_once(agents.run_fig25_agent_memory, instances=10)

    rows = []
    for agent, d in data.items():
        rows.append((agent, d["e2b"], d["e2b+"], d["trenv-s"],
                     d["saving_vs_e2b:trenv-s"] * 100))
    print()
    print(format_table(
        "Figure 25: peak memory, 10 concurrent instances (MB)",
        ("agent", "e2b", "e2b+", "trenv", "saving_%"), rows, width=15))

    savings = {a: d["saving_vs_e2b:trenv-s"] for a, d in data.items()}
    # §9.6.3: TrEnv saves ~10-61% vs E2B depending on file-IO intensity.
    assert all(0.02 <= s <= 0.70 for s in savings.values()), savings
    assert max(savings.values()) > 0.30
    # Lightweight, IO-poor agents gain least (paper: Blackjack/Bug fixer).
    assert savings["blackjack"] < savings["blog-summary"]
    assert savings["bug-fixer"] < savings["map-reduce"]
    # TrEnv also beats E2B+ (paper: up to 48%).
    for agent, d in data.items():
        assert d["trenv-s"] <= d["e2b+"] * 1.001
