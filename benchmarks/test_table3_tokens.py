"""Table 3: LLM token usage per agent."""

from repro.agents.spec import AGENTS
from repro.bench import agents, format_table


def test_table3_tokens(run_once):
    data = run_once(agents.run_table3_tokens)

    rows = [(name, v["input_tokens"], v["output_tokens"], v["n_calls"])
            for name, v in data.items()]
    print()
    print(format_table("Table 3: token usage",
                       ("agent", "input", "output", "calls"), rows,
                       width=16))

    for spec in AGENTS:
        row = data[spec.name]
        assert row["input_tokens"] == spec.input_tokens
        assert row["output_tokens"] == spec.output_tokens
