"""Ablation: tiered-pool placement policies (design choice in §5.1/§9.5).

Compares, for a CXL-budget-constrained rack, (a) pure CXL, (b) pure
RDMA, (c) naive fractional tiering, (d) working-set-aware tiering.
"""

import numpy as np

from repro.bench import format_table
from repro.core.mm_template import MMTemplateRegistry, build_template_for_function
from repro.criu.images import SnapshotImage
from repro.mem.address_space import AddressSpace
from repro.mem.layout import GB
from repro.mem.pools import CXLPool, DedupStore, RDMAPool, TieredPool
from repro.mem.tiering import working_set_hot_mask
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRNG
from repro.workloads.functions import function_by_name


def run_tiering_ablation(function="IR"):
    profile = function_by_name(function)
    image = SnapshotImage.from_profile(profile)
    rng = SeededRNG(5)
    trace = profile.make_trace(rng, invocation=1)

    def run(pool, hot_mask=None):
        sim = Simulator()
        registry = MMTemplateRegistry(sim)
        store = DedupStore(pool)
        template = build_template_for_function(registry, image, store,
                                               hot_mask=hot_mask)
        space = AddressSpace("x")

        def proc():
            yield registry.mmt_attach(template, space)

        sim.run_process(proc())
        outcome = space.access(trace.read_pages, trace.write_pages,
                               trace.read_loads)
        fetch_t = (pool.fetch_time(outcome.pages_fetched)
                   if outcome.pages_fetched else 0.0)
        read_t = pool.read_overhead(outcome.remote_loads)
        return {"exec_overhead_ms": (fetch_t + read_t) * 1e3,
                "local_mb": space.local_bytes / (1 << 20),
                "major_faults": outcome.major_faults}

    lat = None
    results = {
        "pure-cxl": run(CXLPool(8 * GB)),
        "pure-rdma": run(RDMAPool(8 * GB)),
        "tiered-naive": run(TieredPool(CXLPool(8 * GB), RDMAPool(8 * GB),
                                       hot_fraction=0.10)),
        "tiered-ws": run(TieredPool(CXLPool(8 * GB), RDMAPool(8 * GB),
                                    hot_fraction=0.10),
                         hot_mask=working_set_hot_mask(profile, rng)),
    }
    return results


def test_ablation_tiering(run_once):
    data = run_once(run_tiering_ablation)

    rows = [(name, d["exec_overhead_ms"], d["local_mb"], d["major_faults"])
            for name, d in data.items()]
    print()
    print(format_table(
        "Tiering ablation (IR): remote-memory overhead per invocation",
        ("policy", "overhead_ms", "local_MB", "faults"), rows, width=14))

    # Pure CXL is the floor; pure RDMA the ceiling.
    assert data["pure-cxl"]["exec_overhead_ms"] \
        < data["pure-rdma"]["exec_overhead_ms"]
    # Naive 10% tiering misses most of the working set.
    assert data["tiered-naive"]["major_faults"] > 1000
    # Working-set placement recovers almost the pure-CXL behaviour with
    # a tenth of the CXL budget.
    assert data["tiered-ws"]["major_faults"] \
        < data["tiered-naive"]["major_faults"] / 3
    assert data["tiered-ws"]["exec_overhead_ms"] \
        < 2.5 * data["pure-cxl"]["exec_overhead_ms"] + 10.0
    # And it keeps local memory as low as pure CXL (reads stay remote).
    assert data["tiered-ws"]["local_mb"] \
        < data["pure-rdma"]["local_mb"] / 2
