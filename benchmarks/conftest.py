"""Shared benchmark helpers.

Every benchmark runs its experiment once (they are deterministic
simulations — repetition changes nothing but wall time) and prints the
regenerated table/figure data so `pytest benchmarks/ --benchmark-only -s`
doubles as the paper-reproduction report.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
