"""Ablation: rack-level sharing and keep-alive policies.

Quantifies two DESIGN.md call-outs:

* §8.2 — cross-machine-intra-rack dedup: pool storage stays ~constant as
  hosts are added, versus linear growth with per-host pools.
* §10  — TrEnv vs caching-policy sophistication: an adaptive keep-alive
  narrows faasd's gap but TrEnv beats both without any tuning.
"""

from repro.bench import format_table
from repro.bench.harness import make_platform
from repro.mem.layout import GB
from repro.mem.pools import CXLPool, DedupStore
from repro.serverless.cluster import RoundRobin, make_trenv_cluster
from repro.serverless.policies import FixedKeepAlive, HistogramKeepAlive
from repro.serverless.runner import run_workload
from repro.workloads.functions import FUNCTIONS
from repro.workloads.synthetic import make_w1_bursty


def run_rack_scaling(max_nodes=4):
    out = {}
    for n in range(1, max_nodes + 1):
        pool = CXLPool(256 * GB)
        cluster = make_trenv_cluster(n, pool, policy=RoundRobin(),
                                     cores=32)
        wl = make_w1_bursty(seed=3, duration=700.0, burst_size=4,
                            bursts_per_function=1)
        result = cluster.run_workload(wl)
        out[n] = {
            "pool_mb": result.pool_used_mb,
            "sum_node_peak_mb": result.total_peak_mb,
            "p99_ms": result.recorder.e2e_percentile(99) * 1e3,
        }
    return out


def run_policy_ablation():
    out = {}
    for label, platform_name, policy in (
            ("faasd-fixed", "faasd", FixedKeepAlive(600.0)),
            ("faasd-adaptive", "faasd", HistogramKeepAlive(min_samples=2)),
            ("trenv-fixed", "t-cxl", FixedKeepAlive(600.0))):
        platform = make_platform(platform_name, seed=5)
        platform.keep_alive_policy = policy
        wl = make_w1_bursty(seed=5, duration=1400.0, burst_size=6)
        result = run_workload(platform, wl)
        out[label] = {
            "p99_ms": result.recorder.e2e_percentile(99) * 1e3,
            "p50_ms": result.recorder.e2e_percentile(50) * 1e3,
            "peak_mb": result.peak_memory_mb,
        }
    return out


def test_rack_scaling(run_once):
    data = run_once(run_rack_scaling)
    rows = [(n, d["pool_mb"], d["sum_node_peak_mb"], d["p99_ms"])
            for n, d in data.items()]
    print()
    print(format_table("Rack scaling: shared pool vs node count",
                       ("nodes", "pool_MB", "sum_peak_MB", "p99_ms"),
                       rows, width=14))
    # The pool stores one deduplicated copy regardless of host count.
    assert data[4]["pool_mb"] == data[1]["pool_mb"]
    total_images_mb = sum(f.mem_bytes for f in FUNCTIONS) / (1 << 20)
    assert data[4]["pool_mb"] < total_images_mb


def test_policy_ablation(run_once):
    data = run_once(run_policy_ablation)
    rows = [(name, d["p50_ms"], d["p99_ms"], d["peak_mb"])
            for name, d in data.items()]
    print()
    print(format_table("Keep-alive policy ablation (W1)",
                       ("config", "p50_ms", "p99_ms", "peak_MB"), rows,
                       width=15))
    # TrEnv with a dumb fixed policy still beats faasd with either
    # policy — "eliminating the need for complex strategies" (§10).
    assert data["trenv-fixed"]["p99_ms"] < data["faasd-fixed"]["p99_ms"]
    assert data["trenv-fixed"]["p99_ms"] < data["faasd-adaptive"]["p99_ms"]
    assert data["trenv-fixed"]["peak_mb"] < data["faasd-fixed"]["peak_mb"]
