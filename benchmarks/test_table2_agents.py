"""Table 2: representative agent characteristics on the VM platform."""

import pytest

from repro.agents.spec import AGENTS
from repro.bench import agents, format_table


def test_table2_agents(run_once):
    data = run_once(agents.run_table2_agents)

    rows = [(name, v["e2e_s"], v["e2e_paper_s"], v["memory_mb"],
             v["cpu_time_s"], v["cpu_time_paper_s"])
            for name, v in data.items()]
    print()
    print(format_table(
        "Table 2: agent characteristics (measured vs paper)",
        ("agent", "e2e_s", "paper_e2e", "mem_MB", "cpu_s", "paper_cpu"),
        rows, width=14))

    for spec in AGENTS:
        row = data[spec.name]
        # End-to-end latency reproduces the recorded run within 10%.
        assert row["e2e_s"] == pytest.approx(spec.e2e_target, rel=0.10)
        # Active time tracks the paper's CPU time (our measurement also
        # includes the browser launch, so allow 35%).  The 1-vCPU guest
        # quota serialises even map-reduce's parallel tool branches,
        # exactly as on the paper's testbed.
        assert row["cpu_time_s"] == pytest.approx(spec.cpu_time, rel=0.35)
        # §2.4: agents are idle most of the time (blog-summary peaks
        # near 30%; everything else is far below).
        assert row["cpu_utilization"] < 0.32
