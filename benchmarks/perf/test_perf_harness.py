"""Smoke test for the tracked perf harness (repro.bench.perf).

Runs the quick harness once, checks the report shape that CI archives
(``BENCH_perf.json``), and asserts the headline tentpole property: the
CoW clone makes the 218 880-page (855 MB IR-sized) attach at least 10x
faster than the copying baseline, with CoW cost flat across image sizes.
"""

import json
import os

from repro.bench.perf import ATTACH_PAGE_COUNTS, run_perf


def test_quick_harness_report(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    report = run_perf(quick=True, out_path=str(out))

    # The JSON artifact round-trips and matches the returned report.
    assert os.path.exists(out)
    assert json.loads(out.read_text()) == json.loads(json.dumps(report))
    assert report["schema"] == "trenv-repro-perf/1"
    assert report["quick"] is True
    assert report["peak_rss_mb"] > 0

    sweep = report["attach"]["fixed_vma_sweep"]
    assert [rec["pages"] for rec in sweep] == list(ATTACH_PAGE_COUNTS)
    largest = sweep[-1]
    assert largest["pages"] == 218880
    # Tentpole acceptance: >= 10x over the copying baseline at 219k pages.
    assert largest["speedup"] >= 10.0
    # O(metadata): CoW attach stays flat while the sweep grows 213x.
    cow_times = [rec["cow_us"] for rec in sweep]
    assert max(cow_times) < 10 * min(cow_times)
    # Simulated attach is sub-millisecond at every size (Figure 11).
    assert all(rec["simulated_ms"] < 1.0 for rec in sweep)

    for rec in report["attach"]["function_images"]:
        assert rec["function"] in ("DH", "IR")
        assert rec["speedup"] > 1.0   # real layouts still win, less so

    thr = report["throughput"]
    assert thr["workload"] == "W2"
    for stats in thr["platforms"].values():
        assert stats["invocations"] > 0
        assert stats["inv_per_s"] > 0

    # Cluster scale-out section: hot-path aggregate + transparent e2e.
    # Quick mode shrinks the scenario (4 nodes x 8k invocations), so
    # only the shape and sanity are asserted here; the full-scale
    # aggregate is tracked in the archived BENCH_perf.json.
    scale = report["cluster_scale"]
    assert set(scale["hot_paths"]) == {
        "scheduler", "dispatch", "metrics", "schedule_build", "arrivals"}
    for path in scale["hot_paths"].values():
        assert path["reference_s"] > 0 and path["optimized_s"] > 0
        assert path["speedup"] > 0
    assert scale["speedup"] > 1.0   # aggregate wins even at quick scale
    assert scale["scheduled_invocations"] > 0
    e2e = scale["end_to_end"]
    assert e2e["optimized"]["wall_s"] > 0
    assert e2e["reference"]["wall_s"] > 0
    assert e2e["optimized"]["invocations"] == e2e["reference"]["invocations"]
    # Scale-out must mean scale-OUT: the rack run spreads load over every
    # node instead of collapsing onto node0 (the old warm-affinity
    # degenerate case where one host served 100% of the trace).
    counts = e2e["optimized"]["dispatch_counts"]
    assert len(counts) == scale["n_nodes"]
    total = sum(counts.values())
    assert total > 0
    assert max(counts.values()) <= 0.5 * total
    assert counts == e2e["reference"]["dispatch_counts"]

    # PDES scaling ladder: jobs=1 is the serial reference; every other
    # worker count must dispatch the same invocations (bit-identity is
    # pinned by tests/serverless/test_parallel_cluster.py — the bench
    # only cross-checks counts and records wall/speedup/efficiency).
    par = report["parallel"]
    assert par["host_cpus"] >= 1
    assert par["lookahead_s"] > 0
    workers = par["workers"]
    assert workers[0]["jobs"] == 1
    assert workers[0]["mode"] in ("serial", "fallback")
    assert any(w["mode"] == "parallel" for w in workers[1:])
    for w in workers:
        assert w["wall_s"] > 0 and w["inv_per_s"] > 0
        assert w["speedup"] > 0 and w["efficiency"] > 0
