"""Ablation: Groundhog-style sequential request isolation (§10).

Quantifies the trade-off of rolling warm instances back to the pristine
template after every request: stronger isolation, slightly more CoW work
per invocation, and a flat (non-accumulating) memory profile.
"""

from repro.bench import format_table
from repro.core.config import TrEnvConfig
from repro.core.platform import TrEnvPlatform
from repro.mem.layout import GB
from repro.mem.pools import CXLPool
from repro.node import Node
from repro.workloads.functions import function_by_name


def run_isolation_ablation(fn="JS", invocations=12):
    out = {}
    for label, sequential in (("trenv", False), ("trenv-groundhog", True)):
        node = Node(cores=8, seed=41)
        platform = TrEnvPlatform(
            node, CXLPool(64 * GB, node.latency),
            config=TrEnvConfig(sequential_isolation=sequential))
        platform.register_function(function_by_name(fn))
        execs = []

        def driver():
            for _ in range(invocations):
                r = yield platform.invoke(fn)
                execs.append(r.exec)

        node.sim.run_process(driver())
        warm_inst = platform.warm.idle_instances()[0]
        out[label] = {
            "mean_exec_ms": 1e3 * sum(execs) / len(execs),
            "first_exec_ms": 1e3 * execs[0],
            "steady_exec_ms": 1e3 * execs[-1],
            "warm_resident_mb": warm_inst.space.local_bytes / (1 << 20),
        }
    return out


def test_ablation_sequential_isolation(run_once):
    data = run_once(run_isolation_ablation)

    rows = [(name, d["first_exec_ms"], d["steady_exec_ms"],
             d["warm_resident_mb"])
            for name, d in data.items()]
    print()
    print(format_table(
        "Sequential-isolation ablation (JS, 12 invocations)",
        ("config", "first_ms", "steady_ms", "warm_MB"), rows, width=15))

    plain = data["trenv"]
    iso = data["trenv-groundhog"]
    # Without rollback, later invocations run faster (their pages are
    # already CoW'd); with rollback every request re-pays its writes.
    assert plain["steady_exec_ms"] < plain["first_exec_ms"]
    assert iso["steady_exec_ms"] >= plain["steady_exec_ms"]
    # The rollback keeps the warm instance at zero private memory.
    assert iso["warm_resident_mb"] == 0.0
    assert plain["warm_resident_mb"] > 1.0
    # The isolation tax stays small (one re-CoW pass per request).
    assert iso["steady_exec_ms"] < plain["first_exec_ms"] * 1.3
