"""Figure 24: browser sharing (TrEnv-S) under CPU overcommitment.

The paper runs 200 instances on 20 cores (10x overcommit); we keep the
ratio at reduced scale (40 instances / 4 cores).
"""

from repro.bench import agents, format_table


def test_fig24_browser_sharing(run_once):
    data = run_once(agents.run_fig24_browser_sharing,
                    instances=40, cores=4)

    rows = []
    for agent, d in data.items():
        rows.append((agent, d["trenv"]["p99"], d["trenv-s"]["p99"],
                     d["p99_reduction"] * 100, d["mean_reduction"] * 100))
    print()
    print(format_table(
        "Figure 24: browser sharing, E2E seconds (P99) and reductions (%)",
        ("agent", "p99", "p99_S", "dP99_%", "dMean_%"), rows, width=15))

    # §9.6.2: sharing reduces P99 by 2-58% and mean by 1-26%, with the
    # browser-heavy blog-summary gaining most and game-design least.
    for agent, d in data.items():
        assert -0.05 <= d["p99_reduction"] <= 0.70
    assert (data["blog-summary"]["p99_reduction"]
            >= data["game-design"]["p99_reduction"])
    assert data["blog-summary"]["p99_reduction"] > 0.05
    assert data["game-design"]["p99_reduction"] < 0.15
