"""Figure 20: P99 E2E latency on Azure/Huawei traces, normalized to REAP+."""

import math

from repro.bench import container, format_table


def _report(data):
    rows = []
    for name, per_fn in data["normalized"].items():
        for fn, norm in sorted(per_fn.items()):
            rows.append((data["trace"], name, fn, norm))
    print()
    print(format_table(
        f"Figure 20 ({data['trace']}): P99 normalized to REAP+",
        ("trace", "platform", "func", "norm_p99"), rows, width=13))


def _assert_shapes(data):
    norm = data["normalized"]
    t_cxl = norm["t-cxl"]
    # T-CXL achieves speedups over REAP+ on most functions (paper:
    # 1.06-7.00x across all); never pathologically slower.
    wins = sum(1 for v in t_cxl.values() if v < 1.0)
    assert wins >= len(t_cxl) * 0.6
    assert all(v < 1.6 for v in t_cxl.values())
    best_speedup = 1.0 / min(t_cxl.values())
    assert 1.05 < best_speedup < 30.0
    # Memory: TrEnv reduces usage by over 25% vs baselines (§9.3).
    plat = data["platforms"]
    for base in ("reap+", "faasnap+"):
        assert (plat["t-cxl"]["peak_memory_mb"]
                < 0.75 * plat[base]["peak_memory_mb"])
    # §9.5: T-RDMA burns more CPU than T-CXL (paper: ~1.24x).
    assert (plat["t-rdma"]["cpu_utilization"]
            >= plat["t-cxl"]["cpu_utilization"])


def test_fig20_azure(run_once):
    data = run_once(container.run_fig20_traces, "azure", duration=900.0)
    _report(data)
    _assert_shapes(data)


def test_fig20_huawei(run_once):
    data = run_once(container.run_fig20_traces, "huawei", duration=900.0)
    _report(data)
    _assert_shapes(data)
