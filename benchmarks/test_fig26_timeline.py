"""Figure 26: memory usage over the execution of two agents."""

from repro.bench import agents, format_table


def test_fig26_memory_timeline(run_once):
    data = run_once(agents.run_fig26_memory_timeline)

    rows = []
    for agent, d in data.items():
        rows.append((agent, d["e2b"]["peak_mb"], d["trenv-s"]["peak_mb"],
                     d["e2b"]["integral_mb_s"],
                     d["trenv-s"]["integral_mb_s"],
                     d["cost_saving"] * 100))
    print()
    print(format_table(
        "Figure 26: memory over time (peak MB, integral MB*s, saving %)",
        ("agent", "e2b_pk", "trenv_pk", "e2b_int", "trenv_int", "save_%"),
        rows, width=13))

    for agent, d in data.items():
        # Memory grows over the run and is released at the end.
        timeline = d["e2b"]["timeline"]
        assert len(timeline) > 3
        peak_point = max(mb for _t, mb in timeline)
        assert timeline[0][1] < peak_point
        # §9.6.3: usage x duration cost drops substantially (paper: >50%
        # overall; per-agent varies with file-IO share).
        assert d["cost_saving"] > 0.15
    assert data["blog-summary"]["cost_saving"] > 0.25
