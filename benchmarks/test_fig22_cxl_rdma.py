"""Figure 22: T-CXL vs T-RDMA execution latency (P75 and P99)."""

from repro.bench import container, format_table


def test_fig22_cxl_vs_rdma(run_once):
    data = run_once(container.run_fig22_cxl_vs_rdma)

    rows = []
    for fn, d in data.items():
        rows.append((fn, d["t-cxl"]["p75_exec"] * 1e3,
                     d["t-rdma"]["p75_exec"] * 1e3,
                     d["speedup_p75"], d["speedup_p99"]))
    print()
    print(format_table(
        "Figure 22: execution latency, CXL vs RDMA",
        ("func", "cxl_p75", "rdma_p75", "sp_p75", "sp_p99"), rows,
        width=13))

    speedups_p75 = [d["speedup_p75"] for d in data.values()]
    speedups_p99 = [d["speedup_p99"] for d in data.values()]
    # §9.5: CXL wins on every function, 1.04x-3.51x at P75.
    assert all(s >= 1.0 for s in speedups_p75)
    assert 1.02 < max(speedups_p75) < 6.0
    # The P99 disparity is even more pronounced (RDMA tail instability).
    assert max(speedups_p99) >= max(speedups_p75)
    # Memory-bound short functions benefit most; compute-bound ones
    # (VP, IP) barely notice the backend (§9.2.3).
    assert data["VP"]["speedup_p75"] < 1.3
    assert data["IR"]["speedup_p75"] > data["VP"]["speedup_p75"]
