"""Overload + chaos: the control plane keeps the tail bounded.

A rack driven at ~8-10x its CPU capacity, with a node crash in the
middle of the surge.  The claims under test: (1) the uncontrolled
baseline collapses — tail latency becomes backlog drain time — while
the armed control plane holds p99 under the per-invocation deadline;
(2) what the controlled rack refuses is an explicit, categorised
shed/abort breakdown, never a silent drop; (3) the controlled run is
bit-deterministic (replay produces the identical report).
"""

from repro.bench import format_table, overload


def test_overload_chaos(run_once):
    data = run_once(overload.run_overload_chaos, quick=True)
    unctrl, ctrl, replay = (data["uncontrolled"], data["controlled"],
                            data["replay"])

    rows = []
    for name, d in (("uncontrolled", unctrl), ("controlled", ctrl),
                    ("replay", replay)):
        b = d["failure_breakdown"]
        rows.append((name, d["completed"], d["failed"],
                     sum(b["sheds"].values()), sum(b["aborts"].values()),
                     d["p99_e2e"], d["peak_cpu_backlog"]))
    print()
    print(format_table(
        "Overload + node crash: 10x surge, controlled vs not",
        ("run", "done", "fail", "shed", "abort", "p99_s", "backlog"),
        rows, width=12))

    # The surge is real: offered CPU demand far exceeds capacity, and
    # the chaos plan actually crashed a node mid-run.
    assert data["workload"]["offered_load"] > 5.0
    assert unctrl["node_crashes"] >= 1
    assert ctrl["node_crashes"] >= 1
    assert unctrl["fault_timeline"] == ctrl["fault_timeline"]

    # Uncontrolled: nothing refused, everything stretched.  The tail is
    # backlog drain time — an order of magnitude past the deadline the
    # controlled plane enforces.
    deadline = data["control"]["per_invocation"]
    assert unctrl["failed"] == 0
    assert unctrl["completed"] == unctrl["n_invocations"]
    assert unctrl["p99_e2e"] > 10 * deadline

    # Controlled: bounded tail for what was accepted...
    assert ctrl["p99_e2e"] <= deadline
    assert data["p99_bounded"] is True
    # ...and an explicit accounting of what was not.  Every invocation
    # is either completed or in the failure breakdown — no silent drops.
    b = ctrl["failure_breakdown"]
    refused = sum(b["sheds"].values()) + sum(b["aborts"].values())
    assert ctrl["completed"] + refused == ctrl["n_invocations"]
    assert ctrl["failed"] == refused
    assert sum(b["sheds"].values()) > 0
    # The control summary's own ledgers agree with the failed list.
    assert ctrl["control"]["admission"]["shed"] == b["sheds"]
    assert ctrl["control"]["aborts"] == b["aborts"]
    assert ctrl["control"]["completions"] == ctrl["completed"]

    # The backlog timeline shows the collapse and its absence: the
    # uncontrolled CPU backlog dwarfs the controlled one.
    assert unctrl["peak_cpu_backlog"] > 10 * ctrl["peak_cpu_backlog"]

    # Determinism: the identical config replays to the identical
    # report, timeline probes, sheds and percentiles included.
    assert data["deterministic"] is True
    assert ctrl == replay
