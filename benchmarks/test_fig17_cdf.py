"""Figure 17: E2E latency CDFs under W1 (bursty) and W2 (diurnal).

Scaled down from the paper's 30-minute, >4k-invocation runs; shapes
asserted:

* T-CXL beats REAP+/FaaSnap+ at P99 (paper: 1.11-5.69x / 1.17-18x),
* CRIU and faasd trail on cold/restore-heavy functions,
* T-RDMA lands between T-CXL and the lazy-restore baselines overall.
"""

from repro.bench import container, format_table

SHORT_FUNCTIONS = ("DH", "JS", "CR", "JJS")


def _report(data):
    rows = []
    for name, d in data["platforms"].items():
        rows.append((name, d["p50_ms"], d["p99_ms"], d["peak_memory_mb"]))
    print()
    print(format_table(
        f"Figure 17 ({data['workload']}): E2E latency and peak memory",
        ("platform", "p50_ms", "p99_ms", "peak_MB"), rows, width=14))
    for name, d in data["platforms"].items():
        print(f"  {name}: start kinds {d['start_kinds']}")


def _assert_shapes(data):
    plat = data["platforms"]
    # TrEnv-CXL beats the lazy-restore baselines at P99 on short
    # functions, where startup dominates.
    for fn in SHORT_FUNCTIONS:
        tc = plat["t-cxl"]["per_function"].get(fn)
        rp = plat["reap+"]["per_function"].get(fn)
        if tc is None or rp is None or tc["count"] < 5:
            continue
        speedup = rp["p99_e2e"] / tc["p99_e2e"]
        assert speedup > 1.0, f"{fn}: t-cxl p99 not ahead of reap+"
        assert speedup < 25.0
    # Memory: TrEnv at least 40% below every baseline (paper avg: 48%).
    t_mem = plat["t-cxl"]["peak_memory_mb"]
    for base in ("faasd", "criu", "reap+", "faasnap+"):
        assert t_mem < 0.6 * plat[base]["peak_memory_mb"]
    # faasd pays bootstraps: worst P99 overall.
    assert plat["faasd"]["p99_ms"] >= plat["criu"]["p99_ms"] * 0.95


def test_fig17_w1(run_once):
    data = run_once(container.run_fig17_fig18, "W1",
                    duration=1500.0, burst_size=10)
    _report(data)
    _assert_shapes(data)


def test_fig17_w2(run_once):
    data = run_once(container.run_fig17_fig18, "W2", duration=600.0)
    _report(data)
    plat = data["platforms"]
    # Under the tight cap, TrEnv keeps its tiny instances warm while the
    # baselines evict and restart; TrEnv wins P99 and memory.
    assert plat["t-cxl"]["p99_ms"] <= plat["reap+"]["p99_ms"]
    assert (plat["t-cxl"]["peak_memory_mb"]
            < 0.5 * plat["reap+"]["peak_memory_mb"])
