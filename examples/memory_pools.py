#!/usr/bin/env python3
"""Memory-pool tour: CXL vs RDMA vs tiered, and cross-node sharing.

1. Executes the same function on T-CXL and T-RDMA and compares execution
   latency and node-local memory (Figure 22 / Figure 18b in miniature).
2. Builds a tiered pool (hot pages on CXL, cold on RDMA) — the Figure 1
   multi-layer architecture.
3. Registers the same functions from two simulated nodes against one
   shared pool: the rack stores a single deduplicated copy (§8.2).

Run:  python examples/memory_pools.py
"""

from repro.core.platform import TrEnvPlatform
from repro.mem.layout import GB, MB
from repro.mem.pools import CXLPool, DedupStore, RDMAPool, TieredPool
from repro.node import Node
from repro.workloads.functions import FUNCTIONS, function_by_name


def backend_comparison(fn="IR"):
    print(f"Backend comparison on {fn}:")
    for label, make_pool in (
            ("t-cxl", lambda lat: CXLPool(64 * GB, lat)),
            ("t-rdma", lambda lat: RDMAPool(64 * GB, lat)),
            ("t-tiered", lambda lat: TieredPool(CXLPool(32 * GB, lat),
                                                RDMAPool(32 * GB, lat),
                                                hot_fraction=0.5))):
        node = Node(cores=8, seed=21)
        platform = TrEnvPlatform(node, make_pool(node.latency), name=label)
        platform.register_function(function_by_name(fn))

        def driver():
            r = yield platform.invoke(fn)
            return r

        r = node.sim.run_process(driver())
        anon = node.memory.usage.get("function-anon", 0)
        print(f"  {label:9} exec {r.exec * 1e3:7.1f} ms, "
              f"node-local function memory {anon / MB:6.1f} MB")


def cross_node_sharing():
    print("\nCross-node sharing (one rack-level pool, two hosts):")
    pool = CXLPool(128 * GB)
    store = DedupStore(pool)
    total_image_mb = 0.0
    for host in range(2):
        node = Node(cores=8, seed=30 + host, name=f"host{host}")
        platform = TrEnvPlatform(node, pool, store=store,
                                 name=f"t-cxl-host{host}")
        for profile in FUNCTIONS:
            platform.register_function(profile)
            total_image_mb += profile.mem_bytes / MB
        print(f"  after host{host}: pool stores {pool.used_bytes / MB:7.1f} MB "
              f"of {total_image_mb:8.1f} MB presented "
              f"(dedup {store.dedup_ratio:.0%})")
    print("  -> the second host added nothing: every image was already "
          "in the rack pool")


def main():
    backend_comparison()
    cross_node_sharing()


if __name__ == "__main__":
    main()
