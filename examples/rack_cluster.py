#!/usr/bin/env python3
"""Rack-scale deployment: four TrEnv hosts, one CXL memory pool.

Demonstrates §8.2's cost argument: warm state is deduplicated
*per rack*, not per machine, so adding hosts adds compute capacity
without adding snapshot storage — while a keep-alive baseline would
replicate every cached image on every host.

Run:  python examples/rack_cluster.py
"""

from repro.mem.layout import GB, MB
from repro.mem.pools import CXLPool
from repro.serverless.cluster import RoundRobin, WarmAffinity, make_trenv_cluster
from repro.workloads.functions import FUNCTIONS
from repro.workloads.synthetic import make_w1_bursty


def main():
    total_images_mb = sum(f.mem_bytes for f in FUNCTIONS) / MB
    print(f"function suite: {len(FUNCTIONS)} functions, "
          f"{total_images_mb:.0f} MB of snapshot images\n")

    print(f"{'nodes':>6} {'pool MB':>9} {'sum node-peak MB':>17} "
          f"{'p99 ms':>8}  kept-warm equivalent")
    for n_nodes in (1, 2, 4):
        pool = CXLPool(256 * GB)
        cluster = make_trenv_cluster(n_nodes, pool, policy=RoundRobin(),
                                     cores=32)
        workload = make_w1_bursty(seed=3, duration=700.0, burst_size=4,
                                  bursts_per_function=1)
        result = cluster.run_workload(workload)
        # What per-host keep-alive caching would cost at the same hit
        # rate: every host holds its own warm copies.
        keepwarm_mb = total_images_mb * n_nodes
        print(f"{n_nodes:>6} {result.pool_used_mb:>9.0f} "
              f"{result.total_peak_mb:>17.0f} "
              f"{result.recorder.e2e_percentile(99) * 1e3:>8.1f}"
              f"  {keepwarm_mb:>10.0f} MB")

    print("\nThe pool column is flat: one deduplicated rack copy serves "
          "every host.")

    print("\nDispatch-policy comparison (4 nodes):")
    for policy in (RoundRobin(), WarmAffinity()):
        pool = CXLPool(256 * GB)
        cluster = make_trenv_cluster(4, pool, policy=policy, cores=32)
        workload = make_w1_bursty(seed=3, duration=700.0, burst_size=4,
                                  bursts_per_function=1)
        result = cluster.run_workload(workload)
        kinds = result.recorder.start_kind_counts()
        print(f"  {policy.name:13} p99 "
              f"{result.recorder.e2e_percentile(99) * 1e3:7.1f} ms, "
              f"starts {kinds}")


if __name__ == "__main__":
    main()
