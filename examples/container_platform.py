#!/usr/bin/env python3
"""Container platform comparison: CRIU vs REAP+ vs TrEnv under burst load.

Replays a scaled-down W1 (bursty) workload against three platforms on
identical simulated nodes and prints the P50/P99 end-to-end latency,
peak memory, and how each invocation was started.

Run:  python examples/container_platform.py
"""

from repro.bench.harness import make_platform
from repro.serverless.runner import run_workload
from repro.workloads.synthetic import make_w1_bursty


def main():
    platforms = ("criu", "reap+", "t-cxl")
    print(f"{'platform':10} {'p50 ms':>9} {'p99 ms':>9} {'peak MB':>9}  starts")
    for name in platforms:
        workload = make_w1_bursty(seed=7, duration=1400.0, burst_size=8)
        result = run_workload(make_platform(name, seed=7), workload)
        rec = result.recorder
        print(f"{name:10} {rec.e2e_percentile(50) * 1e3:9.1f} "
              f"{rec.e2e_percentile(99) * 1e3:9.1f} "
              f"{result.peak_memory_mb:9.0f}  {rec.start_kind_counts()}")

    print()
    print("Per-function P99 speedup of T-CXL over REAP+ "
          "(short functions gain most):")
    reap = run_workload(make_platform("reap+", seed=7),
                        make_w1_bursty(seed=7, duration=1400.0, burst_size=8))
    tcxl = run_workload(make_platform("t-cxl", seed=7),
                        make_w1_bursty(seed=7, duration=1400.0, burst_size=8))
    for fn in tcxl.recorder.functions():
        r = reap.recorder.e2e_percentile(99, fn)
        t = tcxl.recorder.e2e_percentile(99, fn)
        print(f"  {fn:4} {r / t:5.2f}x")


if __name__ == "__main__":
    main()
