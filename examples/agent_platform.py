#!/usr/bin/env python3
"""Agent platform scenario: cost analysis + E2B vs TrEnv-S.

1. Prints the §2.3 cost analysis (how serverless infrastructure compares
   with LLM API spend per agent).
2. Runs the Blackjack agent on E2B and TrEnv to compare startup latency.
3. Runs a pack of browser-using blog-summary agents under CPU
   overcommitment with and without browser sharing.

Run:  python examples/agent_platform.py
"""

from repro.agents.cost import cost_table
from repro.agents.platform import E2BPlatform, TrEnvVMPlatform
from repro.agents.spec import agent_by_name
from repro.node import Node


def startup_comparison():
    print("Blackjack startup latency:")
    for label, cls, kwargs in (("E2B", E2BPlatform, {}),
                               ("TrEnv", TrEnvVMPlatform, {})):
        node = Node(cores=8, seed=11)
        platform = cls(node, **kwargs)
        spec = agent_by_name("blackjack")

        def driver():
            r = yield platform.run_agent(spec)
            return r

        r = node.sim.run_process(driver())
        print(f"  {label:6} startup {r.startup * 1e3:7.1f} ms, "
              f"e2e {r.e2e:5.2f} s (recorded run: {spec.e2e_target} s)")


def browser_sharing_comparison(instances=20, cores=2):
    print(f"\n{instances} blog-summary agents on {cores} cores "
          f"({instances // cores}x overcommit):")
    for sharing in (False, True):
        node = Node(cores=cores, seed=11)
        platform = TrEnvVMPlatform(node, browser_sharing=sharing,
                                   prewarmed_jailers=instances)
        spec = agent_by_name("blog-summary")
        done = []

        def one():
            r = yield platform.run_agent(spec)
            done.append(r.startup + r.e2e)

        for _ in range(instances):
            node.sim.spawn(one())
        node.sim.run()
        label = "TrEnv-S (shared browser)" if sharing else "TrEnv (dedicated)"
        print(f"  {label:26} worst e2e {max(done):7.1f} s, "
              f"mean {sum(done) / len(done):7.1f} s, "
              f"peak mem {node.memory.peak_mb:7.0f} MB")


def main():
    print("Cost per run (Figure 3), C_serverless / C_LLM:")
    for agent, row in cost_table().items():
        print(f"  {agent:15} llm ${row['llm_usd'] * 1e3:7.3f}m  "
              f"serverless ${row['serverless_usd'] * 1e3:7.3f}m  "
              f"ratio {row['relative']:.0%}")
    print()
    startup_comparison()
    browser_sharing_comparison()


if __name__ == "__main__":
    main()
