#!/usr/bin/env python3
"""Quickstart: the mm-template lifecycle on a simulated host.

Walks the Figure 12 workflow end to end:

1. checkpoint a function into a snapshot image,
2. deduplicate it into a CXL memory pool and build an mm-template,
3. attach the template to two fresh processes (metadata-only copy),
4. run an invocation and watch copy-on-write keep instances isolated.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.mm_template import MMTemplateRegistry, build_template_for_function
from repro.criu.images import SnapshotImage
from repro.mem.address_space import AddressSpace
from repro.mem.layout import GB, MB
from repro.mem.pools import CXLPool, DedupStore
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRNG
from repro.workloads.functions import function_by_name


def main():
    sim = Simulator()
    profile = function_by_name("JS")   # 94.9 MB Python JSON function
    print(f"function: {profile.name} ({profile.description}), "
          f"{profile.mem_bytes / MB:.1f} MB image, "
          f"{profile.n_threads} threads")

    # 1. Offline: checkpoint the bootstrapped function.
    image = SnapshotImage.from_profile(profile)
    print(f"snapshot: {image.total_pages} pages across "
          f"{len(image.vmas)} VMAs; template metadata is only "
          f"{image.metadata_bytes / 1024:.0f} KiB")

    # 2. Deduplicate into the rack's CXL pool and build the template.
    pool = CXLPool(capacity_bytes=8 * GB)
    store = DedupStore(pool)
    registry = MMTemplateRegistry(sim)
    template = build_template_for_function(registry, image, store)
    print(f"pool now holds {pool.used_bytes / MB:.1f} MB "
          f"(dedup ratio so far: {store.dedup_ratio:.0%})")

    # Register a second function of the same language: the shared
    # runtime pages dedup away.
    image_dh = SnapshotImage.from_profile(function_by_name("DH"))
    build_template_for_function(registry, image_dh, store)
    print(f"after adding DH: pool {pool.used_bytes / MB:.1f} MB, "
          f"dedup ratio {store.dedup_ratio:.0%}")

    # 3. Attach to two instances: metadata copy only, microseconds.
    inst_a, inst_b = AddressSpace("inst-a"), AddressSpace("inst-b")

    def attach_both():
        t0 = sim.now
        yield registry.mmt_attach(template, inst_a)
        yield registry.mmt_attach(template, inst_b)
        return sim.now - t0

    elapsed = sim.run_process(attach_both())
    print(f"two attaches took {elapsed * 1e3:.2f} ms simulated "
          f"(vs ~{(0.004 + image.nbytes * 0.53e-3 / MB) * 1e3:.0f} ms "
          f"for one copy-based restore)")

    # 4. Execute: reads are free (valid CXL PTEs); writes CoW locally.
    trace = profile.make_trace(SeededRNG(42))
    outcome = inst_a.access(trace.read_pages, trace.write_pages,
                            trace.read_loads)
    print(f"invocation on inst-a: {outcome.cow_faults} CoW faults, "
          f"{outcome.major_faults} major faults, "
          f"{inst_a.local_bytes / MB:.1f} MB now private")
    print(f"inst-b untouched: {inst_b.local_bytes / MB:.1f} MB private "
          f"(isolation preserved)")
    print(f"read-only share of touched pages: "
          f"{trace.read_only_ratio:.0%} (paper band: 24-90%)")


if __name__ == "__main__":
    main()
