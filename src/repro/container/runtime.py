"""Container runtime: the cold-start sandbox creation path.

This is what faasd/containerd pays on every cold start (Figure 4): a
network namespace (the dominant, contention-sensitive cost), mount
namespace with a full rootfs build, cgroup creation, and a
spawn-then-migrate of the init process — the path every baseline shares
and TrEnv's repurposing bypasses.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.container.container import (SANDBOX_KERNEL_OVERHEAD,
                                       ContainerSandbox, SandboxState)
from repro.container.rootfs import RootfsBuilder
from repro.kernel.cgroup import CgroupLimits
from repro.kernel.mounts import MountTable
from repro.node import Node
from repro.sim.engine import Delay


class ContainerRuntime:
    """Creates and destroys standard container sandboxes on one node."""

    def __init__(self, node: Node):
        self.node = node
        self.rootfs_builder = RootfsBuilder(node.sim, node.latency)
        self.cold_creates = 0
        self.destroys = 0

    def create_sandbox_cold(self, function: str,
                            limits: Optional[CgroupLimits] = None,
                            clone_into_cgroup: bool = False
                            ) -> Generator:
        """Timed: assemble a complete sandbox from scratch.

        ``clone_into_cgroup`` selects the §5.2.2 fast path for the init
        process; mainstream runtimes (runc) use the migrate path.
        """
        node = self.node
        netns = yield node.namespaces.create_netns()
        table = MountTable(node.sim, node.latency)
        mntns = yield node.namespaces.create_mntns(table)
        light = yield node.namespaces.create_light_set()
        base, fn_overlay = yield self.rootfs_builder.build_cold(table, function)
        cgroup = yield node.cgroups.create(f"sb-{function}", limits)
        sandbox = ContainerSandbox(netns, mntns, light, cgroup, base)
        sandbox.function_overlay = fn_overlay
        sandbox.function = function
        sandbox.created_at = node.now
        # Init ("pause") process anchors the namespaces.
        init = yield node.procs.spawn(f"init-{sandbox.sandbox_id}",
                                      cgroup=cgroup,
                                      into_cgroup=clone_into_cgroup)
        sandbox.init_process = init
        sandbox.processes.append(init)
        node.memory.charge("sandbox-kernel", SANDBOX_KERNEL_OVERHEAD)
        sandbox.state = SandboxState.ACTIVE
        self.cold_creates += 1
        return sandbox

    def destroy_sandbox(self, sandbox: ContainerSandbox) -> Generator:
        """Timed: kill processes and tear the sandbox down."""
        node = self.node
        for proc in list(sandbox.live_processes):
            yield node.procs.kill_tree(proc)
        sandbox.processes.clear()
        sandbox.netns.terminate_connections()
        node.memory.charge("sandbox-kernel", -SANDBOX_KERNEL_OVERHEAD)
        sandbox.state = SandboxState.DESTROYED
        self.destroys += 1

    def bootstrap_function(self, sandbox: ContainerSandbox, profile
                           ) -> Generator:
        """Timed: cold bootstrap — launch the runtime, import, init.

        Builds the function's full post-init memory locally (what the
        snapshot would capture) and burns the bootstrap CPU through the
        node's processor-sharing model, so concurrent cold starts slow
        each other down.
        """
        node = self.node
        space_hook = node.memory.page_delta_hook("function-anon")
        from repro.criu.images import SnapshotImage
        image = SnapshotImage.from_profile(profile)
        space = image.build_address_space(
            f"{profile.name}@{sandbox.sandbox_id}", on_local_delta=space_hook)
        proc = yield node.procs.spawn(profile.name, address_space=space,
                                      cgroup=sandbox.cgroup,
                                      into_cgroup=True)
        yield from node.cpu.compute(profile.bootstrap_time)
        for vma in space.vmas:
            space.populate_local(vma)
        yield node.procs.clone_threads(proc, profile.n_threads - 1)
        sandbox.processes.append(proc)
        sandbox.function = profile.name
        return proc
