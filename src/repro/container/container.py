"""The container sandbox object (Figure 5).

A sandbox is the reusable shell: namespaces + rootfs (mount namespace
with a union filesystem) + cgroup.  Processes and their memory state are
the per-function part that TrEnv swaps in and out.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional

from repro.kernel.cgroup import Cgroup
from repro.kernel.mounts import MountTable, OverlayFS
from repro.kernel.namespaces import MountNamespace, Namespace, NetNamespace
from repro.kernel.process import Process
from repro.mem.layout import MB

#: Kernel-side footprint of one sandbox's isolation objects (netns
#: conntrack tables, mount structs, cgroup controllers) — charged to the
#: node while the sandbox exists.
SANDBOX_KERNEL_OVERHEAD = 3 * MB


class SandboxState(enum.Enum):
    CREATING = "creating"
    ACTIVE = "active"        # running a function instance
    WARM = "warm"            # idle, memory state retained (keep-alive)
    POOLED = "pooled"        # cleansed, in the repurposable pool
    DESTROYED = "destroyed"


class ContainerSandbox:
    """One container: isolation shell plus (optionally) live processes."""

    _ids = itertools.count(1)

    def __init__(self, netns: NetNamespace, mntns: MountNamespace,
                 light_ns: Dict[str, Namespace], cgroup: Cgroup,
                 base_rootfs: OverlayFS):
        self.sandbox_id = next(ContainerSandbox._ids)
        self.netns = netns
        self.mntns = mntns
        self.light_ns = light_ns
        self.cgroup = cgroup
        self.base_rootfs = base_rootfs
        self.function_overlay: Optional[OverlayFS] = None
        self.function: Optional[str] = None
        self.init_process: Optional[Process] = None
        self.processes: List[Process] = []
        self.state = SandboxState.CREATING
        self.created_at = 0.0
        self.last_used = 0.0
        self.generation = 0      # bumped on every repurpose

    @property
    def mount_table(self) -> MountTable:
        table = self.mntns.mount_table
        if table is None:
            raise RuntimeError("sandbox has no mount table")
        return table

    @property
    def live_processes(self) -> List[Process]:
        return [p for p in self.processes if p.alive]

    @property
    def memory_bytes(self) -> int:
        return sum(p.memory_bytes for p in self.live_processes)

    def leaks_previous_tenant(self) -> bool:
        """Security check: any residual state from the last function?

        True if live tenant processes remain (the namespace-anchoring
        init is exempt), the overlay upper still holds file
        modifications, or network connections are open (§8.1.1).
        """
        if any(p for p in self.live_processes if p is not self.init_process):
            return True
        if self.function_overlay is not None and self.function_overlay.dirty:
            return True
        if self.netns.leaks_execution_data:
            return True
        return False

    def __repr__(self) -> str:
        return (f"<sandbox #{self.sandbox_id} {self.state.value} "
                f"fn={self.function}>")
