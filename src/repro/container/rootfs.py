"""Rootfs assembly: the cold path and the per-function overlay pool.

Cold start (§5.2.1 "Compared with Cold Start"): >9 ``mount`` calls,
6 ``mkdev``/``mknod``, and a ``pivot_root`` to assemble sysfs, procfs,
/dev nodes and the union root.  TrEnv instead keeps a pool of
pre-assembled function-specific overlays and overmounts one atop the
pooled sandbox's base rootfs — two mounts minimum.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.kernel.mounts import MountTable, OverlayFS, SimpleFS
from repro.sim.engine import Delay, Simulator
from repro.sim.latency import LatencyModel

#: The standard mountpoints a Docker-grade rootfs carries.
_COLD_MOUNTPOINTS = (
    ("/", "overlay"),
    ("/sys", "sysfs"),
    ("/proc", "proc"),
    ("/dev", "devtmpfs"),
    ("/dev/pts", "devpts"),
    ("/dev/shm", "tmpfs"),
    ("/dev/mqueue", "mqueue"),
    ("/sys/fs/cgroup", "cgroup2"),
    ("/tmp", "tmpfs"),
)

_DEVICE_NODES = ("/dev/null", "/dev/zero", "/dev/full", "/dev/random",
                 "/dev/urandom", "/dev/tty")

#: Overmount path for the function-specific dependency overlay.
FUNCTION_MOUNTPOINT = "/opt/function"


class RootfsBuilder:
    """Builds cold rootfs and reconfigures pooled ones."""

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency or LatencyModel()

    def build_cold(self, table: MountTable, function: str
                   ) -> Generator:
        """Timed: assemble a complete rootfs from scratch.

        Returns the base :class:`OverlayFS` mounted at ``/`` with the
        function's dependency overlay at the function mountpoint.
        """
        lat = self.latency.rootfs
        yield Delay(lat.overlay_assemble)
        base = OverlayFS(("os-base",), label="base")
        for path, fstype in _COLD_MOUNTPOINTS:
            fs = base if fstype == "overlay" else SimpleFS(fstype)
            yield table.mount(path, fs)
        for node in _DEVICE_NODES:
            yield table.mknod(node)
        fn_overlay = OverlayFS(("os-base", f"deps-{function}"),
                               label=f"fn-{function}")
        yield table.mount(FUNCTION_MOUNTPOINT, fn_overlay)
        yield table.pivot_root()
        return base, fn_overlay

    def swap_function_overlay(self, table: MountTable,
                              new_overlay: OverlayFS) -> Generator:
        """Timed: TrEnv reconfiguration (Figure 13 steps 2–3).

        Unmounts the previous function overlay (if any) and overmounts
        the new one.  The upper-dir purge of the *old* overlay is the
        caller's business (it runs asynchronously, §5.2.1).
        """
        old = None
        if table.mount_depth(FUNCTION_MOUNTPOINT) > 0:
            old = yield table.umount(FUNCTION_MOUNTPOINT)
        yield table.mount(FUNCTION_MOUNTPOINT, new_overlay, fast=True)
        # /proc must be remounted for the new pid view (the second of the
        # "only 2 mounts" §5.2.1 mentions).
        yield table.mount("/proc", SimpleFS("proc"), fast=True)
        return old


class FunctionOverlayPool:
    """Pool of pre-assembled function-specific overlays (§5.2.1).

    Instead of discarding an unmounted overlay, TrEnv parks it for the
    next instance of that function; assembly cost is paid only on pool
    misses.
    """

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        self._free: Dict[str, List[OverlayFS]] = {}
        self.hits = 0
        self.misses = 0

    def prewarm(self, function: str, count: int = 1) -> None:
        """Pre-assemble overlays off the critical path (registration time).

        Offline preprocessing is untimed relative to invocations, like
        snapshot generation (§4 step A).
        """
        free = self._free.setdefault(function, [])
        for _ in range(count):
            free.append(OverlayFS(("os-base", f"deps-{function}"),
                                  label=f"fn-{function}"))

    def acquire(self, function: str) -> Generator:
        """Timed: get a clean overlay for ``function``."""
        free = self._free.get(function)
        if free:
            self.hits += 1
            overlay = free.pop()
            if False:
                yield  # pragma: no cover - generator marker
            return overlay
        self.misses += 1
        yield Delay(self.latency.rootfs.overlay_assemble)
        return OverlayFS(("os-base", f"deps-{function}"),
                         label=f"fn-{function}")

    def release(self, function: str, overlay: OverlayFS) -> Generator:
        """Timed: purge modifications and park the overlay.

        Purging deletes the upper dir and needs a remount-equivalent
        flush of stale inodes; TrEnv runs this off the critical path, so
        callers typically ``sim.spawn`` this generator.
        """
        overlay.purge_upper()
        yield Delay(self.latency.rootfs.purge_upper_sync)
        overlay.stale_inode_cache = False
        self._free.setdefault(function, []).append(overlay)

    def pooled_count(self, function: str) -> int:
        return len(self._free.get(function, []))
