"""Container runtime substrate.

Builds standard (Docker-grade) container sandboxes from kernel
primitives: the cold-start path every baseline pays (Table 1, Figure 4),
plus the per-function overlay pool that TrEnv's rootfs reconfiguration
swaps in (§5.2.1).
"""

from repro.container.container import ContainerSandbox, SandboxState
from repro.container.rootfs import FunctionOverlayPool, RootfsBuilder
from repro.container.runtime import ContainerRuntime

__all__ = [
    "ContainerRuntime",
    "ContainerSandbox",
    "FunctionOverlayPool",
    "RootfsBuilder",
    "SandboxState",
]
