"""Page-size constants and address helpers."""

from __future__ import annotations

PAGE_SIZE = 4096
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def pages_for_bytes(nbytes: int) -> int:
    """Number of 4 KiB pages needed to hold ``nbytes`` (rounded up)."""
    if nbytes < 0:
        raise ValueError(f"negative size: {nbytes}")
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE


def page_align(addr: int) -> int:
    """Round ``addr`` down to a page boundary."""
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(addr: int) -> int:
    """Round ``addr`` up to a page boundary."""
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def is_page_aligned(addr: int) -> bool:
    return (addr & (PAGE_SIZE - 1)) == 0
