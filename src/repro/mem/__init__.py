"""Memory substrate.

Implements the objects TrEnv's kernel patch manipulates, as real data
structures with true semantics:

* :mod:`repro.mem.layout` — page-size constants and helpers.
* :mod:`repro.mem.address_space` — VMAs, per-page PTE states, fault
  handling, copy-on-write.
* :mod:`repro.mem.pools` — local DRAM, CXL, RDMA and NAS backends plus the
  content-addressed dedup store used for consolidated snapshot images.
* :mod:`repro.mem.trace` — statistical page-access traces that drive
  execution (what the paper measures in Figure 10).
* :mod:`repro.mem.page_cache` — guest/host page-cache model (§2.4, §6.3).
* :mod:`repro.mem.accounting` — node-level memory usage sampling.
"""

from repro.mem.layout import PAGE_SIZE, pages_for_bytes
from repro.mem.address_space import (
    AccessOutcome,
    AddressSpace,
    PTE_LOCAL,
    PTE_NONE,
    PTE_REMOTE_INVALID,
    PTE_REMOTE_RO,
    VMA,
)
from repro.mem.pools import (
    CXLPool,
    DedupStore,
    MemoryPool,
    NASPool,
    PoolBlock,
    RDMAPool,
    TieredPool,
)
from repro.mem.trace import AccessTrace
from repro.mem.page_cache import PageCache
from repro.mem.accounting import MemoryAccountant

__all__ = [
    "AccessOutcome",
    "AccessTrace",
    "AddressSpace",
    "CXLPool",
    "DedupStore",
    "MemoryAccountant",
    "MemoryPool",
    "NASPool",
    "PAGE_SIZE",
    "PTE_LOCAL",
    "PTE_NONE",
    "PTE_REMOTE_INVALID",
    "PTE_REMOTE_RO",
    "PageCache",
    "PoolBlock",
    "RDMAPool",
    "TieredPool",
    "VMA",
    "pages_for_bytes",
]
