"""Copy-on-write page-state arrays with chunked lazy materialization.

TrEnv's headline property is that ``mmt_attach`` copies *metadata only*,
so attach cost is (nearly) independent of image size (§5.1, Figure 11).
The reproduction's per-page VMA state lives in numpy arrays; deep-copying
them per attach made warm starts O(image) in *host* wall-clock — ~5 MB of
array copies for the 855 MB IR image — even though the simulated cost was
already metadata-only.

:class:`CowPageArray` restores the paper's asymptotics host-side: a clone
shares the template's (frozen) array and materialises private state in
fixed-size chunks only when written, exactly like the kernel's CoW page
tables.  Reads gather through the shared base with materialised chunks
overlaid; once most chunks are private the array collapses to a dense
copy so steady-state instances pay plain ndarray speed.

The class implements just enough of the ndarray protocol for the fault
path (`arr[idx]`, `arr[idx] = v`, `arr[:] = v`, `==`, ``np.asarray``) to
stay transparent to existing callers and tests.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

#: Pages per CoW chunk (a 16 MiB run of simulated memory; a 4 KiB private
#: uint8 chunk host-side).  Power of two so chunk ids are a shift.
CHUNK_PAGES = 4096
_SHIFT = 12
_MASK = CHUNK_PAGES - 1

#: Collapse to a dense private array once this fraction of chunks has
#: materialised — past that point the overlay bookkeeping costs more than
#: it saves.
_COLLAPSE_FRACTION = 0.5


class TemplateBase:
    """A frozen template array shared by any number of CoW clones.

    Freezing (``writeable=False``) turns accidental writes to shared
    template state into a hard error — the analogue of the kernel
    write-protecting template page tables.  Count queries are cached so
    per-attach accounting (e.g. resident-page charging) is O(1) instead
    of O(pages).
    """

    __slots__ = ("array", "_counts", "_chunk_counts")

    def __init__(self, array: np.ndarray):
        array.setflags(write=False)
        self.array = array
        self._counts: Dict[int, int] = {}
        self._chunk_counts: Dict[tuple, int] = {}

    def __len__(self) -> int:
        return len(self.array)

    def count(self, value) -> int:
        key = int(value)
        hit = self._counts.get(key)
        if hit is None:
            hit = int(np.count_nonzero(self.array == value))
            self._counts[key] = hit
        return hit

    def count_chunk(self, cid: int, value) -> int:
        key = (cid, int(value))
        hit = self._chunk_counts.get(key)
        if hit is None:
            lo = cid << _SHIFT
            sl = self.array[lo:lo + CHUNK_PAGES]
            hit = int(np.count_nonzero(sl == value))
            self._chunk_counts[key] = hit
        return hit


class CowPageArray:
    """A lazily-materialising copy-on-write view of a :class:`TemplateBase`."""

    __slots__ = ("_base", "_chunks", "_dense")

    def __init__(self, base: TemplateBase):
        self._base: Optional[TemplateBase] = base
        self._chunks: Dict[int, np.ndarray] = {}
        self._dense: Optional[np.ndarray] = None

    # -- introspection -----------------------------------------------------------

    @property
    def dtype(self):
        if self._dense is not None:
            return self._dense.dtype
        return self._base.array.dtype

    @property
    def materialized_chunks(self) -> int:
        """Private chunks held (0 right after a clone); -1 once dense."""
        if self._dense is not None:
            return -1
        return len(self._chunks)

    @property
    def private_nbytes(self) -> int:
        """Host bytes of private (non-shared) storage."""
        if self._dense is not None:
            return self._dense.nbytes
        return sum(c.nbytes for c in self._chunks.values())

    def __len__(self) -> int:
        if self._dense is not None:
            return len(self._dense)
        return len(self._base.array)

    # -- materialization ---------------------------------------------------------

    def _chunk(self, cid: int) -> np.ndarray:
        chunk = self._chunks.get(cid)
        if chunk is None:
            lo = cid << _SHIFT
            chunk = self._base.array[lo:lo + CHUNK_PAGES].copy()
            self._chunks[cid] = chunk
        return chunk

    def to_ndarray(self) -> np.ndarray:
        """A fresh dense copy (callers may mutate it freely)."""
        if self._dense is not None:
            return self._dense.copy()
        out = self._base.array.copy()
        for cid, chunk in self._chunks.items():
            lo = cid << _SHIFT
            out[lo:lo + len(chunk)] = chunk
        return out

    def _collapse(self) -> None:
        dense = self._base.array.copy()
        for cid, chunk in self._chunks.items():
            lo = cid << _SHIFT
            dense[lo:lo + len(chunk)] = chunk
        self._dense = dense
        self._base = None
        self._chunks = {}

    def _maybe_collapse(self) -> None:
        # Single-chunk arrays (most VMAs are under CHUNK_PAGES) go dense
        # on their first write: one materialised chunk IS the array, and
        # staying chunked would tax every later gather with overlay work.
        n_chunks = (len(self._base.array) + _MASK) >> _SHIFT
        if len(self._chunks) >= max(1.0, n_chunks * _COLLAPSE_FRACTION):
            self._collapse()

    # -- ndarray protocol (the subset the fault path and tests use) ---------------

    def __array__(self, dtype=None, copy=None):
        out = self.to_ndarray()
        if dtype is not None and out.dtype != dtype:
            out = out.astype(dtype)
        return out

    def __getitem__(self, key):
        if self._dense is not None:
            return self._dense[key]
        if isinstance(key, (int, np.integer)):
            cid = int(key) >> _SHIFT
            chunk = self._chunks.get(cid)
            if chunk is not None:
                return chunk[int(key) & _MASK]
            return self._base.array[key]
        if isinstance(key, slice):
            return self.to_ndarray()[key]
        idx = np.asarray(key)
        if idx.dtype == bool:
            idx = np.nonzero(idx)[0]
        out = self._base.array[idx]
        if self._chunks and len(idx):
            # Overlay by iterating the (few, pre-collapse) materialised
            # chunks — no hashing/unique pass over the indices.
            cids = idx >> _SHIFT
            for cid, chunk in self._chunks.items():
                m = cids == cid
                if m.any():
                    out[m] = chunk[idx[m] & _MASK]
        return out

    def __setitem__(self, key, value) -> None:
        if self._dense is not None:
            self._dense[key] = value
            return
        if isinstance(key, slice):
            if key == slice(None):
                # Full overwrite: drop the shared base entirely.
                base = self._base.array
                if np.isscalar(value):
                    self._dense = np.full(len(base), value, dtype=base.dtype)
                else:
                    value = np.asarray(value, dtype=base.dtype)
                    if len(value) != len(base):
                        raise ValueError(
                            f"length mismatch: {len(value)} != {len(base)}")
                    self._dense = value.copy()
                self._base = None
                self._chunks = {}
                return
            self._collapse()
            self._dense[key] = value
            return
        if isinstance(key, (int, np.integer)):
            self._chunk(int(key) >> _SHIFT)[int(key) & _MASK] = value
            self._maybe_collapse()
            return
        idx = np.asarray(key)
        if idx.dtype == bool:
            idx = np.nonzero(idx)[0]
        if len(idx) == 0:
            return
        scalar = np.isscalar(value)
        if not scalar:
            value = np.asarray(value)
        cids = idx >> _SHIFT
        touched = set(cids.tolist())
        n_chunks = (len(self._base.array) + _MASK) >> _SHIFT
        after = len(touched | self._chunks.keys())
        if after >= max(1.0, n_chunks * _COLLAPSE_FRACTION):
            # The write alone crosses the collapse threshold: densify
            # first and scatter once, skipping per-chunk materialisation.
            self._collapse()
            self._dense[idx] = value
            return
        for cid in sorted(touched):
            m = cids == cid
            chunk = self._chunk(cid)
            if scalar:
                chunk[idx[m] & _MASK] = value
            else:
                chunk[idx[m] & _MASK] = value[m]

    def __eq__(self, other):  # type: ignore[override]
        return self.to_ndarray() == other

    def __ne__(self, other):  # type: ignore[override]
        return self.to_ndarray() != other

    __hash__ = None  # array-like equality semantics => unhashable

    # -- fast queries --------------------------------------------------------------

    def count(self, value) -> int:
        """``count_nonzero(self == value)`` in O(materialized chunks)."""
        if self._dense is not None:
            return int(np.count_nonzero(self._dense == value))
        total = self._base.count(value)
        for cid, chunk in self._chunks.items():
            total += int(np.count_nonzero(chunk == value))
            total -= self._base.count_chunk(cid, value)
        return total

    def copy(self) -> "CowPageArray":
        out = CowPageArray.__new__(CowPageArray)
        if self._dense is not None:
            out._base = None
            out._chunks = {}
            out._dense = self._dense.copy()
        else:
            out._base = self._base
            out._chunks = {cid: c.copy() for cid, c in self._chunks.items()}
            out._dense = None
        return out


# -- helpers for code that handles both ndarray and CowPageArray ------------------

def count_equal(arr, value) -> int:
    """Vector-count of ``arr == value`` using the cheapest available path."""
    if isinstance(arr, CowPageArray):
        return arr.count(value)
    return int(np.count_nonzero(arr == value))


def as_dense(arr) -> np.ndarray:
    """A plain ndarray view/copy of ``arr`` (dense copy for CoW arrays)."""
    if isinstance(arr, CowPageArray):
        return arr.to_ndarray()
    return arr
