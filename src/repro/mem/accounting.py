"""Node-level memory accounting.

Tracks current/peak usage per category, and an event-driven timeline used
for Figure 26 (memory-over-time) and Figure 18 (peak memory).  Components
report deltas (address spaces via ``on_local_delta``, page caches via
``on_delta``, platforms directly for kernel/VMM overheads).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis import hooks
from repro.mem.layout import MB, PAGE_SIZE
from repro.obs import hooks as obs_hooks


class MemoryAccountant:
    """Aggregates memory usage with per-category breakdown and a timeline."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 soft_cap_bytes: Optional[int] = None):
        self._clock = clock or (lambda: 0.0)
        self.soft_cap_bytes = soft_cap_bytes
        self.usage: Dict[str, int] = {}
        self.current_bytes = 0
        self.peak_bytes = 0
        self.peak_time = 0.0
        self.timeline: List[Tuple[float, int]] = []
        self.cap_violations = 0
        self._timeline_resolution = 1.0  # seconds between retained samples
        self._last_sample_time = -1e18

    def charge(self, category: str, delta_bytes: int) -> None:
        """Add (or with negative delta, release) usage in a category."""
        if delta_bytes == 0:
            return
        new_value = self.usage.get(category, 0) + delta_bytes
        if new_value < 0:
            raise AssertionError(
                f"category {category!r} went negative: {new_value}")
        self.usage[category] = new_value
        self.current_bytes += delta_bytes
        now = self._clock()
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes
            self.peak_time = now
        if (self.soft_cap_bytes is not None
                and self.current_bytes > self.soft_cap_bytes
                and delta_bytes > 0):
            self.cap_violations += 1
        self._sample(now)
        if hooks.active is not None:
            hooks.active.on_accountant_charge(self, category, delta_bytes)
        if obs_hooks.active is not None:
            obs_hooks.active.on_mem_charge(category, delta_bytes)

    def now(self) -> float:
        """The accountant's notion of current (virtual) time."""
        return self._clock()

    def charge_pages(self, category: str, delta_pages: int) -> None:
        self.charge(category, delta_pages * PAGE_SIZE)

    def page_delta_hook(self, category: str) -> Callable[[int], None]:
        """A callback suitable for ``AddressSpace.on_local_delta``."""
        def hook(delta_pages: int) -> None:
            self.charge_pages(category, delta_pages)
        return hook

    def over_soft_cap(self) -> bool:
        return (self.soft_cap_bytes is not None
                and self.current_bytes > self.soft_cap_bytes)

    # -- reporting ------------------------------------------------------------

    @property
    def current_mb(self) -> float:
        return self.current_bytes / MB

    @property
    def peak_mb(self) -> float:
        return self.peak_bytes / MB

    def breakdown_mb(self) -> Dict[str, float]:
        return {k: v / MB for k, v in sorted(self.usage.items()) if v}

    def timeline_mb(self) -> List[Tuple[float, float]]:
        return [(t, b / MB) for t, b in self.timeline]

    def integral_mb_seconds(self) -> float:
        """∫ usage dt — the usage×duration "memory cost" of §9.6.3."""
        if len(self.timeline) < 2:
            return 0.0
        total = 0.0
        for (t0, b0), (t1, _b1) in zip(self.timeline, self.timeline[1:]):
            total += b0 / MB * (t1 - t0)
        return total

    def _sample(self, now: float) -> None:
        if now - self._last_sample_time >= self._timeline_resolution:
            self.timeline.append((now, self.current_bytes))
            self._last_sample_time = now
        elif self.timeline and self.timeline[-1][0] == now:
            self.timeline[-1] = (now, self.current_bytes)
        elif not self.timeline:
            self.timeline.append((now, self.current_bytes))
            self._last_sample_time = now
