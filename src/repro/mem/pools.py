"""Disaggregated memory pool backends.

The paper's rack architecture (Figure 1): a shared pool holds the
consolidated, deduplicated snapshot images; hosts map them either directly
(CXL: byte-addressable, valid write-protected PTEs, zero-fault reads) or
lazily (RDMA: invalid PTEs, 4 KiB fetch per major fault).  All pool state
is read-only; writes are private to each attaching process via CoW.

Blocks are content-addressed: the :class:`DedupStore` consolidates pages
with identical content across functions and nodes, which is what produces
TrEnv's cross-function, cross-node memory savings (§5.1 step 1).

Every pool also carries **health state** for the fault-injection
framework (:mod:`repro.faults`): an offline pool raises
:class:`~repro.faults.errors.PoolUnavailableError` from its timing
methods, a degraded link multiplies fetch times, and an injected timeout
burst fails the next N fetches with
:class:`~repro.faults.errors.PoolTimeoutError`.  Subclasses implement
``_fetch_time``/``_read_overhead``; the public wrappers apply the health
checks so no caller can accidentally bypass them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis import hooks
from repro.faults.errors import (PoolExhaustedError, PoolTimeoutError,
                                 PoolUnavailableError)
from repro.obs import hooks as obs_hooks
from repro.mem.layout import PAGE_SIZE
from repro.sim.latency import LatencyModel


@dataclass
class PoolBlock:
    """A contiguous run of pages stored in a pool.

    ``offsets`` holds the per-page physical offset inside the pool — the
    "machine-independent pointer" of §5.1 — so overlapping/deduplicated
    layouts are expressible (two blocks may reference the same offsets).
    """

    pool: "MemoryPool"
    offsets: np.ndarray          # int64 physical page offsets within the pool

    @property
    def npages(self) -> int:
        return len(self.offsets)

    @property
    def nbytes(self) -> int:
        return self.npages * PAGE_SIZE


class MemoryPool:
    """Base class for a remote memory pool backend."""

    #: Can the CPU load directly from the pool without a fault?
    byte_addressable = False
    name = "pool"

    def __init__(self, capacity_bytes: int, latency: Optional[LatencyModel] = None):
        self.capacity_bytes = int(capacity_bytes)
        self.latency = latency or LatencyModel()
        self._next_offset = 0
        self._stored_pages = 0
        self._active_fetchers = 0
        # -- health state (fault injection) --
        self._online = True
        self.fault_reason: Optional[str] = None
        self.degrade_factor = 1.0
        self._timeout_budget = 0
        self._forced_exhausted = False
        self.faults_injected = 0
        self.timeouts_served = 0

    # -- health ------------------------------------------------------------------

    @property
    def available(self) -> bool:
        """False while the device is offline / the link is down."""
        return self._online

    def fail(self, reason: str = "injected fault") -> None:
        """Take the pool offline (CXL device offlined, RDMA link down)."""
        self._online = False
        self.fault_reason = reason
        self.faults_injected += 1

    def recover(self) -> None:
        """Bring the pool back online; stored contents are intact."""
        self._online = True
        self.fault_reason = None

    def degrade(self, factor: float) -> None:
        """Multiply all access times by ``factor`` (link congestion)."""
        if factor < 1.0:
            raise ValueError(f"degrade factor must be >= 1: {factor}")
        self.degrade_factor = float(factor)

    def restore_speed(self) -> None:
        self.degrade_factor = 1.0

    def inject_timeouts(self, count: int) -> None:
        """Fail the next ``count`` fetches with a timeout."""
        if count < 0:
            raise ValueError("timeout count must be >= 0")
        self._timeout_budget += count

    def exhaust(self) -> None:
        """Force allocations to fail until :meth:`replenish`."""
        self._forced_exhausted = True

    def replenish(self) -> None:
        self._forced_exhausted = False

    def _check_available(self) -> None:
        if not self._online:
            raise PoolUnavailableError(
                self.name, self.fault_reason or "offline")

    # -- storage -----------------------------------------------------------------

    def can_allocate(self, npages: int) -> bool:
        """Whether ``npages`` fresh slots fit right now (no side effects)."""
        if self._forced_exhausted:
            return False
        return self.used_bytes + npages * PAGE_SIZE <= self.capacity_bytes

    def allocate_pages(self, npages: int) -> np.ndarray:
        """Reserve ``npages`` fresh page slots; returns their offsets."""
        if not self.can_allocate(npages):
            raise PoolExhaustedError(
                self.name,
                f"exhausted: {self.used_bytes + npages * PAGE_SIZE} "
                f"> {self.capacity_bytes}")
        base = self._next_offset
        self._next_offset += npages
        self._stored_pages += npages
        if hooks.active is not None:
            hooks.active.on_pool_alloc(self, npages)
        if obs_hooks.active is not None:
            obs_hooks.active.on_pool_alloc(self, npages)
        return np.arange(base, base + npages, dtype=np.int64)

    @property
    def used_bytes(self) -> int:
        return self._stored_pages * PAGE_SIZE

    @property
    def used_pages(self) -> int:
        return self._stored_pages

    # -- access timing --------------------------------------------------------------

    def fetch_time(self, npages: int, concurrency: int = 1) -> float:
        """Simulated time to demand-fetch ``npages`` individual pages.

        Raises a typed :class:`~repro.faults.errors.PoolFault` while the
        pool is offline or an injected timeout burst is pending.
        """
        self._check_available()
        if self._timeout_budget > 0:
            self._timeout_budget -= 1
            self.timeouts_served += 1
            raise PoolTimeoutError(self.name, "fetch timed out")
        t = self._fetch_time(npages, concurrency)
        if self.degrade_factor != 1.0:
            t *= self.degrade_factor
        if obs_hooks.active is not None:
            obs_hooks.active.on_pool_fetch(self, npages, t)
        return t

    def read_overhead(self, nloads: int) -> float:
        """Extra time for ``nloads`` direct loads (byte-addressable pools)."""
        self._check_available()
        t = self._read_overhead(nloads)
        if self.degrade_factor != 1.0:
            t *= self.degrade_factor
        if obs_hooks.active is not None:
            obs_hooks.active.on_pool_read(self, nloads)
        return t

    def _fetch_time(self, npages: int, concurrency: int = 1) -> float:
        raise NotImplementedError

    def _read_overhead(self, nloads: int) -> float:
        raise NotImplementedError

    def valid_mask(self, offsets: np.ndarray) -> np.ndarray:
        """Which of these pages can get *valid* (direct-load) PTEs.

        Byte-addressable pools map everything valid; message-based pools
        nothing; tiered pools only their hot-tier pages.
        """
        return np.full(len(offsets), self.byte_addressable, dtype=bool)


class CXLPool(MemoryPool):
    """CXL multi-headed device: byte-addressable, shared, read-only maps.

    Reads need no software intervention (valid PTEs pre-installed by
    mm-template), so :meth:`fetch_time` is only used if a platform
    explicitly chooses lazy mapping; the normal cost is the per-load
    latency delta over DRAM (§5.1).
    """

    byte_addressable = True
    name = "cxl"

    def _fetch_time(self, npages: int, concurrency: int = 1) -> float:
        # Direct-mapped copy at near-memory speed; no page-fault round trip.
        per_page = self.latency.mem.minor_fault + PAGE_SIZE / (16e9)  # ~16 GB/s
        return npages * per_page

    def _read_overhead(self, nloads: int) -> float:
        return self.latency.cxl_read_overhead(nloads)


class RDMAPool(MemoryPool):
    """RDMA-backed pool: lazy 4 KiB fetches with unstable tail latency.

    ``encrypted=True`` enables in-transit protection of the memory
    images (§8.1.2(3): "for RDMA, it is possible to encrypt the memory
    images during transfers") at an AES-GCM-class per-page cost.
    """

    byte_addressable = False
    name = "rdma"

    #: AES-GCM decrypt of one 4 KiB page at ~4 GB/s plus tag check.
    ENCRYPTION_COST_PER_PAGE = 1.1e-6

    def __init__(self, capacity_bytes: int, latency=None,
                 encrypted: bool = False):
        super().__init__(capacity_bytes, latency)
        self.encrypted = encrypted

    def _fetch_time(self, npages: int, concurrency: int = 1) -> float:
        t = self.latency.rdma_fetch(npages, concurrency)
        if self.encrypted:
            t += npages * self.ENCRYPTION_COST_PER_PAGE
        return t

    def _read_overhead(self, nloads: int) -> float:
        return 0.0  # once fetched, pages are local


class NASPool(MemoryPool):
    """Network-attached storage tier for cold pages (lowest layer, Fig 1)."""

    byte_addressable = False
    name = "nas"

    def _fetch_time(self, npages: int, concurrency: int = 1) -> float:
        return npages * (self.latency.mem.nas_fetch_4k + self.latency.mem.minor_fault)

    def _read_overhead(self, nloads: int) -> float:
        return 0.0


@dataclass
class _TierPlacement:
    pool: MemoryPool
    fraction: float


class TieredPool(MemoryPool):
    """Multi-layer pool: hot pages in an upper tier, cold pages lower.

    §5.1/§9.5: "a multi-layered architecture that strategically places hot
    pages in CXL and cold pages in RDMA integrates seamlessly".  The
    placement policy is a hot-fraction split; eviction/promotion policies
    are orthogonal to TrEnv and deliberately simple here.
    """

    name = "tiered"

    def __init__(self, hot: MemoryPool, cold: MemoryPool, hot_fraction: float = 0.5):
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction out of range: {hot_fraction}")
        super().__init__(hot.capacity_bytes + cold.capacity_bytes, hot.latency)
        self.hot = hot
        self.cold = cold
        self.hot_fraction = hot_fraction

    @property
    def byte_addressable(self) -> bool:  # type: ignore[override]
        return self.hot.byte_addressable

    def allocate_pages(self, npages: int) -> np.ndarray:
        n_hot = int(round(npages * self.hot_fraction))
        mask = np.zeros(npages, dtype=bool)
        mask[:n_hot] = True
        return self.allocate_pages_masked(mask)

    def allocate_pages_masked(self, hot_mask: np.ndarray) -> np.ndarray:
        """Allocate with explicit per-page placement (hot=True → upper
        tier).  Used by working-set-aware planners
        (:mod:`repro.mem.tiering`).

        Atomic: both tiers are capacity-checked up front, so a request
        that overflows either tier raises without leaking pages into the
        other.
        """
        hot_mask = np.asarray(hot_mask, dtype=bool)
        npages = len(hot_mask)
        n_hot = int(np.count_nonzero(hot_mask))
        n_cold = npages - n_hot
        if not (self.can_allocate(npages)
                and self.hot.can_allocate(n_hot)
                and self.cold.can_allocate(n_cold)):
            raise PoolExhaustedError(
                self.name,
                f"exhausted: {npages} pages ({n_hot} hot / {n_cold} cold) "
                f"do not fit")
        hot = self.hot.allocate_pages(n_hot)
        cold = self.cold.allocate_pages(n_cold)
        out = np.empty(npages, dtype=np.int64)
        out[hot_mask] = hot
        # Tag cold offsets with a high bit so valid_mask can split them.
        out[~hot_mask] = cold + _COLD_TAG
        self._stored_pages += npages
        if hooks.active is not None:
            hooks.active.on_pool_alloc(self, npages)
        if obs_hooks.active is not None:
            obs_hooks.active.on_pool_alloc(self, npages)
        return out

    def split_offsets(self, offsets: np.ndarray):
        cold_mask = offsets >= _COLD_TAG
        return offsets[~cold_mask], offsets[cold_mask] - _COLD_TAG

    def _fetch_time(self, npages: int, concurrency: int = 1) -> float:
        # Demand fetches only ever hit the cold tier: hot-tier pages get
        # valid PTEs up front (see valid_mask) and never fault.
        return self.cold.fetch_time(npages, concurrency)

    def _read_overhead(self, nloads: int) -> float:
        # Direct loads only ever hit the hot tier: cold pages were
        # materialised locally by their fault.
        return self.hot.read_overhead(nloads)

    def valid_mask(self, offsets: np.ndarray) -> np.ndarray:
        if not self.hot.byte_addressable:
            return np.zeros(len(offsets), dtype=bool)
        return offsets < _COLD_TAG

    @property
    def used_bytes(self) -> int:
        return self.hot.used_bytes + self.cold.used_bytes


_COLD_TAG = 1 << 48


class DedupStore:
    """Content-addressed store consolidating snapshot images in a pool.

    ``store_image(content_ids)`` returns a :class:`PoolBlock` whose offsets
    point at the single shared copy of every page; pages already present
    (from any function, any node) are not stored again (§5.1 step 1,
    Figure 12's duplicated region R2).

    The content-id → offset index is a pair of aligned, sorted numpy
    arrays plus a small sorted *pending* buffer.  Fresh ids land in the
    pending buffer (cheap: it stays small) and are merged into the main
    arrays only when the buffer outgrows a fraction of them, so N stores
    cost O(N log N) amortised instead of the O(N²) of re-inserting into
    one ever-growing array per image.
    """

    def __init__(self, pool: MemoryPool):
        self.pool = pool
        self._cids = np.empty(0, dtype=np.int64)        # sorted content ids
        self._cid_offsets = np.empty(0, dtype=np.int64)  # aligned offsets
        self._pend_cids = np.empty(0, dtype=np.int64)    # sorted, small
        self._pend_offsets = np.empty(0, dtype=np.int64)
        self.total_pages_presented = 0
        self.unique_pages_stored = 0

    def _known_mask(self, sorted_ids: np.ndarray) -> np.ndarray:
        """Membership of ``sorted_ids`` in main + pending indexes."""
        known = np.zeros(len(sorted_ids), dtype=bool)
        for cids in (self._cids, self._pend_cids):
            if not len(cids):
                continue
            pos = np.searchsorted(cids, sorted_ids)
            in_range = pos < len(cids)
            known[in_range] |= cids[pos[in_range]] == sorted_ids[in_range]
        return known

    def _lookup(self, content_ids: np.ndarray) -> np.ndarray:
        """Offsets for ids known to be present (main or pending)."""
        offsets = np.empty(len(content_ids), dtype=np.int64)
        found = np.zeros(len(content_ids), dtype=bool)
        for cids, offs in ((self._cids, self._cid_offsets),
                           (self._pend_cids, self._pend_offsets)):
            if not len(cids):
                continue
            pos = np.searchsorted(cids, content_ids)
            in_range = pos < len(cids)
            hit = np.zeros(len(content_ids), dtype=bool)
            hit[in_range] = cids[pos[in_range]] == content_ids[in_range]
            offsets[hit] = offs[pos[hit]]
            found |= hit
        if not found.all():
            raise KeyError("content id missing from dedup index")
        return offsets

    def _merge_pending(self) -> None:
        at = np.searchsorted(self._cids, self._pend_cids)
        self._cids = np.insert(self._cids, at, self._pend_cids)
        self._cid_offsets = np.insert(self._cid_offsets, at,
                                      self._pend_offsets)
        self._pend_cids = np.empty(0, dtype=np.int64)
        self._pend_offsets = np.empty(0, dtype=np.int64)

    def store_image(self, content_ids: np.ndarray,
                    hot_mask: Optional[np.ndarray] = None) -> PoolBlock:
        """Consolidate an image; optionally with per-page tier placement.

        ``hot_mask`` (tiered pools only) marks which pages belong in the
        upper tier; the first function to store a page decides its
        placement.
        """
        content_ids = np.asarray(content_ids, dtype=np.int64)
        self.total_pages_presented += len(content_ids)
        unique, first_idx = np.unique(content_ids, return_index=True)
        known = self._known_mask(unique)
        missing = unique[~known]
        if len(missing):
            if hot_mask is not None:
                if not hasattr(self.pool, "allocate_pages_masked"):
                    raise TypeError(
                        f"{self.pool.name} pool does not support placement")
                hot_mask = np.asarray(hot_mask, dtype=bool)
                # First occurrence of each missing cid decides placement.
                mask = hot_mask[first_idx[~known]]
                fresh = self.pool.allocate_pages_masked(mask)
            else:
                fresh = self.pool.allocate_pages(len(missing))
            at = np.searchsorted(self._pend_cids, missing)
            self._pend_cids = np.insert(self._pend_cids, at, missing)
            self._pend_offsets = np.insert(self._pend_offsets, at, fresh)
            self.unique_pages_stored += len(missing)
            if len(self._pend_cids) * 4 > len(self._cids):
                self._merge_pending()
        return PoolBlock(pool=self.pool, offsets=self._lookup(content_ids))

    @property
    def dedup_ratio(self) -> float:
        """Fraction of presented pages that were deduplicated away."""
        if self.total_pages_presented == 0:
            return 0.0
        return 1.0 - self.unique_pages_stored / self.total_pages_presented
