"""Disaggregated memory pool backends.

The paper's rack architecture (Figure 1): a shared pool holds the
consolidated, deduplicated snapshot images; hosts map them either directly
(CXL: byte-addressable, valid write-protected PTEs, zero-fault reads) or
lazily (RDMA: invalid PTEs, 4 KiB fetch per major fault).  All pool state
is read-only; writes are private to each attaching process via CoW.

Blocks are content-addressed: the :class:`DedupStore` consolidates pages
with identical content across functions and nodes, which is what produces
TrEnv's cross-function, cross-node memory savings (§5.1 step 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.mem.layout import PAGE_SIZE
from repro.sim.latency import LatencyModel


@dataclass
class PoolBlock:
    """A contiguous run of pages stored in a pool.

    ``offsets`` holds the per-page physical offset inside the pool — the
    "machine-independent pointer" of §5.1 — so overlapping/deduplicated
    layouts are expressible (two blocks may reference the same offsets).
    """

    pool: "MemoryPool"
    offsets: np.ndarray          # int64 physical page offsets within the pool

    @property
    def npages(self) -> int:
        return len(self.offsets)

    @property
    def nbytes(self) -> int:
        return self.npages * PAGE_SIZE


class MemoryPool:
    """Base class for a remote memory pool backend."""

    #: Can the CPU load directly from the pool without a fault?
    byte_addressable = False
    name = "pool"

    def __init__(self, capacity_bytes: int, latency: Optional[LatencyModel] = None):
        self.capacity_bytes = int(capacity_bytes)
        self.latency = latency or LatencyModel()
        self._next_offset = 0
        self._stored_pages = 0
        self._active_fetchers = 0

    # -- storage -----------------------------------------------------------------

    def allocate_pages(self, npages: int) -> np.ndarray:
        """Reserve ``npages`` fresh page slots; returns their offsets."""
        needed = npages * PAGE_SIZE
        if self.used_bytes + needed > self.capacity_bytes:
            raise MemoryError(
                f"{self.name} pool exhausted: "
                f"{self.used_bytes + needed} > {self.capacity_bytes}")
        base = self._next_offset
        self._next_offset += npages
        self._stored_pages += npages
        return np.arange(base, base + npages, dtype=np.int64)

    @property
    def used_bytes(self) -> int:
        return self._stored_pages * PAGE_SIZE

    @property
    def used_pages(self) -> int:
        return self._stored_pages

    # -- access timing --------------------------------------------------------------

    def fetch_time(self, npages: int, concurrency: int = 1) -> float:
        """Simulated time to demand-fetch ``npages`` individual pages."""
        raise NotImplementedError

    def read_overhead(self, nloads: int) -> float:
        """Extra time for ``nloads`` direct loads (byte-addressable pools)."""
        raise NotImplementedError

    def valid_mask(self, offsets: np.ndarray) -> np.ndarray:
        """Which of these pages can get *valid* (direct-load) PTEs.

        Byte-addressable pools map everything valid; message-based pools
        nothing; tiered pools only their hot-tier pages.
        """
        return np.full(len(offsets), self.byte_addressable, dtype=bool)


class CXLPool(MemoryPool):
    """CXL multi-headed device: byte-addressable, shared, read-only maps.

    Reads need no software intervention (valid PTEs pre-installed by
    mm-template), so :meth:`fetch_time` is only used if a platform
    explicitly chooses lazy mapping; the normal cost is the per-load
    latency delta over DRAM (§5.1).
    """

    byte_addressable = True
    name = "cxl"

    def fetch_time(self, npages: int, concurrency: int = 1) -> float:
        # Direct-mapped copy at near-memory speed; no page-fault round trip.
        per_page = self.latency.mem.minor_fault + PAGE_SIZE / (16e9)  # ~16 GB/s
        return npages * per_page

    def read_overhead(self, nloads: int) -> float:
        return self.latency.cxl_read_overhead(nloads)


class RDMAPool(MemoryPool):
    """RDMA-backed pool: lazy 4 KiB fetches with unstable tail latency.

    ``encrypted=True`` enables in-transit protection of the memory
    images (§8.1.2(3): "for RDMA, it is possible to encrypt the memory
    images during transfers") at an AES-GCM-class per-page cost.
    """

    byte_addressable = False
    name = "rdma"

    #: AES-GCM decrypt of one 4 KiB page at ~4 GB/s plus tag check.
    ENCRYPTION_COST_PER_PAGE = 1.1e-6

    def __init__(self, capacity_bytes: int, latency=None,
                 encrypted: bool = False):
        super().__init__(capacity_bytes, latency)
        self.encrypted = encrypted

    def fetch_time(self, npages: int, concurrency: int = 1) -> float:
        t = self.latency.rdma_fetch(npages, concurrency)
        if self.encrypted:
            t += npages * self.ENCRYPTION_COST_PER_PAGE
        return t

    def read_overhead(self, nloads: int) -> float:
        return 0.0  # once fetched, pages are local


class NASPool(MemoryPool):
    """Network-attached storage tier for cold pages (lowest layer, Fig 1)."""

    byte_addressable = False
    name = "nas"

    def fetch_time(self, npages: int, concurrency: int = 1) -> float:
        return npages * (self.latency.mem.nas_fetch_4k + self.latency.mem.minor_fault)

    def read_overhead(self, nloads: int) -> float:
        return 0.0


@dataclass
class _TierPlacement:
    pool: MemoryPool
    fraction: float


class TieredPool(MemoryPool):
    """Multi-layer pool: hot pages in an upper tier, cold pages lower.

    §5.1/§9.5: "a multi-layered architecture that strategically places hot
    pages in CXL and cold pages in RDMA integrates seamlessly".  The
    placement policy is a hot-fraction split; eviction/promotion policies
    are orthogonal to TrEnv and deliberately simple here.
    """

    name = "tiered"

    def __init__(self, hot: MemoryPool, cold: MemoryPool, hot_fraction: float = 0.5):
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction out of range: {hot_fraction}")
        super().__init__(hot.capacity_bytes + cold.capacity_bytes, hot.latency)
        self.hot = hot
        self.cold = cold
        self.hot_fraction = hot_fraction

    @property
    def byte_addressable(self) -> bool:  # type: ignore[override]
        return self.hot.byte_addressable

    def allocate_pages(self, npages: int) -> np.ndarray:
        n_hot = int(round(npages * self.hot_fraction))
        mask = np.zeros(npages, dtype=bool)
        mask[:n_hot] = True
        return self.allocate_pages_masked(mask)

    def allocate_pages_masked(self, hot_mask: np.ndarray) -> np.ndarray:
        """Allocate with explicit per-page placement (hot=True → upper
        tier).  Used by working-set-aware planners
        (:mod:`repro.mem.tiering`)."""
        hot_mask = np.asarray(hot_mask, dtype=bool)
        npages = len(hot_mask)
        n_hot = int(np.count_nonzero(hot_mask))
        hot = self.hot.allocate_pages(n_hot)
        cold = self.cold.allocate_pages(npages - n_hot)
        out = np.empty(npages, dtype=np.int64)
        out[hot_mask] = hot
        # Tag cold offsets with a high bit so valid_mask can split them.
        out[~hot_mask] = cold + _COLD_TAG
        self._stored_pages += npages
        return out

    def split_offsets(self, offsets: np.ndarray):
        cold_mask = offsets >= _COLD_TAG
        return offsets[~cold_mask], offsets[cold_mask] - _COLD_TAG

    def fetch_time(self, npages: int, concurrency: int = 1) -> float:
        # Demand fetches only ever hit the cold tier: hot-tier pages get
        # valid PTEs up front (see valid_mask) and never fault.
        return self.cold.fetch_time(npages, concurrency)

    def read_overhead(self, nloads: int) -> float:
        # Direct loads only ever hit the hot tier: cold pages were
        # materialised locally by their fault.
        return self.hot.read_overhead(nloads)

    def valid_mask(self, offsets: np.ndarray) -> np.ndarray:
        if not self.hot.byte_addressable:
            return np.zeros(len(offsets), dtype=bool)
        return offsets < _COLD_TAG

    @property
    def used_bytes(self) -> int:
        return self.hot.used_bytes + self.cold.used_bytes


_COLD_TAG = 1 << 48


class DedupStore:
    """Content-addressed store consolidating snapshot images in a pool.

    ``store_image(content_ids)`` returns a :class:`PoolBlock` whose offsets
    point at the single shared copy of every page; pages already present
    (from any function, any node) are not stored again (§5.1 step 1,
    Figure 12's duplicated region R2).
    """

    def __init__(self, pool: MemoryPool):
        self.pool = pool
        self._by_content: Dict[int, int] = {}
        self.total_pages_presented = 0
        self.unique_pages_stored = 0

    def store_image(self, content_ids: np.ndarray,
                    hot_mask: Optional[np.ndarray] = None) -> PoolBlock:
        """Consolidate an image; optionally with per-page tier placement.

        ``hot_mask`` (tiered pools only) marks which pages belong in the
        upper tier; the first function to store a page decides its
        placement.
        """
        content_ids = np.asarray(content_ids, dtype=np.int64)
        self.total_pages_presented += len(content_ids)
        unique = np.unique(content_ids)
        missing = [int(cid) for cid in unique if int(cid) not in self._by_content]
        if missing:
            if hot_mask is not None:
                if not hasattr(self.pool, "allocate_pages_masked"):
                    raise TypeError(
                        f"{self.pool.name} pool does not support placement")
                hot_by_cid = {}
                for cid, hot in zip(content_ids, hot_mask):
                    hot_by_cid.setdefault(int(cid), bool(hot))
                mask = np.array([hot_by_cid[cid] for cid in missing],
                                dtype=bool)
                fresh = self.pool.allocate_pages_masked(mask)
            else:
                fresh = self.pool.allocate_pages(len(missing))
            for cid, off in zip(missing, fresh):
                self._by_content[cid] = int(off)
            self.unique_pages_stored += len(missing)
        # Vectorised lookup: map sorted unique cids to their offsets, then
        # gather through searchsorted.
        unique_offsets = np.array(
            [self._by_content[int(cid)] for cid in unique], dtype=np.int64)
        offsets = unique_offsets[np.searchsorted(unique, content_ids)]
        return PoolBlock(pool=self.pool, offsets=offsets)

    @property
    def dedup_ratio(self) -> float:
        """Fraction of presented pages that were deduplicated away."""
        if self.total_pages_presented == 0:
            return 0.0
        return 1.0 - self.unique_pages_stored / self.total_pages_presented
