"""Statistical page-access traces.

The paper characterises each function by how much of its snapshot memory
an invocation reads vs writes (Figure 10: 24%–90% of touched pages are
read-only).  We model one invocation as:

* a set of distinct pages *read*,
* a subset of distinct pages *written* (always also counted as touched),
* a count of cache-missing loads issued against read pages (prices CXL's
  per-load latency, §5.1/§9.5).

Traces are drawn from a :class:`repro.sim.rng.SeededRNG`, so an identical
(workload seed, function, invocation index) always touches the same pages
— the determinism the paper engineers via trace replay (§9.6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import SeededRNG


@dataclass
class AccessTrace:
    """Pages one invocation touches, as flat address-space indices."""

    read_pages: np.ndarray
    write_pages: np.ndarray
    read_loads: int
    writable_start: int = 0

    @property
    def touched_pages(self) -> int:
        return len(np.union1d(self.read_pages, self.write_pages))

    @property
    def distinct_reads(self) -> int:
        return len(self.read_pages)

    @property
    def distinct_writes(self) -> int:
        return len(self.write_pages)

    @property
    def read_only_ratio(self) -> float:
        """Fraction of touched pages that are never written (Figure 10)."""
        touched = self.touched_pages
        if touched == 0:
            return 0.0
        both = len(np.intersect1d(self.write_pages, self.read_pages,
                                  assume_unique=True))
        only_read = len(self.read_pages) - both
        return only_read / touched

    @staticmethod
    def generate(rng: SeededRNG, total_pages: int, touch_fraction: float,
                 write_fraction: float, loads_per_read_page: float = 20.0,
                 writable_start: int = 0) -> "AccessTrace":
        """Draw a trace.

        ``touch_fraction`` — share of the image touched at least once.
        ``write_fraction`` — share of *touched* pages that are written
        (1 - read_only_ratio in the paper's terms).
        ``writable_start`` — first writable flat page index (pages below
        it are the read-only runtime/library prefix and are never
        written).
        """
        if not 0.0 <= touch_fraction <= 1.0:
            raise ValueError(f"touch_fraction out of range: {touch_fraction}")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError(f"write_fraction out of range: {write_fraction}")
        n_touched = int(round(total_pages * touch_fraction))
        touched = rng.sample_pages(total_pages, n_touched)
        n_written = int(round(len(touched) * write_fraction))
        writable = touched[touched >= writable_start]
        written = writable[:min(n_written, len(writable))].copy()
        touched.sort()
        written.sort()
        loads = int(round(len(touched) * loads_per_read_page))
        return AccessTrace(read_pages=touched, write_pages=written,
                           read_loads=loads, writable_start=writable_start)

    def jittered(self, rng: SeededRNG, total_pages: int,
                 fraction: float = 0.08) -> "AccessTrace":
        """A per-invocation variant of this trace.

        Real invocations of the same function touch *mostly* the same
        pages (which is why REAP's recorded working set achieves ~90%+
        coverage); ``fraction`` of the reads are swapped for fresh pages
        to model input-dependent variation.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        n_swap = int(round(len(self.read_pages) * fraction))
        if n_swap == 0:
            return AccessTrace(self.read_pages.copy(),
                               self.write_pages.copy(), self.read_loads)
        keep_idx = rng.sample_pages(len(self.read_pages),
                                    len(self.read_pages) - n_swap)
        kept = self.read_pages[np.sort(keep_idx)]
        fresh = rng.sample_pages(total_pages, n_swap)
        reads = np.unique(np.concatenate([kept, fresh]))
        # Writes: keep those still read, top up from the new reads to
        # preserve the write fraction (never below writable_start).
        writes = np.intersect1d(self.write_pages, reads, assume_unique=False)
        deficit = len(self.write_pages) - len(writes)
        if deficit > 0:
            candidates = np.setdiff1d(reads, writes, assume_unique=True)
            candidates = candidates[candidates >= self.writable_start]
            if len(candidates):
                extra = candidates[rng.sample_pages(
                    len(candidates), min(deficit, len(candidates)))]
                writes = np.unique(np.concatenate([writes, extra]))
        return AccessTrace(read_pages=reads, write_pages=np.sort(writes),
                           read_loads=self.read_loads,
                           writable_start=self.writable_start)

    def subset(self, fraction: float, rng: SeededRNG) -> "AccessTrace":
        """A partial trace (e.g. the recorded working set REAP prefetches)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        n_reads = int(round(len(self.read_pages) * fraction))
        n_writes = int(round(len(self.write_pages) * fraction))
        reads = self.read_pages[rng.sample_pages(len(self.read_pages), n_reads)] \
            if n_reads else np.empty(0, dtype=np.int64)
        writes = self.write_pages[rng.sample_pages(len(self.write_pages), n_writes)] \
            if n_writes else np.empty(0, dtype=np.int64)
        reads.sort()
        writes.sort()
        return AccessTrace(read_pages=reads, write_pages=writes,
                           read_loads=int(self.read_loads * fraction),
                           writable_start=self.writable_start)
