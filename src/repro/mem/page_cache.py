"""Page-cache model for guest/host duplication analysis.

§2.4: with a para-virtualised block device (Firecracker/E2B), a file read
inside the guest is cached **twice** — once in the guest kernel's page
cache and once in the host's, because the host emulates the block IO
through its own filesystem.  In the "Blog Summary" agent this costs
~500 MB on each side.

The cache is keyed by ``(file_id, block_index)`` so identical files cached
through *different* device files still duplicate (the problem §6.3 solves
with a shared read-only virtio-pmem base), while repeat reads of the same
file through the same cache are free.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.analysis import hooks
from repro.mem.layout import PAGE_SIZE, pages_for_bytes
from repro.obs import hooks as obs_hooks


class PageCache:
    """One kernel page cache (a guest's, or the host's)."""

    def __init__(self, name: str = "",
                 on_delta: Optional[Callable[[int], None]] = None):
        self.name = name
        # Per-file block sets: charge/evict are C-speed set operations on
        # the one file touched instead of Python loops over every cached
        # (file, block) pair in the node.
        self._files: Dict[int, Set[int]] = {}
        self.on_delta = on_delta
        self.hits = 0
        self.misses = 0

    def charge_file(self, file_id: int, nbytes: int, offset: int = 0) -> int:
        """Cache a file range; returns pages newly inserted (misses)."""
        first = offset // PAGE_SIZE
        count = pages_for_bytes(nbytes)
        wanted = range(first, first + count)
        cached = self._files.get(file_id)
        if cached is None:
            cached = self._files[file_id] = set()
        # Order-free insert: size delta counts the misses without ever
        # iterating the set, so no ordering can leak into results.
        before = len(cached)
        cached.update(wanted)
        fresh = len(cached) - before
        self.hits += count - fresh
        self.misses += fresh
        if fresh and self.on_delta is not None:
            self.on_delta(fresh)
        if fresh and hooks.active is not None:
            hooks.active.on_page_cache_delta(self, fresh)
        if fresh and obs_hooks.active is not None:
            obs_hooks.active.on_page_cache_delta(self, fresh)
        return fresh

    def evict_file(self, file_id: int) -> int:
        """Drop every cached block of ``file_id``; returns pages freed."""
        victims = self._files.pop(file_id, None)
        if not victims:
            return 0
        if self.on_delta is not None:
            self.on_delta(-len(victims))
        if hooks.active is not None:
            hooks.active.on_page_cache_delta(self, -len(victims))
        if obs_hooks.active is not None:
            obs_hooks.active.on_page_cache_delta(self, -len(victims))
        return len(victims)

    def drop_all(self) -> int:
        """``echo 3 > drop_caches``; returns pages freed."""
        freed = self.cached_pages
        self._files.clear()
        if freed and self.on_delta is not None:
            self.on_delta(-freed)
        if freed and hooks.active is not None:
            hooks.active.on_page_cache_delta(self, -freed)
        if freed and obs_hooks.active is not None:
            obs_hooks.active.on_page_cache_delta(self, -freed)
        return freed

    @property
    def cached_pages(self) -> int:
        return sum(len(blocks) for blocks in self._files.values())

    @property
    def cached_bytes(self) -> int:
        return self.cached_pages * PAGE_SIZE


class FileIdRegistry:
    """Stable content-based file identities.

    Files are identified by a content key (e.g. ``("base-image",
    "python3.11")``); two VMs reading *the same content through the same
    host-visible file* share host cache entries, whereas per-VM copies get
    distinct ids and duplicate.
    """

    def __init__(self):
        self._ids: Dict[Tuple, int] = {}
        self._next = 1

    def file_id(self, *key) -> int:
        got = self._ids.get(key)
        if got is None:
            got = self._next
            self._next += 1
            self._ids[key] = got
        return got
