"""Hot/cold placement planning for tiered pools.

§5.1/§9.5: "a multi-layered architecture that strategically places hot
pages in CXL and cold pages in RDMA integrates seamlessly with our
approach" — the placement policy itself is orthogonal to TrEnv, so the
paper leaves it open.  We implement the natural one: pages in the
function's recorded working set (the same profile REAP uses) go to the
byte-addressable hot tier; never-touched snapshot pages go cold.  A
frequency tracker supports re-planning as access patterns drift.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.mem.trace import AccessTrace
from repro.sim.rng import SeededRNG
from repro.workloads.functions import FunctionProfile


def working_set_hot_mask(profile: FunctionProfile, rng: SeededRNG,
                         budget_fraction: Optional[float] = None
                         ) -> np.ndarray:
    """Hot mask over the function's image pages from its recorded run.

    ``budget_fraction`` optionally caps the hot share of the image (a
    constrained CXL budget): the touched pages are ranked and truncated.
    """
    base = profile.base_trace(rng)
    mask = np.zeros(profile.image_pages, dtype=bool)
    mask[base.read_pages] = True
    if budget_fraction is not None:
        if not 0.0 <= budget_fraction <= 1.0:
            raise ValueError(f"budget out of range: {budget_fraction}")
        budget = int(profile.image_pages * budget_fraction)
        hot_idx = np.nonzero(mask)[0]
        if len(hot_idx) > budget:
            mask[:] = False
            mask[hot_idx[:budget]] = True
    return mask


class AccessFrequencyTracker:
    """Counts page touches across invocations to support re-planning.

    The kernel analogue is page-access scanning (e.g. DAMON); here the
    platform feeds observed traces in, and :meth:`hot_mask` ranks pages
    by touch count.
    """

    def __init__(self, npages: int):
        self.npages = npages
        self.counts = np.zeros(npages, dtype=np.int64)
        self.invocations = 0

    def observe(self, trace: AccessTrace) -> None:
        if len(trace.read_pages) and trace.read_pages.max() >= self.npages:
            raise IndexError("trace page beyond tracked image")
        self.counts[trace.read_pages] += 1
        self.invocations += 1

    def hot_mask(self, fraction: float) -> np.ndarray:
        """The hottest ``fraction`` of the image by touch count."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        budget = int(round(self.npages * fraction))
        mask = np.zeros(self.npages, dtype=bool)
        if budget == 0 or self.invocations == 0:
            return mask
        order = np.argsort(-self.counts, kind="stable")
        chosen = order[:budget]
        mask[chosen[self.counts[chosen] > 0]] = True
        return mask

    def touch_rate(self) -> np.ndarray:
        """Per-page probability of being touched by an invocation."""
        if self.invocations == 0:
            return np.zeros(self.npages)
        return self.counts / self.invocations
