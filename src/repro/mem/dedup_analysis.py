"""Cross-instance state-duplication analysis.

§1 motivates TrEnv with two memory inefficiencies: *memory stranding*
(up to 50% of memory underutilised) and *state duplication* (Medes
reports an 80% occurrence across concurrent sandboxes).  This module
measures both on live simulated nodes:

* :func:`duplication_report` — across a set of address spaces, what
  fraction of locally-resident pages carry content another instance also
  holds (the baselines' waste; TrEnv's shared pool pages are excluded by
  construction because they are not locally resident).
* :func:`stranding_report` — on a node, how much of the committed DRAM
  is idle warm-instance state rather than actively-used memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.mem.address_space import PTE_LOCAL, AddressSpace
from repro.mem.layout import PAGE_SIZE


@dataclass(frozen=True)
class DuplicationReport:
    """What a Medes-style content scan would find."""

    total_resident_pages: int
    unique_content_pages: int
    duplicated_pages: int          # resident pages whose content exists
                                   # in >= 2 resident copies
    instances: int

    @property
    def duplication_ratio(self) -> float:
        """Fraction of resident pages that are redundant copies."""
        if self.total_resident_pages == 0:
            return 0.0
        return (self.total_resident_pages
                - self.unique_content_pages) / self.total_resident_pages

    @property
    def duplication_occurrence(self) -> float:
        """Fraction of resident pages involved in any duplication (the
        'occurrence' statistic Medes reports)."""
        if self.total_resident_pages == 0:
            return 0.0
        return self.duplicated_pages / self.total_resident_pages


def duplication_report(spaces: Sequence[AddressSpace]) -> DuplicationReport:
    """Scan resident pages of all instances for duplicate content."""
    counts: Dict[int, int] = {}
    total = 0
    for space in spaces:
        for vma in space.vmas:
            resident = vma.state == PTE_LOCAL
            n = int(np.count_nonzero(resident))
            if n == 0:
                continue
            total += n
            for cid in vma.content[resident]:
                cid = int(cid)
                counts[cid] = counts.get(cid, 0) + 1
    unique = len(counts)
    duplicated = sum(c for c in counts.values() if c >= 2)
    return DuplicationReport(total_resident_pages=total,
                             unique_content_pages=unique,
                             duplicated_pages=duplicated,
                             instances=len(spaces))


@dataclass(frozen=True)
class StrandingReport:
    """Idle (warm) vs active memory on a node."""

    active_bytes: int
    idle_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.active_bytes + self.idle_bytes

    @property
    def stranding_ratio(self) -> float:
        """Fraction of committed function memory that is idle."""
        if self.total_bytes == 0:
            return 0.0
        return self.idle_bytes / self.total_bytes


def stranding_report(platform) -> StrandingReport:
    """Split a platform's resident function memory into active vs idle.

    Idle = memory held by warm-pool instances waiting for a request —
    the resource a keep-alive strategy strands (§1/§3.2).
    """
    idle = sum(inst.space.local_bytes
               for inst in platform.warm.idle_instances())
    total = platform.node.memory.usage.get("function-anon", 0)
    active = max(0, total - idle)
    return StrandingReport(active_bytes=active, idle_bytes=idle)
