"""Address spaces with per-page PTE states and copy-on-write.

This is the reproduction's analogue of ``mm_struct``: a list of VMAs, each
holding vectorised per-page state.  The four states model exactly the
cases TrEnv's kernel patch distinguishes (§5.1):

* ``PTE_NONE`` — untouched demand-zero page (reads hit the shared zero
  page and cost a minor fault but no memory; first write allocates).
* ``PTE_LOCAL`` — private page in node-local DRAM.
* ``PTE_REMOTE_RO`` — valid, write-protected PTE mapping a shared pool
  page (the CXL path: reads need no fault at all; writes CoW to local).
* ``PTE_REMOTE_INVALID`` — invalid PTE carrying a remote address (the
  RDMA/NAS path: first touch takes a major fault and a 4 KiB fetch which
  materialises a private local copy).

State arrays are numpy vectors so multi-hundred-MB images (IR is 855 MB —
219k pages) stay cheap to manipulate.  Template attach shares those
vectors copy-on-write (:mod:`repro.mem.cow`): a clone carries chunked
CoW views of the template arrays and materialises only the chunks an
invocation actually writes, so attach host cost is O(metadata) exactly
as the paper claims for ``mmt_attach``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import optflags
from repro.analysis import hooks
from repro.mem.cow import CowPageArray, TemplateBase, count_equal
from repro.mem.layout import PAGE_SIZE
from repro.mem.pools import MemoryPool, PoolBlock

PTE_NONE = 0
PTE_LOCAL = 1
PTE_REMOTE_RO = 2
PTE_REMOTE_INVALID = 3

PROT_READ = 0x1
PROT_WRITE = 0x2
PROT_EXEC = 0x4

MAP_PRIVATE = 0x02
MAP_SHARED = 0x01


class VMA:
    """A virtual memory area: contiguous pages with uniform protection."""

    __slots__ = ("name", "start", "prot", "flags", "state", "offsets",
                 "content", "pool", "_bases")

    def __init__(self, name: str, start: int, npages: int, prot: int,
                 flags: int = MAP_PRIVATE):
        self.name = name
        self.start = start
        self.prot = prot
        self.flags = flags
        self.state = np.zeros(npages, dtype=np.uint8)
        # Remote page offset per page (valid where state is REMOTE_*).
        self.offsets = np.full(npages, -1, dtype=np.int64)
        # Page content ids (for snapshotting/dedup); -1 = undefined.
        self.content = np.full(npages, -1, dtype=np.int64)
        self.pool: Optional[MemoryPool] = None
        # Frozen template bases, built lazily on the first CoW clone.
        self._bases: Optional[Tuple[TemplateBase, ...]] = None

    @property
    def npages(self) -> int:
        return len(self.state)

    @property
    def end(self) -> int:
        return self.start + self.npages * PAGE_SIZE

    @property
    def writable(self) -> bool:
        return bool(self.prot & PROT_WRITE)

    def grow(self, npages: int) -> None:
        """Extend the VMA (heap ``brk``); new pages are demand-zero local.

        §5.1 / Figure 9(b): after restoring a heap onto CXL, subsequent
        growth defaults to local allocation, never spilling into adjacent
        shared CXL ranges.
        """
        if npages <= 0:
            return
        self.state = np.concatenate(
            [np.asarray(self.state), np.zeros(npages, dtype=np.uint8)])
        self.offsets = np.concatenate(
            [np.asarray(self.offsets), np.full(npages, -1, dtype=np.int64)])
        self.content = np.concatenate(
            [np.asarray(self.content), np.full(npages, -1, dtype=np.int64)])
        self._bases = None

    def clone_metadata(self) -> "VMA":
        """Duplicate PTE metadata only (what ``mmt_attach`` copies).

        With :data:`repro.optflags.cow_attach` on, the clone shares the
        source arrays copy-on-write: the source arrays are frozen (writes
        to them now fail fast) and the clone materialises private chunks
        only where it is written.  Host cost is O(1) per VMA instead of
        O(pages); simulated attach cost is unchanged either way.
        """
        out = VMA.__new__(VMA)   # skip __init__: no throwaway arrays
        out.name = self.name
        out.start = self.start
        out.prot = self.prot
        out.flags = self.flags
        out.pool = self.pool
        out._bases = None
        if optflags.cow_attach and type(self.state) is np.ndarray:
            bases = self._bases
            if bases is None:
                bases = self._bases = (TemplateBase(self.state),
                                       TemplateBase(self.offsets),
                                       TemplateBase(self.content))
            out.state = CowPageArray(bases[0])
            out.offsets = CowPageArray(bases[1])
            out.content = CowPageArray(bases[2])
        else:
            out.state = _dense_copy(self.state)
            out.offsets = _dense_copy(self.offsets)
            out.content = _dense_copy(self.content)
        return out


def _dense_copy(arr) -> np.ndarray:
    if isinstance(arr, CowPageArray):
        return arr.to_ndarray()
    return arr.copy()


@dataclass
class AccessOutcome:
    """Counts produced by driving an access trace through an address space."""

    minor_faults: int = 0
    major_faults: int = 0          # remote fetches (RDMA/NAS/tmpfs)
    cow_faults: int = 0
    pages_fetched: int = 0         # pages pulled from a non-addressable pool
    local_pages_allocated: int = 0
    remote_loads: int = 0          # cache-missing loads served from CXL
    fetch_pools: Counter = field(default_factory=Counter)

    def merge(self, other: "AccessOutcome") -> None:
        self.minor_faults += other.minor_faults
        self.major_faults += other.major_faults
        self.cow_faults += other.cow_faults
        self.pages_fetched += other.pages_fetched
        self.local_pages_allocated += other.local_pages_allocated
        self.remote_loads += other.remote_loads
        self.fetch_pools.update(other.fetch_pools)


class AddressSpace:
    """A process address space: ordered VMAs + fault handling.

    ``on_local_delta`` is invoked with the change in locally-resident page
    count whenever pages are allocated or freed, so a node-level accountant
    can track memory usage event-by-event.
    """

    def __init__(self, name: str = "",
                 on_local_delta: Optional[Callable[[int], None]] = None):
        self.name = name
        self.vmas: List[VMA] = []
        self.local_pages = 0
        self.on_local_delta = on_local_delta
        self._cum: Optional[np.ndarray] = None
        self.destroyed = False

    # -- layout management -------------------------------------------------------

    def add_vma(self, name: str, npages: int, prot: int = PROT_READ | PROT_WRITE,
                flags: int = MAP_PRIVATE, start: Optional[int] = None) -> VMA:
        if npages <= 0:
            raise ValueError(f"VMA must have at least one page: {npages}")
        if start is None:
            start = self.vmas[-1].end + PAGE_SIZE if self.vmas else 0x400000
        vma = VMA(name, start, npages, prot, flags)
        self.vmas.append(vma)
        self._cum = None
        return vma

    def adopt_vma(self, vma: VMA) -> VMA:
        """Install an externally built VMA (e.g. cloned template metadata).

        Charges any locally-resident pages the clone carries (normally
        none: templates hold only remote-backed or empty PTEs).
        """
        self.vmas.append(vma)
        self._cum = None
        self._charge(count_equal(vma.state, PTE_LOCAL))
        if hooks.active is not None:
            hooks.active.on_pte_bound(vma)
        return vma

    def find_vma(self, name: str) -> VMA:
        for vma in self.vmas:
            if vma.name == name:
                return vma
        raise KeyError(f"no VMA named {name!r} in {self.name}")

    @property
    def total_pages(self) -> int:
        return sum(v.npages for v in self.vmas)

    @property
    def local_bytes(self) -> int:
        return self.local_pages * PAGE_SIZE

    def grow_vma(self, name: str, npages: int) -> None:
        self.find_vma(name).grow(npages)
        self._cum = None

    # -- population ---------------------------------------------------------------

    def populate_local(self, vma: VMA, content_base: int = 0) -> None:
        """Materialise every page of ``vma`` as private local memory."""
        fresh = vma.npages - count_equal(vma.state, PTE_LOCAL)
        vma.state[:] = PTE_LOCAL
        if count_equal(vma.content, -1):
            missing = np.asarray(vma.content == -1)
            idx = np.nonzero(missing)[0]
            vma.content[idx] = content_base + idx
        self._charge(fresh)
        if hooks.active is not None:
            hooks.active.on_pte_bound(vma)

    def populate_all_local(self, content_base: int = 0) -> None:
        """Materialise every VMA as local (the eager CRIU restore path).

        Equivalent to :meth:`populate_local` over all VMAs, but charges
        the accountant once — content-id arrays shared CoW with a
        snapshot image stay shared (``count_equal`` answers the missing-
        content check from the cached base without densifying).
        """
        fresh = 0
        for vma in self.vmas:
            fresh += vma.npages - count_equal(vma.state, PTE_LOCAL)
            vma.state[:] = PTE_LOCAL
            if count_equal(vma.content, -1):
                missing = np.asarray(vma.content == -1)
                idx = np.nonzero(missing)[0]
                vma.content[idx] = content_base + idx
            if hooks.active is not None:
                hooks.active.on_pte_bound(vma)
        self._charge(fresh)

    def bind_remote(self, vma: VMA, block: PoolBlock, valid) -> None:
        """Point ``vma`` pages at a pool block.

        ``valid`` is a bool or a per-page boolean mask: valid pages get
        write-protected direct-map PTEs (CXL, ``mmt_setup_pt(..., CXL)``);
        the rest get invalid PTEs holding the remote address (RDMA lazy
        path / a tiered pool's cold pages).
        """
        if block.npages != vma.npages:
            raise ValueError(
                f"block/vma size mismatch: {block.npages} != {vma.npages}")
        freed = count_equal(vma.state, PTE_LOCAL)
        if isinstance(valid, bool):
            vma.state[:] = PTE_REMOTE_RO if valid else PTE_REMOTE_INVALID
        else:
            mask = np.asarray(valid, dtype=bool)
            if len(mask) != vma.npages:
                raise ValueError("valid mask length mismatch")
            vma.state[:] = np.where(mask, PTE_REMOTE_RO,
                                    PTE_REMOTE_INVALID).astype(np.uint8)
        vma.offsets[:] = block.offsets
        vma.pool = block.pool
        self._charge(-freed)
        if hooks.active is not None:
            hooks.active.on_pte_bound(vma)

    # -- faults --------------------------------------------------------------------

    def access(self, read_pages: np.ndarray, write_pages: np.ndarray,
               read_loads: int = 0) -> AccessOutcome:
        """Drive one invocation's page touches through the fault handler.

        ``read_pages``/``write_pages`` are flat page indices across the
        address space (see :meth:`flatten`).  ``read_loads`` is the number
        of cache-missing *loads* issued against pages that end up resident
        on a byte-addressable pool — it prices CXL's extra latency.

        One pass per trace: indices arrive sorted (traces are), so each
        VMA's touches form one contiguous run found with a single
        ``searchsorted`` against the cumulative layout — no per-VMA masks,
        no per-VMA outcome objects.
        """
        out = AccessOutcome()
        for vma, idx in self._iter_vma_runs(write_pages):
            self._fault_writes(vma, idx, out)
        remote_ro = 0
        n_reads = len(read_pages) if read_pages is not None else 0
        for vma, idx in self._iter_vma_runs(read_pages):
            remote_ro += self._fault_reads(vma, idx, out)
        if read_loads and n_reads:
            # Apportion load count to reads still resident on a remote
            # byte-addressable pool.  Reads never demote REMOTE_RO pages,
            # so counting during the pass equals counting after it.
            out.remote_loads += int(round(read_loads * remote_ro / n_reads))
        return out

    def _fault_reads(self, vma: VMA, idx: np.ndarray,
                     out: AccessOutcome) -> int:
        states = vma.state[idx]
        counts = np.bincount(states, minlength=4)

        # Demand-zero read: shared zero page, minor fault, no allocation.
        out.minor_faults += int(counts[PTE_NONE])

        n_fetch = int(counts[PTE_REMOTE_INVALID])
        if n_fetch:
            # Major fault per page: fetch from the pool into a private
            # local copy (TrEnv's RDMA backend, §5.1).
            out.major_faults += n_fetch
            out.pages_fetched += n_fetch
            out.fetch_pools[vma.pool.name if vma.pool else "unknown"] += n_fetch
            vma.state[idx[states == PTE_REMOTE_INVALID]] = PTE_LOCAL
            out.local_pages_allocated += n_fetch
            self._charge(n_fetch)
        # PTE_REMOTE_RO reads: zero software cost (valid PTE, direct load).
        # PTE_LOCAL reads: free.
        if vma.pool is not None and vma.pool.byte_addressable:
            return int(counts[PTE_REMOTE_RO])
        return 0

    def _fault_writes(self, vma: VMA, idx: np.ndarray,
                      out: AccessOutcome) -> None:
        if not vma.writable:
            raise PermissionError(
                f"write to read-only VMA {vma.name!r} in {self.name}")
        states = vma.state[idx]
        counts = np.bincount(states, minlength=4)

        n_zero = int(counts[PTE_NONE])
        n_cow = int(counts[PTE_REMOTE_RO])
        n_fetch = int(counts[PTE_REMOTE_INVALID])

        out.minor_faults += n_zero
        # Write-protect fault: copy the shared pool page to local DRAM
        # (CoW preserves the single shared copy, §5.1); invalid PTEs also
        # pay the fetch before the private copy materialises.
        out.cow_faults += n_cow + n_fetch
        if n_fetch:
            out.major_faults += n_fetch
            out.pages_fetched += n_fetch
            out.fetch_pools[vma.pool.name if vma.pool else "unknown"] += n_fetch

        n_alloc = n_zero + n_cow + n_fetch
        if n_alloc:
            # Every non-LOCAL state ends LOCAL: one scatter, one charge.
            vma.state[idx[states != PTE_LOCAL]] = PTE_LOCAL
            out.local_pages_allocated += n_alloc
            self._charge(n_alloc)
        if n_cow and hooks.active is not None:
            hooks.active.on_pte_cow(vma, n_cow)

    # -- snapshotting helpers ---------------------------------------------------------

    def page_state_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {PTE_NONE: 0, PTE_LOCAL: 0,
                                  PTE_REMOTE_RO: 0, PTE_REMOTE_INVALID: 0}
        for vma in self.vmas:
            for value in counts:
                counts[value] += count_equal(vma.state, value)
        return counts

    def content_image(self) -> np.ndarray:
        """Concatenated content ids of every page (snapshot order)."""
        if not self.vmas:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.asarray(v.content) for v in self.vmas])

    def destroy(self) -> int:
        """Release all local pages; returns how many were freed."""
        if self.destroyed:
            return 0
        freed = self.local_pages
        self._charge(-freed)
        self.destroyed = True
        return freed

    # -- flat indexing -----------------------------------------------------------------

    def flatten(self) -> np.ndarray:
        """Cumulative page offsets per VMA for flat-index addressing."""
        if self._cum is None or len(self._cum) != len(self.vmas) + 1:
            sizes = np.array([v.npages for v in self.vmas], dtype=np.int64)
            self._cum = np.concatenate([[0], np.cumsum(sizes)])
        return self._cum

    def _iter_vma_runs(self, flat_pages
                       ) -> Iterator[Tuple[VMA, np.ndarray]]:
        """Yield ``(vma, local_indices)`` runs of sorted flat indices."""
        flat = np.asarray(flat_pages, dtype=np.int64)
        n = len(flat)
        if n == 0:
            return
        if n > 1 and (np.diff(flat) < 0).any():
            flat = np.sort(flat, kind="stable")
        cum = self.flatten()
        if flat[0] < 0 or flat[-1] >= cum[-1]:
            raise IndexError("page index out of range for address space")
        bounds = np.searchsorted(flat, cum)
        for vma_idx in range(len(self.vmas)):
            lo, hi = int(bounds[vma_idx]), int(bounds[vma_idx + 1])
            if lo == hi:
                continue
            yield self.vmas[vma_idx], flat[lo:hi] - cum[vma_idx]

    def _charge(self, delta_pages: int) -> None:
        if delta_pages == 0:
            return
        self.local_pages += delta_pages
        if self.local_pages < 0:
            raise AssertionError("negative local page count")
        if self.on_local_delta is not None:
            self.on_local_delta(delta_pages)
        if hooks.active is not None:
            hooks.active.on_local_charge(self, delta_pages)
