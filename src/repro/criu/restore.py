"""Timed CRIU checkpoint and restore operations.

``restore_full`` is the classic path Figure 8 describes: recreate every
VMA with ``mmap`` (one syscall per VMA), copy the whole memory image from
the snapshot store (the dominant cost — Figure 4's "Mem" bar), then
recover threads, fds and other process state.  TrEnv replaces only the
memory part (steps handled by :mod:`repro.core.mm_template`); thread/fd
recovery is shared ("Handled by CRIU with strong generality", Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.criu.images import SnapshotImage
from repro.kernel.process import Process, ProcessTable
from repro.obs import hooks as obs_hooks
from repro.sim.engine import Delay, Simulator
from repro.sim.latency import LatencyModel


@dataclass
class RestoreStats:
    """Aggregate counters across an engine's lifetime."""

    snapshots: int = 0
    full_restores: int = 0
    bytes_copied: int = 0
    mmap_calls: int = 0
    threads_restored: int = 0


class CRIUEngine:
    """Checkpoint/restore with calibrated costs."""

    def __init__(self, sim: Simulator, procs: ProcessTable,
                 latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.procs = procs
        self.latency = latency or LatencyModel()
        self.stats = RestoreStats()

    # -- preprocessing (off the critical path) ----------------------------------

    def checkpoint(self, process: Process, image: SnapshotImage) -> Generator:
        """Timed: dump a bootstrapped process into a snapshot.

        The image content is synthesised by the caller (from the function
        profile); this op only accounts the dump time: walk + write all
        pages at memcpy speed plus per-thread/fd metadata.
        """
        lat = self.latency
        dump_time = lat.memory_copy(image.nbytes)
        misc = (lat.proc.criu_misc_base
                + lat.proc.criu_misc_per_thread * image.n_threads
                + lat.proc.criu_misc_per_fd * image.n_fds)
        yield Delay(dump_time + misc)
        self.stats.snapshots += 1

    # -- online restoration --------------------------------------------------------

    def restore_full(self, image: SnapshotImage, name: str = "",
                     on_local_delta=None, ctx=None) -> Generator:
        """Timed: classic restore — mmap storm + full memory copy.

        Returns the restored :class:`Process` with every image page
        resident in local DRAM.  ``ctx`` is the observing invocation's
        TraceContext (or None).
        """
        t0 = self.sim.now
        lat = self.latency
        space = image.build_address_space(name or image.function,
                                          on_local_delta=on_local_delta)
        # Step 1: recreate the virtual memory layout (one mmap per VMA).
        yield Delay(lat.mem.mmap_syscall * len(image.vmas))
        self.stats.mmap_calls += len(image.vmas)
        # Step 2: copy the memory image from the snapshot store.  The
        # *simulated* cost is the full-image copy either way; host-side
        # the content ids stay shared CoW with the image
        # (build_address_space) and only PTE state is materialised.
        yield Delay(lat.memory_copy(image.nbytes))
        self.stats.bytes_copied += image.nbytes
        space.populate_all_local()
        # Step 3: restore the process shell, threads, fds, sockets.
        proc = yield self.procs.spawn(name or image.function,
                                      address_space=space)
        yield self.restore_process_state(proc, image, ctx=ctx)
        self.stats.full_restores += 1
        act = obs_hooks.active
        if act is not None:
            act.on_criu_restore(image, t0, self.sim.now, ctx)
        return proc

    def restore_process_state(self, proc: Process, image: SnapshotImage,
                              ctx=None) -> Generator:
        """Timed: the non-memory state CRIU recovers (Table 1 "Other")."""
        t0 = self.sim.now
        lat = self.latency
        misc = (lat.proc.criu_misc_base
                + lat.proc.criu_misc_per_thread * (image.n_threads - 1)
                + lat.proc.criu_misc_per_fd * image.n_fds)
        yield Delay(misc)
        yield self.procs.clone_threads(proc, image.n_threads - 1)
        for i in range(image.n_fds):
            proc.open_fd(f"restored-fd-{i}")
        self.stats.threads_restored += image.n_threads - 1
        act = obs_hooks.active
        if act is not None:
            act.on_proc_state_restore(image, t0, self.sim.now, ctx)
