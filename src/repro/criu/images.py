"""Snapshot images: the on-disk (or in-pool) form of a checkpoint.

A snapshot records the full post-bootstrap state of a function's process:
the virtual memory layout (VMA descriptors), per-page content ids, thread
count and file descriptors.  Layouts follow the shape of a real language
runtime: interpreter text + shared libraries first (dedupable across
functions of the same language), then function code/data, heap, and one
stack VMA per thread group chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro import optflags
from repro.mem.address_space import (MAP_PRIVATE, PROT_EXEC, PROT_READ,
                                     PROT_WRITE, AddressSpace)
from repro.mem.cow import CowPageArray, TemplateBase
from repro.mem.layout import PAGE_SIZE
from repro.workloads.functions import FunctionProfile


@dataclass(frozen=True)
class VMADescriptor:
    """Metadata of one VMA inside a snapshot."""

    name: str
    npages: int
    prot: int
    flags: int = MAP_PRIVATE

    @property
    def writable(self) -> bool:
        return bool(self.prot & PROT_WRITE)


class SnapshotImage:
    """A checkpoint of one function's bootstrapped process."""

    def __init__(self, function: str, vmas: List[VMADescriptor],
                 content_ids: np.ndarray, n_threads: int, n_fds: int):
        total = sum(v.npages for v in vmas)
        if total != len(content_ids):
            raise ValueError(
                f"content ids ({len(content_ids)}) do not cover VMA pages "
                f"({total})")
        self.function = function
        self.vmas = list(vmas)
        self.content_ids = np.asarray(content_ids, dtype=np.int64)
        self.n_threads = n_threads
        self.n_fds = n_fds
        # Frozen per-VMA content-id bases, built lazily on first restore:
        # every address space built from this image shares them CoW.
        self._content_bases = None

    @property
    def total_pages(self) -> int:
        return len(self.content_ids)

    @property
    def nbytes(self) -> int:
        return self.total_pages * PAGE_SIZE

    @property
    def metadata_bytes(self) -> int:
        """Size of layout metadata alone (what an mm-template copies).

        ~8 bytes per PTE plus ~64 bytes per VMA descriptor — well under
        1 MB even for the 855 MB IR image (§4: "its size is small").
        """
        return self.total_pages * 8 + len(self.vmas) * 64

    def vma_content_slices(self) -> List[Tuple[VMADescriptor, np.ndarray]]:
        """Pair each VMA descriptor with its slice of content ids."""
        out = []
        cursor = 0
        for vma in self.vmas:
            out.append((vma, self.content_ids[cursor:cursor + vma.npages]))
            cursor += vma.npages
        return out

    def build_address_space(self, name: str = "",
                            on_local_delta=None) -> AddressSpace:
        """Instantiate the layout (PTEs all empty; caller populates).

        Content ids are shared with the image copy-on-write (one frozen
        base per VMA, reused by every restore of this image) so repeated
        restores copy no per-page arrays; with
        :data:`repro.optflags.cow_attach` off they are copied as before.
        """
        space = AddressSpace(name=name or self.function,
                             on_local_delta=on_local_delta)
        if optflags.cow_attach:
            if self._content_bases is None:
                self._content_bases = [
                    TemplateBase(content.copy())
                    for _vma, content in self.vma_content_slices()]
            for (vma, _content), base in zip(self.vma_content_slices(),
                                             self._content_bases):
                new = space.add_vma(vma.name, vma.npages, vma.prot,
                                    vma.flags)
                new.content = CowPageArray(base)
        else:
            for vma, content in self.vma_content_slices():
                new = space.add_vma(vma.name, vma.npages, vma.prot,
                                    vma.flags)
                new.content[:] = content
        return space

    @classmethod
    def from_profile(cls, profile: FunctionProfile) -> "SnapshotImage":
        """Synthesise the checkpoint a real CRIU dump would produce.

        The VMA layout mirrors a language runtime: a read-only
        interpreter text region, read-exec shared libraries, writable
        data, a large heap, and stack/arena VMAs.  ``profile.n_vmas``
        controls fragmentation (the mmap storm CRIU pays on restore).
        """
        content = profile.content_ids()
        total = len(content)
        runtime_pages = min(total, profile.runtime_shared_bytes // PAGE_SIZE)

        vmas: List[VMADescriptor] = []
        # Interpreter text (a quarter of the runtime, read-exec).
        text = max(1, runtime_pages // 4)
        vmas.append(VMADescriptor("runtime-text", text,
                                  PROT_READ | PROT_EXEC))
        # Shared libraries: split into several read-exec mappings.
        lib_pages = runtime_pages - text
        lib_chunks = max(1, min(profile.n_vmas // 4, 24))
        vmas.extend(_split("lib", lib_pages, lib_chunks,
                           PROT_READ | PROT_EXEC))
        # Function code + data, heap, stacks: writable private.
        remaining = total - runtime_pages
        heap_pages = max(1, int(remaining * 0.7))
        data_pages = max(1, int(remaining * 0.15))
        stack_pages = max(1, remaining - heap_pages - data_pages)
        rw = PROT_READ | PROT_WRITE
        vmas.extend(_split("data", data_pages,
                           max(1, profile.n_vmas // 8), rw))
        vmas.append(VMADescriptor("heap", heap_pages, rw))
        stack_chunks = max(1, profile.n_vmas - len(vmas) - 1)
        vmas.extend(_split("stack", stack_pages, stack_chunks, rw))

        covered = sum(v.npages for v in vmas)
        if covered < total:
            vmas.append(VMADescriptor("anon-tail", total - covered, rw))
        elif covered > total:
            raise AssertionError("layout overran the image")
        return cls(profile.name, vmas, content,
                   n_threads=profile.n_threads, n_fds=profile.n_fds)


def _split(prefix: str, pages: int, chunks: int, prot: int
           ) -> List[VMADescriptor]:
    """Split ``pages`` into up to ``chunks`` non-empty VMAs."""
    chunks = max(1, min(chunks, pages)) if pages > 0 else 0
    out: List[VMADescriptor] = []
    base = pages // chunks if chunks else 0
    extra = pages - base * chunks if chunks else 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        if size > 0:
            out.append(VMADescriptor(f"{prefix}-{i}", size, prot))
    return out
