"""Checkpoint/Restore In Userspace (CRIU) engine.

The preprocessing phase captures a function's post-initialisation state
into a :class:`~repro.criu.images.SnapshotImage`; the online phase either
restores it with the classic full-copy path (the "CRIU" baseline in every
figure) or hands it to TrEnv's mm-template machinery
(:mod:`repro.core.mm_template`) which replaces the copy with a metadata
attach.
"""

from repro.criu.images import SnapshotImage, VMADescriptor
from repro.criu.restore import CRIUEngine, RestoreStats

__all__ = ["CRIUEngine", "RestoreStats", "SnapshotImage", "VMADescriptor"]
