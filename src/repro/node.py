"""A simulated host node: CPU, memory accounting, kernel subsystems.

Every platform under evaluation runs against a :class:`Node`, which wires
together the event engine, the processor-sharing CPU, the memory
accountant, and the kernel object managers.  The testbed of §9.1 (dual
32-core Xeon, 256 GB RAM) is the default shape.
"""

from __future__ import annotations

from typing import Optional

from repro.criu.restore import CRIUEngine
from repro.kernel.cgroup import CgroupManager
from repro.kernel.namespaces import NamespaceManager
from repro.kernel.process import ProcessTable
from repro.mem.accounting import MemoryAccountant
from repro.mem.layout import GB
from repro.sim.cpu import FairShareCPU
from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel
from repro.sim.rng import SeededRNG


class Node:
    """One host in the rack."""

    def __init__(self, sim: Optional[Simulator] = None,
                 cores: int = 64,
                 dram_bytes: int = 256 * GB,
                 latency: Optional[LatencyModel] = None,
                 seed: int = 0,
                 soft_cap_bytes: Optional[int] = None,
                 name: str = "node0"):
        self.sim = sim or Simulator()
        self.name = name
        self.cores = cores
        self.dram_bytes = dram_bytes
        self.latency = latency or LatencyModel()
        self.rng = SeededRNG(seed, f"node/{name}")
        self.cpu = FairShareCPU(self.sim, cores)
        self.memory = MemoryAccountant(clock=lambda: self.sim.now,
                                       soft_cap_bytes=soft_cap_bytes)
        self.namespaces = NamespaceManager(self.sim, self.latency)
        self.cgroups = CgroupManager(self.sim, self.latency,
                                     self.rng.fork("cgroup"))
        self.procs = ProcessTable(self.sim, self.latency, self.cgroups)
        self.criu = CRIUEngine(self.sim, self.procs, self.latency)

    @property
    def now(self) -> float:
        return self.sim.now
