"""LLM-agent workloads and the VM-based agent platforms (§2, §6, §9.6).

* :mod:`repro.agents.spec` — the six representative agents of Table 2
  with their resource profiles and token usage (Table 3).
* :mod:`repro.agents.llm` — the deterministic trace-replay inference
  server of §9.6 ("agents interact with a simulated inference server that
  replays the recorded outputs and enforces the same response latency").
* :mod:`repro.agents.cost` — the billing model of §2.3 (Equations 1–2).
* :mod:`repro.agents.browser` — browser process trees and the §6.2
  sharing pool.
* :mod:`repro.agents.runner` — the agent workflow execution engine.
* :mod:`repro.agents.platform` — E2B, E2B+, vanilla Cloud Hypervisor and
  TrEnv(-S) agent platforms.
"""

from repro.agents.spec import AGENTS, AgentSpec, agent_by_name
from repro.agents.llm import LLMCall, LLMTrace, ReplayLLMServer
from repro.agents.cost import PriceConfig, llm_cost, serverless_cost
from repro.agents.browser import Browser, BrowserPool
from repro.agents.runner import AgentResult, AgentWorkflow
from repro.agents.platform import (AgentPlatform, E2BPlatform,
                                   E2BPlusPlatform, TrEnvVMPlatform,
                                   VanillaCHPlatform)

__all__ = [
    "AGENTS",
    "AgentPlatform",
    "AgentResult",
    "AgentSpec",
    "AgentWorkflow",
    "Browser",
    "BrowserPool",
    "E2BPlatform",
    "E2BPlusPlatform",
    "LLMCall",
    "LLMTrace",
    "PriceConfig",
    "ReplayLLMServer",
    "TrEnvVMPlatform",
    "VanillaCHPlatform",
    "agent_by_name",
    "llm_cost",
    "serverless_cost",
]
