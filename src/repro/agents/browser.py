"""Browser process trees and the §6.2 sharing pool.

A Chromium instance is a process tree: a main (browser) process, a
network service, a GPU/utility process, and one renderer per tab.  The
main/network/utility processes and warmed caches can be multiplexed, so
letting ~10 agents share one instance — each in its own tab group —
removes most of the per-agent footprint and a chunk of the per-agent CPU
(shared compositor, warm connection pools, shared font/code caches).
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional

from repro.mem.accounting import MemoryAccountant
from repro.mem.layout import MB
from repro.sim.engine import Delay, Simulator
from repro.sim.latency import LatencyModel

#: Fixed process-tree footprint (main + network + GPU/utility processes).
BROWSER_BASE_MB = 360
#: Per-tab renderer process footprint.
TAB_RENDERER_MB = 90
#: Fraction of an agent's browser CPU that sharing eliminates (warm
#: caches, shared compositor/network stack).
SHARED_CPU_DISCOUNT = 0.35


class Browser:
    """One running browser instance with per-agent tab groups."""

    _ids = itertools.count(1)

    def __init__(self, accountant: MemoryAccountant, max_agents: int = 10):
        self.browser_id = next(Browser._ids)
        self.accountant = accountant
        self.max_agents = max_agents
        self.tabs: Dict[int, int] = {}       # agent id -> tab count
        self.alive = True
        accountant.charge("browser", BROWSER_BASE_MB * MB)

    @property
    def agent_count(self) -> int:
        return len(self.tabs)

    @property
    def has_capacity(self) -> bool:
        return self.alive and self.agent_count < self.max_agents

    def attach(self, agent_id: int) -> None:
        if not self.has_capacity:
            raise RuntimeError(f"browser #{self.browser_id} is full")
        if agent_id in self.tabs:
            raise RuntimeError(f"agent {agent_id} already attached")
        self.tabs[agent_id] = 1
        self.accountant.charge("browser", TAB_RENDERER_MB * MB)

    def detach(self, agent_id: int) -> None:
        tabs = self.tabs.pop(agent_id, 0)
        if tabs:
            self.accountant.charge("browser", -tabs * TAB_RENDERER_MB * MB)

    def open_tab(self, agent_id: int) -> None:
        if agent_id not in self.tabs:
            raise KeyError(f"agent {agent_id} not attached")
        self.tabs[agent_id] += 1
        self.accountant.charge("browser", TAB_RENDERER_MB * MB)

    def close(self) -> None:
        if not self.alive:
            return
        total_tabs = sum(self.tabs.values())
        self.accountant.charge(
            "browser", -(BROWSER_BASE_MB + total_tabs * TAB_RENDERER_MB) * MB)
        self.tabs.clear()
        self.alive = False

    @property
    def memory_bytes(self) -> int:
        if not self.alive:
            return 0
        return (BROWSER_BASE_MB + sum(self.tabs.values()) * TAB_RENDERER_MB) * MB


class BrowserPool:
    """Shared browsers: agents attach to the least-loaded instance.

    With ``sharing=False`` every ``acquire`` launches a dedicated
    browser (the baseline behaviour); with sharing, up to ``max_agents``
    agents multiplex one instance (§6.2: "we allow multiple agents (e.g.
    10) to concurrently share a single browser instance").
    """

    def __init__(self, sim: Simulator, accountant: MemoryAccountant,
                 latency: Optional[LatencyModel] = None,
                 sharing: bool = True, max_agents: int = 10):
        self.sim = sim
        self.accountant = accountant
        self.latency = latency or LatencyModel()
        self.sharing = sharing
        self.max_agents = max_agents
        self.browsers: List[Browser] = []
        # Slots reserve capacity *synchronously*, so agents arriving
        # while a shared browser is still launching wait for it instead
        # of launching their own.
        self._slots: List[dict] = []
        self.launches = 0
        self.attaches = 0

    def acquire(self, agent_id: int) -> Generator:
        """Timed: get browser access for an agent; returns the Browser."""
        lat = self.latency.agent
        if self.sharing:
            for slot in self._slots:
                if slot["count"] < self.max_agents:
                    slot["count"] += 1
                    if slot["browser"] is None:
                        yield slot["ready"]          # launch in progress
                    yield Delay(lat.browser_shared_attach)
                    slot["browser"].attach(agent_id)
                    self.attaches += 1
                    return slot["browser"]
        slot = {"count": 1, "browser": None, "ready": self.sim.event()}
        if self.sharing:
            self._slots.append(slot)
        yield Delay(lat.browser_launch)
        browser = Browser(self.accountant,
                          max_agents=self.max_agents if self.sharing else 1)
        slot["browser"] = browser
        slot["ready"].trigger(browser)
        browser.attach(agent_id)
        self.browsers.append(browser)
        self.launches += 1
        return browser

    def release(self, browser: Browser, agent_id: int) -> None:
        browser.detach(agent_id)
        for slot in self._slots:
            if slot["browser"] is browser:
                slot["count"] -= 1
                break
        if browser.agent_count == 0:
            browser.close()
            self.browsers.remove(browser)
            self._slots = [s for s in self._slots
                           if s["browser"] is not browser]

    def cpu_multiplier(self) -> float:
        """Scale an agent's browser CPU under the current mode."""
        return (1.0 - SHARED_CPU_DISCOUNT) if self.sharing else 1.0

    @property
    def total_memory_bytes(self) -> int:
        return sum(b.memory_bytes for b in self.browsers)
