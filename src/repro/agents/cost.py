"""The §2.3 cost model: LLM token billing vs serverless GB-seconds.

Equation 1:  C_LLM = L_in × P_in + L_out × P_out
Equation 2:  C_s   = T × P_s × M

AWS Lambda bills $1.67e-8 per millisecond per GB (§2.3), i.e.
$1.667e-5 per GB-second, on the *allocated* memory size (128 MB
granularity).  Token prices default to an efficient 2025-generation model
tier; they are configurable because the paper's headline ratio ("up to
~70% of the LLM cost", Figure 3) moves with the assumed token price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.agents.spec import AGENTS, AgentSpec
from repro.mem.layout import MB

#: AWS Lambda: $1.67e-8 / ms / GB  =>  per second per GB.
LAMBDA_PRICE_PER_GB_S = 1.67e-8 * 1000.0

#: Lambda memory allocation granularity.
ALLOC_GRANULARITY = 128 * MB


@dataclass(frozen=True)
class PriceConfig:
    """Billing rates (USD)."""

    input_per_mtok: float = 0.15     # per million input tokens
    output_per_mtok: float = 0.60    # per million output tokens
    serverless_per_gb_s: float = LAMBDA_PRICE_PER_GB_S


def llm_cost(spec: AgentSpec, prices: PriceConfig = PriceConfig()) -> float:
    """Equation 1 over the agent's Table 3 token counts."""
    return (spec.input_tokens * prices.input_per_mtok
            + spec.output_tokens * prices.output_per_mtok) / 1e6


def billed_memory_bytes(mem_bytes: int) -> int:
    """Round measured memory up to the allocation granularity."""
    if mem_bytes <= 0:
        raise ValueError(f"non-positive memory: {mem_bytes}")
    units = (mem_bytes + ALLOC_GRANULARITY - 1) // ALLOC_GRANULARITY
    return units * ALLOC_GRANULARITY


def serverless_cost(spec: AgentSpec,
                    prices: PriceConfig = PriceConfig(),
                    duration: float = None,
                    mem_bytes: int = None) -> float:
    """Equation 2: duration × price × allocated GB."""
    t = spec.e2e_target if duration is None else duration
    m = billed_memory_bytes(spec.mem_bytes if mem_bytes is None
                            else mem_bytes)
    return t * prices.serverless_per_gb_s * (m / (1 << 30))


def relative_cost(spec: AgentSpec,
                  prices: PriceConfig = PriceConfig()) -> float:
    """Figure 3: C_s / C_LLM."""
    return serverless_cost(spec, prices) / llm_cost(spec, prices)


def cost_table(prices: PriceConfig = PriceConfig()) -> Dict[str, Dict[str, float]]:
    """Per-agent LLM cost, serverless cost, and ratio (Figure 3 data)."""
    out: Dict[str, Dict[str, float]] = {}
    for spec in AGENTS:
        c_llm = llm_cost(spec, prices)
        c_s = serverless_cost(spec, prices)
        out[spec.name] = {
            "llm_usd": c_llm,
            "serverless_usd": c_s,
            "relative": c_s / c_llm,
        }
    return out
