"""Agent workflow graphs (Figure 2).

The paper distinguishes three workflow shapes:

* **static** (Fig 2a, e.g. Bug fixer): a fixed linear chain of
  tool→LLM steps;
* **map-reduce** (Fig 2b): a split step fans out to parallel map
  branches (chunk summaries run concurrently), then a reduce step joins
  them — end-to-end latency is the *max* over branches plus the join;
* **ReAct** (Fig 2c, e.g. OWL/OpenManus agents): a dynamic loop where
  each LLM response decides the next tool action until a finish signal.

These graphs drive the same budgets (Table 2/3 totals) as the linear
runner but with the paper's concurrency structure, so CPU contention and
LLM waits compose the way they would in the real agent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence

from repro.agents.browser import BrowserPool
from repro.agents.llm import LLMTrace, ReplayLLMServer
from repro.agents.spec import AgentSpec
from repro.sim.cpu import FairShareCPU
from repro.sim.engine import Delay, Simulator


@dataclass(frozen=True)
class StepNode:
    """One node in a workflow DAG."""

    node_id: int
    kind: str                 # "tool" | "llm" | "split" | "join" | "finish"
    cpu: float = 0.0          # tool CPU seconds
    llm_call: int = -1        # index into the agent's LLM trace
    children: tuple = ()      # node ids executed after this one


class WorkflowGraph:
    """A DAG of steps with explicit fan-out/fan-in."""

    def __init__(self, spec: AgentSpec):
        self.spec = spec
        self.nodes: Dict[int, StepNode] = {}
        self._ids = itertools.count()

    def add(self, kind: str, cpu: float = 0.0, llm_call: int = -1,
            children: Sequence[int] = ()) -> int:
        node_id = next(self._ids)
        self.nodes[node_id] = StepNode(node_id, kind, cpu, llm_call,
                                       tuple(children))
        return node_id

    def link(self, parent: int, child: int) -> None:
        node = self.nodes[parent]
        self.nodes[parent] = StepNode(node.node_id, node.kind, node.cpu,
                                      node.llm_call,
                                      node.children + (child,))

    @property
    def root(self) -> int:
        children = {c for n in self.nodes.values() for c in n.children}
        roots = [nid for nid in self.nodes if nid not in children]
        if len(roots) != 1:
            raise ValueError(f"workflow must have one root, found {roots}")
        return roots[0]

    def llm_calls_used(self) -> List[int]:
        return sorted(n.llm_call for n in self.nodes.values()
                      if n.llm_call >= 0)

    def validate(self, trace: LLMTrace) -> None:
        calls = self.llm_calls_used()
        if calls != list(range(len(trace.calls))):
            raise ValueError(
                f"workflow uses LLM calls {calls}, trace has "
                f"{len(trace.calls)}")

    # -- construction from specs ------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: AgentSpec) -> "WorkflowGraph":
        if spec.workflow == "mapreduce":
            return cls.map_reduce(spec)
        if spec.workflow == "react":
            return cls.react(spec)
        return cls.static_chain(spec)

    @classmethod
    def static_chain(cls, spec: AgentSpec) -> "WorkflowGraph":
        """Fig 2a: tool -> llm -> tool -> llm -> ... -> finish."""
        graph = cls(spec)
        n = spec.n_llm_calls
        cpu_each = spec.own_cpu / n
        prev = None
        for i in range(n):
            tool = graph.add("tool", cpu=cpu_each)
            llm = graph.add("llm", llm_call=i)
            graph.link(tool, llm)
            if prev is not None:
                graph.link(prev, tool)
            prev = llm
        finish = graph.add("finish")
        graph.link(prev, finish)
        return graph

    @classmethod
    def map_reduce(cls, spec: AgentSpec) -> "WorkflowGraph":
        """Fig 2b: split -> N parallel (tool+llm) map branches -> reduce.

        The last LLM call is the reduce/summarise step; the first is the
        planning step; the rest are parallel chunk maps.
        """
        graph = cls(spec)
        n = spec.n_llm_calls
        if n < 3:
            return cls.static_chain(spec)
        n_maps = n - 2
        cpu_each = spec.own_cpu / n
        plan_tool = graph.add("tool", cpu=cpu_each)
        plan = graph.add("llm", llm_call=0)
        graph.link(plan_tool, plan)
        split = graph.add("split")
        graph.link(plan, split)
        join = graph.add("join")
        for i in range(n_maps):
            tool = graph.add("tool", cpu=cpu_each)
            llm = graph.add("llm", llm_call=1 + i)
            graph.link(split, tool)
            graph.link(tool, llm)
            graph.link(llm, join)
        reduce_tool = graph.add("tool", cpu=cpu_each)
        reduce_llm = graph.add("llm", llm_call=n - 1)
        graph.link(join, reduce_tool)
        graph.link(reduce_tool, reduce_llm)
        finish = graph.add("finish")
        graph.link(reduce_llm, finish)
        return graph

    @classmethod
    def react(cls, spec: AgentSpec) -> "WorkflowGraph":
        """Fig 2c: a thought/action loop, unrolled over the trace.

        Each iteration is LLM(decide) -> tool(act); the loop length is
        dictated by the recorded trace (the real agent stops when the
        LLM emits a finish action).
        """
        graph = cls(spec)
        n = spec.n_llm_calls
        cpu_each = spec.own_cpu / n
        prev = None
        for i in range(n):
            llm = graph.add("llm", llm_call=i)
            if prev is not None:
                graph.link(prev, llm)
            tool = graph.add("tool", cpu=cpu_each)
            graph.link(llm, tool)
            prev = tool
        finish = graph.add("finish")
        graph.link(prev, finish)
        return graph


class GraphExecutor:
    """Executes a workflow DAG on the simulation substrate.

    Fan-out nodes spawn one process per child; joins wait for every
    parent (counted arrivals).  Tool CPU goes through the fair-share
    CPU, LLM calls through the replay server.
    """

    def __init__(self, sim: Simulator, cpu: FairShareCPU,
                 llm: ReplayLLMServer, extra_tool_cpu: float = 0.0,
                 on_tool=None):
        """``extra_tool_cpu`` is added to every tool node (e.g. the
        agent's per-step browser CPU share); ``on_tool`` is an optional
        generator factory ``(tool_sequence_index) -> generator`` run
        after each tool node's CPU (file IO, memory growth)."""
        self.sim = sim
        self.cpu = cpu
        self.llm = llm
        self.extra_tool_cpu = extra_tool_cpu
        self.on_tool = on_tool
        self.executed: List[int] = []
        self._tool_seq = itertools.count()

    def run(self, graph: WorkflowGraph) -> Generator:
        """Timed: execute the whole DAG; returns elapsed seconds."""
        graph.validate(self.llm.load_trace(graph.spec))
        start = self.sim.now
        pending: Dict[int, int] = {nid: 0 for nid in graph.nodes}
        for node in graph.nodes.values():
            for child in node.children:
                pending[child] += 1

        def exec_node(node_id):
            node = graph.nodes[node_id]
            if node.kind == "tool":
                work = node.cpu + self.extra_tool_cpu
                if work > 0:
                    yield from self.cpu.compute(work)
                if self.on_tool is not None:
                    yield from self.on_tool(next(self._tool_seq))
            elif node.kind == "llm":
                yield self.llm.call(graph.spec, node.llm_call)
            self.executed.append(node_id)
            for child in node.children:
                pending[child] -= 1
                if pending[child] == 0:
                    waiters.append(self.sim.spawn(
                        exec_node(child), name=f"wf-{child}"))

        waiters: List = []
        waiters.append(self.sim.spawn(exec_node(graph.root), name="wf-root"))
        # Drain: new waiters appear as children unblock.
        i = 0
        while i < len(waiters):
            yield waiters[i]
            i += 1
        return self.sim.now - start
