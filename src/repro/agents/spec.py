"""The representative agents of Table 2 / Table 3.

Each spec captures what the paper measured on Firecracker: end-to-end
latency, dynamic memory, CPU time, and token usage — plus derived
workflow structure (number of LLM calls, browser usage) used by the
runner to synthesise a deterministic execution trace whose totals match
the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.mem.layout import GB, MB


@dataclass(frozen=True)
class AgentSpec:
    """One agent application (Table 2 row + Table 3 row)."""

    name: str
    framework: str
    description: str
    e2e_target: float           # seconds, measured on Firecracker (Table 2)
    mem_bytes: int              # dynamic memory (Table 2)
    cpu_time: float             # active CPU seconds (Table 2)
    input_tokens: int           # Table 3
    output_tokens: int          # Table 3
    n_llm_calls: int            # workflow structure (Fig 2)
    uses_browser: bool = False
    browser_cpu: float = 0.0    # of cpu_time, seconds spent in the browser
    file_io_bytes: int = 30 * MB   # guest file reads (page-cache pressure)
    workflow: str = "static"    # "static" | "mapreduce" | "react" (Fig 2)
    vm_mem_bytes: int = 2 * GB  # §9.6 configuration

    @property
    def own_cpu(self) -> float:
        """CPU seconds outside the browser."""
        return self.cpu_time - self.browser_cpu

    @property
    def llm_wait(self) -> float:
        """Total time blocked on LLM responses (the idle majority)."""
        wait = self.e2e_target - self.cpu_time
        if wait <= 0:
            raise AssertionError(f"{self.name}: CPU time exceeds E2E target")
        return wait

    @property
    def cpu_utilization(self) -> float:
        """Fraction of wall time the agent actually computes (§2.4)."""
        return self.cpu_time / self.e2e_target

    @property
    def is_lightweight(self) -> bool:
        """§2.1 taxonomy: minimal tools, low memory, short runs."""
        return not self.uses_browser


AGENTS: Tuple[AgentSpec, ...] = (
    AgentSpec(
        name="blackjack", framework="LangChain",
        description="Play the Blackjack game",
        e2e_target=3.2, mem_bytes=74 * MB, cpu_time=0.411,
        input_tokens=1690, output_tokens=8, n_llm_calls=3,
        file_io_bytes=25 * MB, workflow="static"),
    AgentSpec(
        name="bug-fixer", framework="LangChain",
        description="Fix the bugs in given code",
        e2e_target=36.5, mem_bytes=95 * MB, cpu_time=0.809,
        input_tokens=1557, output_tokens=530, n_llm_calls=2,
        file_io_bytes=40 * MB, workflow="static"),
    AgentSpec(
        name="map-reduce", framework="LangChain",
        description="Split and summarise a document",
        e2e_target=56.5, mem_bytes=199 * MB, cpu_time=1.2,
        input_tokens=8640, output_tokens=2644, n_llm_calls=8,
        file_io_bytes=120 * MB, workflow="mapreduce"),
    AgentSpec(
        name="shop-assistant", framework="Browser-Use",
        description="Select the ideal products on a website",
        e2e_target=140.7, mem_bytes=1080 * MB, cpu_time=10.3,
        input_tokens=43185, output_tokens=1494, n_llm_calls=24,
        uses_browser=True, browser_cpu=7.8,
        file_io_bytes=400 * MB, workflow="react", vm_mem_bytes=4 * GB),
    AgentSpec(
        name="blog-summary", framework="OWL",
        description="Collect and summarise blogs",
        e2e_target=193.1, mem_bytes=1246 * MB, cpu_time=56.8,
        input_tokens=49398, output_tokens=2703, n_llm_calls=30,
        uses_browser=True, browser_cpu=48.0,
        file_io_bytes=500 * MB, workflow="react", vm_mem_bytes=4 * GB),
    AgentSpec(
        name="game-design", framework="OpenManus",
        description="Implement an HTML-based game",
        e2e_target=107.0, mem_bytes=1389 * MB, cpu_time=7.5,
        input_tokens=75121, output_tokens=2098, n_llm_calls=20,
        uses_browser=True, browser_cpu=1.6,
        file_io_bytes=450 * MB, workflow="react", vm_mem_bytes=4 * GB),
)

_BY_NAME: Dict[str, AgentSpec] = {a.name: a for a in AGENTS}


def agent_by_name(name: str) -> AgentSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown agent {name!r}; known: {sorted(_BY_NAME)}") from None


def lightweight_agents() -> Tuple[AgentSpec, ...]:
    return tuple(a for a in AGENTS if a.is_lightweight)


def browser_agents() -> Tuple[AgentSpec, ...]:
    return tuple(a for a in AGENTS if a.uses_browser)
