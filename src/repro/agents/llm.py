"""Deterministic LLM trace replay (§9.6 methodology).

Agent executions are non-deterministic because LLM outputs and inference
latency vary.  The paper fixes this by recording real runs and replaying
them from a simulated inference server.  We synthesise the recorded trace
from each agent's Table 2/3 totals: context grows across calls (ReAct
agents resend history), output splits near-evenly, and per-call latency
follows a time-to-first-token plus per-output-token decode model scaled
so the total matches the agent's measured LLM wait.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Tuple

from repro.agents.spec import AgentSpec
from repro.sim.engine import Delay

#: Baseline time-to-first-token per call (queueing + prefill).
TTFT = 0.35


@dataclass(frozen=True)
class LLMCall:
    """One recorded LLM API call."""

    index: int
    input_tokens: int
    output_tokens: int
    latency: float

    def __post_init__(self):
        if self.latency < 0:
            raise ValueError("negative latency")


class LLMTrace:
    """The recorded call sequence of one agent run."""

    def __init__(self, calls: List[LLMCall]):
        self.calls = calls

    @property
    def total_input_tokens(self) -> int:
        return sum(c.input_tokens for c in self.calls)

    @property
    def total_output_tokens(self) -> int:
        return sum(c.output_tokens for c in self.calls)

    @property
    def total_latency(self) -> float:
        return sum(c.latency for c in self.calls)

    @classmethod
    def from_spec(cls, spec: AgentSpec) -> "LLMTrace":
        """Synthesise the recorded trace from the agent's totals.

        Latencies are calibrated so the *workflow's critical path* of
        LLM time equals the measured LLM wait: for linear workflows
        (static/ReAct) that is the plain sum; for map-reduce (Fig 2b)
        the parallel map calls overlap, so only plan + slowest map +
        reduce lie on the path.
        """
        n = spec.n_llm_calls
        # Growing context: call i carries weight (i+1); sums to n(n+1)/2.
        weight_sum = n * (n + 1) // 2
        inputs = [max(1, round(spec.input_tokens * (i + 1) / weight_sum))
                  for i in range(n)]
        inputs[-1] += spec.input_tokens - sum(inputs)
        outputs = [spec.output_tokens // n] * n
        outputs[-1] += spec.output_tokens - sum(outputs)
        budget = spec.llm_wait
        if spec.workflow == "mapreduce" and n >= 3:
            # Critical path: call 0 + slowest map + final reduce.
            path_out = outputs[0] + max(outputs[1:-1]) + outputs[-1]
            path_base = TTFT * 3
        else:
            path_out = max(1, spec.output_tokens)
            path_base = TTFT * n
        alpha = max(0.0, (budget - path_base)) / max(1, path_out)
        calls = []
        for i in range(n):
            latency = TTFT + alpha * outputs[i]
            calls.append(LLMCall(i, inputs[i], max(0, outputs[i]), latency))
        # Exact correction so the critical path hits the budget.
        if spec.workflow == "mapreduce" and n >= 3:
            path = (calls[0].latency + max(c.latency for c in calls[1:-1])
                    + calls[-1].latency)
        else:
            path = sum(c.latency for c in calls)
        drift = budget - path
        last = calls[-1]
        calls[-1] = LLMCall(last.index, last.input_tokens,
                            last.output_tokens,
                            max(0.0, last.latency + drift))
        return cls(calls)

    def critical_path_latency(self, workflow: str = "static") -> float:
        """LLM time along the workflow's critical path."""
        n = len(self.calls)
        if workflow == "mapreduce" and n >= 3:
            return (self.calls[0].latency
                    + max(c.latency for c in self.calls[1:-1])
                    + self.calls[-1].latency)
        return self.total_latency


class ReplayLLMServer:
    """Serves recorded responses with the recorded latency."""

    def __init__(self):
        self._traces: Dict[str, LLMTrace] = {}
        self.calls_served = 0
        self.tokens_in = 0
        self.tokens_out = 0

    def load_trace(self, spec: AgentSpec) -> LLMTrace:
        trace = self._traces.get(spec.name)
        if trace is None:
            trace = LLMTrace.from_spec(spec)
            self._traces[spec.name] = trace
        return trace

    def call(self, spec: AgentSpec, index: int) -> Generator:
        """Timed: replay call ``index`` of the agent's trace."""
        trace = self.load_trace(spec)
        if not 0 <= index < len(trace.calls):
            raise IndexError(
                f"{spec.name}: call {index} beyond trace "
                f"({len(trace.calls)} calls)")
        call = trace.calls[index]
        yield Delay(call.latency)
        self.calls_served += 1
        self.tokens_in += call.input_tokens
        self.tokens_out += call.output_tokens
        return call
