"""VM-based agent platforms: E2B, E2B+, vanilla CH, and TrEnv(-S).

Differences under test (§9.6):

================  ==========  ===============  =====================
platform          storage     memory restore   sandbox setup
================  ==========  ===============  =====================
E2B               virtio-blk  lazy (uffd)      netns 97 ms + cgroup
                                               migration 63 ms
E2B+              virtiofs    lazy (uffd)      same as E2B (+DAX map)
                  (DAX)
vanilla CH        virtio-blk  full copy        generic jailer
TrEnv / TrEnv-S   pmem union  mm-template      repurposable jailer
                                               pool + CLONE_INTO
================  ==========  ===============  =====================

TrEnv-S is TrEnv with browser sharing enabled (§6.2).
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.agents.browser import BrowserPool
from repro.agents.llm import ReplayLLMServer
from repro.agents.runner import AgentResult, AgentWorkflow
from repro.agents.spec import AgentSpec
from repro.mem.layout import GB, MB, pages_for_bytes
from repro.mem.pools import CXLPool, DedupStore
from repro.node import Node
from repro.serverless.baselines import UffdTmpfsPool
from repro.serverless.metrics import LatencyRecorder
from repro.sim.engine import Delay
from repro.sim.rng import SeededRNG
from repro.vm.ept import ExtendedPageTable
from repro.vm.hypervisor import Hypervisor, RestoreMode
from repro.vm.microvm import GuestConfig, MicroVM, StorageMode

#: Agent-session handshake common to all platforms (sandbox API, envd
#: startup, vsock attach) — on top of the VM-level costs.
SESSION_INIT = 0.15

#: Pages the agent runtime touches while coming back from the snapshot
#: (framework import working set), capped like a real runtime's RSS.
_RESTORE_WS_CAP_BYTES = 100 * MB
_RESTORE_WS_FRACTION = 0.6


def _restore_ws_pages(spec: AgentSpec) -> int:
    ws = min(spec.mem_bytes, _RESTORE_WS_CAP_BYTES) * _RESTORE_WS_FRACTION
    return int(ws // 4096)


#: Agent snapshots share a per-framework runtime prefix (python + agent
#: framework libraries), dedupable across agents in the pool.
_FRAMEWORK_SHARED_BYTES = 30 * MB
_AGENT_SPACE = 3 << 44


def _agent_content_ids(spec: AgentSpec) -> np.ndarray:
    total = pages_for_bytes(min(spec.mem_bytes, _RESTORE_WS_CAP_BYTES))
    shared = min(total, _FRAMEWORK_SHARED_BYTES // 4096)
    fw_base = _AGENT_SPACE + (hash(spec.framework) % 1009) * (1 << 28)
    ag_base = _AGENT_SPACE + (1 << 40) + (hash(spec.name) % 1009) * (1 << 28)
    ids = np.empty(total, dtype=np.int64)
    ids[:shared] = fw_base + np.arange(shared)
    ids[shared:] = ag_base + np.arange(total - shared)
    return ids


class AgentPlatform:
    """Base agent platform; subclasses set storage/restore/sandbox."""

    name = "agent-base"
    storage = StorageMode.VIRTIO_BLK
    restore_mode = RestoreMode.LAZY
    browser_sharing = False
    #: Pre-populate second-level mappings from the template (§8.1.3)?
    ept_prepopulate = False

    def __init__(self, node: Node, seed: int = 0,
                 browser_sharing: Optional[bool] = None):
        self.node = node
        self.hypervisor = Hypervisor(node)
        self.llm = ReplayLLMServer()
        if browser_sharing is not None:
            self.browser_sharing = browser_sharing
        self.browsers = BrowserPool(node.sim, node.memory, node.latency,
                                    sharing=self.browser_sharing)
        self.recorder = LatencyRecorder()
        self.rng = SeededRNG(seed, f"{self.name}/agents")
        self.snapshot_store = DedupStore(self._make_snapshot_pool())
        self.sessions = 0

    def _make_snapshot_pool(self):
        """Where guest snapshots live: tmpfs via uffd by default."""
        return UffdTmpfsPool(64 * GB, self.node.latency)

    # -- per-platform hooks ----------------------------------------------------------

    def _sandbox_setup(self) -> Generator:
        """Timed: isolation shell around the VMM."""
        yield self.hypervisor.create_jailer_sandbox()

    def _snapshot_bytes(self, spec: AgentSpec) -> int:
        return min(spec.mem_bytes, _RESTORE_WS_CAP_BYTES)

    def _guest_restore(self, vm: MicroVM, spec: AgentSpec) -> Generator:
        """Timed: bring the agent runtime back through second-level
        paging (two-dimensional page tables, §8.1.3).

        The guest's snapshot region is bound to the platform's snapshot
        pool; the runtime's working set is then touched — via EPT
        violations (lazy platforms) or pre-populated direct loads
        (TrEnv).  Returns the EPT so teardown can release its pages.
        """
        node = self.node
        content = _agent_content_ids(spec)
        block = self.snapshot_store.store_image(content)
        ept = ExtendedPageTable(
            len(content), node.latency,
            on_local_delta=node.memory.page_delta_hook("vm-guest-anon"))
        ept.bind_template(block)
        ws_pages = _restore_ws_pages(spec)
        rng = self.rng.fork(f"{spec.name}/ws")
        reads = rng.sample_pages(len(content), ws_pages)
        writes = reads[:max(1, int(len(reads) * 0.2))].copy()
        reads.sort(); writes.sort()
        if self.ept_prepopulate:
            hot = np.zeros(len(content), dtype=bool)
            hot[reads] = True
            ept.prepopulate(hot)   # preprocessing-time cost, off path
        outcome = ept.access(reads, writes)
        cost = ept.access_time(outcome)
        if cost > 0:
            yield from node.cpu.compute(cost)
        vm.ept = ept
        return ept

    # -- session lifecycle ----------------------------------------------------------------

    def run_agent(self, spec: AgentSpec, arrival: Optional[float] = None
                  ) -> Generator:
        """Timed: one full agent session; returns an AgentResult."""
        node = self.node
        arrival = node.now if arrival is None else arrival
        t0 = node.now
        yield Delay(SESSION_INIT)
        yield self._sandbox_setup()
        vm = yield self.hypervisor.spawn_vm(
            GuestConfig(vcpus=1, mem_bytes=spec.vm_mem_bytes,
                        storage=self.storage),
            name=f"{self.name}-{spec.name}")
        yield self.hypervisor.restore_snapshot(
            vm, self._snapshot_bytes(spec), self.restore_mode)
        ept = yield self._guest_restore(vm, spec)
        startup = node.now - t0

        workflow = AgentWorkflow(spec)
        t1 = node.now
        # The guest's compute is capped by its vCPU allocation (1 vCPU
        # per agent VM, §9.6 configurations).
        from repro.sim.cpu import VCPUQuota
        quota = VCPUQuota(node.cpu, vm.config.vcpus)
        active, llm_wait = yield workflow.run(quota, self.llm, vm,
                                              self.browsers)
        e2e = node.now - t1

        ept.release_local()  # on_local_delta hook uncharges node.memory
        yield self._teardown(vm)
        self.sessions += 1
        result = AgentResult(agent=spec.name, startup=startup, e2e=e2e,
                             active_time=active, llm_wait=llm_wait,
                             arrival=arrival)
        self.recorder.record(_to_invocation(result))
        return result

    def _teardown(self, vm: MicroVM) -> Generator:
        yield self.hypervisor.destroy_vm(vm)


def _to_invocation(result: AgentResult):
    from repro.serverless.metrics import InvocationResult
    return InvocationResult(function=result.agent, arrival=result.arrival,
                            start_kind="session", startup=result.startup,
                            exec=result.e2e,
                            e2e=result.startup + result.e2e)


class E2BPlatform(AgentPlatform):
    """E2B: Firecracker-style sandboxes with measured §9.6.1 costs."""

    name = "e2b"
    storage = StorageMode.VIRTIO_BLK
    restore_mode = RestoreMode.LAZY

    def __init__(self, node: Node, seed: int = 0,
                 browser_sharing: Optional[bool] = None):
        super().__init__(node, seed, browser_sharing)
        self._setups_in_flight = 0

    def _sandbox_setup(self) -> Generator:
        lat = self.node.latency
        self._setups_in_flight += 1
        try:
            # §9.6.1: ~97 ms network setup, contended like any netns
            # creation, plus ~63 ms cgroup migration.
            contention = lat.ns.netns_per_concurrent * (self._setups_in_flight - 1)
            yield Delay(min(lat.vm.net_setup_e2b + contention, lat.ns.netns_max))
            yield self.node.cgroups.create("e2b-jail")
            yield Delay(lat.vm.cgroup_migrate_e2b)
        finally:
            self._setups_in_flight -= 1


class E2BPlusPlatform(E2BPlatform):
    """E2B + RunD rootfs mapping: shared host cache, but the shared-memory
    (memfd) guest backing forecloses CoW memory templates (§3.3)."""

    name = "e2b+"
    storage = StorageMode.VIRTIOFS_DAX

    def _sandbox_setup(self) -> Generator:
        yield from super()._sandbox_setup()
        # Extra DAX window mapping setup for the shared rootfs.
        yield Delay(0.02)


class VanillaCHPlatform(AgentPlatform):
    """Unmodified Cloud Hypervisor: full-copy memory restore (§9.6.1)."""

    name = "ch"
    storage = StorageMode.VIRTIO_BLK
    restore_mode = RestoreMode.COPY

    def _snapshot_bytes(self, spec: AgentSpec) -> int:
        # Vanilla CH copies the whole guest RAM image.
        return spec.vm_mem_bytes

    def _guest_restore(self, vm: MicroVM, spec: AgentSpec) -> Generator:
        # Everything is resident after the full copy: charge the
        # snapshot's pages, no faults.
        node = self.node
        content = _agent_content_ids(spec)
        ept = ExtendedPageTable(
            len(content), node.latency,
            on_local_delta=node.memory.page_delta_hook("vm-guest-anon"))
        ept.bind_template(self.snapshot_store.store_image(content))
        ept.state[:] = 1   # PTE_LOCAL: the copy materialised everything
        ept._charge(len(content))
        vm.ept = ept
        return ept
        yield  # pragma: no cover


class TrEnvVMPlatform(AgentPlatform):
    """TrEnv for VMs: repurposable jailer sandboxes + mm-template restore
    + pmem union storage.  With ``browser_sharing=True`` this is TrEnv-S."""

    name = "trenv-vm"
    storage = StorageMode.PMEM_UNION
    restore_mode = RestoreMode.TEMPLATE
    ept_prepopulate = True

    def __init__(self, node: Node, seed: int = 0,
                 browser_sharing: Optional[bool] = None,
                 prewarmed_jailers: int = 32):
        super().__init__(node, seed, browser_sharing)
        if self.browser_sharing:
            self.name = "trenv-s"
        # The platform keeps a pool of recycled jailer sandboxes (§6);
        # it is replenished continuously, so steady state has pool hits.
        self._jailer_pool = prewarmed_jailers

    def _sandbox_setup(self) -> Generator:
        node = self.node
        if self._jailer_pool > 0:
            # Repurpose a pooled jailer: overlay swap + cgroup limits.
            self._jailer_pool -= 1
            yield Delay(node.latency.rootfs.reconfig_mount * 2)
            yield node.cgroups.clone_into(0, _dummy_cgroup())
        else:
            yield node.namespaces.create_netns()
            yield node.cgroups.create("trenv-jail")
            yield node.cgroups.clone_into(0, _dummy_cgroup())

    def _make_snapshot_pool(self):
        # Agent snapshots live on the rack's CXL pool, directly mapped.
        return CXLPool(256 * GB, self.node.latency)

    def _teardown(self, vm: MicroVM) -> Generator:
        yield self.hypervisor.destroy_vm(vm)
        self._jailer_pool += 1


def _dummy_cgroup():
    from repro.kernel.cgroup import Cgroup, CgroupLimits
    return Cgroup("jail", CgroupLimits())
