"""Agent workflow execution engine.

An agent run interleaves LLM calls (replayed, pure wait) with active
phases: tool CPU, browser work, file IO, and memory growth.  The phase
totals are drawn from the agent's Table 2/3 profile, so an uncontended
run on a dedicated core reproduces the measured end-to-end latency, while
CPU phases stretch under overcommitment (the §6.1 effect) and file IO
flows through the VM's page-cache model (the §6.3 effect).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, Optional

from repro.agents.browser import Browser, BrowserPool
from repro.agents.llm import ReplayLLMServer
from repro.agents.spec import AgentSpec
from repro.mem.layout import MB, pages_for_bytes
from repro.sim.cpu import FairShareCPU
from repro.sim.engine import Delay
from repro.vm.microvm import MicroVM

#: Browser process-tree memory when an agent runs a dedicated browser
#: (matches repro.agents.browser.BROWSER_BASE_MB + one renderer).
_DEDICATED_BROWSER_MB = 450

#: Fraction of an agent's file IO that is scratch data it writes itself
#: (downloads, build artifacts) rather than shared base-image reads.
SCRATCH_WRITE_FRACTION = 0.4


@dataclass
class AgentResult:
    """One completed agent session."""

    agent: str
    startup: float
    e2e: float
    active_time: float       # non-LLM-wait execution time
    llm_wait: float
    arrival: float = 0.0

    @property
    def total(self) -> float:
        return self.startup + self.e2e


class AgentWorkflow:
    """Drives one agent session inside a microVM."""

    _ids = itertools.count(1)

    def __init__(self, spec: AgentSpec):
        self.spec = spec
        self.agent_id = next(AgentWorkflow._ids)

    @property
    def anon_bytes(self) -> int:
        """Anonymous runtime memory (Table 2 memory minus page cache and
        browser footprint, which we model separately)."""
        spec = self.spec
        anon = spec.mem_bytes - spec.file_io_bytes
        if spec.uses_browser:
            anon -= _DEDICATED_BROWSER_MB * MB
        return max(32 * MB, anon)

    def run(self, cpu: FairShareCPU, llm: ReplayLLMServer, vm: MicroVM,
            browsers: Optional[BrowserPool] = None) -> Generator:
        """Timed: execute the workflow DAG; returns (active, llm_wait).

        The workflow executes with its Figure-2 structure (linear,
        map-reduce fan-out, or ReAct loop) via
        :class:`~repro.agents.workflow_graph.GraphExecutor`; each tool
        node additionally performs its share of file IO and heap growth.
        ``llm_wait`` is the LLM time on the workflow's critical path;
        ``active`` is the remaining (execution) time.
        """
        from repro.agents.workflow_graph import GraphExecutor, WorkflowGraph

        spec = self.spec
        n = spec.n_llm_calls
        browser: Optional[Browser] = None
        start = _now(cpu)

        browser_cpu_each = 0.0
        if spec.uses_browser:
            if browsers is None:
                raise ValueError(f"{spec.name} needs a browser pool")
            browser = yield browsers.acquire(self.agent_id)
            browser_cpu_each = (spec.browser_cpu / n) * browsers.cpu_multiplier()

        anon_pages = pages_for_bytes(self.anon_bytes)
        pages_each = max(1, anon_pages // n)
        read_each = int(spec.file_io_bytes * (1 - SCRATCH_WRITE_FRACTION)) // n
        write_each = int(spec.file_io_bytes * SCRATCH_WRITE_FRACTION) // n

        def tool_side_effects(i):
            """File IO + progressive heap growth on each tool step."""
            io = vm.read_files(read_each, f"base-{spec.framework}",
                               offset=i * read_each)
            io += vm.read_files(write_each, f"scratch-{self.agent_id}",
                                write=True, offset=i * write_each)
            if io > 0:
                yield Delay(io)
            vma = vm.guest_memory.add_vma(f"heap-{i}", pages_each)
            vm.guest_memory.populate_local(vma)

        graph = WorkflowGraph.from_spec(spec)
        executor = GraphExecutor(cpu.sim, cpu, llm,
                                 extra_tool_cpu=browser_cpu_each,
                                 on_tool=tool_side_effects)
        try:
            yield executor.run(graph)
        finally:
            if browser is not None:
                browsers.release(browser, self.agent_id)
        elapsed = _now(cpu) - start
        llm_wait = llm.load_trace(spec).critical_path_latency(spec.workflow)
        active = max(0.0, elapsed - llm_wait)
        return active, llm_wait


def _now(cpu: FairShareCPU) -> float:
    return cpu.sim.now
