"""Cluster-wide retry budget: a token bucket against retry storms.

Crash-aware re-dispatch (PR 1) retries an invocation on another host;
under a correlated failure every in-flight invocation does so at once,
and the "recovery" traffic can exceed the original load — the classic
retry storm.  The budget bounds the amplification factor globally: each
admitted invocation *earns* a fraction of a token, each retry (crash
re-dispatch, attempt-timeout re-dispatch, pool-fault retry) *spends* a
whole one, and a spend against an empty bucket is denied — the caller
degrades or aborts instead of retrying.

Purely arithmetical (no clock, no RNG): deterministic by construction.
"""

from __future__ import annotations

from repro.control.config import RetryBudgetConfig
from repro.obs import hooks as obs_hooks


class RetryBudget:
    """Token bucket shared by every retry path in one cluster run."""

    __slots__ = ("config", "tokens", "earned", "spent", "denied")

    def __init__(self, config: RetryBudgetConfig):
        self.config = config
        self.tokens = config.capacity    # start full: tolerate early burst
        self.earned = 0.0
        self.spent = 0
        self.denied = 0

    def earn(self) -> None:
        """One invocation was admitted: accrue its retry allowance."""
        gain = self.config.earn_per_invocation
        self.tokens = min(self.config.capacity, self.tokens + gain)
        self.earned += gain

    def try_spend(self, what: str = "retry") -> bool:
        """Claim one retry token; False (and a metric) when exhausted."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        obs = obs_hooks.active
        if obs is not None:
            obs.registry.inc("retry_budget_denied_total", kind=what)
        return False

    def summary(self) -> dict:
        return {
            "tokens_left": self.tokens,
            "spent": self.spent,
            "denied": self.denied,
        }
