"""The assembled control plane: one object wired between arrival and
dispatch.

:class:`ControlPlane` owns the four mechanisms and the glue between
them:

* the :class:`~repro.control.admission.AdmissionController` (front
  door: concurrency caps, bounded queues, shedding);
* :class:`~repro.control.breaker.CircuitBreaker` families — one per
  dispatch target (node) and one per (node, pool) tier — created
  lazily, keyed deterministically by name;
* the cluster-wide :class:`~repro.control.retry_budget.RetryBudget`;
* the :class:`~repro.control.slo.SLOTracker` burn-rate accountant,
  which feeds both admission (burn shedding) and the platforms
  (degrade mode).

The cluster dispatcher calls :meth:`filter_candidates` (non-claiming
preview), :meth:`claim_attempt` (for the picked node only) and
:meth:`observe_attempt` around every dispatch attempt and
:meth:`observe_result` on completion; platforms consult
:meth:`pool_breaker` and :meth:`degrade_active` inside their fault
ladders.  :meth:`invocation_deadline` / :meth:`attempt_deadline`
resolve the timeout hierarchy onto the virtual clock.

Everything here is host-side bookkeeping on simulated inputs: no Delay,
no RNG, no wall clock — control decisions are pure functions of the
virtual-time history, so controlled runs replay bit-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.control.admission import AdmissionController
from repro.control.breaker import CircuitBreaker
from repro.control.config import ControlConfig
from repro.control.retry_budget import RetryBudget
from repro.control.slo import SLOTracker
from repro.sim.engine import Simulator

#: Why an armed control plane pins a run to the serial path
#: (:mod:`repro.serverless.partition` quotes this in fallback reports).
#: Every mechanism here is *rack-global*: admission queues order
#: arrivals across all nodes, breaker state from one node's attempt
#: changes the next dispatch's candidate set anywhere, and the retry
#: budget is earned/spent in global event order.  Each dispatch
#: decision can therefore depend on any other shard's state zero
#: simulated seconds earlier — there is no lookahead to window on, and
#: sharding would require reconciling these deltas at every event,
#: i.e. running serially.  The serial fallback keeps controlled runs
#: bit-identical by construction.
PARALLEL_UNSAFE_REASON = (
    "control plane armed: admission queues, breaker state and the "
    "retry budget are rack-global couplings with zero lookahead")


class ControlPlane:
    """Overload-resilience machinery for one cluster (or platform) run."""

    def __init__(self, sim: Simulator, config: ControlConfig):
        self.sim = sim
        self.config = config
        self.slo = SLOTracker(config)
        self.admission = AdmissionController(sim, config, self.slo)
        self.budget = RetryBudget(config.retry_budget)
        self._node_breakers: Dict[str, CircuitBreaker] = {}
        self._pool_breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        #: reason -> count for admitted-but-never-completed invocations.
        self.abort_counts: Dict[str, int] = {}
        self.abort_log: List[Tuple[str, float, str]] = []
        self.completions = 0

    # -- breakers -------------------------------------------------------------

    def node_breaker(self, node: str) -> Optional[CircuitBreaker]:
        if self.config.node_breaker is None:
            return None
        breaker = self._node_breakers.get(node)
        if breaker is None:
            breaker = self._node_breakers[node] = CircuitBreaker(
                f"node/{node}", self.config.node_breaker)
        return breaker

    def pool_breaker(self, node: str, pool: str
                     ) -> Optional[CircuitBreaker]:
        if self.config.pool_breaker is None:
            return None
        key = (node, pool)
        breaker = self._pool_breakers.get(key)
        if breaker is None:
            breaker = self._pool_breakers[key] = CircuitBreaker(
                f"pool/{node}/{pool}", self.config.pool_breaker)
        return breaker

    def filter_candidates(self, platforms: Sequence, now: float) -> List:
        """Drop candidates whose dispatch breaker refuses traffic.

        Order is preserved (policies depend on it).  This is a
        non-claiming preview (:meth:`CircuitBreaker.would_allow`): no
        probe slots are taken, so unpicked candidates leak nothing.
        After the policy picks one candidate, the caller must claim the
        actual grant via :meth:`claim_attempt` and then report the
        outcome via :meth:`observe_attempt`.
        """
        if self.config.node_breaker is None:
            return list(platforms)
        allowed = []
        for platform in platforms:
            breaker = self.node_breaker(platform.node.name)
            if breaker.would_allow(now):
                allowed.append(platform)
        return allowed

    def claim_attempt(self, node: str, now: float) -> bool:
        """Claim the dispatch grant for the *picked* node.

        In the half-open state this takes one probe slot, which the
        caller must settle via :meth:`observe_attempt`.  Returns False
        if the breaker refuses (state moved since the preview).
        """
        breaker = self.node_breaker(node)
        return True if breaker is None else breaker.allow(now)

    def observe_attempt(self, node: str, now: float, ok: bool,
                        latency: float) -> None:
        """Feed one dispatch attempt's outcome to the node breaker."""
        breaker = self.node_breaker(node)
        if breaker is not None:
            breaker.record(now, ok, latency)

    def settle_attempt(self, node: str) -> None:
        """Settle a claimed grant without recording an outcome.

        For attempts abandoned for node-agnostic reasons (the
        invocation's own deadline): returns any half-open probe slot
        taken by :meth:`claim_attempt` so it cannot leak.
        """
        breaker = self.node_breaker(node)
        if breaker is not None:
            breaker.release_probe()

    # -- SLO + completion accounting ------------------------------------------

    def observe_result(self, function: str, now: float, e2e: float
                       ) -> None:
        self.completions += 1
        self.slo.observe(function, now, e2e)

    def record_abort(self, function: str, arrival: float, now: float,
                     reason: str) -> str:
        """An admitted invocation was given up on (deadline, budget...)."""
        self.abort_counts[reason] = self.abort_counts.get(reason, 0) + 1
        self.abort_log.append((function, arrival, reason))
        from repro.obs import hooks as obs_hooks
        obs = obs_hooks.active
        if obs is not None:
            obs.registry.inc("aborts_total", function=function,
                             reason=reason)
            if obs.tracer is not None:
                obs.tracer.instant("abort", now,
                                   args={"function": function,
                                         "reason": reason})
        return reason

    def degrade_active(self, now: float) -> bool:
        """Platforms: skip pool retries, degrade immediately."""
        return self.slo.degrade_active(now)

    # -- timeout hierarchy ----------------------------------------------------

    def invocation_deadline(self, arrival: float) -> Optional[float]:
        per_inv = self.config.timeouts.per_invocation
        return None if per_inv is None else arrival + per_inv

    def attempt_deadline(self, now: float,
                         invocation_deadline: Optional[float]
                         ) -> Optional[float]:
        """Absolute deadline of an attempt starting at ``now``.

        The per-attempt timeout never extends past the invocation
        deadline (the hierarchy is nested, not parallel).
        """
        per_att = self.config.timeouts.per_attempt
        if per_att is None:
            return invocation_deadline
        deadline = now + per_att
        if invocation_deadline is not None:
            deadline = min(deadline, invocation_deadline)
        return deadline

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict:
        """Deterministic run summary (sorted keys throughout)."""
        return {
            "admission": self.admission.summary(),
            "aborts": dict(sorted(self.abort_counts.items())),
            "completions": self.completions,
            "retry_budget": self.budget.summary(),
            "node_breakers": {
                name: b.summary()
                for name, b in sorted(self._node_breakers.items())},
            "pool_breakers": {
                f"{node}/{pool}": b.summary()
                for (node, pool), b in sorted(self._pool_breakers.items())},
            "slo": self.slo.report(self.sim.now),
        }
