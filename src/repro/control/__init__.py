"""repro.control — the overload-resilience control plane.

Admission control and load shedding, circuit breakers on shared
resources, a cluster-wide retry budget, a per-attempt/per-invocation
timeout hierarchy, and per-function SLO burn-rate accounting — layered
between workload arrival and cluster dispatch, off by default, and
deterministic end to end (virtual clock only, no RNG, no wall time).

Entry points: build a :class:`ControlConfig` (or start from
:func:`overload_defaults`) and pass it to
:class:`repro.serverless.cluster.Cluster` / ``make_trenv_cluster`` —
the cluster wires up a :class:`ControlPlane` and routes every
invocation through it.  See ``docs/robustness.md``.
"""

from repro.control.admission import AdmissionController, PendingEntry
from repro.control.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.control.config import (SHED_POLICIES, BreakerConfig,
                                  ControlConfig, RetryBudgetConfig,
                                  SLOTarget, TimeoutConfig,
                                  overload_defaults)
from repro.control.plane import ControlPlane
from repro.control.retry_budget import RetryBudget
from repro.control.slo import SLOTracker

__all__ = [
    "AdmissionController",
    "PendingEntry",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ControlConfig",
    "BreakerConfig",
    "RetryBudgetConfig",
    "SLOTarget",
    "TimeoutConfig",
    "SHED_POLICIES",
    "ControlPlane",
    "RetryBudget",
    "SLOTracker",
    "overload_defaults",
]
