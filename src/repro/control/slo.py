"""Per-function SLO targets with multi-window burn-rate accounting.

An invocation is *good* when its end-to-end latency meets the
function's :class:`~repro.control.config.SLOTarget` threshold, *bad*
otherwise.  The burn rate over a trailing window is::

    burn = bad_fraction_in_window / (1 - objective)

so burn 1.0 consumes the error budget exactly at the sustainable pace;
burn 14 over 30 s is the classic "page now" signal.  Control decisions
use the two-window AND rule (both the fast and slow windows must burn
above their thresholds) so a single slow invocation after a quiet hour
cannot trip shedding, and a long-resolved incident cannot keep it
tripped.

Only *completed* invocations feed the tracker.  Shed and aborted
invocations are deliberately excluded from the latency SLO: counting a
shed as an SLO miss would latch the controller (shedding keeps burn
high, high burn keeps shedding).  Sheds and aborts are surfaced
separately through the admission controller and the cluster result.

Counters are bucketed at :attr:`ControlConfig.slo_bucket` granularity
with running window sums, so observation and query are amortised O(1)
per invocation regardless of window length.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.control.config import ControlConfig, SLOTarget
from repro.obs import hooks as obs_hooks


class _WindowCounter:
    """Good/bad counts over one trailing window, bucketed and pruned."""

    __slots__ = ("window", "bucket", "_buckets", "good", "bad")

    def __init__(self, window: float, bucket: float):
        self.window = window
        self.bucket = min(bucket, window)
        #: FIFO of [bucket_index, good, bad]; running sums alongside.
        self._buckets: Deque[List[float]] = deque()
        self.good = 0
        self.bad = 0

    def observe(self, now: float, ok: bool) -> None:
        idx = int(now / self.bucket)
        buckets = self._buckets
        if not buckets or buckets[-1][0] != idx:
            buckets.append([idx, 0, 0])
        if ok:
            buckets[-1][1] += 1
            self.good += 1
        else:
            buckets[-1][2] += 1
            self.bad += 1
        self._prune(now)

    def _prune(self, now: float) -> None:
        # A bucket leaves the window when even its *end* is older than
        # the horizon, so the window never under-counts recent events.
        horizon_idx = int((now - self.window) / self.bucket)
        buckets = self._buckets
        while buckets and buckets[0][0] < horizon_idx:
            _idx, good, bad = buckets.popleft()
            self.good -= good
            self.bad -= bad

    def bad_fraction(self, now: float) -> float:
        self._prune(now)
        total = self.good + self.bad
        return self.bad / total if total else 0.0


class SLOTracker:
    """Burn-rate accounting for every function with a configured SLO."""

    def __init__(self, config: ControlConfig):
        self.config = config
        #: Materialized once: rebuilding dict(config.slos) per
        #: observation would be O(n_slos) on the per-invocation path.
        self._slos: Dict[str, SLOTarget] = dict(config.slos)
        #: function -> (fast window, slow window) counters.
        self._windows: Dict[str, Tuple[_WindowCounter, _WindowCounter]] = {}
        #: lifetime totals per function (good, bad).
        self._totals: Dict[str, List[int]] = {}
        for fn, slo in sorted(self._slos.items()):
            self._windows[fn] = (
                _WindowCounter(slo.fast_window, config.slo_bucket),
                _WindowCounter(slo.slow_window, config.slo_bucket))
            self._totals[fn] = [0, 0]

    def target(self, function: str) -> SLOTarget:
        return self._slos[function]

    def observe(self, function: str, now: float, e2e: float) -> None:
        """Feed one completed invocation's end-to-end latency."""
        windows = self._windows.get(function)
        if windows is None:
            return
        slo = self._slos[function]
        ok = e2e <= slo.threshold
        windows[0].observe(now, ok)
        windows[1].observe(now, ok)
        totals = self._totals[function]
        totals[0 if ok else 1] += 1
        obs = obs_hooks.active
        if obs is not None:
            obs.registry.inc("slo_observations_total", function=function,
                             outcome="good" if ok else "bad")

    def burn(self, function: str, now: float) -> Tuple[float, float]:
        """(fast, slow) burn rates; (0, 0) for unconfigured functions."""
        windows = self._windows.get(function)
        if windows is None:
            return 0.0, 0.0
        budget = self._slos[function].error_budget
        return (windows[0].bad_fraction(now) / budget,
                windows[1].bad_fraction(now) / budget)

    def shed_active(self, function: str, now: float) -> bool:
        """Both windows burning above threshold: shed new arrivals."""
        windows = self._windows.get(function)
        if windows is None:
            return False
        slo = self._slos[function]
        fast, slow = self.burn(function, now)
        return fast >= slo.fast_burn and slow >= slo.slow_burn

    def degrade_active(self, now: float) -> bool:
        """Any function's fast window burning at degrade level.

        Platforms consult this to skip pool-fault retries (jump straight
        down the degradation ladder): when latency budgets are already
        burning, a slow success beats a fast maybe.
        """
        for fn in self._windows:
            fast, _slow = self.burn(fn, now)
            if fast >= self.config.degrade_burn:
                return True
        return False

    def report(self, now: float) -> Dict[str, dict]:
        """Final per-function attainment + burn snapshot (sorted keys)."""
        out: Dict[str, dict] = {}
        for fn in sorted(self._windows):
            slo = self._slos[fn]
            good, bad = self._totals[fn]
            total = good + bad
            fast, slow = self.burn(fn, now)
            out[fn] = {
                "threshold": slo.threshold,
                "objective": slo.objective,
                "observed": total,
                "good": good,
                "bad": bad,
                "attainment": good / total if total else 1.0,
                "met": (good / total if total else 1.0) >= slo.objective,
                "fast_burn": fast,
                "slow_burn": slow,
            }
        return out
