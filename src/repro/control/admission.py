"""Admission control: concurrency caps, bounded queues, load shedding.

Sits at the front door of the cluster dispatcher.  Each function has a
rack-wide in-flight cap (:meth:`ControlConfig.concurrency_for`); work
beyond the cap waits in a bounded per-function pending queue, and work
beyond the queue is *shed* — deterministically, per the configured drop
policy:

* ``drop-newest`` — reject the arriving invocation (classic tail drop);
* ``drop-oldest`` — evict the head of the queue and admit the newcomer
  (adaptive LIFO: under overload the freshest request is the one whose
  client is still waiting);
* ``deadline`` — evict the candidate (queued or arriving) with the
  least deadline slack: it is the most likely to be wasted work anyway;
* ``priority`` — evict the least important candidate (highest priority
  number), newest first on ties.

A queued invocation's gate is a one-shot simulator :class:`Event`; on
release the slot is handed directly to the next runnable entry, so
admission never over-subscribes and never loses a slot.  Entries whose
per-invocation deadline passed while queued are shed (``expired``) at
hand-off time rather than dispatched into certain failure.  Burn-rate
shedding (:meth:`SLOTracker.shed_active`) rejects at the door before
any queueing.

Everything is driven by the virtual clock and insertion order — no RNG,
no wall time — so shed decisions are bit-identical across runs.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.control.config import ControlConfig
from repro.control.slo import SLOTracker
from repro.obs import hooks as obs_hooks
from repro.sim.engine import Event, Simulator

#: Gate payloads: the dispatcher waits on entry.gate and receives one.
GO = "go"


class PendingEntry:
    """One queued invocation waiting for an admission slot."""

    __slots__ = ("function", "arrival", "deadline", "priority", "seq",
                 "gate", "ctx", "t_enq")

    def __init__(self, function: str, arrival: float,
                 deadline: Optional[float], priority: int, seq: int,
                 gate: Event, ctx=None, t_enq: float = 0.0):
        self.function = function
        self.arrival = arrival
        self.deadline = deadline
        self.priority = priority
        self.seq = seq
        self.gate = gate
        self.ctx = ctx
        self.t_enq = t_enq


class AdmissionController:
    """Per-function concurrency gate with deterministic shedding."""

    def __init__(self, sim: Simulator, config: ControlConfig,
                 slo: SLOTracker):
        self.sim = sim
        self.config = config
        self.slo = slo
        self._inflight: Dict[str, int] = {}
        self._queues: Dict[str, List[PendingEntry]] = {}
        self._seq = itertools.count()
        self.admitted = 0
        self.queued = 0
        #: reason -> count, and the full (function, arrival, reason) log.
        self.shed_counts: Dict[str, int] = {}
        self.shed_log: List[Tuple[str, float, str]] = []

    # -- arrival side ---------------------------------------------------------

    def request(self, function: str, arrival: float, now: float,
                deadline: Optional[float], ctx=None
                ) -> Tuple[str, Optional[PendingEntry]]:
        """Ask for a slot.  Returns one of:

        * ``("admit", None)`` — go now;
        * ``("wait", entry)`` — yield ``entry.gate``; its payload is
          :data:`GO` (slot handed over) or ``"shed:<reason>"``;
        * ``("shed", reason)`` — rejected outright.
        """
        if self.slo.shed_active(function, now):
            return "shed", self._shed(function, arrival, now, "burn")
        limit = self.config.concurrency_for(function)
        if limit is None:
            self.admitted += 1
            return "admit", None
        running = self._inflight.get(function, 0)
        if running < limit:
            self._inflight[function] = running + 1
            self.admitted += 1
            return "admit", None
        queue = self._queues.setdefault(function, [])
        entry = PendingEntry(function, arrival, deadline,
                             self.config.priority_for(function),
                             next(self._seq), self.sim.event(),
                             ctx=ctx, t_enq=now)
        if len(queue) < self.config.queue_capacity:
            queue.append(entry)
            self.queued += 1
            return "wait", entry
        victim = self._pick_victim(queue, entry)
        if victim is entry:
            return "shed", self._shed(function, arrival, now, "queue-full")
        queue.remove(victim)
        victim.gate.trigger("shed:" + self._shed(
            victim.function, victim.arrival, now, "evicted"))
        queue.append(entry)
        self.queued += 1
        return "wait", entry

    def _pick_victim(self, queue: List[PendingEntry],
                     newcomer: PendingEntry) -> PendingEntry:
        policy = self.config.shed_policy
        if policy == "drop-newest":
            return newcomer
        if policy == "drop-oldest":
            # queue_capacity=0 means no queue at all: the newcomer is
            # the only candidate there is.
            return queue[0] if queue else newcomer
        candidates = queue + [newcomer]
        if policy == "deadline":
            # Least slack first; deadline-less entries are never wasted
            # work, so they lose only to each other (then: newest).
            return min(candidates,
                       key=lambda e: (e.deadline is None,
                                      e.deadline if e.deadline is not None
                                      else -e.seq))
        # priority: least important loses; newest first on ties.
        return max(candidates, key=lambda e: (e.priority, e.seq))

    def _shed(self, function: str, arrival: float, now: float,
              reason: str) -> str:
        self.shed_counts[reason] = self.shed_counts.get(reason, 0) + 1
        self.shed_log.append((function, arrival, reason))
        obs = obs_hooks.active
        if obs is not None:
            obs.registry.inc("sheds_total", function=function,
                             reason=reason)
            if obs.tracer is not None:
                obs.tracer.instant("shed", now,
                                   args={"function": function,
                                         "reason": reason})
        return reason

    # -- completion side ------------------------------------------------------

    def release(self, function: str, now: float, ctx=None) -> None:
        """An admitted invocation finished: hand its slot onward."""
        if self.config.concurrency_for(function) is None:
            return
        queue = self._queues.get(function)
        while queue:
            entry = queue.pop(0)
            if entry.deadline is not None and now >= entry.deadline:
                # Would miss its deadline before even starting: shed it
                # and keep the slot for the next entry.
                entry.gate.trigger("shed:" + self._shed(
                    entry.function, entry.arrival, now, "expired"))
                continue
            self.admitted += 1
            obs = obs_hooks.active
            if obs is not None and obs.tracer is not None \
                    and entry.ctx is not None:
                obs.tracer.link("slot_grant", entry.t_enq, now,
                                src=(ctx if ctx is not None else 0),
                                dst=entry.ctx,
                                args={"function": entry.function})
            entry.gate.trigger(GO)   # slot transferred, count unchanged
            return
        running = self._inflight.get(function, 0)
        self._inflight[function] = max(0, running - 1)

    def cancel(self, entry: PendingEntry) -> None:
        """A waiter was interrupted: forget it (or give back its slot).

        Mirrors ``ServerlessPlatform._admit``: if the entry is still
        queued it simply leaves; if the slot arrived in the same tick as
        the interrupt, the slot is released onward.
        """
        queue = self._queues.get(entry.function)
        if queue is not None and entry in queue:
            queue.remove(entry)
        elif entry.gate.triggered and entry.gate.value == GO:
            self.release(entry.function, self.sim.now)

    # -- reporting ------------------------------------------------------------

    def queue_depth(self, function: str) -> int:
        return len(self._queues.get(function, ()))

    def total_queued_now(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def summary(self) -> dict:
        return {
            "admitted": self.admitted,
            "queued": self.queued,
            "shed": dict(sorted(self.shed_counts.items())),
            "shed_total": len(self.shed_log),
        }
