"""Circuit breaker on the virtual clock.

One breaker guards one shared resource — a dispatch target (node) or a
memory-pool tier as seen from one node.  The state machine is the
classic three-state one, driven entirely by the simulated clock passed
into every call, so runs are bit-identical for a given seed:

* **closed** — operations flow; outcomes land in a trailing window.
  When the window holds at least ``min_samples`` observations and the
  failure fraction (or mean latency, if configured) crosses its
  threshold, the breaker opens.
* **open** — operations are refused outright (``allow`` is False) for
  ``open_duration`` of virtual time.  Refusals are what let the rest of
  the system degrade *before* piling more work on a dying resource.
* **half-open** — after the cool-off, up to ``half_open_probes`` trial
  operations pass through.  ``close_after`` consecutive successes close
  the breaker; any probe failure re-opens it (and restarts the clock).

State transitions are emitted as labelled metrics through
:mod:`repro.obs.hooks` (host-side only — no simulated cost).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.control.config import BreakerConfig
from repro.obs import hooks as obs_hooks

#: Breaker states (string-valued for cheap reporting).
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Error/latency-triggered breaker for one named resource."""

    __slots__ = ("name", "config", "state", "_window", "_failures",
                 "_latency_sum", "_opened_at", "_probes_in_flight",
                 "_probe_successes", "transitions", "rejections",
                 "open_count")

    def __init__(self, name: str, config: BreakerConfig):
        self.name = name
        self.config = config
        self.state = CLOSED
        #: trailing (time, ok, latency) observations, pruned lazily.
        self._window: Deque[Tuple[float, bool, float]] = deque()
        self._failures = 0
        self._latency_sum = 0.0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.transitions = 0
        self.rejections = 0
        self.open_count = 0

    # -- queries --------------------------------------------------------------

    def would_allow(self, now: float) -> bool:
        """Non-claiming preview: would :meth:`allow` grant at ``now``?

        Used to filter candidate sets without claiming half-open probe
        slots (or counting rejections) for resources that end up not
        being picked.  Never mutates state.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            # Past the cool-off, allow() would half-open and grant.
            return now - self._opened_at >= self.config.open_duration
        return self._probes_in_flight < self.config.half_open_probes

    def allow(self, now: float) -> bool:
        """May an operation proceed at virtual time ``now``?

        In the half-open state a True return *claims* one probe slot;
        the caller must report the probe's outcome via :meth:`record`.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self._opened_at < self.config.open_duration:
                self.rejections += 1
                return False
            self._transition(HALF_OPEN, now)
            self._probes_in_flight = 0
            self._probe_successes = 0
        # HALF_OPEN: hand out a bounded number of probe slots.
        if self._probes_in_flight < self.config.half_open_probes:
            self._probes_in_flight += 1
            return True
        self.rejections += 1
        return False

    # -- observations ---------------------------------------------------------

    def release_probe(self) -> None:
        """Give back a claimed grant without recording an outcome.

        For attempts abandoned for reasons that do not implicate this
        resource (e.g. the invocation's own total-time deadline
        expired): in the half-open state the probe slot returns to the
        pool so the breaker cannot wedge with all slots leaked.
        """
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)

    def record(self, now: float, ok: bool, latency: float = 0.0) -> None:
        """Report one operation outcome observed at ``now``."""
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            if not ok:
                self._open(now)
                return
            self._probe_successes += 1
            if self._probe_successes >= self.config.close_after:
                self._transition(CLOSED, now)
                self._window.clear()
                self._failures = 0
                self._latency_sum = 0.0
            return
        if self.state == OPEN:
            # Straggler from before the breaker opened: ignore — the
            # window restarts from scratch when we close again.
            return
        self._window.append((now, ok, latency))
        if not ok:
            self._failures += 1
        self._latency_sum += latency
        self._prune(now)
        self._maybe_open(now)

    def _prune(self, now: float) -> None:
        window = self._window
        horizon = now - self.config.window
        while window and window[0][0] < horizon:
            _t, ok, latency = window.popleft()
            if not ok:
                self._failures -= 1
            self._latency_sum -= latency

    def _maybe_open(self, now: float) -> None:
        n = len(self._window)
        if n < self.config.min_samples:
            return
        if self._failures / n >= self.config.failure_threshold:
            self._open(now)
            return
        lat_thresh = self.config.latency_threshold
        if lat_thresh is not None and self._latency_sum / n >= lat_thresh:
            self._open(now)

    def _open(self, now: float) -> None:
        self._transition(OPEN, now)
        self._opened_at = now
        self.open_count += 1

    def _transition(self, state: str, now: float) -> None:
        if state == self.state:
            return
        self.state = state
        self.transitions += 1
        obs = obs_hooks.active
        if obs is not None:
            obs.registry.inc("breaker_transitions_total",
                             breaker=self.name, to=state)
            if obs.tracer is not None:
                obs.tracer.instant(f"breaker:{state}", now,
                                   args={"breaker": self.name})

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict:
        return {
            "state": self.state,
            "transitions": self.transitions,
            "opens": self.open_count,
            "rejections": self.rejections,
        }
