"""Configuration surface of the overload-resilience control plane.

Everything here is plain frozen-dataclass data, validated eagerly, and
**off by default**: a :class:`Cluster <repro.serverless.cluster.Cluster>`
built without a :class:`ControlConfig` takes exactly the pre-existing
dispatch path, instruction for instruction, so golden results are
unchanged.  Passing a config arms the full plane
(:class:`repro.control.plane.ControlPlane`): admission control and load
shedding, circuit breakers, the cluster-wide retry budget, the timeout
hierarchy and SLO burn-rate accounting.

The knobs follow the same philosophy as :mod:`repro.optflags`: one
declarative object, sampled at cluster construction, with the default
configuration chosen so a healthy, under-provisioned-by-less-than-2x
rack behaves almost identically to an uncontrolled one (nothing sheds,
no breaker opens, budgets never run dry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: Deterministic drop policies for a full pending queue (who gets shed).
SHED_POLICIES = ("drop-newest", "drop-oldest", "deadline", "priority")


@dataclass(frozen=True)
class SLOTarget:
    """Per-function latency SLO with multi-window burn-rate alerting.

    The error budget is ``1 - objective``; an invocation whose e2e
    latency exceeds ``threshold`` (or that never completes) consumes
    budget.  Burn rate over a window is the observed bad fraction
    divided by the budget, so burn 1.0 spends the budget exactly at the
    sustainable rate.  Shedding engages only when **both** windows burn
    above their thresholds (the SRE multi-window rule: the short window
    proves the problem is current, the long one that it is material).
    """

    threshold: float                 # e2e objective latency (seconds)
    objective: float = 0.99          # fraction of invocations under it
    fast_window: float = 30.0        # seconds
    slow_window: float = 300.0       # seconds
    fast_burn: float = 14.0          # burn-rate triggers (SRE defaults)
    slow_burn: float = 6.0

    def __post_init__(self):
        if self.threshold <= 0:
            raise ValueError(f"non-positive SLO threshold: {self.threshold}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1): {self.objective}")
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ValueError("windows must satisfy 0 < fast <= slow")
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn-rate thresholds must be positive")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class BreakerConfig:
    """Error/latency thresholds of one circuit-breaker family.

    A breaker opens when, over the trailing ``window`` with at least
    ``min_samples`` observations, the failure fraction reaches
    ``failure_threshold`` *or* mean latency reaches ``latency_threshold``
    (if set).  It stays open for ``open_duration`` of virtual time, then
    half-opens: up to ``half_open_probes`` trial operations pass
    through; ``close_after`` consecutive probe successes close it, any
    probe failure re-opens it.
    """

    window: float = 10.0
    min_samples: int = 8
    failure_threshold: float = 0.5
    latency_threshold: Optional[float] = None
    open_duration: float = 5.0
    half_open_probes: int = 2
    close_after: int = 2

    def __post_init__(self):
        if self.window <= 0:
            raise ValueError("breaker window must be positive")
        if self.min_samples < 1:
            raise ValueError("breaker min_samples must be >= 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.latency_threshold is not None and self.latency_threshold <= 0:
            raise ValueError("latency_threshold must be positive")
        if self.open_duration <= 0:
            raise ValueError("open_duration must be positive")
        if self.half_open_probes < 1 or self.close_after < 1:
            raise ValueError("half_open_probes/close_after must be >= 1")


@dataclass(frozen=True)
class RetryBudgetConfig:
    """Cluster-wide token bucket bounding retry/re-dispatch amplification.

    Each admitted invocation earns ``earn_per_invocation`` tokens (a
    retry *ratio*: 0.1 means at most ~10% of traffic may be retries in
    steady state); each crash re-dispatch or budgeted pool retry spends
    one.  The bucket starts full at ``capacity``, which also caps the
    burst of retries a quiet period can bank.
    """

    capacity: float = 64.0
    earn_per_invocation: float = 0.1

    def __post_init__(self):
        if self.capacity <= 0:
            raise ValueError("retry budget capacity must be positive")
        if self.earn_per_invocation < 0:
            raise ValueError("earn_per_invocation must be >= 0")


@dataclass(frozen=True)
class TimeoutConfig:
    """The deterministic timeout hierarchy: per-attempt < per-invocation.

    ``per_attempt`` bounds one dispatch attempt on one host (timing out
    re-dispatches, budget permitting); ``per_invocation`` bounds the
    whole invocation from its arrival, queueing included (timing out
    aborts).  Either may be None (disabled); when both are set the
    hierarchy is validated.  The per-function SLO threshold sits above
    both — :meth:`ControlConfig.validate_hierarchy` checks it.
    """

    per_attempt: Optional[float] = None
    per_invocation: Optional[float] = None

    def __post_init__(self):
        if self.per_attempt is not None and self.per_attempt <= 0:
            raise ValueError("per_attempt timeout must be positive")
        if self.per_invocation is not None and self.per_invocation <= 0:
            raise ValueError("per_invocation timeout must be positive")
        if (self.per_attempt is not None
                and self.per_invocation is not None
                and self.per_attempt > self.per_invocation):
            raise ValueError(
                f"timeout hierarchy violated: per_attempt "
                f"{self.per_attempt} > per_invocation {self.per_invocation}")


@dataclass(frozen=True)
class ControlConfig:
    """The whole control plane, declaratively.

    ``default_concurrency`` caps in-flight invocations per function
    across the rack (None = unlimited — admission then never queues);
    ``concurrency_limits`` overrides per function.  ``queue_capacity``
    bounds the per-function pending queue; overflow sheds per
    ``shed_policy``.  ``priorities`` (lower = more important) feed the
    "priority" policy; unlisted functions get ``default_priority``.
    """

    default_concurrency: Optional[int] = None
    concurrency_limits: Mapping[str, int] = field(default_factory=dict)
    queue_capacity: int = 64
    shed_policy: str = "drop-newest"
    priorities: Mapping[str, int] = field(default_factory=dict)
    default_priority: int = 100
    node_breaker: Optional[BreakerConfig] = field(
        default_factory=BreakerConfig)
    pool_breaker: Optional[BreakerConfig] = field(
        default_factory=BreakerConfig)
    retry_budget: RetryBudgetConfig = field(
        default_factory=RetryBudgetConfig)
    timeouts: TimeoutConfig = field(default_factory=TimeoutConfig)
    slos: Mapping[str, SLOTarget] = field(default_factory=dict)
    #: Fast-window burn rate at which platforms flip to degrade mode
    #: (skip pool-fault retries, go straight down the ladder).
    degrade_burn: float = 6.0
    #: Virtual seconds between SLO bucket boundaries (accounting grain).
    slo_bucket: float = 5.0

    def __post_init__(self):
        if self.default_concurrency is not None \
                and self.default_concurrency < 1:
            raise ValueError("default_concurrency must be >= 1")
        for fn, limit in sorted(dict(self.concurrency_limits).items()):
            if limit < 1:
                raise ValueError(
                    f"concurrency limit for {fn!r} must be >= 1")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(f"unknown shed policy {self.shed_policy!r}; "
                             f"known: {SHED_POLICIES}")
        if self.degrade_burn <= 0:
            raise ValueError("degrade_burn must be positive")
        if self.slo_bucket <= 0:
            raise ValueError("slo_bucket must be positive")
        self.validate_hierarchy()

    # -- derived lookups -----------------------------------------------------

    def concurrency_for(self, function: str) -> Optional[int]:
        limit = dict(self.concurrency_limits).get(function)
        return self.default_concurrency if limit is None else limit

    def priority_for(self, function: str) -> int:
        return dict(self.priorities).get(function, self.default_priority)

    def validate_hierarchy(self) -> None:
        """per-attempt < per-invocation < per-function SLO threshold."""
        per_inv = self.timeouts.per_invocation
        if per_inv is None:
            return
        for fn, slo in sorted(dict(self.slos).items()):
            if slo.threshold < per_inv:
                raise ValueError(
                    f"timeout hierarchy violated for {fn!r}: SLO "
                    f"threshold {slo.threshold} < per_invocation "
                    f"timeout {per_inv}")


def overload_defaults(functions: Tuple[str, ...] = (),
                      concurrency: int = 32,
                      slo_threshold: float = 1.0) -> ControlConfig:
    """A reasonable overload-protection preset for benches and tests."""
    slos: Dict[str, SLOTarget] = {
        fn: SLOTarget(threshold=slo_threshold) for fn in functions}
    return ControlConfig(
        default_concurrency=concurrency,
        queue_capacity=4 * concurrency,
        shed_policy="deadline",
        timeouts=TimeoutConfig(per_attempt=slo_threshold / 2,
                               per_invocation=slo_threshold),
        slos=slos,
    )
