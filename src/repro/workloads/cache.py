"""Host-side memoisation for workload synthesis and trace parsing.

Workload generation is deterministic (seeded RNG, pure inputs), so a
(parameters -> events) cache only saves host time — simulated results
cannot change.  Gated on :data:`repro.optflags.trace_cache`, like the
access-trace memo in :mod:`repro.workloads.functions`.  Caches are
bounded LRU so sweep runners revisiting a few configurations hit while
long parameter scans cannot grow without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

from repro import optflags

T = TypeVar("T")

#: Entries kept per cache (a sweep rarely touches more configurations).
MAX_ENTRIES = 64


def memoized(cache: "OrderedDict[Hashable, T]", key: Hashable,
             build: Callable[[], T]) -> T:
    """``build()`` once per ``key``; LRU-bounded, flag-gated.

    Callers must treat the returned value as immutable (or copy before
    mutating) — it is shared with future calls.
    """
    if not optflags.trace_cache:
        return build()
    hit = cache.get(key)
    if hit is None:
        hit = build()
        cache[key] = hit
        if len(cache) > MAX_ENTRIES:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return hit
