"""Synthesised Azure Functions trace (§9.3).

The public Azure dataset (Shahrad et al., ATC'20) records invocation
counts per function per minute; its hallmarks are a heavy-tailed
popularity distribution (a few functions dominate), mild diurnality, and
within-minute randomness.  The paper redistributes counts randomly within
each minute "with a probability of creating skew or bursty loads" — we do
the same: per-minute Poisson counts from a per-function base rate, placed
either uniformly in the minute or skewed into a burst window.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import List, Sequence

from repro.mem.layout import GB
from repro.sim.rng import SeededRNG
from repro.workloads.cache import memoized
from repro.workloads.functions import FUNCTIONS, FunctionProfile
from repro.workloads.synthetic import ArrivalEvent, Workload

#: (seed, function names, duration, rate, skew, zipf) -> sorted events.
#: Synthesis is seeded-deterministic, so the memo only saves host time
#: (repeated sweep shards re-request identical parameter tuples).
_EVENTS_CACHE: "OrderedDict[tuple, List[ArrivalEvent]]" = OrderedDict()  # simlint: shard-safe (deterministic memo: value is a pure function of the key)


def make_azure_workload(seed: int = 0,
                        functions: Sequence[FunctionProfile] = FUNCTIONS,
                        duration: float = 1800.0,
                        mean_rate_per_min: float = 14.0,
                        skew_probability: float = 0.3,
                        zipf_s: float = 1.1) -> Workload:
    """Azure-shaped workload: Zipf popularity + diurnal + minute bursts."""
    key = (seed, tuple(f.name for f in functions), duration,
           mean_rate_per_min, skew_probability, zipf_s)
    events = memoized(
        _EVENTS_CACHE, key,
        lambda: _synthesise(seed, functions, duration, mean_rate_per_min,
                            skew_probability, zipf_s))
    return Workload(name="Azure", events=list(events), duration=duration,
                    soft_cap_bytes=64 * GB)


def _synthesise(seed, functions, duration, mean_rate_per_min,
                skew_probability, zipf_s) -> List[ArrivalEvent]:
    rng = SeededRNG(seed, "azure")
    minutes = int(math.ceil(duration / 60.0))
    # Zipf popularity over the function suite.
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(functions))]
    order = rng.shuffled(range(len(functions)))
    total_w = sum(weights)
    events: List[ArrivalEvent] = []
    for minute in range(minutes):
        # Mild diurnal modulation across the run.
        phase = 2.0 * math.pi * minute / max(minutes, 1)
        modulation = 1.0 + 0.35 * math.sin(phase)
        for rank, func_idx in enumerate(order):
            func = functions[func_idx]
            lam = mean_rate_per_min * modulation * weights[rank] / total_w
            count = int(rng.poisson_counts(lam, 1)[0])
            if count == 0:
                continue
            frng = rng.fork(f"m{minute}/{func.name}")
            if frng.random() < skew_probability:
                # Burst: squeeze all invocations into a short window.
                start = frng.uniform(0.0, 50.0)
                times = [start + frng.uniform(0.0, 4.0) for _ in range(count)]
            else:
                times = [frng.uniform(0.0, 60.0) for _ in range(count)]
            for offset in times:
                t = minute * 60.0 + offset
                if t < duration:
                    events.append(ArrivalEvent(t, func.name))
    events.sort()
    return events
