"""Synthesised Huawei serverless trace (§9.3).

The Huawei characterisation (Joosen et al., SoCC'23) reports *far*
spikier behaviour than Azure: sub-minute request spikes of two orders of
magnitude, with strong periodic components.  We synthesise per-minute
counts with a Pareto-distributed spike multiplier on top of a periodic
base, then place invocations within each minute with heavy skew.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import List, Sequence

from repro.mem.layout import GB
from repro.sim.rng import SeededRNG
from repro.workloads.cache import memoized
from repro.workloads.functions import FUNCTIONS, FunctionProfile
from repro.workloads.synthetic import ArrivalEvent, Workload

#: (seed, function names, duration, rate, spike prob/shape) -> events.
_EVENTS_CACHE: "OrderedDict[tuple, List[ArrivalEvent]]" = OrderedDict()  # simlint: shard-safe (deterministic memo: value is a pure function of the key)


def make_huawei_workload(seed: int = 0,
                         functions: Sequence[FunctionProfile] = FUNCTIONS,
                         duration: float = 1800.0,
                         mean_rate_per_min: float = 10.0,
                         spike_probability: float = 0.12,
                         spike_shape: float = 1.5) -> Workload:
    """Huawei-shaped workload: periodic base + rare violent spikes."""
    key = (seed, tuple(f.name for f in functions), duration,
           mean_rate_per_min, spike_probability, spike_shape)
    events = memoized(
        _EVENTS_CACHE, key,
        lambda: _synthesise(seed, functions, duration, mean_rate_per_min,
                            spike_probability, spike_shape))
    return Workload(name="Huawei", events=list(events), duration=duration,
                    soft_cap_bytes=64 * GB)


def _synthesise(seed, functions, duration, mean_rate_per_min,
                spike_probability, spike_shape) -> List[ArrivalEvent]:
    rng = SeededRNG(seed, "huawei")
    minutes = int(math.ceil(duration / 60.0))
    events: List[ArrivalEvent] = []
    n_funcs = len(functions)
    for minute in range(minutes):
        for idx, func in enumerate(functions):
            frng = rng.fork(f"m{minute}/{func.name}")
            # Strong per-function periodicity with distinct periods
            # (Huawei observes minute-of-hour and request-type cycles).
            period = 7 + 2 * idx
            base = mean_rate_per_min / n_funcs
            periodic = base * (1.0 + 0.8 * math.sin(
                2.0 * math.pi * minute / period))
            lam = max(periodic, 0.02)
            if frng.random() < spike_probability:
                lam *= frng.pareto(spike_shape, 4.0)
            count = int(frng.poisson_counts(lam, 1)[0])
            if count == 0:
                continue
            # Within-minute placement: spikes concentrate in ~5 seconds.
            spiky = count > 3 * base
            for _ in range(count):
                if spiky:
                    offset = frng.uniform(0.0, 5.0) + 30.0 * frng.random()
                else:
                    offset = frng.uniform(0.0, 60.0)
                t = minute * 60.0 + min(offset, 59.9)
                if t < duration:
                    events.append(ArrivalEvent(t, func.name))
    events.sort()
    return events
