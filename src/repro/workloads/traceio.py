"""Loading real invocation traces from disk.

The Azure Functions dataset (Shahrad et al.) ships *wide* CSVs — one row
per function hash with per-minute invocation-count columns "1".."1440" —
while the Huawei dataset (Joosen et al.) is commonly redistributed in
*long* form (minute, function, count).  Both reduce to the same
per-minute count matrix, which the paper then randomises within each
minute ("we randomly distributed those within each minute, with a
probability of creating skew or bursty loads", §9.3).

Loaders here accept either layout and synthesise a
:class:`~repro.workloads.synthetic.Workload`, mapping trace functions
onto the Table-4 suite round-robin by popularity rank.
"""

from __future__ import annotations

import csv
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.mem.layout import GB
from repro.sim.rng import SeededRNG
from repro.workloads.cache import memoized
from repro.workloads.functions import FUNCTIONS, FunctionProfile
from repro.workloads.synthetic import ArrivalEvent, Workload

#: minute index -> {trace function name -> invocation count}
CountMatrix = Dict[int, Dict[str, int]]

#: (resolved path, mtime_ns, size) -> parsed count matrix.  The file
#: signature invalidates the entry when the trace is rewritten; callers
#: get a per-minute copy so mutating a result cannot poison the cache.
_COUNTS_CACHE: "OrderedDict[tuple, CountMatrix]" = OrderedDict()  # simlint: shard-safe (deterministic memo: value is a pure function of the key)


def load_counts_csv(path) -> CountMatrix:
    """Parse a trace CSV in wide (Azure) or long (Huawei) layout.

    Parses are memoised by (path, mtime, size): sweep shards replaying
    the same trace at different seeds pay for one parse, not one per
    configuration (:data:`repro.optflags.trace_cache`).
    """
    path = Path(path)
    stat = path.stat()
    key = (str(path.resolve()), stat.st_mtime_ns, stat.st_size)
    counts = memoized(_COUNTS_CACHE, key, lambda: _parse_counts_csv(path))
    return {minute: dict(per_min) for minute, per_min in counts.items()}


def _parse_counts_csv(path: Path) -> CountMatrix:
    with path.open(newline="") as fh:
        rows = list(csv.reader(fh))
    if not rows or len(rows) < 2:
        raise ValueError(f"{path}: empty trace file")
    header = [h.strip() for h in rows[0]]
    lowered = [h.lower() for h in header]
    if "minute" in lowered and "count" in lowered:
        return _parse_long(header, rows[1:], path)
    return _parse_wide(header, rows[1:], path)


def _parse_long(header: List[str], rows, path) -> CountMatrix:
    lowered = [h.lower() for h in header]
    m_idx = lowered.index("minute")
    c_idx = lowered.index("count")
    f_idx = next((i for i, h in enumerate(lowered)
                  if h in ("function", "func", "app", "name")), None)
    if f_idx is None:
        raise ValueError(f"{path}: long format needs a function column")
    counts: CountMatrix = {}
    for lineno, row in enumerate(rows, start=2):
        if not row or not "".join(row).strip():
            continue
        try:
            minute = int(row[m_idx])
            count = int(row[c_idx])
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: bad number") from exc
        if minute < 0 or count < 0:
            raise ValueError(f"{path}:{lineno}: negative value")
        per_min = counts.setdefault(minute, {})
        fn = row[f_idx].strip()
        per_min[fn] = per_min.get(fn, 0) + count
    return counts


def _parse_wide(header: List[str], rows, path) -> CountMatrix:
    # First column: function id; remaining numeric-named columns are
    # minute indices (Azure: "1".."1440").
    minute_cols: List[Tuple[int, int]] = []
    for i, name in enumerate(header[1:], start=1):
        try:
            minute_cols.append((i, int(name)))
        except ValueError:
            continue  # metadata columns (owner hash, trigger, ...)
    if not minute_cols:
        raise ValueError(f"{path}: wide format needs numeric minute columns")
    counts: CountMatrix = {}
    for lineno, row in enumerate(rows, start=2):
        if not row or not "".join(row).strip():
            continue
        fn = row[0].strip()
        for col, minute in minute_cols:
            raw = row[col].strip() if col < len(row) else ""
            if not raw:
                continue
            try:
                count = int(raw)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad count") from exc
            if count:
                counts.setdefault(minute - 1, {})[fn] = count
    return counts


def map_trace_functions(counts: CountMatrix,
                        suite: Sequence[FunctionProfile] = FUNCTIONS
                        ) -> Dict[str, str]:
    """Assign trace functions to suite profiles by popularity rank.

    The most-invoked trace function maps to the first suite function,
    and so on round-robin — preserving the trace's popularity skew while
    exercising the whole suite.
    """
    totals: Dict[str, int] = {}
    for per_min in counts.values():
        for fn, c in per_min.items():
            totals[fn] = totals.get(fn, 0) + c
    ranked = sorted(totals, key=lambda f: (-totals[f], f))
    return {fn: suite[i % len(suite)].name for i, fn in enumerate(ranked)}


def workload_from_counts(counts: CountMatrix, name: str, seed: int = 0,
                         skew_probability: float = 0.3,
                         mapping: Optional[Dict[str, str]] = None,
                         suite: Sequence[FunctionProfile] = FUNCTIONS
                         ) -> Workload:
    """The §9.3 methodology: place each minute's counts randomly, with a
    probability of concentrating them into a burst window."""
    rng = SeededRNG(seed, f"traceio/{name}")
    mapping = mapping or map_trace_functions(counts, suite)
    events: List[ArrivalEvent] = []
    for minute in sorted(counts):
        for fn, count in sorted(counts[minute].items()):
            target = mapping[fn]
            frng = rng.fork(f"m{minute}/{fn}")
            if frng.random() < skew_probability:
                start = frng.uniform(0.0, 50.0)
                offsets = [start + frng.uniform(0.0, 4.0)
                           for _ in range(count)]
            else:
                offsets = [frng.uniform(0.0, 60.0) for _ in range(count)]
            for off in offsets:
                events.append(ArrivalEvent(minute * 60.0 + off, target))
    events.sort()
    duration = (max(counts) + 1) * 60.0 if counts else 0.0
    return Workload(name=name, events=events, duration=duration,
                    soft_cap_bytes=64 * GB)


def load_workload(path, name: Optional[str] = None, seed: int = 0,
                  skew_probability: float = 0.3) -> Workload:
    """One-call loader: CSV file -> runnable workload."""
    counts = load_counts_csv(path)
    return workload_from_counts(counts, name or Path(path).stem, seed=seed,
                                skew_probability=skew_probability)
