"""Synthetic workloads W1 (bursty) and W2 (diurnal) from §9.1.

W1 replays bursty traffic whose inter-burst gaps exceed the keep-alive
threshold, defeating warm caching; W2 emulates diurnal fluctuations while
cycling through functions under a tight (32 GB) memory cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Sequence, Tuple

import math

import numpy as np

from repro.mem.layout import GB
from repro.sim.rng import SeededRNG
from repro.workloads.functions import FUNCTIONS, FunctionProfile


class ArrivalEvent(NamedTuple):
    """One invocation request: when, and of which function.

    A named tuple rather than a (frozen) dataclass: trace-scale
    schedules construct hundreds of thousands of these, and tuple
    construction skips the per-field ``object.__setattr__`` a frozen
    dataclass pays.  Ordering/equality are the tuple's
    ``(time, function)`` — exactly the tie order scheduling relies on.
    """

    time: float
    function: str


@dataclass
class Workload:
    """A named arrival schedule plus its platform configuration."""

    name: str
    events: List[ArrivalEvent]
    duration: float
    soft_cap_bytes: Optional[int] = 64 * GB
    keep_alive: float = 600.0          # seconds, §9.1 schedule policy
    warmup: float = 0.0                # measurement excludes t < warmup

    @property
    def n_invocations(self) -> int:
        return len(self.events)

    def functions_used(self) -> List[str]:
        return sorted({e.function for e in self.events})

    def times(self) -> np.ndarray:
        """Arrival times as a sorted float array (cached per event list)."""
        cached = getattr(self, "_times_cache", None)
        if cached is None or cached.size != len(self.events):
            cached = np.fromiter((e.time for e in self.events),
                                 dtype=float, count=len(self.events))
            self._times_cache = cached
        return cached

    @classmethod
    def from_arrays(cls, name: str, times: np.ndarray,
                    function_names: Sequence[str], duration: float,
                    codes: Optional[np.ndarray] = None,
                    **kwargs) -> "Workload":
        """Build a workload from precomputed parallel arrays.

        ``times`` need not be sorted: a lexsort orders by
        ``(time, function)`` — the tie order :meth:`validate` expects —
        so the events are built directly in final order, with no
        comparison-based sort over event objects.

        ``codes``, if given, are precomputed lexicographic-rank integer
        codes for ``function_names`` (``codes[i] < codes[j]`` iff
        ``function_names[i] < function_names[j]``), skipping the
        per-element factorisation.
        """
        times = np.asarray(times, dtype=float)
        if times.size != len(function_names):
            raise ValueError("times and function_names length mismatch")
        if codes is None:
            # Factorise names to their lexicographic rank so the
            # tie-break lexsort is numeric (string-keyed lexsort is far
            # slower).
            rank = {n: i for i, n in enumerate(sorted(set(function_names)))}
            codes = np.fromiter((rank[n] for n in function_names),
                                dtype=np.int64, count=times.size)
        order = np.lexsort((codes, times))
        # Bulk-convert once (per-element numpy indexing/float() is
        # slow); _make over a zip keeps event construction in C.
        sorted_times = times[order].tolist()
        order_list = order.tolist()
        events = list(map(ArrivalEvent._make,
                          zip(sorted_times,
                              (function_names[i] for i in order_list))))
        return cls(name=name, events=events, duration=duration, **kwargs)

    def validate(self) -> None:
        if any(e.time < 0 or e.time > self.duration for e in self.events):
            raise ValueError(f"workload {self.name} has out-of-range events")
        if self.events != sorted(self.events):
            raise ValueError(f"workload {self.name} events not time-sorted")


def make_w1_bursty(seed: int = 0,
                   functions: Sequence[FunctionProfile] = FUNCTIONS,
                   duration: float = 1800.0,
                   keep_alive: float = 600.0,
                   burst_size: int = 12,
                   bursts_per_function: int = 2,
                   burst_spread: float = 2.0) -> Workload:
    """W1: per-function bursts separated by more than the keep-alive.

    Each function fires ``bursts_per_function`` bursts of ``burst_size``
    near-simultaneous invocations; consecutive bursts of the same function
    are spaced ``> keep_alive`` apart, so a keep-alive cache has always
    evicted/expired the instances by the next burst (§9.1 W1).
    """
    rng = SeededRNG(seed, "w1")
    gap = keep_alive * 1.15
    # Clamp the burst count to what the duration can hold while keeping
    # the inter-burst gap above the keep-alive threshold.
    max_bursts = max(1, int(duration / gap) + 1)
    bursts_per_function = min(bursts_per_function, max_bursts)
    events: List[ArrivalEvent] = []
    for i, profile in enumerate(functions):
        frng = rng.fork(profile.name)
        # Stagger function phase so bursts of different functions collide
        # only sometimes (load instability, not lockstep).
        first = frng.uniform(0.0, min(duration * 0.1, 60.0)) + i * 3.0
        for b in range(bursts_per_function):
            base = first + b * gap
            if base >= duration:
                break
            for _ in range(burst_size):
                t = base + frng.exponential(burst_spread)
                if t < duration:
                    events.append(ArrivalEvent(t, profile.name))
    events.sort()
    return Workload(name="W1", events=events, duration=duration,
                    soft_cap_bytes=64 * GB, keep_alive=keep_alive)


def make_w2_diurnal(seed: int = 0,
                    functions: Sequence[FunctionProfile] = FUNCTIONS,
                    duration: float = 1800.0,
                    keep_alive: float = 600.0,
                    mean_rate: float = 2.4,
                    cycles: float = 3.0,
                    depth: float = 0.85,
                    soft_cap_bytes: int = 32 * GB) -> Workload:
    """W2: diurnal rate modulation, cycling functions, tight memory.

    Arrival intensity follows ``mean_rate * (1 + depth*sin(...))`` and the
    function choice rotates with the phase, emulating day/night shifts in
    the popular function mix.  A 32 GB soft cap (§9.1) forces eviction
    pressure.
    """
    rng = SeededRNG(seed, "w2")
    events: List[ArrivalEvent] = []
    t = 0.0
    n_funcs = len(functions)
    while t < duration:
        phase = 2.0 * math.pi * cycles * t / duration
        rate = mean_rate * (1.0 + depth * math.sin(phase))
        rate = max(rate, 0.05)
        t += rng.exponential(1.0 / rate)
        if t >= duration:
            break
        # The "popular" function rotates over the cycle; others trickle.
        lead = int((phase / (2.0 * math.pi) * n_funcs)) % n_funcs
        if rng.random() < 0.55:
            func = functions[lead]
        else:
            func = functions[rng.randint(0, n_funcs)]
        events.append(ArrivalEvent(t, func.name))
    events.sort()
    return Workload(name="W2", events=events, duration=duration,
                    soft_cap_bytes=soft_cap_bytes, keep_alive=keep_alive)


def make_scaleout_uniform(seed: int = 0,
                          functions: Sequence[FunctionProfile] = FUNCTIONS,
                          duration: float = 600.0,
                          rate: float = 200.0,
                          keep_alive: float = 600.0,
                          quantum: float = 0.0) -> Workload:
    """Uniform-rate Poisson arrivals for throughput benchmarking.

    The schedule is synthesised fully vectorised — bulk exponential
    gaps, a cumulative sum, and one bulk function draw — so building a
    100k+-invocation schedule costs milliseconds, not a Python loop per
    arrival.  Used by the cluster-scale perf section and the sweep
    runner (10 nodes x 100k invocations), where schedule construction
    would otherwise rival simulation time.

    ``quantum`` > 0 snaps arrival times to a grid, mimicking the
    coarse timestamp resolution of the public traces (Azure records
    per-minute counts); quantised schedules have many same-tick
    arrivals, the case the calendar-queue scheduler batches.
    """
    rng = SeededRNG(seed, "scaleout")
    mean_gap = 1.0 / rate
    chunk = int(rate * duration * 1.1) + 64
    times = np.cumsum(rng.exponentials(mean_gap, chunk))
    while times.size == 0 or times[-1] < duration:
        more = np.cumsum(rng.exponentials(mean_gap, chunk))
        times = np.concatenate([times, (times[-1] if times.size else 0.0)
                                + more])
    times = times[times < duration]
    if quantum > 0.0:
        times = np.floor(times / quantum) * quantum
    picks = rng.integers_array(0, len(functions), times.size)
    suite_names = [f.name for f in functions]
    names = [suite_names[i] for i in picks.tolist()]
    # Lexicographic rank per suite index (double argsort), vectorised
    # over the picks — from_arrays then skips its per-name ranking.
    rank = np.argsort(np.argsort(suite_names))
    return Workload.from_arrays("scaleout", times, names, duration,
                                codes=rank[picks],
                                soft_cap_bytes=None,
                                keep_alive=keep_alive)
