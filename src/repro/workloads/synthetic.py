"""Synthetic workloads W1 (bursty) and W2 (diurnal) from §9.1.

W1 replays bursty traffic whose inter-burst gaps exceed the keep-alive
threshold, defeating warm caching; W2 emulates diurnal fluctuations while
cycling through functions under a tight (32 GB) memory cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import math

from repro.mem.layout import GB
from repro.sim.rng import SeededRNG
from repro.workloads.functions import FUNCTIONS, FunctionProfile


@dataclass(frozen=True)
class ArrivalEvent:
    """One invocation request: when, and of which function."""

    time: float
    function: str

    def __lt__(self, other: "ArrivalEvent") -> bool:
        return (self.time, self.function) < (other.time, other.function)


@dataclass
class Workload:
    """A named arrival schedule plus its platform configuration."""

    name: str
    events: List[ArrivalEvent]
    duration: float
    soft_cap_bytes: Optional[int] = 64 * GB
    keep_alive: float = 600.0          # seconds, §9.1 schedule policy
    warmup: float = 0.0                # measurement excludes t < warmup

    @property
    def n_invocations(self) -> int:
        return len(self.events)

    def functions_used(self) -> List[str]:
        return sorted({e.function for e in self.events})

    def validate(self) -> None:
        if any(e.time < 0 or e.time > self.duration for e in self.events):
            raise ValueError(f"workload {self.name} has out-of-range events")
        if self.events != sorted(self.events):
            raise ValueError(f"workload {self.name} events not time-sorted")


def make_w1_bursty(seed: int = 0,
                   functions: Sequence[FunctionProfile] = FUNCTIONS,
                   duration: float = 1800.0,
                   keep_alive: float = 600.0,
                   burst_size: int = 12,
                   bursts_per_function: int = 2,
                   burst_spread: float = 2.0) -> Workload:
    """W1: per-function bursts separated by more than the keep-alive.

    Each function fires ``bursts_per_function`` bursts of ``burst_size``
    near-simultaneous invocations; consecutive bursts of the same function
    are spaced ``> keep_alive`` apart, so a keep-alive cache has always
    evicted/expired the instances by the next burst (§9.1 W1).
    """
    rng = SeededRNG(seed, "w1")
    gap = keep_alive * 1.15
    # Clamp the burst count to what the duration can hold while keeping
    # the inter-burst gap above the keep-alive threshold.
    max_bursts = max(1, int(duration / gap) + 1)
    bursts_per_function = min(bursts_per_function, max_bursts)
    events: List[ArrivalEvent] = []
    for i, profile in enumerate(functions):
        frng = rng.fork(profile.name)
        # Stagger function phase so bursts of different functions collide
        # only sometimes (load instability, not lockstep).
        first = frng.uniform(0.0, min(duration * 0.1, 60.0)) + i * 3.0
        for b in range(bursts_per_function):
            base = first + b * gap
            if base >= duration:
                break
            for _ in range(burst_size):
                t = base + frng.exponential(burst_spread)
                if t < duration:
                    events.append(ArrivalEvent(t, profile.name))
    events.sort()
    return Workload(name="W1", events=events, duration=duration,
                    soft_cap_bytes=64 * GB, keep_alive=keep_alive)


def make_w2_diurnal(seed: int = 0,
                    functions: Sequence[FunctionProfile] = FUNCTIONS,
                    duration: float = 1800.0,
                    keep_alive: float = 600.0,
                    mean_rate: float = 2.4,
                    cycles: float = 3.0,
                    depth: float = 0.85,
                    soft_cap_bytes: int = 32 * GB) -> Workload:
    """W2: diurnal rate modulation, cycling functions, tight memory.

    Arrival intensity follows ``mean_rate * (1 + depth*sin(...))`` and the
    function choice rotates with the phase, emulating day/night shifts in
    the popular function mix.  A 32 GB soft cap (§9.1) forces eviction
    pressure.
    """
    rng = SeededRNG(seed, "w2")
    events: List[ArrivalEvent] = []
    t = 0.0
    n_funcs = len(functions)
    while t < duration:
        phase = 2.0 * math.pi * cycles * t / duration
        rate = mean_rate * (1.0 + depth * math.sin(phase))
        rate = max(rate, 0.05)
        t += rng.exponential(1.0 / rate)
        if t >= duration:
            break
        # The "popular" function rotates over the cycle; others trickle.
        lead = int((phase / (2.0 * math.pi) * n_funcs)) % n_funcs
        if rng.random() < 0.55:
            func = functions[lead]
        else:
            func = functions[rng.randint(0, n_funcs)]
        events.append(ArrivalEvent(t, func.name))
    events.sort()
    return Workload(name="W2", events=events, duration=duration,
                    soft_cap_bytes=soft_cap_bytes, keep_alive=keep_alive)
