"""The evaluated serverless functions (Table 4).

Each :class:`FunctionProfile` captures what the paper measures per
function: snapshot memory size, restored thread count, execution CPU/IO
time, and the page-access behaviour (touched working set, write fraction,
load intensity) that drives Figures 10, 18, 19 and 22.

Calibration notes:

* Read-only ratios span 24%–90% (§5.1/§9.2.2); IR is the read-heavy
  extreme, IFR the write-heavy one (Figure 18b discussion).
* DH and IR have sub-100 ms execution, which is why CXL's per-load
  latency "nearly doubles" their execution time (§9.2.1).
* Touched-page counts are back-solved from §9.4: T-RDMA adds ~88 ms to
  IR and ~25 ms to JS versus CRIU at ~8 µs per major fault.
* CH is IO-bound (§9.2.3 category 1), so much of its latency releases
  the CPU.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro import optflags
from repro.mem.layout import MB, pages_for_bytes
from repro.mem.trace import AccessTrace
from repro.sim.rng import SeededRNG
from repro.workloads.cache import memoized

#: Content-id namespace offsets.  Pages of the shared language runtime get
#: ids in a per-language space so the dedup store consolidates them across
#: functions; function-specific pages live in a per-function space.
_LANG_SPACE = {"python": 1 << 40, "nodejs": 2 << 40}
_FUNC_SPACE = 1 << 44

#: (seed, rng path, function) -> base AccessTrace.  Traces are immutable
#: in practice (callers only read them or derive jittered copies).
#: Bounded LRU via :func:`repro.workloads.cache.memoized`, which also
#: gates it on :data:`repro.optflags.trace_cache` — with the flag off,
#: every call regenerates (the A/B contract for optimisation flags).
_BASE_TRACE_CACHE: "OrderedDict[tuple, AccessTrace]" = OrderedDict()  # simlint: shard-safe (deterministic memo: value is a pure function of the key)

#: (seed, rng path, function, invocation, jitter) -> jittered AccessTrace.
#: :meth:`SeededRNG.fork` is stateless (seed + path hash), so an identical
#: key always regenerates the identical trace — memoising it only saves
#: host time.  Bounded LRU: cluster runs revisit the same invocation index
#: from every node sharing a (seed, path) pair.  Gated on
#: :data:`repro.optflags.trace_cache`.
_INV_TRACE_CACHE: "OrderedDict[tuple, AccessTrace]" = OrderedDict()  # simlint: shard-safe (deterministic memo: value is a pure function of the key)
_INV_TRACE_CACHE_MAX = 4096


@dataclass(frozen=True)
class FunctionProfile:
    """Static description of one serverless function."""

    name: str
    lang: str
    description: str
    mem_bytes: int                  # post-initialisation snapshot size
    n_threads: int                  # threads CRIU must restore
    exec_cpu: float                 # seconds of pure CPU per invocation
    io_time: float                  # seconds of IO wait (CPU released)
    touched_pages: int              # distinct pages touched per invocation
    write_fraction: float           # of touched pages, share written
    loads_per_read_page: float      # cache-missing loads per touched page
    n_vmas: int                     # VMAs in the snapshot (mmap storm size)
    n_fds: int = 8
    runtime_shared_bytes: int = 38 * MB   # language runtime + common libs
    bootstrap_time: float = 0.8     # interpreter launch + imports (cold)
    file_io_bytes: int = 8 * MB     # rootfs file reads per invocation
    #: Per-invocation input jitter applied to the base access trace.
    #: 0.0 means every invocation replays the cached base trace exactly
    #: (no per-invocation RNG fork) — used by micro benchmarking suites.
    trace_jitter: float = 0.08

    @property
    def image_pages(self) -> int:
        return pages_for_bytes(self.mem_bytes)

    @property
    def read_only_ratio(self) -> float:
        return 1.0 - self.write_fraction

    @property
    def touch_fraction(self) -> float:
        return min(1.0, self.touched_pages / self.image_pages)

    @property
    def exec_time_ideal(self) -> float:
        """Execution latency with local memory and a dedicated core."""
        return self.exec_cpu + self.io_time

    def base_trace(self, rng: SeededRNG) -> AccessTrace:
        """The function's canonical access pattern (the "recorded run"
        REAP/FaaSnap profile their working set from).

        Cached per (seed, stream, function): the base pattern is
        deterministic, and workloads regenerate it once per invocation.
        """
        key = (rng.seed, rng.path, self.name)

        def build() -> AccessTrace:
            sub = rng.fork(f"{self.name}/base")
            return AccessTrace.generate(
                sub,
                total_pages=self.image_pages,
                touch_fraction=self.touch_fraction,
                write_fraction=self.write_fraction,
                loads_per_read_page=self.loads_per_read_page,
                writable_start=min(
                    self.image_pages,
                    pages_for_bytes(self.runtime_shared_bytes)),
            )

        return memoized(_BASE_TRACE_CACHE, key, build)

    def make_trace(self, rng: SeededRNG, invocation: int = 0,
                   jitter: Optional[float] = None) -> AccessTrace:
        """One invocation's trace: the base pattern with input jitter.

        Deterministic per (rng seed, function, invocation index) — the
        reproducibility discipline of §9.6's trace-replay methodology.
        ``jitter`` defaults to the profile's :attr:`trace_jitter`.
        """
        if jitter is None:
            jitter = self.trace_jitter
        base = self.base_trace(rng)
        if jitter == 0.0:
            return base
        if not optflags.trace_cache:
            sub = rng.fork(f"{self.name}/inv{invocation}")
            return base.jittered(sub, self.image_pages, jitter)
        key = (rng.seed, rng.path, self.name, invocation, jitter)
        hit = _INV_TRACE_CACHE.get(key)
        if hit is not None:
            _INV_TRACE_CACHE.move_to_end(key)
            return hit
        sub = rng.fork(f"{self.name}/inv{invocation}")
        trace = base.jittered(sub, self.image_pages, jitter)
        _INV_TRACE_CACHE[key] = trace
        if len(_INV_TRACE_CACHE) > _INV_TRACE_CACHE_MAX:
            _INV_TRACE_CACHE.popitem(last=False)
        return trace

    def content_ids(self):
        """Per-page content ids of the snapshot image.

        The first ``runtime_shared_bytes`` worth of pages carry
        language-wide ids (dedupable across functions of the same
        language, §5.1 Figure 12); the rest are function-unique.
        """
        import numpy as np
        total = self.image_pages
        shared = min(total, pages_for_bytes(self.runtime_shared_bytes))
        lang_base = _LANG_SPACE[self.lang]
        func_base = _FUNC_SPACE + _stable_hash(self.name) * (1 << 24)
        ids = np.empty(total, dtype=np.int64)
        ids[:shared] = lang_base + np.arange(shared)
        ids[shared:] = func_base + np.arange(total - shared)
        return ids


def _stable_hash(name: str) -> int:
    acc = 0
    for ch in name:
        acc = (acc * 131 + ord(ch)) % 1_000_003
    return acc


FUNCTIONS: Tuple[FunctionProfile, ...] = (
    FunctionProfile(
        name="DH", lang="python",
        description="Dynamic web page generating",
        mem_bytes=int(50.4 * MB), n_threads=14,
        exec_cpu=0.025, io_time=0.005,
        touched_pages=2_000, write_fraction=0.20,
        loads_per_read_page=5.0, n_vmas=160, bootstrap_time=0.5, file_io_bytes=6 * MB),
    FunctionProfile(
        name="JS", lang="python",
        description="Deserialize and serialize json",
        mem_bytes=int(94.9 * MB), n_threads=14,
        exec_cpu=0.095, io_time=0.005,
        touched_pages=3_050, write_fraction=0.35,
        loads_per_read_page=6.5, n_vmas=180, bootstrap_time=0.7, file_io_bytes=4 * MB),
    FunctionProfile(
        name="PR", lang="python",
        description="Pagerank algorithm",
        mem_bytes=int(116 * MB), n_threads=395,
        exec_cpu=1.10, io_time=0.05,
        touched_pages=12_000, write_fraction=0.30,
        loads_per_read_page=6.0, n_vmas=420, bootstrap_time=1.2, file_io_bytes=8 * MB),
    FunctionProfile(
        name="IR", lang="python",
        description="Deep learning inference (ResNet)",
        mem_bytes=int(855 * MB), n_threads=141,
        exec_cpu=0.050, io_time=0.005,
        touched_pages=10_700, write_fraction=0.10,
        loads_per_read_page=7.0, n_vmas=520, bootstrap_time=3.0, file_io_bytes=12 * MB),
    FunctionProfile(
        name="IP", lang="python",
        description="Image rotating and flipping",
        mem_bytes=int(67.1 * MB), n_threads=15,
        exec_cpu=0.90, io_time=0.05,
        touched_pages=6_000, write_fraction=0.45,
        loads_per_read_page=3.0, n_vmas=170, bootstrap_time=0.6, file_io_bytes=40 * MB),
    FunctionProfile(
        name="VP", lang="python",
        description="Gray-scale effect on video",
        mem_bytes=int(324 * MB), n_threads=204,
        exec_cpu=2.20, io_time=0.15,
        touched_pages=30_000, write_fraction=0.55,
        loads_per_read_page=2.5, n_vmas=380, bootstrap_time=1.5, file_io_bytes=130 * MB),
    FunctionProfile(
        name="CH", lang="python",
        description="HTML tables rendering",
        mem_bytes=int(94.9 * MB), n_threads=38,
        exec_cpu=0.18, io_time=0.52,
        touched_pages=4_000, write_fraction=0.40,
        loads_per_read_page=3.0, n_vmas=210, bootstrap_time=0.7, file_io_bytes=30 * MB),
    FunctionProfile(
        name="CR", lang="nodejs",
        description="AES encryption algorithm",
        mem_bytes=int(124 * MB), n_threads=16,
        exec_cpu=0.48, io_time=0.02,
        touched_pages=5_000, write_fraction=0.50,
        loads_per_read_page=3.5, n_vmas=200, bootstrap_time=0.4, file_io_bytes=5 * MB),
    FunctionProfile(
        name="JJS", lang="nodejs",
        description="JSON (Node.js port of JS)",
        mem_bytes=int(111 * MB), n_threads=21,
        exec_cpu=0.13, io_time=0.01,
        touched_pages=3_500, write_fraction=0.37,
        loads_per_read_page=5.0, n_vmas=190, bootstrap_time=0.5, file_io_bytes=4 * MB),
    FunctionProfile(
        name="IFR", lang="nodejs",
        description="Image rotating (Node.js port of IP)",
        mem_bytes=int(253 * MB), n_threads=21,
        exec_cpu=0.55, io_time=0.05,
        touched_pages=20_000, write_fraction=0.76,
        loads_per_read_page=2.0, n_vmas=260, bootstrap_time=0.9, file_io_bytes=45 * MB),
)

_BY_NAME: Dict[str, FunctionProfile] = {f.name: f for f in FUNCTIONS}


def function_by_name(name: str) -> FunctionProfile:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown function {name!r}; known: {sorted(_BY_NAME)}") from None
