"""Workloads: the evaluated function suite and arrival-pattern generators.

* :mod:`repro.workloads.functions` — the ten SeBS/FunctionBench functions
  of Table 4 (DH, JS, PR, IR, IP, VP, CH, CR, JJS, IFR).
* :mod:`repro.workloads.synthetic` — W1 (bursty) and W2 (diurnal, tight
  memory) from §9.1.
* :mod:`repro.workloads.azure` / :mod:`repro.workloads.huawei` —
  synthesised industry traces with the published per-minute shapes (§9.3).
"""

from repro.workloads.functions import (
    FUNCTIONS,
    FunctionProfile,
    function_by_name,
)
from repro.workloads.synthetic import (
    ArrivalEvent,
    Workload,
    make_scaleout_uniform,
    make_w1_bursty,
    make_w2_diurnal,
)
from repro.workloads.azure import make_azure_workload
from repro.workloads.huawei import make_huawei_workload

__all__ = [
    "ArrivalEvent",
    "FUNCTIONS",
    "FunctionProfile",
    "Workload",
    "function_by_name",
    "make_azure_workload",
    "make_huawei_workload",
    "make_scaleout_uniform",
    "make_w1_bursty",
    "make_w2_diurnal",
]
