"""Mount tables and overlay filesystems.

§5.2.1: a container rootfs is a per-container mount namespace whose root
is a union filesystem (overlayfs).  Cold start assembles it from scratch
(>9 mounts, 6 mkdev/mknod, pivot_root); TrEnv instead *overmounts* a
function-specific overlay atop the pooled sandbox's rootfs — two mounts
minimum — after purging the previous instance's upper directory.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional, Tuple

from repro.sim.engine import Delay, Simulator
from repro.sim.latency import LatencyModel


class SimpleFS:
    """A kernel-provided filesystem (sysfs, procfs, devtmpfs, tmpfs)."""

    def __init__(self, fstype: str):
        self.fstype = fstype

    def __repr__(self) -> str:
        return f"<{self.fstype}>"


class OverlayFS:
    """Union filesystem: read-only lower layers + writable upper dir.

    The upper directory records every modification (copy-on-write at file
    granularity), which is exactly what TrEnv purges between tenants so
    no file data leaks across a repurpose (§5.2.1 step 1, §8.1.1).
    """

    _ids = itertools.count(1)

    def __init__(self, lower_layers: Tuple[str, ...], label: str = ""):
        if not lower_layers:
            raise ValueError("overlayfs needs at least one lower layer")
        self.fs_id = next(OverlayFS._ids)
        self.lower_layers = tuple(lower_layers)
        self.label = label or f"overlay-{self.fs_id}"
        self.upper: Dict[str, int] = {}       # path -> size in bytes
        self.deleted: set = set()             # whiteouts
        self.stale_inode_cache = False

    def write_file(self, path: str, nbytes: int) -> None:
        """Copy-up semantics: any write lands in the upper dir."""
        self.upper[path] = nbytes
        self.deleted.discard(path)
        self.stale_inode_cache = True

    def delete_file(self, path: str) -> None:
        """Deletion of a lower file creates a whiteout in the upper dir."""
        self.upper.pop(path, None)
        self.deleted.add(path)
        self.stale_inode_cache = True

    def read_visible(self, path: str) -> bool:
        """Is ``path`` visible (not whited out)?"""
        return path not in self.deleted

    @property
    def upper_bytes(self) -> int:
        return sum(self.upper.values())

    @property
    def dirty(self) -> bool:
        return bool(self.upper) or bool(self.deleted)

    def purge_upper(self) -> int:
        """Delete all upper-dir entries; returns files removed.

        The caller must also remount to flush the stale inode cache
        (modelled by :meth:`MountTable.remount`).
        """
        removed = len(self.upper) + len(self.deleted)
        self.upper.clear()
        self.deleted.clear()
        return removed

    def __repr__(self) -> str:
        return f"<overlayfs {self.label} lowers={self.lower_layers}>"


class MountTable:
    """The mount tree inside one mount namespace.

    Mounting over an existing path shadows the previous filesystem (Linux
    overmount), and unmounting reveals it again — the primitive TrEnv's
    rootfs reconfiguration relies on (Figure 13).
    """

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        # path -> stack of mounted filesystems (top of list is visible).
        self._mounts: Dict[str, List[object]] = {}
        self.device_nodes: List[str] = []
        self.root_pivoted = False
        self.stats: Dict[str, int] = {"mount": 0, "umount": 0, "mknod": 0,
                                      "pivot_root": 0, "remount": 0}

    # -- timed operations ---------------------------------------------------------

    def mount(self, path: str, fs: object, fast: bool = False) -> Generator:
        """Timed: attach ``fs`` at ``path`` (overmounts allowed).

        ``fast=True`` uses the repurpose-path cost (pre-assembled overlay
        from the per-function pool, §5.2.1) instead of a full mount.
        """
        cost = (self.latency.rootfs.reconfig_mount if fast
                else self.latency.rootfs.mount_syscall)
        yield Delay(cost)
        self._mounts.setdefault(path, []).append(fs)
        self.stats["mount"] += 1

    def umount(self, path: str) -> Generator:
        yield Delay(self.latency.rootfs.reconfig_mount)
        stack = self._mounts.get(path)
        if not stack:
            raise KeyError(f"nothing mounted at {path}")
        fs = stack.pop()
        if not stack:
            del self._mounts[path]
        self.stats["umount"] += 1
        return fs

    def remount(self, path: str) -> Generator:
        """Timed: remount to flush stale overlay inode caches."""
        yield Delay(self.latency.rootfs.purge_upper_sync)
        fs = self.visible(path)
        if isinstance(fs, OverlayFS):
            fs.stale_inode_cache = False
        self.stats["remount"] += 1

    def mknod(self, path: str) -> Generator:
        yield Delay(self.latency.rootfs.mknod)
        self.device_nodes.append(path)
        self.stats["mknod"] += 1

    def pivot_root(self) -> Generator:
        yield Delay(self.latency.rootfs.pivot_root)
        self.root_pivoted = True
        self.stats["pivot_root"] += 1

    # -- queries --------------------------------------------------------------------

    def visible(self, path: str) -> Optional[object]:
        """The filesystem currently visible at ``path`` (top of stack)."""
        stack = self._mounts.get(path)
        return stack[-1] if stack else None

    def mounted_paths(self) -> List[str]:
        return sorted(self._mounts)

    def mount_depth(self, path: str) -> int:
        return len(self._mounts.get(path, []))
