"""Cgroups: creation, migration, and the CLONE_INTO_CGROUP fast path.

§4.1/§5.2.2: creating a cgroup costs 16–32 ms; *migrating* an existing
process into it costs another 10–50 ms because the kernel's migration
path takes two global read-write semaphores whose RCU grace periods
dominate (Figure 14).  TrEnv avoids migration entirely by assigning the
cgroup at ``clone3()`` time (CLONE_INTO_CGROUP, 100–300 µs), and reuses
pooled cgroups by rewriting their limits (~0.5 ms).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, Optional, Set

from repro.analysis import hooks
from repro.sim.engine import Delay, Simulator
from repro.sim.latency import LatencyModel
from repro.sim.rng import SeededRNG


@dataclass
class CgroupLimits:
    """Resource limits applied to one sandbox."""

    cpu_quota: float = 1.0          # cores
    memory_bytes: int = 2 << 30
    blkio_weight: int = 100

    def __eq__(self, other) -> bool:
        return (isinstance(other, CgroupLimits)
                and self.cpu_quota == other.cpu_quota
                and self.memory_bytes == other.memory_bytes
                and self.blkio_weight == other.blkio_weight)


class Cgroup:
    """One cgroup: limits plus the set of member processes."""

    _ids = itertools.count(1)

    def __init__(self, name: str, limits: CgroupLimits):
        self.cg_id = next(Cgroup._ids)
        self.name = name
        self.limits = limits
        self.procs: Set[int] = set()
        self.frozen = False
        if hooks.active is not None:
            hooks.active.on_cgroup_created(self)

    @property
    def empty(self) -> bool:
        return not self.procs

    def __repr__(self) -> str:
        return f"<cgroup {self.name} #{self.cg_id} procs={len(self.procs)}>"


class CgroupManager:
    """Timed cgroup operations with call statistics."""

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None,
                 rng: Optional[SeededRNG] = None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.rng = rng or SeededRNG(0, "cgroup")
        self.stats: Dict[str, int] = {
            "create": 0, "migrate": 0, "clone_into": 0, "reconfigure": 0}

    def create(self, name: str, limits: Optional[CgroupLimits] = None
               ) -> Generator:
        """Timed: mkdir + controller attachment (16–32 ms)."""
        lat = self.latency.cgroup
        yield Delay(self.rng.uniform(lat.create_min, lat.create_max))
        self.stats["create"] += 1
        return Cgroup(name, limits or CgroupLimits())

    def migrate(self, pid: int, cgroup: Cgroup) -> Generator:
        """Timed: move an existing process (the slow RCU path, 10–50 ms)."""
        lat = self.latency.cgroup
        yield Delay(self.rng.uniform(lat.migrate_min, lat.migrate_max))
        cgroup.procs.add(pid)
        self.stats["migrate"] += 1
        if hooks.active is not None:
            hooks.active.on_cgroup_proc(cgroup, pid, added=True)

    def clone_into(self, pid: int, cgroup: Cgroup) -> Generator:
        """Timed: CLONE_INTO_CGROUP assignment at spawn (100–300 µs).

        The spawned task is not yet visible to other kernel subsystems,
        so the global synchronisation of the migration path is bypassed
        (§5.2.2).
        """
        lat = self.latency.cgroup
        yield Delay(self.rng.uniform(lat.clone_into_min, lat.clone_into_max))
        cgroup.procs.add(pid)
        self.stats["clone_into"] += 1
        if hooks.active is not None:
            hooks.active.on_cgroup_proc(cgroup, pid, added=True)

    def reconfigure(self, cgroup: Cgroup, limits: CgroupLimits) -> Generator:
        """Timed: rewrite limits on a pooled cgroup during repurposing."""
        yield Delay(self.latency.cgroup.reconfigure)
        cgroup.limits = limits
        self.stats["reconfigure"] += 1

    def remove_proc(self, pid: int, cgroup: Cgroup) -> None:
        cgroup.procs.discard(pid)
        if hooks.active is not None:
            hooks.active.on_cgroup_proc(cgroup, pid, added=False)
