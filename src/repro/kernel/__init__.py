"""Simulated Linux kernel primitives.

The objects a container sandbox is made of (Table 1): namespaces,
cgroups, mount tables with overlayfs, and processes.  All mutating
operations are *timed*: they are simulation generators that advance the
virtual clock by the calibrated cost of the real syscall path.
"""

from repro.kernel.namespaces import (
    MountNamespace,
    Namespace,
    NamespaceManager,
    NetNamespace,
)
from repro.kernel.cgroup import Cgroup, CgroupManager
from repro.kernel.mounts import MountTable, OverlayFS, SimpleFS
from repro.kernel.process import Process, ProcessTable

__all__ = [
    "Cgroup",
    "CgroupManager",
    "MountNamespace",
    "MountTable",
    "Namespace",
    "NamespaceManager",
    "NetNamespace",
    "OverlayFS",
    "Process",
    "ProcessTable",
    "SimpleFS",
]
