"""Processes and threads.

A simulated process owns an :class:`~repro.mem.address_space.AddressSpace`,
a thread count, file descriptors, and memberships (namespaces, cgroup).
Spawn paths matter for the reproduction: spawning *into* a cgroup
(CLONE_INTO_CGROUP) versus spawn-then-migrate is the difference §5.2.2
measures.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional

from repro.kernel.cgroup import Cgroup, CgroupManager
from repro.mem.address_space import AddressSpace
from repro.sim.engine import Delay, Simulator
from repro.sim.latency import LatencyModel


class Process:
    """One simulated process (a thread group leader)."""

    def __init__(self, pid: int, name: str,
                 address_space: Optional[AddressSpace] = None):
        self.pid = pid
        self.name = name
        self.address_space = address_space or AddressSpace(name=name)
        self.threads = 1
        self.fds: List[str] = ["stdin", "stdout", "stderr"]
        self.namespaces: Dict[str, object] = {}
        self.cgroup: Optional[Cgroup] = None
        self.alive = True
        self.children: List["Process"] = []

    def open_fd(self, description: str) -> int:
        self.fds.append(description)
        return len(self.fds) - 1

    @property
    def memory_bytes(self) -> int:
        return self.address_space.local_bytes

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"<proc {self.name} pid={self.pid} {state}>"


class ProcessTable:
    """PID allocation and timed process lifecycle operations."""

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None,
                 cgroups: Optional[CgroupManager] = None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.cgroups = cgroups
        self._pids = itertools.count(100)
        self.procs: Dict[int, Process] = {}

    def _new(self, name: str, address_space: Optional[AddressSpace]) -> Process:
        proc = Process(next(self._pids), name, address_space)
        self.procs[proc.pid] = proc
        return proc

    # -- timed lifecycle -----------------------------------------------------------

    def spawn(self, name: str, address_space: Optional[AddressSpace] = None,
              cgroup: Optional[Cgroup] = None, into_cgroup: bool = False,
              parent: Optional[Process] = None) -> Generator:
        """Timed: fork+exec a new process.

        With ``into_cgroup=True`` the cgroup is assigned at clone time
        (fast); otherwise the process is spawned first and migrated
        (slow), which is what mainstream runtimes like runc still do.
        """
        yield Delay(self.latency.proc.fork + self.latency.proc.exec_spawn)
        proc = self._new(name, address_space)
        if parent is not None:
            parent.children.append(proc)
        if cgroup is not None:
            if self.cgroups is None:
                raise RuntimeError("no CgroupManager wired into ProcessTable")
            if into_cgroup:
                yield self.cgroups.clone_into(proc.pid, cgroup)
            else:
                yield self.cgroups.migrate(proc.pid, cgroup)
            proc.cgroup = cgroup
        return proc

    def clone_threads(self, proc: Process, count: int) -> Generator:
        """Timed: restore/create ``count`` additional threads."""
        if count < 0:
            raise ValueError("thread count must be non-negative")
        yield Delay(self.latency.proc.clone_thread * count)
        proc.threads += count

    def kill(self, proc: Process) -> Generator:
        """Timed: SIGKILL + reap; releases the address space."""
        yield Delay(self.latency.proc.kill_process)
        if proc.alive:
            proc.alive = False
            proc.address_space.destroy()
            if proc.cgroup is not None and self.cgroups is not None:
                self.cgroups.remove_proc(proc.pid, proc.cgroup)
            self.procs.pop(proc.pid, None)
        for child in proc.children:
            if child.alive:
                yield self.kill(child)

    def kill_tree(self, root: Process) -> Generator:
        """Timed: kill a process and every descendant (sandbox cleanse)."""
        yield self.kill(root)

    @property
    def live_count(self) -> int:
        return sum(1 for p in self.procs.values() if p.alive)
