"""Linux namespaces with creation costs and reuse semantics.

§8.1.1 drives the design: a network namespace can be reused across
functions because terminating connections removes all data produced
during processing, while *configuration* state (firewall rules, routing
tables) and *statistics* (veth byte counters) persist — harmless for
functions that never customise the network, resettable otherwise.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional, Set

from repro.sim.engine import Delay, Simulator
from repro.sim.latency import LatencyModel


class Namespace:
    """Base class: one isolated kernel namespace instance."""

    kind = "generic"
    _ids = itertools.count(1)

    def __init__(self):
        self.ns_id = next(Namespace._ids)
        self.owner: Optional[str] = None   # function name currently using it

    def __repr__(self) -> str:
        return f"<{self.kind}ns #{self.ns_id} owner={self.owner}>"


class NetNamespace(Namespace):
    """Network namespace + veth pair.

    Tracks live connections (must be torn down on repurpose) separately
    from configuration and counters (persist across reuse).
    """

    kind = "net"

    def __init__(self):
        super().__init__()
        self.connections: Set[int] = set()
        self.firewall_rules: List[str] = []
        self.routing_entries: List[str] = ["default"]
        self.veth_rx_bytes = 0
        self.veth_tx_bytes = 0
        self.customised = False

    def open_connection(self, conn_id: int, nbytes: int = 0) -> None:
        self.connections.add(conn_id)
        self.veth_rx_bytes += nbytes

    def add_firewall_rule(self, rule: str) -> None:
        self.firewall_rules.append(rule)
        self.customised = True

    def terminate_connections(self) -> int:
        """Forcibly close live connections (repurpose step, §8.1.1)."""
        n = len(self.connections)
        self.connections.clear()
        return n

    def reset_configuration(self) -> None:
        """Full reset for functions that customised the network."""
        self.firewall_rules.clear()
        self.routing_entries = ["default"]
        self.customised = False

    @property
    def leaks_execution_data(self) -> bool:
        """True if residual state could expose the previous run's data."""
        return bool(self.connections)


class MountNamespace(Namespace):
    """Mount namespace owning a mount table (populated by the caller)."""

    kind = "mnt"

    def __init__(self, mount_table=None):
        super().__init__()
        self.mount_table = mount_table


class PidNamespace(Namespace):
    kind = "pid"


class UtsNamespace(Namespace):
    kind = "uts"


class IpcNamespace(Namespace):
    kind = "ipc"


class TimeNamespace(Namespace):
    kind = "time"


_LIGHT_KINDS = {
    "pid": PidNamespace,
    "uts": UtsNamespace,
    "ipc": IpcNamespace,
    "time": TimeNamespace,
}


class NamespaceManager:
    """Creates namespaces with calibrated costs, tracking netns contention.

    Network namespace creation serialises on ``rtnl_lock``; the per-create
    cost climbs with the number of concurrent creators (§3.3: 15
    concurrent cold starts push network setup to ~400 ms).
    """

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        self._netns_in_flight = 0
        self.created: Dict[str, int] = {}

    def create_netns(self) -> Generator:
        """Timed: create a network namespace + veth device."""
        self._netns_in_flight += 1
        try:
            cost = self.latency.ns.netns_create(self._netns_in_flight)
            yield Delay(cost)
        finally:
            self._netns_in_flight -= 1
        self.created["net"] = self.created.get("net", 0) + 1
        return NetNamespace()

    def create_mntns(self, mount_table=None) -> Generator:
        yield Delay(self.latency.ns.mntns)
        self.created["mnt"] = self.created.get("mnt", 0) + 1
        return MountNamespace(mount_table)

    def create_light(self, kind: str) -> Generator:
        """Timed: pid/uts/ipc/time namespaces (<1 ms total, Table 1)."""
        cls = _LIGHT_KINDS.get(kind)
        if cls is None:
            raise ValueError(f"unknown light namespace kind: {kind}")
        yield Delay(self.latency.ns.other_ns / len(_LIGHT_KINDS))
        self.created[kind] = self.created.get(kind, 0) + 1
        return cls()

    def create_light_set(self) -> Generator:
        """Timed: the full set of cheap namespaces in one go."""
        yield Delay(self.latency.ns.other_ns)
        out = {}
        for kind, cls in _LIGHT_KINDS.items():
            self.created[kind] = self.created.get(kind, 0) + 1
            out[kind] = cls()
        return out

    @property
    def netns_in_flight(self) -> int:
        return self._netns_in_flight
