"""Latency metrics: per-invocation records, percentiles, CDFs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0–100) of ``values``; nan if empty."""
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile out of range: {p}")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, p))


@dataclass(frozen=True)
class InvocationResult:
    """One completed invocation."""

    function: str
    arrival: float
    start_kind: str        # "warm" | "repurposed" | "restored" | "cold"
    startup: float         # sandbox/VM + memory restore latency
    exec: float            # execution-phase latency
    e2e: float             # end-to-end (queue + startup + exec)
    queue: float = 0.0     # admission-control wait (concurrency limit)
    retries: int = 0       # pool-fault retries consumed (backoff waits)
    degraded: bool = False  # completed via a fallback/degraded path

    def __post_init__(self):
        if self.e2e + 1e-9 < self.startup + self.exec + self.queue:
            raise ValueError("e2e smaller than queue+startup+exec")


class LatencyRecorder:
    """Collects invocation results and answers the paper's questions."""

    def __init__(self, warmup: float = 0.0):
        self.warmup = warmup
        self.results: List[InvocationResult] = []
        #: Invocations that never completed: (function, arrival, reason).
        self.failures: List[Tuple[str, float, str]] = []

    def record(self, result: InvocationResult) -> None:
        self.results.append(result)

    def record_failure(self, function: str, arrival: float,
                       reason: str = "") -> None:
        self.failures.append((function, arrival, reason))

    # -- selection ----------------------------------------------------------------

    def measured(self, function: Optional[str] = None
                 ) -> List[InvocationResult]:
        """Results past the warm-up window, optionally for one function."""
        out = [r for r in self.results if r.arrival >= self.warmup]
        if function is not None:
            out = [r for r in out if r.function == function]
        return out

    def functions(self) -> List[str]:
        return sorted({r.function for r in self.measured()})

    # -- aggregates ------------------------------------------------------------------

    def e2e_percentile(self, p: float, function: Optional[str] = None) -> float:
        return percentile([r.e2e for r in self.measured(function)], p)

    def startup_percentile(self, p: float,
                           function: Optional[str] = None) -> float:
        return percentile([r.startup for r in self.measured(function)], p)

    def exec_percentile(self, p: float, function: Optional[str] = None) -> float:
        return percentile([r.exec for r in self.measured(function)], p)

    def mean_e2e(self, function: Optional[str] = None) -> float:
        vals = [r.e2e for r in self.measured(function)]
        return float(np.mean(vals)) if vals else float("nan")

    def cdf(self, function: Optional[str] = None
            ) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted latencies, cumulative probability) for CDF plots."""
        vals = np.sort([r.e2e for r in self.measured(function)])
        if vals.size == 0:
            return vals, vals
        probs = np.arange(1, vals.size + 1) / vals.size
        return vals, probs

    def start_kind_counts(self, function: Optional[str] = None
                          ) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.measured(function):
            counts[r.start_kind] = counts.get(r.start_kind, 0) + 1
        return counts

    def count(self, function: Optional[str] = None) -> int:
        return len(self.measured(function))

    def availability(self) -> Dict[str, float]:
        """Availability under faults: how invocations fared, post-warmup.

        ``degraded`` counts invocations that completed via a fallback
        path (slower, but no error); ``retried`` those that consumed at
        least one pool-fault retry; ``failed`` those that never
        completed (e.g. the whole rack was down past the re-dispatch
        budget).
        """
        rs = self.measured()
        failed = [f for f in self.failures if f[1] >= self.warmup]
        total = len(rs) + len(failed)
        return {
            "completed": len(rs),
            "failed": len(failed),
            "degraded": sum(1 for r in rs if r.degraded),
            "retried": sum(1 for r in rs if r.retries > 0),
            "retries_total": sum(r.retries for r in rs),
            "success_rate": (len(rs) / total) if total else 1.0,
        }

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-function P50/P99 e2e + mean startup, for report tables."""
        out: Dict[str, Dict[str, float]] = {}
        for fn in self.functions():
            rs = self.measured(fn)
            out[fn] = {
                "count": len(rs),
                "p50_e2e": percentile([r.e2e for r in rs], 50),
                "p99_e2e": percentile([r.e2e for r in rs], 99),
                "p99_startup": percentile([r.startup for r in rs], 99),
                "mean_exec": float(np.mean([r.exec for r in rs])),
            }
        return out
