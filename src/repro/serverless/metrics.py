"""Latency metrics: per-invocation records, percentiles, CDFs.

Two storage regimes coexist behind one :class:`LatencyRecorder` API:

* the **exact** regime keeps every :class:`InvocationResult` in a list
  (the historical behaviour) — O(invocations) memory, quantiles by
  sorting;
* the **streaming** regime (:data:`repro.optflags.stream_metrics`,
  sampled at construction) additionally folds every sample into
  fixed-bin log-scale histograms (HdrHistogram-style), so quantile
  queries are O(bins) and — with ``keep_results=False`` — memory is
  O(bins), not O(invocations).  Each histogram keeps an exact sample
  buffer until :data:`EXACT_SAMPLE_CAP` samples, so small runs (every
  tier-1 test, the golden W2 slices) answer quantile queries
  bit-identically to the exact regime; only trace-scale runs switch to
  binned answers (bounded relative error, see :class:`LogHistogram`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import optflags

#: Histograms answer exactly (via a retained sample buffer) until this
#: many samples, then drop the buffer and answer from bins.
EXACT_SAMPLE_CAP = 4096

#: Log-scale bin resolution.  128 bins per decade puts neighbouring bin
#: edges a factor 10^(1/128) ~= 1.8% apart, so a binned quantile is
#: within ~0.9% of the true value — far below the seed-to-seed noise of
#: any experiment here.
BINS_PER_DECADE = 128

#: Smallest resolvable latency (100 ns); everything below lands in bin 0.
_LO = 1e-7
_LO_EXP = math.log10(_LO)
#: 12 decades: 100 ns .. 100 ks covers every latency this simulator emits.
_N_BINS = 12 * BINS_PER_DECADE


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0–100) of ``values``; nan if empty."""
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile out of range: {p}")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, p))


#: Pending samples are folded into bins in vectorised chunks of this
#: size, which also bounds streaming-mode memory between flushes.
FLUSH_CHUNK = 8192


def _accumulate_exact(partials: List[float], x: float) -> None:
    """Fold ``x`` into a Shewchuk partials list (math.fsum's invariant).

    The list always holds non-overlapping floats whose real-number sum
    equals the exact sum of everything accumulated so far, so the
    rounded readout (``math.fsum(partials)``) is independent of
    accumulation order *and grouping* — merging shard histograms yields
    bit-identical totals to a serial run no matter how samples were
    partitioned, which the parallel cluster runner's registry contract
    depends on.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    del partials[i:]
    partials.append(x)


def _canonical_partials(partials: Sequence[float]) -> List[float]:
    """Canonical decomposition of the exact value held by ``partials``.

    Grow-expansion partials are *not* canonical: two lists built from
    the same multiset in different orders can hold different components
    while summing to the same real number.  Anything that serializes
    partials (the registry's process boundary) must first reduce them
    to a form that depends only on the exact value, or shard merges
    stop being bit-identical at the JSON level.  The greedy form —
    repeatedly peel off the correctly-rounded remainder (``math.fsum``)
    and subtract it exactly — is such a form: every step is a pure
    function of the remaining real value.  Terminates in a handful of
    iterations (each remainder is < 0.5 ulp of the previous component).
    """
    rest = list(partials)
    out: List[float] = []
    while True:
        s = math.fsum(rest)
        if s == 0.0:
            return out
        out.append(s)
        _accumulate_exact(rest, -s)


class LogHistogram:
    """Fixed-bin log-scale histogram with an exact small-sample fallback.

    ``add`` is a single list append — the recorder sits on a
    per-invocation hot path, so binning is deferred: pending samples
    fold into bins in vectorised :data:`FLUSH_CHUNK` batches (one
    ``np.log10`` over the chunk instead of ``math.log10`` per sample).
    ``quantile`` is O(occupied bins) once the exact buffer is dropped,
    and bit-exact (``np.percentile`` over retained samples) before
    that.  Memory is O(occupied bins) + the bounded buffers.
    """

    __slots__ = ("counts", "_count", "_partials", "vmin", "vmax", "_exact",
                 "_exact_cap", "_pending")

    def __init__(self, exact_cap: int = EXACT_SAMPLE_CAP):
        self.counts: Dict[int, int] = {}
        self._count = 0
        #: Exact running sum as Shewchuk partials (see
        #: :func:`_accumulate_exact`); read through :attr:`total`.
        self._partials: List[float] = []
        self.vmin = math.inf
        self.vmax = -math.inf
        self._exact: Optional[List[float]] = []
        self._exact_cap = exact_cap
        self._pending: List[float] = []

    @staticmethod
    def _bin_mid(idx: int) -> float:
        # Geometric midpoint of the bin's edge pair.
        return 10.0 ** (_LO_EXP + (idx + 0.5) / BINS_PER_DECADE)

    @property
    def count(self) -> int:
        return self._count + len(self._pending)

    @property
    def total(self) -> float:
        """Correctly-rounded exact sum — order- and merge-invariant."""
        return math.fsum(self._partials)

    def canonical_partials(self) -> List[float]:
        """Serialization-safe partials (see :func:`_canonical_partials`)."""
        self._flush()
        return _canonical_partials(self._partials)

    @property
    def exact(self) -> bool:
        """Whether quantiles are still answered from retained samples."""
        self._flush()
        return self._exact is not None

    def add(self, value: float) -> None:
        self._pending.append(value)
        if len(self._pending) >= FLUSH_CHUNK:
            self._flush()

    def _flush(self) -> None:
        """Fold pending samples into the bins, vectorised."""
        if not self._pending:
            return
        arr = np.asarray(self._pending, dtype=float)
        self._count += arr.size
        partials = self._partials
        for x in self._pending:
            _accumulate_exact(partials, x)
        self.vmin = min(self.vmin, float(arr.min()))
        self.vmax = max(self.vmax, float(arr.max()))
        if self._exact is not None:
            if len(self._exact) + arr.size <= self._exact_cap:
                self._exact.extend(self._pending)
            else:
                self._exact = None
        idx = ((np.log10(np.maximum(arr, _LO)) - _LO_EXP)
               * BINS_PER_DECADE).astype(np.int64)
        np.clip(idx, 0, _N_BINS - 1, out=idx)
        counts = self.counts
        for b, c in zip(*np.unique(idx, return_counts=True)):
            b = int(b)
            counts[b] = counts.get(b, 0) + int(c)
        self._pending = []

    def mean(self) -> float:
        self._flush()
        return self.total / self._count if self._count else float("nan")

    def quantile(self, p: float) -> float:
        """The ``p``-th percentile (0–100); nan if empty."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        self._flush()
        if self._count == 0:
            return float("nan")
        if self._exact is not None:
            return float(np.percentile(np.asarray(self._exact, dtype=float),
                                       p))
        target = math.ceil(p / 100.0 * self._count)
        if target <= 0:
            return self.vmin
        cum = 0
        for idx in sorted(self.counts):
            cum += self.counts[idx]
            if cum >= target:
                mid = self._bin_mid(idx)
                return min(max(mid, self.vmin), self.vmax)
        return self.vmax

    def cdf_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """(values, cumulative probability) — exact when possible."""
        self._flush()
        if self._count == 0:
            empty = np.empty(0)
            return empty, empty
        if self._exact is not None:
            vals = np.sort(np.asarray(self._exact, dtype=float))
            probs = np.arange(1, vals.size + 1) / vals.size
            return vals, probs
        bins = sorted(self.counts)
        vals = np.array([self._bin_mid(i) for i in bins])
        probs = np.cumsum([self.counts[i] for i in bins]) / self._count
        return vals, probs

    def merge(self, other: "LogHistogram") -> None:
        self._flush()
        other._flush()
        for idx, c in sorted(other.counts.items()):
            self.counts[idx] = self.counts.get(idx, 0) + c
        self._count += other._count
        # Adding the peer's partials preserves exactness, so totals are
        # independent of how samples were sharded before the merge.
        for p in other._partials:
            _accumulate_exact(self._partials, p)
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)
        if self._exact is not None and other._exact is not None and \
                len(self._exact) + len(other._exact) <= self._exact_cap:
            self._exact.extend(other._exact)
        else:
            self._exact = None


@dataclass(frozen=True)
class InvocationResult:
    """One completed invocation."""

    function: str
    arrival: float
    start_kind: str        # "warm" | "repurposed" | "restored" | "cold"
    startup: float         # sandbox/VM + memory restore latency
    exec: float            # execution-phase latency
    e2e: float             # end-to-end (queue + startup + exec)
    queue: float = 0.0     # admission-control wait (concurrency limit)
    retries: int = 0       # pool-fault retries consumed (backoff waits)
    degraded: bool = False  # completed via a fallback/degraded path

    def __post_init__(self):
        if self.e2e + 1e-9 < self.startup + self.exec + self.queue:
            raise ValueError("e2e smaller than queue+startup+exec")


class _FunctionAggregate:
    """Streaming per-function state: three histograms + counters."""

    __slots__ = ("e2e", "startup", "exec", "start_kinds", "degraded",
                 "retried", "retries_total")

    def __init__(self):
        self.e2e = LogHistogram()
        self.startup = LogHistogram()
        self.exec = LogHistogram()
        self.start_kinds: Dict[str, int] = {}
        self.degraded = 0
        self.retried = 0
        self.retries_total = 0

    def add(self, r: InvocationResult) -> None:
        # Inlined LogHistogram.add x3: this runs once per invocation at
        # trace scale, and the method-call dispatch alone is measurable.
        h = self.e2e
        h._pending.append(r.e2e)
        if len(h._pending) >= FLUSH_CHUNK:
            h._flush()
        h = self.startup
        h._pending.append(r.startup)
        if len(h._pending) >= FLUSH_CHUNK:
            h._flush()
        h = self.exec
        h._pending.append(r.exec)
        if len(h._pending) >= FLUSH_CHUNK:
            h._flush()
        self.start_kinds[r.start_kind] = \
            self.start_kinds.get(r.start_kind, 0) + 1
        if r.degraded:
            self.degraded += 1
        if r.retries > 0:
            self.retried += 1
            self.retries_total += r.retries

    def merge(self, other: "_FunctionAggregate") -> None:
        self.e2e.merge(other.e2e)
        self.startup.merge(other.startup)
        self.exec.merge(other.exec)
        for kind, c in sorted(other.start_kinds.items()):
            self.start_kinds[kind] = self.start_kinds.get(kind, 0) + c
        self.degraded += other.degraded
        self.retried += other.retried
        self.retries_total += other.retries_total


class LatencyRecorder:
    """Collects invocation results and answers the paper's questions.

    ``keep_results=False`` turns the recorder into a pure streaming
    accumulator (O(bins) memory): :attr:`results` stays empty and
    :meth:`measured` is unavailable, but every aggregate query —
    percentiles, means, CDFs, start-kind counts, availability — works.
    The warm-up filter is applied at record time in streaming mode, so
    set :attr:`warmup` before the run (the runners do).
    """

    def __init__(self, warmup: float = 0.0, keep_results: bool = True):
        self._warmup = warmup
        self.keep_results = keep_results
        self.results: List[InvocationResult] = []
        #: Invocations that never completed: (function, arrival, reason).
        self.failures: List[Tuple[str, float, str]] = []
        streaming = optflags.stream_metrics or not keep_results
        self._per_fn: Optional[Dict[str, _FunctionAggregate]] = (
            {} if streaming else None)

    # -- warm-up handling --------------------------------------------------------

    @property
    def warmup(self) -> float:
        return self._warmup

    @warmup.setter
    def warmup(self, value: float) -> None:
        if value == self._warmup:
            return
        self._warmup = value
        if self._per_fn:
            # Streaming aggregates were filtered with the old warm-up.
            if not self.keep_results:
                raise RuntimeError(
                    "cannot re-filter a streaming-only recorder: set "
                    "warmup before recording")
            self._per_fn = {}
            for r in self.results:
                self._stream_add(r)

    @property
    def streaming(self) -> bool:
        return self._per_fn is not None

    # -- recording ----------------------------------------------------------------

    def _stream_add(self, result: InvocationResult) -> None:
        if result.arrival < self._warmup:
            return
        per_fn = self._per_fn
        agg = per_fn.get(result.function)
        if agg is None:
            agg = per_fn[result.function] = _FunctionAggregate()
        agg.add(result)

    def record(self, result: InvocationResult) -> None:
        # _stream_add inlined: one call per invocation at trace scale.
        if self.keep_results:
            self.results.append(result)
        per_fn = self._per_fn
        if per_fn is None or result.arrival < self._warmup:
            return
        agg = per_fn.get(result.function)
        if agg is None:
            agg = per_fn[result.function] = _FunctionAggregate()
        agg.add(result)

    def record_failure(self, function: str, arrival: float,
                       reason: str = "") -> None:
        self.failures.append((function, arrival, reason))

    def merge_from(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's data into this one.

        Result-keeping sources are re-recorded (so this recorder's own
        warm-up applies); streaming-only sources merge histograms
        directly, which requires matching warm-ups.
        """
        if other.keep_results:
            for result in other.results:
                self.record(result)
        else:
            if self._per_fn is None:
                raise RuntimeError(
                    "cannot merge a streaming-only recorder into an "
                    "exact-only one")
            if other._warmup != self._warmup:
                raise RuntimeError(
                    "streaming merge requires matching warm-ups "
                    f"({other._warmup} != {self._warmup})")
            assert other._per_fn is not None
            for fn, agg in sorted(other._per_fn.items()):
                mine = self._per_fn.get(fn)
                if mine is None:
                    mine = self._per_fn[fn] = _FunctionAggregate()
                mine.merge(agg)
        for failure in other.failures:
            self.failures.append(failure)

    # -- selection ----------------------------------------------------------------

    def measured(self, function: Optional[str] = None
                 ) -> List[InvocationResult]:
        """Results past the warm-up window, optionally for one function."""
        if not self.keep_results:
            raise RuntimeError(
                "recorder was built with keep_results=False; "
                "per-invocation results were not retained")
        out = [r for r in self.results if r.arrival >= self._warmup]
        if function is not None:
            out = [r for r in out if r.function == function]
        return out

    def _agg(self, function: Optional[str]) -> Optional[_FunctionAggregate]:
        """The streaming aggregate for ``function`` (None = all).

        The all-functions aggregate is assembled on demand by merging
        the per-function ones (order-independent), so the per-record
        hot path maintains exactly one aggregate, not two.
        """
        assert self._per_fn is not None
        if function is None:
            total = _FunctionAggregate()
            for fn in sorted(self._per_fn):
                total.merge(self._per_fn[fn])
            return total
        return self._per_fn.get(function)

    def functions(self) -> List[str]:
        if self._per_fn is not None:
            return sorted(fn for fn, agg in self._per_fn.items()
                          if agg.e2e.count)
        return sorted({r.function for r in self.measured()})

    # -- aggregates ------------------------------------------------------------------

    def e2e_percentile(self, p: float, function: Optional[str] = None) -> float:
        if self._per_fn is not None:
            agg = self._agg(function)
            if not 0.0 <= p <= 100.0:
                raise ValueError(f"percentile out of range: {p}")
            return agg.e2e.quantile(p) if agg else float("nan")
        return percentile([r.e2e for r in self.measured(function)], p)

    def startup_percentile(self, p: float,
                           function: Optional[str] = None) -> float:
        if self._per_fn is not None:
            agg = self._agg(function)
            if not 0.0 <= p <= 100.0:
                raise ValueError(f"percentile out of range: {p}")
            return agg.startup.quantile(p) if agg else float("nan")
        return percentile([r.startup for r in self.measured(function)], p)

    def exec_percentile(self, p: float, function: Optional[str] = None) -> float:
        if self._per_fn is not None:
            agg = self._agg(function)
            if not 0.0 <= p <= 100.0:
                raise ValueError(f"percentile out of range: {p}")
            return agg.exec.quantile(p) if agg else float("nan")
        return percentile([r.exec for r in self.measured(function)], p)

    def mean_e2e(self, function: Optional[str] = None) -> float:
        if self._per_fn is not None:
            agg = self._agg(function)
            return agg.e2e.mean() if agg else float("nan")
        vals = [r.e2e for r in self.measured(function)]
        return float(np.mean(vals)) if vals else float("nan")

    def mean_exec(self, function: Optional[str] = None) -> float:
        if self._per_fn is not None:
            agg = self._agg(function)
            return agg.exec.mean() if agg else float("nan")
        vals = [r.exec for r in self.measured(function)]
        return float(np.mean(vals)) if vals else float("nan")

    def cdf(self, function: Optional[str] = None
            ) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted latencies, cumulative probability) for CDF plots."""
        if self._per_fn is not None:
            agg = self._agg(function)
            if agg is None:
                empty = np.empty(0)
                return empty, empty
            return agg.e2e.cdf_points()
        vals = np.sort([r.e2e for r in self.measured(function)])
        if vals.size == 0:
            return vals, vals
        probs = np.arange(1, vals.size + 1) / vals.size
        return vals, probs

    def start_kind_counts(self, function: Optional[str] = None
                          ) -> Dict[str, int]:
        if self._per_fn is not None:
            agg = self._agg(function)
            if agg is None:
                return {}
            return dict(sorted(agg.start_kinds.items()))
        counts: Dict[str, int] = {}
        for r in self.measured(function):
            counts[r.start_kind] = counts.get(r.start_kind, 0) + 1
        return counts

    def count(self, function: Optional[str] = None) -> int:
        if self._per_fn is not None:
            agg = self._agg(function)
            return agg.e2e.count if agg else 0
        return len(self.measured(function))

    def availability(self) -> Dict[str, float]:
        """Availability under faults: how invocations fared, post-warmup.

        ``degraded`` counts invocations that completed via a fallback
        path (slower, but no error); ``retried`` those that consumed at
        least one pool-fault retry; ``failed`` those that never
        completed (e.g. the whole rack was down past the re-dispatch
        budget).
        """
        failed = [f for f in self.failures if f[1] >= self._warmup]
        if self._per_fn is not None:
            agg = self._agg(None)
            completed = agg.e2e.count
            total = completed + len(failed)
            return {
                "completed": completed,
                "failed": len(failed),
                "degraded": agg.degraded,
                "retried": agg.retried,
                "retries_total": agg.retries_total,
                "success_rate": (completed / total) if total else 1.0,
            }
        rs = self.measured()
        total = len(rs) + len(failed)
        return {
            "completed": len(rs),
            "failed": len(failed),
            "degraded": sum(1 for r in rs if r.degraded),
            "retried": sum(1 for r in rs if r.retries > 0),
            "retries_total": sum(r.retries for r in rs),
            "success_rate": (len(rs) / total) if total else 1.0,
        }

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-function P50/P99 e2e + mean startup, for report tables."""
        out: Dict[str, Dict[str, float]] = {}
        for fn in self.functions():
            out[fn] = {
                "count": self.count(fn),
                "p50_e2e": self.e2e_percentile(50, fn),
                "p99_e2e": self.e2e_percentile(99, fn),
                "p99_startup": self.startup_percentile(99, fn),
                "mean_exec": self.mean_exec(fn),
            }
        return out
