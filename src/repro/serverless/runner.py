"""Drive a workload through a platform and collect results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import optflags
from repro.control.config import ControlConfig
from repro.node import Node
from repro.obs import hooks as obs_hooks
from repro.serverless.base import ServerlessPlatform
from repro.serverless.metrics import LatencyRecorder
from repro.sim.engine import Delay
from repro.workloads.functions import FUNCTIONS, FunctionProfile, function_by_name
from repro.workloads.synthetic import Workload


@dataclass
class RunResult:
    """Everything a bench needs from one platform × workload run."""

    platform: str
    workload: str
    recorder: LatencyRecorder
    peak_memory_bytes: int
    memory_breakdown_mb: Dict[str, float]
    memory_timeline: List
    integral_mb_seconds: float
    cpu_utilization: float
    platform_stats: Dict[str, float]
    duration: float
    #: Per-function SLO attainment when a ControlConfig was given.
    slo_report: Optional[Dict[str, dict]] = None

    @property
    def peak_memory_mb(self) -> float:
        return self.peak_memory_bytes / (1 << 20)


def run_workload(platform: ServerlessPlatform, workload: Workload,
                 warmup: Optional[float] = None,
                 control: Optional[ControlConfig] = None) -> RunResult:
    """Replay ``workload`` on ``platform``; returns aggregated results.

    Functions referenced by the workload are registered automatically.
    ``warmup`` (default: the workload's) masks early invocations from the
    latency statistics — §9.1 warms caches for ~5 minutes before
    measuring.

    ``control`` applies the single-node slice of a
    :class:`~repro.control.config.ControlConfig`: per-function
    concurrency caps (via the platform's FIFO admission gate) and a
    post-run SLO attainment report.  Breakers, retry budgets and the
    timeout hierarchy need a dispatcher and live on the cluster path.
    """
    node = platform.node
    node.memory.soft_cap_bytes = workload.soft_cap_bytes
    platform.keep_alive = workload.keep_alive
    if warmup is None:
        warmup = workload.warmup
    platform.recorder.warmup = warmup

    for name in workload.functions_used():
        if name not in platform.functions:
            platform.register_function(function_by_name(name))
    if control is not None:
        for name in sorted(workload.functions_used()):
            platform.set_concurrency_limit(name,
                                           control.concurrency_for(name))

    def invoke(event):
        obs = obs_hooks.active
        tracer = obs.tracer if obs is not None else None
        if tracer is None:
            yield platform.invoke(event.function, arrival=event.time)
            return
        ctx = tracer.begin(event.function, node.now)
        tracer.bind(ctx, node.name)
        tracer.span(ctx, "dispatch", node.now, node.now,
                    args={"node": node.name})
        try:
            yield platform.invoke(event.function, arrival=event.time,
                                  ctx=ctx)
        finally:
            tracer.finish(ctx, node.now)

    def arrival(event):
        yield Delay(max(0.0, event.time - node.now))
        yield from invoke(event)

    if optflags.batch_arrivals:
        # Schedule each invocation directly at its arrival time: one
        # queue entry per arrival instead of a spawn plus a Delay, and
        # no wrapper generator churn.  Wake order matches the reference
        # path (sequence numbers are assigned in event order both ways).
        now = node.sim.now
        waiters = node.sim.spawn_at_many(
            (max(now, e.time), invoke(e)) for e in workload.events)
    else:
        waiters = [node.sim.spawn(arrival(e), name=f"inv-{i}")
                   for i, e in enumerate(workload.events)]
    node.sim.run()
    pending = [w for w in waiters if not w.done]
    if pending:
        raise RuntimeError(f"{len(pending)} invocations never completed")

    slo_report = None
    if control is not None and control.slos:
        slo_report = _slo_report(platform.recorder, control)

    return RunResult(
        platform=platform.name,
        workload=workload.name,
        recorder=platform.recorder,
        peak_memory_bytes=node.memory.peak_bytes,
        memory_breakdown_mb=node.memory.breakdown_mb(),
        memory_timeline=node.memory.timeline_mb(),
        integral_mb_seconds=node.memory.integral_mb_seconds(),
        cpu_utilization=node.cpu.utilization(),
        platform_stats=platform.stats(),
        duration=node.now,
        slo_report=slo_report,
    )


def _slo_report(recorder: LatencyRecorder,
                control: ControlConfig) -> Dict[str, dict]:
    """Post-hoc per-function SLO attainment from recorded results.

    Needs the exact-results regime; a streaming recorder reports only
    what its histograms can answer (attainment via the e2e quantile at
    the objective, which is exact in intent if coarser in value).
    """
    report: Dict[str, dict] = {}
    for fn, slo in sorted(dict(control.slos).items()):
        if fn not in recorder.functions():
            continue
        if recorder.keep_results:
            measured = recorder.measured(fn)
            total = len(measured)
            good = sum(1 for r in measured if r.e2e <= slo.threshold)
            attainment = good / total if total else 1.0
        else:
            total = None
            # Streaming: the latency at the objective quantile tells us
            # whether the objective-th invocation met the threshold.
            at_objective = recorder.e2e_percentile(
                100.0 * slo.objective, fn)
            attainment = slo.objective if at_objective <= slo.threshold \
                else 0.0
        report[fn] = {
            "threshold": slo.threshold,
            "objective": slo.objective,
            "observed": total,
            "attainment": attainment,
            "met": attainment >= slo.objective,
        }
    return report
