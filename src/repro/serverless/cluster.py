"""Multi-node cluster: several hosts, one rack-level memory pool.

§8.2: "TrEnv reduces the overall memory footprint by enabling
cross-machine-intra-rack deduplication.  Only one copy is needed per
rack if it is read-only, reducing the cost by a factor of the number of
machines (~10)."  The cluster shares one simulator across nodes (one
virtual clock) and dispatches invocations by policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.node import Node
from repro.serverless.base import ServerlessPlatform
from repro.serverless.metrics import LatencyRecorder
from repro.sim.engine import Delay, Simulator
from repro.workloads.functions import function_by_name
from repro.workloads.synthetic import Workload


class DispatchPolicy:
    """Chooses a host for each invocation."""

    name = "base"

    def pick(self, platforms: Sequence[ServerlessPlatform],
             function: str) -> ServerlessPlatform:
        raise NotImplementedError


class RoundRobin(DispatchPolicy):
    name = "round-robin"

    def __init__(self):
        self._next = 0

    def pick(self, platforms, function):
        platform = platforms[self._next % len(platforms)]
        self._next += 1
        return platform


class LeastLoaded(DispatchPolicy):
    """Send to the host with the fewest runnable CPU tasks."""

    name = "least-loaded"

    def pick(self, platforms, function):
        return min(platforms, key=lambda p: p.node.cpu.load)


class WarmAffinity(DispatchPolicy):
    """Prefer a host holding a warm instance of the function; fall back
    to least-loaded.  This is what production schedulers approximate."""

    name = "warm-affinity"

    def pick(self, platforms, function):
        for platform in platforms:
            if platform.warm._by_function.get(function):
                return platform
        return min(platforms, key=lambda p: p.node.cpu.load)


@dataclass
class ClusterResult:
    """Aggregated outcome of one cluster workload run."""

    recorder: LatencyRecorder
    per_node_peak_mb: List[float]
    total_peak_mb: float
    pool_used_mb: float
    dispatch_counts: Dict[str, int]
    duration: float


class Cluster:
    """N hosts driven by one simulator, dispatching one workload."""

    def __init__(self, platforms: Sequence[ServerlessPlatform],
                 policy: Optional[DispatchPolicy] = None):
        if not platforms:
            raise ValueError("cluster needs at least one platform")
        sims = {id(p.node.sim) for p in platforms}
        if len(sims) != 1:
            raise ValueError("all cluster nodes must share one Simulator")
        self.platforms = list(platforms)
        self.sim: Simulator = platforms[0].node.sim
        self.policy = policy or WarmAffinity()
        self.dispatch_counts: Dict[str, int] = {}

    def run_workload(self, workload: Workload,
                     warmup: Optional[float] = None) -> ClusterResult:
        for platform in self.platforms:
            platform.keep_alive = workload.keep_alive
            platform.recorder.warmup = (workload.warmup if warmup is None
                                        else warmup)
            platform.node.memory.soft_cap_bytes = workload.soft_cap_bytes
            for name in workload.functions_used():
                if name not in platform.functions:
                    platform.register_function(function_by_name(name))

        def arrival(event):
            yield Delay(max(0.0, event.time - self.sim.now))
            platform = self.policy.pick(self.platforms, event.function)
            key = platform.node.name
            self.dispatch_counts[key] = self.dispatch_counts.get(key, 0) + 1
            yield platform.invoke(event.function, arrival=event.time)

        waiters = [self.sim.spawn(arrival(e), name=f"cinv-{i}")
                   for i, e in enumerate(workload.events)]
        self.sim.run()
        if any(not w.done for w in waiters):
            raise RuntimeError("cluster run left invocations unfinished")

        merged = LatencyRecorder(warmup=workload.warmup if warmup is None
                                 else warmup)
        for platform in self.platforms:
            for result in platform.recorder.results:
                merged.record(result)
        peaks = [p.node.memory.peak_bytes / (1 << 20)
                 for p in self.platforms]
        pool_mb = 0.0
        first = self.platforms[0]
        if hasattr(first, "pool"):
            pool_mb = first.pool.used_bytes / (1 << 20)
        return ClusterResult(
            recorder=merged,
            per_node_peak_mb=peaks,
            total_peak_mb=sum(peaks),
            pool_used_mb=pool_mb,
            dispatch_counts=dict(self.dispatch_counts),
            duration=self.sim.now,
        )


def make_trenv_cluster(n_nodes: int, pool, store=None, seed: int = 0,
                       cores: int = 64,
                       policy: Optional[DispatchPolicy] = None,
                       config=None) -> Cluster:
    """A rack of TrEnv hosts sharing one memory pool and dedup store."""
    from repro.core.platform import TrEnvPlatform
    from repro.mem.pools import DedupStore

    sim = Simulator()
    store = store or DedupStore(pool)
    platforms = []
    for i in range(n_nodes):
        node = Node(sim=sim, cores=cores, seed=seed + i, name=f"node{i}")
        platforms.append(TrEnvPlatform(node, pool, store=store,
                                       config=config,
                                       name=f"t-cxl-n{i}", seed=seed + i))
    return Cluster(platforms, policy=policy)
