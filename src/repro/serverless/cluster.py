"""Multi-node cluster: several hosts, one rack-level memory pool.

§8.2: "TrEnv reduces the overall memory footprint by enabling
cross-machine-intra-rack deduplication.  Only one copy is needed per
rack if it is read-only, reducing the cost by a factor of the number of
machines (~10)."  The cluster shares one simulator across nodes (one
virtual clock) and dispatches invocations by policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.errors import NodeCrashedError
from repro.node import Node
from repro.serverless.base import ServerlessPlatform
from repro.serverless.metrics import LatencyRecorder
from repro.sim.engine import Delay, Simulator
from repro.workloads.functions import function_by_name
from repro.workloads.synthetic import Workload


class DispatchPolicy:
    """Chooses a host for each invocation."""

    name = "base"

    def pick(self, platforms: Sequence[ServerlessPlatform],
             function: str) -> ServerlessPlatform:
        raise NotImplementedError


class RoundRobin(DispatchPolicy):
    name = "round-robin"

    def __init__(self):
        self._next = 0

    def pick(self, platforms, function):
        platform = platforms[self._next % len(platforms)]
        self._next += 1
        return platform


class LeastLoaded(DispatchPolicy):
    """Send to the host with the fewest runnable CPU tasks."""

    name = "least-loaded"

    def pick(self, platforms, function):
        return min(platforms, key=lambda p: p.node.cpu.load)


class WarmAffinity(DispatchPolicy):
    """Prefer a host holding a warm instance of the function; fall back
    to least-loaded.  This is what production schedulers approximate."""

    name = "warm-affinity"

    def pick(self, platforms, function):
        for platform in platforms:
            if platform.warm.has(function):
                return platform
        return min(platforms, key=lambda p: p.node.cpu.load)


@dataclass
class ClusterResult:
    """Aggregated outcome of one cluster workload run."""

    recorder: LatencyRecorder
    per_node_peak_mb: List[float]
    total_peak_mb: float
    pool_used_mb: float
    dispatch_counts: Dict[str, int]
    duration: float
    #: LatencyRecorder.availability() of the merged recorder.
    availability: Dict[str, float] = field(default_factory=dict)
    redispatches: int = 0
    node_crashes: int = 0
    #: (function, arrival, reason) for invocations that never completed.
    failed: List[Tuple[str, float, str]] = field(default_factory=list)


class Cluster:
    """N hosts driven by one simulator, dispatching one workload.

    Dispatch is failure-aware: crashed nodes are blacklisted, in-flight
    invocations on a crashing node are interrupted and re-dispatched to
    a surviving host, and a recovered node rejoins the candidate set on
    the next dispatch decision (see repro.faults)."""

    #: Pause before re-scanning when every node is down (simulated s).
    redispatch_wait = 0.05
    #: Per-invocation dispatch-attempt budget before declaring failure.
    max_dispatch_attempts = 200

    def __init__(self, platforms: Sequence[ServerlessPlatform],
                 policy: Optional[DispatchPolicy] = None):
        if not platforms:
            raise ValueError("cluster needs at least one platform")
        sims = {id(p.node.sim) for p in platforms}
        if len(sims) != 1:
            raise ValueError("all cluster nodes must share one Simulator")
        self.platforms = list(platforms)
        self._by_name = {p.node.name: p for p in self.platforms}
        if len(self._by_name) != len(self.platforms):
            raise ValueError("cluster node names must be unique")
        self.sim: Simulator = platforms[0].node.sim
        self.policy = policy or WarmAffinity()
        self.dispatch_counts: Dict[str, int] = {}
        self.redispatches = 0
        self.node_crashes = 0
        #: (function, arrival, reason) for invocations we gave up on.
        self.failed: List[Tuple[str, float, str]] = []
        self._inflight: List[Dict] = []

    # -- failure handling ---------------------------------------------------

    def healthy_platforms(self) -> List[ServerlessPlatform]:
        return [p for p in self.platforms if not p.crashed]

    def crash_node(self, name: str) -> None:
        """Untimed: fail a node; interrupt its in-flight invocations so
        the dispatcher re-dispatches them to surviving hosts."""
        platform = self._by_name.get(name)
        if platform is None:
            raise KeyError(f"crash_node: unknown node {name!r}")
        if platform.crashed:
            return
        self.node_crashes += 1
        platform.crash()
        for slot in self._inflight:
            if slot["node"] == name and slot["waiter"] is not None:
                slot["waiter"].interrupt(NodeCrashedError(name))

    def recover_node(self, name: str) -> None:
        platform = self._by_name.get(name)
        if platform is None:
            raise KeyError(f"recover_node: unknown node {name!r}")
        platform.recover()

    # -- workload driving ---------------------------------------------------

    def run_workload(self, workload: Workload,
                     warmup: Optional[float] = None) -> ClusterResult:
        for platform in self.platforms:
            platform.keep_alive = workload.keep_alive
            platform.recorder.warmup = (workload.warmup if warmup is None
                                        else warmup)
            platform.node.memory.soft_cap_bytes = workload.soft_cap_bytes
            for name in workload.functions_used():
                if name not in platform.functions:
                    platform.register_function(function_by_name(name))

        def arrival(event, slot):
            yield Delay(max(0.0, event.time - self.sim.now))
            excluded: set = set()
            for _attempt in range(self.max_dispatch_attempts):
                candidates = [p for p in self.platforms
                              if not p.crashed
                              and p.node.name not in excluded]
                if not candidates:
                    # Whole rack down (or every survivor just failed us):
                    # wait for recovery and retry every node.
                    excluded.clear()
                    yield Delay(self.redispatch_wait)
                    continue
                platform = self.policy.pick(candidates, event.function)
                key = platform.node.name
                self.dispatch_counts[key] = (
                    self.dispatch_counts.get(key, 0) + 1)
                slot["node"] = key
                try:
                    yield platform.invoke(event.function,
                                          arrival=event.time)
                    return
                except NodeCrashedError:
                    excluded.add(key)
                    self.redispatches += 1
                finally:
                    slot["node"] = None
            self.failed.append((event.function, event.time,
                                "dispatch budget exhausted"))

        slots: List[Dict] = []
        waiters = []
        for i, e in enumerate(workload.events):
            slot = {"node": None, "waiter": None}
            waiter = self.sim.spawn(arrival(e, slot), name=f"cinv-{i}")
            slot["waiter"] = waiter
            slots.append(slot)
            waiters.append(waiter)
        self._inflight = slots
        self.sim.run()
        if any(not w.done for w in waiters):
            raise RuntimeError("cluster run left invocations unfinished")

        merged = LatencyRecorder(warmup=workload.warmup if warmup is None
                                 else warmup)
        for platform in self.platforms:
            for result in platform.recorder.results:
                merged.record(result)
        for function, when, reason in self.failed:
            merged.record_failure(function, when, reason)
        peaks = [p.node.memory.peak_bytes / (1 << 20)
                 for p in self.platforms]
        pool_mb = 0.0
        first = self.platforms[0]
        if hasattr(first, "pool"):
            pool_mb = first.pool.used_bytes / (1 << 20)
        return ClusterResult(
            recorder=merged,
            per_node_peak_mb=peaks,
            total_peak_mb=sum(peaks),
            pool_used_mb=pool_mb,
            dispatch_counts=dict(sorted(self.dispatch_counts.items())),
            duration=self.sim.now,
            availability=merged.availability(),
            redispatches=self.redispatches,
            node_crashes=self.node_crashes,
            failed=list(self.failed),
        )


def make_trenv_cluster(n_nodes: int, pool, store=None, seed: int = 0,
                       cores: int = 64,
                       policy: Optional[DispatchPolicy] = None,
                       config=None, fallback_pool=None) -> Cluster:
    """A rack of TrEnv hosts sharing one memory pool and dedup store.

    ``fallback_pool`` (e.g. a NASPool) becomes every host's degradation
    target should the shared pool go offline mid-run."""
    from repro.core.platform import TrEnvPlatform
    from repro.mem.pools import DedupStore

    sim = Simulator()
    store = store or DedupStore(pool)
    platforms = []
    for i in range(n_nodes):
        node = Node(sim=sim, cores=cores, seed=seed + i, name=f"node{i}")
        platform = TrEnvPlatform(node, pool, store=store, config=config,
                                 name=f"t-cxl-n{i}", seed=seed + i)
        if fallback_pool is not None:
            platform.set_fallback_pool(fallback_pool)
        platforms.append(platform)
    return Cluster(platforms, policy=policy)
