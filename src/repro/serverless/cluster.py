"""Multi-node cluster: several hosts, one rack-level memory pool.

§8.2: "TrEnv reduces the overall memory footprint by enabling
cross-machine-intra-rack deduplication.  Only one copy is needed per
rack if it is read-only, reducing the cost by a factor of the number of
machines (~10)."  The cluster shares one simulator across nodes (one
virtual clock) and dispatches invocations by policy.

Dispatch is a per-invocation hot path: at trace scale (10 nodes x 100k
invocations) the naive policies rescan every node per decision.  With
:data:`repro.optflags.dispatch_index` (sampled at :class:`Cluster`
construction) the built-in policies are served from incrementally
maintained indices — a per-function warm-instance map fed by
:class:`~repro.serverless.base.WarmPool` change notifications and a
load-keyed lazy heap fed by
:class:`~repro.sim.cpu.FairShareCPU` load notifications — with the
O(nodes) scan kept as the fallback (and as the flag-off reference
path).  Index picks are defined to equal the scan picks exactly, so
simulated results are bit-identical either way.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import optflags
from repro.control.admission import GO
from repro.control.config import ControlConfig
from repro.control.plane import ControlPlane
from repro.faults.errors import (AttemptTimeoutError, DeadlineExceededError,
                                 NodeCrashedError)
from repro.node import Node
from repro.obs import hooks as obs_hooks
from repro.serverless.base import ServerlessPlatform
from repro.serverless.metrics import LatencyRecorder
from repro.sim.engine import Delay, Interrupt, Simulator
from repro.workloads.functions import function_by_name
from repro.workloads.synthetic import Workload


class DispatchPolicy:
    """Chooses a host for each invocation."""

    name = "base"

    def pick(self, platforms: Sequence[ServerlessPlatform],
             function: str) -> ServerlessPlatform:
        raise NotImplementedError

    def static_assignment(self, n_events: int,
                          n_nodes: int) -> Optional[List[int]]:
        """Event-index -> node-index map, when it is a pure function of
        arrival order.

        Policies that consult live cluster state (warm pools, CPU
        loads) return None: their picks depend on the interleaved
        global timeline, so a sharded run cannot reproduce them without
        zero-lookahead synchronisation and
        :mod:`repro.serverless.partition` falls back to the serial
        path instead.
        """
        return None


class RoundRobin(DispatchPolicy):
    name = "round-robin"

    def __init__(self):
        self._next = 0

    def pick(self, platforms, function):
        platform = platforms[self._next % len(platforms)]
        # Wrap at increment so the cursor stays bounded over
        # million-invocation runs instead of growing without limit.
        self._next = (self._next + 1) % len(platforms)
        return platform

    def static_assignment(self, n_events: int, n_nodes: int) -> List[int]:
        # With every node healthy the cursor walks the full platform
        # list, so invocation i lands on node i mod N independent of
        # any runtime state — the property that makes a round-robin
        # cluster run statically partitionable.
        return [i % n_nodes for i in range(n_events)]


def _load_key(platform: ServerlessPlatform) -> Tuple[int, str]:
    """Least-loaded ordering: runnable tasks, then node name.

    The explicit name tie-break makes the choice independent of the
    candidate list's construction order — required for the dispatch
    index (a heap) to reproduce the scan exactly.
    """
    return (platform.node.cpu.load, platform.node.name)


class LeastLoaded(DispatchPolicy):
    """Send to the host with the fewest runnable CPU tasks."""

    name = "least-loaded"

    def pick(self, platforms, function):
        return min(platforms, key=_load_key)


class WarmAffinity(DispatchPolicy):
    """Prefer a host holding a warm instance of the function; fall back
    to least-loaded.  This is what production schedulers approximate."""

    name = "warm-affinity"

    def pick(self, platforms, function):
        for platform in platforms:
            if platform.warm.has(function):
                return platform
        return min(platforms, key=_load_key)


#: Built-in policies by registry name — the one table every surface
#: (sweep grid, parallel runner specs, CLI) resolves names against.
POLICIES: Dict[str, type] = {
    RoundRobin.name: RoundRobin,
    LeastLoaded.name: LeastLoaded,
    WarmAffinity.name: WarmAffinity,
}


def make_policy(name: str) -> DispatchPolicy:
    """Instantiate a built-in policy by its registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; "
                         f"known: {tuple(sorted(POLICIES))}") from None


class _DispatchIndex:
    """Incrementally maintained indices behind the built-in policies.

    * ``_warm``: function -> {platform index: warm count}, updated by
      :attr:`WarmPool.on_change` on every put/take/remove/clear.  The
      warm-affinity pick is the smallest non-crashed holder index, which
      equals the first hit of the platform-order scan.
    * ``_loads``: a lazy heap of ``(load, node name, index)`` entries,
      pushed by :attr:`FairShareCPU.on_load_change` on every runnable
      count change.  Stale entries (load no longer current) are popped
      at pick time; crashed holders are skipped but re-pushed so they
      rejoin the order on recovery.

    ``pick`` returns None whenever the fast path cannot answer exactly
    (unindexed policy, every node down) and the caller falls back to
    the O(nodes) scan.
    """

    def __init__(self, platforms: Sequence[ServerlessPlatform]):
        self._platforms = list(platforms)
        self._warm: Dict[str, Dict[int, int]] = {}
        self._loads: List[Tuple[int, str, int]] = []
        for idx, platform in enumerate(self._platforms):
            cpu = platform.node.cpu
            cpu.on_load_change = (
                lambda load, i=idx: self._on_load(i, load))
            platform.warm.on_change = (
                lambda fn, count, i=idx: self._on_warm(i, fn, count))
            heapq.heappush(self._loads,
                           (cpu.load, platform.node.name, idx))
            for fn, count in sorted(platform.warm.function_counts().items()):
                self._warm.setdefault(fn, {})[idx] = count

    def _on_load(self, idx: int, load: int) -> None:
        heapq.heappush(self._loads,
                       (load, self._platforms[idx].node.name, idx))

    def _on_warm(self, idx: int, function: str, count: int) -> None:
        holders = self._warm.setdefault(function, {})
        if count:
            holders[idx] = count
        else:
            holders.pop(idx, None)

    def _pick_warm(self, function: str) -> Optional[ServerlessPlatform]:
        holders = self._warm.get(function)
        if not holders:
            return None
        best = -1
        for idx in holders:
            if (best < 0 or idx < best) and \
                    not self._platforms[idx].crashed:
                best = idx
        return self._platforms[best] if best >= 0 else None

    def _pick_least_loaded(self) -> Optional[ServerlessPlatform]:
        heap = self._loads
        crashed_entries = []
        chosen = None
        while heap:
            load, _name, idx = heap[0]
            platform = self._platforms[idx]
            if load != platform.node.cpu.load:
                heapq.heappop(heap)            # stale snapshot
                continue
            if platform.crashed:
                crashed_entries.append(heapq.heappop(heap))
                continue
            chosen = platform                  # current + healthy: keep it
            break
        for entry in crashed_entries:          # rejoin on recovery
            heapq.heappush(heap, entry)
        return chosen

    def pick(self, policy: DispatchPolicy,
             function: str) -> Optional[ServerlessPlatform]:
        # Exact types only: a subclass may have changed pick semantics.
        if type(policy) is WarmAffinity:
            platform = self._pick_warm(function)
            if platform is not None:
                return platform
            return self._pick_least_loaded()
        if type(policy) is LeastLoaded:
            return self._pick_least_loaded()
        return None


@dataclass
class ClusterResult:
    """Aggregated outcome of one cluster workload run."""

    recorder: LatencyRecorder
    per_node_peak_mb: List[float]
    total_peak_mb: float
    pool_used_mb: float
    dispatch_counts: Dict[str, int]
    duration: float
    #: LatencyRecorder.availability() of the merged recorder.
    availability: Dict[str, float] = field(default_factory=dict)
    redispatches: int = 0
    node_crashes: int = 0
    #: (function, arrival, reason) for invocations that never completed.
    failed: List[Tuple[str, float, str]] = field(default_factory=list)
    #: ControlPlane.summary() when the control plane was armed, else None.
    control: Optional[Dict] = None


class Cluster:
    """N hosts driven by one simulator, dispatching one workload.

    Dispatch is failure-aware: crashed nodes are blacklisted, in-flight
    invocations on a crashing node are interrupted and re-dispatched to
    a surviving host, and a recovered node rejoins the candidate set on
    the next dispatch decision (see repro.faults)."""

    #: Pause before re-scanning when every node is down (simulated s).
    redispatch_wait = 0.05
    #: Per-invocation dispatch-attempt budget before declaring failure.
    max_dispatch_attempts = 200

    def __init__(self, platforms: Sequence[ServerlessPlatform],
                 policy: Optional[DispatchPolicy] = None,
                 control: Optional[ControlConfig] = None):
        if not platforms:
            raise ValueError("cluster needs at least one platform")
        sims = {id(p.node.sim) for p in platforms}
        if len(sims) != 1:
            raise ValueError("all cluster nodes must share one Simulator")
        self.platforms = list(platforms)
        self._by_name = {p.node.name: p for p in self.platforms}
        if len(self._by_name) != len(self.platforms):
            raise ValueError("cluster node names must be unique")
        self.sim: Simulator = platforms[0].node.sim
        self.policy = policy or WarmAffinity()
        # optflags are sampled at construction (the optflags contract).
        self._index: Optional[_DispatchIndex] = (
            _DispatchIndex(self.platforms)
            if optflags.dispatch_index
            and type(self.policy) in (WarmAffinity, LeastLoaded)
            else None)
        self._batch_arrivals = optflags.batch_arrivals
        # The control plane is armed by config presence, never a flag:
        # with control=None (the default) dispatch takes the exact
        # pre-control path and golden results are unchanged.
        self.control_plane: Optional[ControlPlane] = None
        if control is not None:
            self.control_plane = ControlPlane(self.sim, control)
            for platform in self.platforms:
                platform.control = self.control_plane
        self.dispatch_counts: Dict[str, int] = {}
        self.redispatches = 0
        self.node_crashes = 0
        self.attempt_timeouts = 0
        #: (function, arrival, reason) for invocations we gave up on.
        self.failed: List[Tuple[str, float, str]] = []
        self._inflight: List[Dict] = []

    # -- failure handling ---------------------------------------------------

    def healthy_platforms(self) -> List[ServerlessPlatform]:
        return [p for p in self.platforms if not p.crashed]

    def crash_node(self, name: str) -> None:
        """Untimed: fail a node; interrupt its in-flight invocations so
        the dispatcher re-dispatches them to surviving hosts."""
        platform = self._by_name.get(name)
        if platform is None:
            raise KeyError(f"crash_node: unknown node {name!r}")
        if platform.crashed:
            return
        self.node_crashes += 1
        platform.crash()
        for slot in self._inflight:
            if slot["node"] == name and slot["waiter"] is not None:
                slot["waiter"].interrupt(NodeCrashedError(name))

    def recover_node(self, name: str) -> None:
        platform = self._by_name.get(name)
        if platform is None:
            raise KeyError(f"recover_node: unknown node {name!r}")
        platform.recover()

    # -- control-plane deadline watchdogs -----------------------------------

    def _arm_invocation_watchdog(self, slot: Dict, deadline: float) -> None:
        """Interrupt the invocation at ``deadline`` unless it finished.

        The guard is the slot's ``alive`` flag (cleared on every exit
        path), so a watchdog outliving its invocation is a no-op — the
        classic stale-timer hazard of ``call_at`` callbacks.
        """
        def fire():
            if slot["alive"] and slot["waiter"] is not None:
                slot["waiter"].interrupt(
                    DeadlineExceededError("invocation", deadline))
        self.sim.call_at(deadline, fire)

    def _arm_attempt_watchdog(self, slot: Dict, deadline: float) -> None:
        """Per-attempt timer: guarded by the attempt generation counter,
        bumped when the attempt ends, so only the live attempt can be
        timed out."""
        gen = slot["gen"]

        def fire():
            if slot["alive"] and slot["gen"] == gen \
                    and slot["waiter"] is not None:
                slot["waiter"].interrupt(
                    AttemptTimeoutError("attempt", deadline))
        self.sim.call_at(deadline, fire)

    # -- rack-level accounting ----------------------------------------------

    def rack_pool_used_mb(self) -> float:
        """Pool usage of the whole rack, not just the first node.

        Platforms sharing one pool object (the TrEnv rack: one CXL
        device per rack) are counted once; distinct pools (mixed racks)
        are summed.  This definition is a pure function of the set of
        pools, so serial and sharded runs agree by construction.
        """
        seen: Dict[int, float] = {}
        for platform in self.platforms:
            pool = getattr(platform, "pool", None)
            if pool is not None:
                seen[id(pool)] = pool.used_bytes
        return sum(seen.values()) / (1 << 20)

    # -- workload driving ---------------------------------------------------

    def prepare_workload(self, workload: Workload,
                         warmup: Optional[float] = None) -> float:
        """Untimed preprocessing: registration and per-run knobs.

        Idempotent — :meth:`run_workload` always calls it, but callers
        that must keep registration-time effects (pool/store writes,
        registration RNG draws) outside an observation window can call
        it first themselves, making the in-run call a no-op (the
        parallel runner does this so every shard's registry covers the
        timed run only).  Returns the effective warmup cutoff.
        """
        chosen_warmup = workload.warmup if warmup is None else warmup
        # Derive the function set once, not per platform, and resolve
        # each missing name at most once for the whole rack.  Names are
        # looked up only when a platform lacks them — pre-registered
        # bench-local profiles never hit the global table.
        needed = workload.functions_used()
        resolved: Dict = {}
        for platform in self.platforms:
            platform.keep_alive = workload.keep_alive
            platform.recorder.warmup = chosen_warmup
            platform.node.memory.soft_cap_bytes = workload.soft_cap_bytes
            for name in needed:
                if name not in platform.functions:
                    profile = resolved.get(name)
                    if profile is None:
                        profile = resolved[name] = function_by_name(name)
                    platform.register_function(profile)
        return chosen_warmup

    def run_workload(self, workload: Workload,
                     warmup: Optional[float] = None,
                     stepper: Optional[Callable[[Simulator], None]] = None
                     ) -> ClusterResult:
        chosen_warmup = self.prepare_workload(workload, warmup)
        obs0 = obs_hooks.active
        if obs0 is not None and obs0.tracer is not None:
            # Pin node->pid to rack order before any dispatch: every
            # parallel shard worker rebuilds the same rack and prebinds
            # identically, so serial and merged shard traces agree on
            # pids by construction (first-bind order would depend on
            # which events a worker owns).
            obs0.tracer.prebind_nodes(p.node.name for p in self.platforms)

        def dispatch(event, slot):
            obs = obs_hooks.active
            tracer = obs.tracer if obs is not None else None
            ctx = None
            if tracer is not None:
                ctx = tracer.begin(event.function, self.sim.now)
            try:
                excluded: set = set()
                for _attempt in range(self.max_dispatch_attempts):
                    t_att = self.sim.now
                    platform = None
                    if self._index is not None and not excluded:
                        platform = self._index.pick(self.policy,
                                                    event.function)
                    if platform is None:
                        candidates = [p for p in self.platforms
                                      if not p.crashed
                                      and p.node.name not in excluded]
                        if not candidates:
                            # Whole rack down (or every survivor just
                            # failed us): wait for recovery and retry
                            # every node.
                            excluded.clear()
                            yield Delay(self.redispatch_wait)
                            if tracer is not None:
                                tracer.link("backoff", t_att, self.sim.now,
                                            dst=ctx,
                                            args={"reason": "all-down"})
                            continue
                        platform = self.policy.pick(candidates,
                                                    event.function)
                    key = platform.node.name
                    self.dispatch_counts[key] = (
                        self.dispatch_counts.get(key, 0) + 1)
                    slot["node"] = key
                    if obs is not None:
                        obs.registry.inc("dispatches_total", node=key)
                        if tracer is not None:
                            tracer.bind(ctx, key)
                            tracer.span(ctx, "dispatch", t_att,
                                        self.sim.now,
                                        args={"node": key,
                                              "attempt": _attempt})
                    try:
                        yield platform.invoke(event.function,
                                              arrival=event.time,
                                              ctx=ctx)
                        return
                    except NodeCrashedError:
                        excluded.add(key)
                        self.redispatches += 1
                        if obs is not None:
                            obs.registry.inc("redispatches_total")
                            if tracer is not None:
                                tracer.instant("redispatch", self.sim.now,
                                               ctx=ctx,
                                               args={"from": key})
                                tracer.link("crash_redispatch", t_att,
                                            self.sim.now, dst=ctx,
                                            args={"from": key})
                    finally:
                        slot["node"] = None
                self.failed.append((event.function, event.time,
                                    "dispatch budget exhausted"))
                if tracer is not None:
                    tracer.instant("dispatch_failed", self.sim.now,
                                   args={"function": event.function})
            finally:
                if tracer is not None:
                    tracer.finish(ctx, self.sim.now)

        def dispatch_controlled(event, slot):
            """The armed-control-plane dispatch path.

            Admission (queue/shed) in front, breaker-filtered candidate
            sets, per-attempt and per-invocation deadline watchdogs, and
            budget-gated re-dispatch.  Never uses the dispatch index:
            breaker filtering changes the candidate set, so index picks
            would not equal scan picks.
            """
            plane = self.control_plane
            sim = self.sim
            obs = obs_hooks.active
            tracer = obs.tracer if obs is not None else None
            ctx = None
            if tracer is not None:
                ctx = tracer.begin(event.function, sim.now)
            try:
                deadline = plane.invocation_deadline(event.time)
                status, entry = plane.admission.request(
                    event.function, event.time, sim.now, deadline, ctx=ctx)
                if status == "shed":
                    self.failed.append((event.function, event.time,
                                        f"shed:{entry}"))
                    return
                if status == "wait":
                    t_wait0 = sim.now
                    try:
                        signal = yield entry.gate
                    except Interrupt:
                        plane.admission.cancel(entry)
                        raise
                    if signal != GO:
                        reason = signal.split(":", 1)[1]
                        self.failed.append((event.function, event.time,
                                            f"shed:{reason}"))
                        return
                    if tracer is not None:
                        # The matching slot_grant link (with the granting
                        # invocation as src) is emitted at release time;
                        # this one records the wait itself, so the gap is
                        # attributable even if the grantor was untraced.
                        tracer.link("admission_wait", t_wait0, sim.now,
                                    dst=ctx,
                                    args={"function": event.function})
                # Admitted: the slot is ours until every exit below.
                plane.budget.earn()
                slot["alive"] = True
                if deadline is not None:
                    self._arm_invocation_watchdog(slot, deadline)
                abort_reason = None
                try:
                    excluded: set = set()
                    for _attempt in range(self.max_dispatch_attempts):
                        now = sim.now
                        if deadline is not None and now >= deadline:
                            abort_reason = "deadline"
                            break
                        candidates = [p for p in self.platforms
                                      if not p.crashed
                                      and p.node.name not in excluded]
                        if not candidates:
                            excluded.clear()
                            yield Delay(self.redispatch_wait)
                            if tracer is not None:
                                tracer.link("backoff", now, sim.now,
                                            dst=ctx,
                                            args={"reason": "all-down"})
                            continue
                        allowed = plane.filter_candidates(candidates, now)
                        if not allowed:
                            # Every healthy node's breaker is open:
                            # back off, then rescan the whole rack.
                            excluded.clear()
                            yield Delay(self.redispatch_wait)
                            if tracer is not None:
                                tracer.link("backoff", now, sim.now,
                                            dst=ctx,
                                            args={"reason": "breaker-open"})
                            continue
                        # The preview above claims nothing; claim the
                        # grant (half-open probe slot) only for the
                        # node the policy actually picks.
                        platform = None
                        while allowed:
                            pick = self.policy.pick(allowed,
                                                    event.function)
                            if plane.claim_attempt(pick.node.name, now):
                                platform = pick
                                break
                            allowed.remove(pick)
                        if platform is None:
                            excluded.clear()
                            yield Delay(self.redispatch_wait)
                            if tracer is not None:
                                tracer.link("backoff", now, sim.now,
                                            dst=ctx,
                                            args={"reason": "claim-race"})
                            continue
                        key = platform.node.name
                        self.dispatch_counts[key] = (
                            self.dispatch_counts.get(key, 0) + 1)
                        slot["node"] = key
                        if obs is not None:
                            obs.registry.inc("dispatches_total", node=key)
                            if tracer is not None:
                                tracer.bind(ctx, key)
                                tracer.span(ctx, "dispatch", now, sim.now,
                                            args={"node": key,
                                                  "attempt": _attempt})
                        att_deadline = plane.attempt_deadline(now, deadline)
                        if att_deadline is not None and att_deadline > now:
                            self._arm_attempt_watchdog(slot, att_deadline)
                        try:
                            result = yield platform.invoke(
                                event.function, arrival=event.time, ctx=ctx)
                            plane.observe_attempt(key, sim.now, True,
                                                  sim.now - now)
                            plane.observe_result(event.function, sim.now,
                                                 result.e2e)
                            return
                        except NodeCrashedError:
                            plane.observe_attempt(key, sim.now, False,
                                                  sim.now - now)
                            excluded.add(key)
                            self.redispatches += 1
                            if obs is not None:
                                obs.registry.inc("redispatches_total")
                                if tracer is not None:
                                    tracer.instant("redispatch", sim.now,
                                                   ctx=ctx,
                                                   args={"from": key})
                                    tracer.link("crash_redispatch", now,
                                                sim.now, dst=ctx,
                                                args={"from": key})
                            if not plane.budget.try_spend("redispatch"):
                                abort_reason = "retry-budget"
                                break
                        except AttemptTimeoutError:
                            plane.observe_attempt(key, sim.now, False,
                                                  sim.now - now)
                            excluded.add(key)
                            self.attempt_timeouts += 1
                            if obs is not None:
                                obs.registry.inc("attempt_timeouts_total",
                                                 node=key)
                            if not plane.budget.try_spend(
                                    "attempt-timeout"):
                                abort_reason = "retry-budget"
                                break
                        except DeadlineExceededError:
                            # The *invocation* ran out of total time —
                            # that does not implicate this node, so do
                            # not feed its breaker a failure (it would
                            # open breakers on healthy nodes under
                            # broad overload).  Settle the half-open
                            # probe slot claimed for this attempt, if
                            # any, without recording an outcome.
                            plane.settle_attempt(key)
                            abort_reason = "deadline"
                            break
                        finally:
                            slot["node"] = None
                            slot["gen"] += 1   # disarm attempt watchdog
                    else:
                        abort_reason = "dispatch-budget"
                except Interrupt as intr:
                    # A deadline fired while this task sat between
                    # attempts (backoff / rescan Delay).
                    if isinstance(intr.cause, DeadlineExceededError):
                        abort_reason = "deadline"
                    else:
                        raise
                finally:
                    slot["alive"] = False
                    plane.admission.release(event.function, sim.now,
                                            ctx=ctx)
                # Only abort exits reach here (success returned above).
                plane.record_abort(event.function, event.time, sim.now,
                                   abort_reason)
                self.failed.append((event.function, event.time,
                                    f"abort:{abort_reason}"))
            finally:
                if tracer is not None:
                    tracer.finish(ctx, sim.now)

        dispatch_fn = (dispatch if self.control_plane is None
                       else dispatch_controlled)

        def arrival(event, slot):
            yield Delay(max(0.0, event.time - self.sim.now))
            yield from dispatch_fn(event, slot)

        slots: List[Dict] = []
        waiters = []
        if self._batch_arrivals:
            # One queue entry per invocation, scheduled directly at its
            # arrival time; same wake order as the Delay wrappers
            # (sequence numbers are assigned in event order both ways).
            now = self.sim.now

            def schedule():
                for e in workload.events:
                    slot = {"node": None, "waiter": None,
                            "alive": False, "gen": 0}
                    slots.append(slot)
                    yield (max(now, e.time), dispatch_fn(e, slot))

            waiters = self.sim.spawn_at_many(schedule())
            for slot, waiter in zip(slots, waiters):
                slot["waiter"] = waiter
        else:
            for i, e in enumerate(workload.events):
                slot = {"node": None, "waiter": None,
                        "alive": False, "gen": 0}
                waiter = self.sim.spawn(arrival(e, slot), name=f"cinv-{i}")
                slot["waiter"] = waiter
                slots.append(slot)
                waiters.append(waiter)
        self._inflight = slots
        # The stepper hook lets the parallel runner drive this clock in
        # conservative lookahead windows (repro.serverless.parallel);
        # it must drain the queue completely, exactly like run().
        if stepper is None:
            self.sim.run()
        else:
            stepper(self.sim)
        if any(not w.done for w in waiters):
            raise RuntimeError("cluster run left invocations unfinished")

        merged = LatencyRecorder(
            warmup=chosen_warmup,
            keep_results=all(p.recorder.keep_results
                             for p in self.platforms))
        for platform in self.platforms:
            merged.merge_from(platform.recorder)
        for function, when, reason in self.failed:
            merged.record_failure(function, when, reason)
        peaks = [p.node.memory.peak_bytes / (1 << 20)
                 for p in self.platforms]
        pool_mb = self.rack_pool_used_mb()
        control_summary = None
        if self.control_plane is not None:
            control_summary = self.control_plane.summary()
            control_summary["attempt_timeouts"] = self.attempt_timeouts
        return ClusterResult(
            recorder=merged,
            per_node_peak_mb=peaks,
            total_peak_mb=sum(peaks),
            pool_used_mb=pool_mb,
            dispatch_counts=dict(sorted(self.dispatch_counts.items())),
            duration=self.sim.now,
            availability=merged.availability(),
            redispatches=self.redispatches,
            node_crashes=self.node_crashes,
            failed=list(self.failed),
            control=control_summary,
        )


def make_trenv_cluster(n_nodes: int, pool, store=None, seed: int = 0,
                       cores: int = 64,
                       policy: Optional[DispatchPolicy] = None,
                       config=None, fallback_pool=None,
                       control: Optional[ControlConfig] = None) -> Cluster:
    """A rack of TrEnv hosts sharing one memory pool and dedup store.

    ``fallback_pool`` (e.g. a NASPool) becomes every host's degradation
    target should the shared pool go offline mid-run.  ``control`` arms
    the overload control plane (:mod:`repro.control`); None (default)
    keeps the uncontrolled dispatch path bit-identical to before."""
    from repro.core.platform import TrEnvPlatform
    from repro.mem.pools import DedupStore

    sim = Simulator()
    store = store or DedupStore(pool)
    platforms = []
    for i in range(n_nodes):
        node = Node(sim=sim, cores=cores, seed=seed + i, name=f"node{i}")
        platform = TrEnvPlatform(node, pool, store=store, config=config,
                                 name=f"t-cxl-n{i}", seed=seed + i)
        if fallback_pool is not None:
            platform.set_fallback_pool(fallback_pool)
        platforms.append(platform)
    return Cluster(platforms, policy=policy, control=control)
