"""Baseline platforms: faasd, CRIU, REAP(+) and FaaSnap(+).

* **faasd** — keep-alive caching plus full cold starts (sandbox build +
  runtime bootstrap).
* **CRIU** — cold starts replaced by snapshot restore: same sandbox
  build, but memory arrives via the copy-based restore path.
* **REAP / FaaSnap** — Firecracker-style microVMs with lazy snapshot
  restore through a userfaultfd handler.  REAP prefetches the recorded
  working set eagerly (blocking); FaaSnap overlaps the prefetch with
  execution (§9.1).  The ``+`` variants recycle network namespaces
  through a pool, matching the papers' enhanced baselines.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.container.runtime import ContainerRuntime
from repro.criu.images import SnapshotImage
from repro.mem.layout import GB, MB
from repro.mem.pools import DedupStore, MemoryPool
from repro.mem.trace import AccessTrace
from repro.node import Node
from repro.serverless.base import Instance, ServerlessPlatform
from repro.sim.engine import Delay
from repro.vm.hypervisor import Hypervisor, RestoreMode
from repro.vm.microvm import GuestConfig, MicroVM, StorageMode
from repro.workloads.functions import FunctionProfile

#: Guest-kernel working set restored alongside the function's (REAP
#: records *all* faulting pages of the VM, incl. kernel ones).
_GUEST_EXTRA_WS_BYTES = 16 * MB


class FaasdPlatform(ServerlessPlatform):
    """Plain faasd: cold start = sandbox build + bootstrap."""

    name = "faasd"

    def __init__(self, node: Node, keep_alive: float = 600.0, seed: int = 0):
        super().__init__(node, keep_alive, seed)
        self.runtime = ContainerRuntime(node)

    def _acquire(self, profile: FunctionProfile, ctx=None) -> Generator:
        sandbox = yield self.runtime.create_sandbox_cold(profile.name)
        proc = yield self.runtime.bootstrap_function(sandbox, profile)
        inst = Instance(profile, proc.address_space, payload=sandbox)
        return inst, "cold"

    def _retire(self, inst: Instance) -> Generator:
        inst.retired = True
        yield self.runtime.destroy_sandbox(inst.payload)


class CRIUPlatform(ServerlessPlatform):
    """faasd + CRIU: snapshot restore instead of bootstrap."""

    name = "criu"

    def __init__(self, node: Node, keep_alive: float = 600.0, seed: int = 0):
        super().__init__(node, keep_alive, seed)
        self.runtime = ContainerRuntime(node)
        self.images: Dict[str, SnapshotImage] = {}

    def _preprocess(self, profile: FunctionProfile) -> None:
        self.images[profile.name] = SnapshotImage.from_profile(profile)

    def _acquire(self, profile: FunctionProfile, ctx=None) -> Generator:
        sandbox = yield self.runtime.create_sandbox_cold(profile.name)
        image = self.images[profile.name]
        proc = yield self.node.criu.restore_full(
            image, f"{profile.name}@{sandbox.sandbox_id}",
            on_local_delta=self.node.memory.page_delta_hook("function-anon"),
            ctx=ctx)
        sandbox.processes.append(proc)
        inst = Instance(profile, proc.address_space, payload=sandbox)
        return inst, "restored"

    def _retire(self, inst: Instance) -> Generator:
        inst.retired = True
        yield self.runtime.destroy_sandbox(inst.payload)


class UffdTmpfsPool(MemoryPool):
    """Snapshot file on (CXL-backed) tmpfs, served via userfaultfd.

    Each on-demand page costs the userspace fault round trip plus a VM
    exit — the "several microseconds by the OS, even when their snapshots
    are stored on a CXL-based tmpfs" of §9.2.2.
    """

    name = "tmpfs"
    byte_addressable = False

    def _fetch_time(self, npages: int, concurrency: int = 1) -> float:
        lat = self.latency
        per_page = (lat.mem.userfaultfd_fault + lat.vm.vm_exit
                    + 4096 / 16e9)
        return npages * per_page

    def _read_overhead(self, nloads: int) -> float:
        return 0.0


class _LazyVMPlatform(ServerlessPlatform):
    """Shared machinery for REAP/FaaSnap."""

    #: Fraction of the working-set prefetch that blocks startup.
    prefetch_blocking_fraction = 1.0

    def __init__(self, node: Node, keep_alive: float = 600.0, seed: int = 0,
                 netns_pool: bool = True):
        super().__init__(node, keep_alive, seed)
        self.hypervisor = Hypervisor(node, host_cache=self.host_cache,
                                     file_registry=self.files)
        self.netns_pool_enabled = netns_pool
        self._free_netns = 0
        self.images: Dict[str, SnapshotImage] = {}
        self.tmpfs = UffdTmpfsPool(64 * GB, node.latency)
        self.store = DedupStore(self.tmpfs)
        self.blocks: Dict[str, list] = {}
        self.register_pool(self.tmpfs)

    def _preprocess(self, profile: FunctionProfile) -> None:
        image = SnapshotImage.from_profile(profile)
        self.images[profile.name] = image
        self.blocks[profile.name] = [
            self.store.store_image(content)
            for _vma, content in image.vma_content_slices()]

    def _acquire(self, profile: FunctionProfile, ctx=None) -> Generator:
        node = self.node
        if self.netns_pool_enabled and self._free_netns > 0:
            self._free_netns -= 1
        else:
            yield node.namespaces.create_netns()
        cgroup = yield node.cgroups.create(f"jail-{profile.name}")
        yield node.cgroups.migrate(0, cgroup)
        vm = yield self.hypervisor.spawn_vm(
            GuestConfig(vcpus=2, mem_bytes=2 * GB,
                        storage=StorageMode.VIRTIO_BLK),
            name=f"{self.name}-{profile.name}")
        yield self.hypervisor.restore_snapshot(vm, profile.mem_bytes,
                                               RestoreMode.LAZY)
        self._bind_lazy_image(vm, profile)
        yield self._prefetch_working_set(vm, profile)
        inst = Instance(profile, vm.guest_memory, payload=vm)
        return inst, "restored"

    def _bind_lazy_image(self, vm: MicroVM, profile: FunctionProfile) -> None:
        image = self.images[profile.name]
        space = vm.guest_memory
        for (vma_desc, content), block in zip(image.vma_content_slices(),
                                              self.blocks[profile.name]):
            vma = space.add_vma(vma_desc.name, vma_desc.npages,
                                vma_desc.prot, vma_desc.flags)
            vma.content[:] = content
            space.bind_remote(vma, block, valid=False)

    def _prefetch_working_set(self, vm: MicroVM, profile: FunctionProfile
                              ) -> Generator:
        """Load the recorded working set from the snapshot file.

        REAP blocks on the whole batched read; FaaSnap overlaps most of
        it with execution (``prefetch_blocking_fraction``).
        """
        ws = profile.base_trace(self.trace_rng)
        ws_bytes = ws.touched_pages * 4096 + _GUEST_EXTRA_WS_BYTES
        blocking = (self.node.latency.memory_copy(ws_bytes)
                    * self.prefetch_blocking_fraction)
        yield Delay(blocking)
        # Materialise the prefetched pages (memory charged; time already
        # accounted by the batched copy above).
        vm.guest_memory.access(ws.read_pages, ws.write_pages)

    def _file_io(self, inst: Instance, profile: FunctionProfile) -> float:
        vm: MicroVM = inst.payload
        read_bytes = int(profile.file_io_bytes * 0.75)
        write_bytes = profile.file_io_bytes - read_bytes
        io = vm.read_files(read_bytes, f"data-{profile.name}",
                           ctx=inst.obs_ctx)
        io += vm.read_files(write_bytes, f"scratch-{profile.name}",
                            write=True, ctx=inst.obs_ctx)
        return io

    def _retire(self, inst: Instance) -> Generator:
        inst.retired = True
        yield self.hypervisor.destroy_vm(inst.payload)
        if self.netns_pool_enabled:
            self._free_netns += 1


class ReapPlatform(_LazyVMPlatform):
    """REAP(+): eager, blocking working-set prefetch."""

    name = "reap"
    prefetch_blocking_fraction = 1.0


class FaasnapPlatform(_LazyVMPlatform):
    """FaaSnap(+): asynchronous prefetch overlapped with execution."""

    name = "faasnap"
    prefetch_blocking_fraction = 0.25
