"""Parallel cluster runs: node-group shards across worker processes.

:func:`run_cluster_parallel` executes one :class:`ClusterSpec` +
:class:`~repro.workloads.synthetic.Workload` either serially (the
reference path) or sharded across a ``multiprocessing`` pool, and the
two are **bit-identical by construction**:

* :func:`~repro.serverless.partition.plan_shards` first proves the run
  statically partitionable (round-robin assignment, no control plane,
  no faults) or names why not — ineligible runs take the serial path
  and report the reasons;
* each worker rebuilds the *full* rack from the spec — every platform,
  every function registration in serial order — so shared pool/store
  contents and registration-time RNG draws match the serial run, then
  drives **only its owned events** (a contiguous node block) through a
  :class:`~repro.sim.parallel.ShardRunner` window loop;
* dispatch inside a worker replays the plan's static assignment via a
  scripted policy, so per-node event streams equal the serial run's
  slices exactly;
* shard outcomes merge in shard order, which equals the serial
  per-node merge order because node blocks are contiguous.

Statically-partitioned runs exchange no cross-shard events (the plan
proves ``channels_open=False``), so the window barriers degenerate to
local pacing and workers never block on each other — that elision is
what makes the scaling near-linear; the general barrier/mailbox
protocol lives in :mod:`repro.sim.parallel` and is pinned by its own
tests.  The windows still run for real: each worker steps its clock
with ``run_window`` and folds every barrier into a digest the report
exposes, so a scheduling regression that perturbed window structure
would be visible across worker counts.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, List, Optional, Sequence,
                    Tuple)

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.obs.trace import SpanTracer

from repro import optflags
from repro.serverless.cluster import ClusterResult, DispatchPolicy
from repro.serverless.metrics import LatencyRecorder
from repro.serverless.partition import (ClusterSpec, ParallelPlan,
                                        SerialFallback, plan_shards)
from repro.sim.parallel import ParallelReport, ShardRunner, resolve_jobs
from repro.workloads.synthetic import ArrivalEvent, Workload


class ScriptedPolicy(DispatchPolicy):
    """Replays a precomputed node-name sequence, one pick per event.

    Inside a shard worker the stock policy cannot run: its cursor (or
    state reads) would see only the shard's event subsequence and
    drift off the plan.  The worker instead scripts the exact node
    names the plan assigned to its events, in order.
    """

    name = "scripted"

    def __init__(self, node_names: Sequence[str]):
        self._names = list(node_names)
        self._cursor = 0

    def pick(self, platforms, function):
        name = self._names[self._cursor]
        self._cursor += 1
        for platform in platforms:
            if platform.node.name == name:
                return platform
        raise RuntimeError(f"scripted node {name!r} not in candidate set")


@dataclass
class _ShardOutcome:
    """Picklable result of one shard worker."""

    shard: int
    recorder: LatencyRecorder
    per_node_peak_mb: List[float]
    dispatch_counts: Dict[str, int]
    failed: List[Tuple[str, float, str]]
    duration: float
    pool_used_mb: float
    digest: int
    registry: Optional[Dict]
    tracer: Optional[Dict] = None


@dataclass
class ParallelRunOutcome:
    """What :func:`run_cluster_parallel` hands back."""

    result: ClusterResult
    report: ParallelReport
    #: Merged MetricsRegistry.to_dict() when obs_level != "off".
    registry: Optional[Dict] = None
    #: The run's span trace when obs_level == "spans": the live serial
    #: tracer, or shard traces merged back to serial-equivalent form.
    tracer: Optional["SpanTracer"] = None
    #: How the trace was obtained: "serial" (reference path), "merged"
    #: (shard traces folded via repro.obs.merge), or
    #: "fallback: <reason>" (merge invariant broken; the trace comes
    #: from a serial re-run).  None when spans were not requested.
    span_merge: Optional[str] = None


def _sub_workload(workload: Workload, events: List[ArrivalEvent],
                  shard: int) -> Workload:
    return Workload(name=f"{workload.name}/shard{shard}",
                    events=list(events), duration=workload.duration,
                    soft_cap_bytes=workload.soft_cap_bytes,
                    keep_alive=workload.keep_alive,
                    warmup=workload.warmup)


def _shard_worker(spec: ClusterSpec, workload: Workload, shard: int,
                  group: Tuple[int, int], events: List[ArrivalEvent],
                  node_seq: List[str], horizon: float, lookahead: float,
                  warmup: Optional[float], obs_level: str) -> _ShardOutcome:
    """One shard: rebuild the world, drive owned events in windows."""
    from repro.obs.observer import observed
    from repro.sim.parallel import plan_windows

    # Build and prepare (replay registration) OUTSIDE the observed
    # window on every path: each worker replays the full registration
    # for state parity, so observing it would count registration-time
    # metrics n_shards times.  The registry covers the timed run only —
    # the serial path does the same, keeping the merged registry
    # identical.  Preparing with the FULL workload (not the shard's
    # subsequence) also matters for state parity itself: a shard whose
    # events happen to use fewer functions would otherwise register a
    # subset, skewing shared pool/store contents and registration RNG.
    cluster = spec.build()
    cluster.prepare_workload(workload, warmup=warmup)
    cluster.policy = ScriptedPolicy(node_seq)
    # The scripted policy is exact by construction; the dispatch index
    # (built for stateful policies only) is never consulted for it.
    assert cluster._index is None

    runner_box: List[ShardRunner] = []

    def stepper(sim):
        plan = plan_windows(horizon, lookahead, channels_open=False)
        runner = ShardRunner(shard, sim, plan)
        runner_box.append(runner)
        while runner.advance_one_window() is not None:
            pass
        runner.finish()

    sub = _sub_workload(workload, events, shard)
    registry_dict: Optional[Dict] = None
    tracer_dict: Optional[Dict] = None
    if obs_level != "off":
        with observed(obs_level) as obs:
            cluster.run_workload(sub, warmup=warmup, stepper=stepper)
        registry_dict = obs.registry.to_dict()
        if obs.tracer is not None:
            tracer_dict = obs.tracer.to_dict()
    else:
        cluster.run_workload(sub, warmup=warmup, stepper=stepper)

    start, end = group
    owned = cluster.platforms[start:end]
    chosen_warmup = workload.warmup if warmup is None else warmup
    recorder = LatencyRecorder(
        warmup=chosen_warmup,
        keep_results=all(p.recorder.keep_results for p in owned))
    for platform in owned:
        recorder.merge_from(platform.recorder)
    return _ShardOutcome(
        shard=shard,
        recorder=recorder,
        per_node_peak_mb=[p.node.memory.peak_bytes / (1 << 20)
                          for p in owned],
        dispatch_counts=dict(cluster.dispatch_counts),
        failed=list(cluster.failed),
        duration=cluster.sim.now,
        pool_used_mb=cluster.rack_pool_used_mb(),
        digest=runner_box[0].digest,
        registry=registry_dict,
        tracer=tracer_dict)


def _run_serial(spec: ClusterSpec, workload: Workload,
                warmup: Optional[float], obs_level: str, mode: str,
                jobs: int, reasons: List[str]) -> ParallelRunOutcome:
    from repro.obs.observer import observed

    cluster = spec.build()
    # Same observation contract as the shard workers: registration is
    # untimed preprocessing and stays outside the observed window.
    cluster.prepare_workload(workload, warmup=warmup)
    registry_dict: Optional[Dict] = None
    tracer = None
    if obs_level != "off":
        with observed(obs_level) as obs:
            result = cluster.run_workload(workload, warmup=warmup)
        registry_dict = obs.registry.to_dict()
        tracer = obs.tracer
    else:
        result = cluster.run_workload(workload, warmup=warmup)
    report = ParallelReport(mode=mode, jobs=jobs, n_shards=1, n_windows=0,
                            lookahead=0.0, window_width=0.0,
                            reasons=list(reasons))
    return ParallelRunOutcome(result=result, report=report,
                              registry=registry_dict, tracer=tracer,
                              span_merge=("serial" if tracer is not None
                                          else None))


def _merge_outcomes(spec: ClusterSpec, workload: Workload,
                    warmup: Optional[float], plan: ParallelPlan,
                    outcomes: List[_ShardOutcome]) -> ClusterResult:
    """Shard-order merge; equals run_workload's node-order merge."""
    chosen_warmup = workload.warmup if warmup is None else warmup
    merged = LatencyRecorder(
        warmup=chosen_warmup,
        keep_results=all(o.recorder.keep_results for o in outcomes))
    for outcome in outcomes:
        merged.merge_from(outcome.recorder)
    failed: List[Tuple[str, float, str]] = []
    for outcome in outcomes:
        for failure in outcome.failed:
            merged.record_failure(*failure)
            failed.append(failure)
    peaks: List[float] = []
    for outcome in outcomes:
        peaks.extend(outcome.per_node_peak_mb)
    counts: Dict[str, int] = {}
    for outcome in outcomes:
        for node, n in outcome.dispatch_counts.items():
            counts[node] = counts.get(node, 0) + n
    pool_mbs = {round(o.pool_used_mb, 9) for o in outcomes}
    if len(pool_mbs) != 1:
        raise RuntimeError(
            f"shard workers disagree on rack pool usage: {pool_mbs}")
    return ClusterResult(
        recorder=merged,
        per_node_peak_mb=peaks,
        total_peak_mb=sum(peaks),
        pool_used_mb=outcomes[0].pool_used_mb,
        dispatch_counts=dict(sorted(counts.items())),
        duration=max(o.duration for o in outcomes),
        availability=merged.availability(),
        redispatches=0,
        node_crashes=0,
        failed=failed,
        control=None)


def run_cluster_parallel(spec: ClusterSpec, workload: Workload,
                         jobs: int = 0, warmup: Optional[float] = None,
                         obs_level: str = "off") -> ParallelRunOutcome:
    """Run one cluster workload, sharded when provably safe.

    ``jobs`` follows the unified rule (:func:`resolve_jobs`): 0 sizes
    to ``min(cpu_count, n_nodes)``; the shard count equals the resolved
    worker count (one contiguous node block per worker).  Results are
    independent of the worker count: any eligible sharding merges back
    to the serial result bit-for-bit, and ineligible configurations
    run the serial path outright (``report.reasons`` says why).
    """
    # Sampled at entry, like every optflag (construction-time contract).
    if not optflags.parallel_sim:
        return _run_serial(spec, workload, warmup, obs_level,
                           mode="serial", jobs=1,
                           reasons=["optflags.parallel_sim disabled"])
    n_jobs = resolve_jobs(jobs, spec.n_nodes)
    plan = plan_shards(spec, workload, n_jobs)
    if isinstance(plan, SerialFallback):
        return _run_serial(spec, workload, warmup, obs_level,
                           mode="fallback", jobs=n_jobs,
                           reasons=list(plan.reasons))

    node_names = [f"node{i}" for i in range(spec.n_nodes)]
    tasks = []
    for shard in range(plan.n_shards):
        indices = plan.owned_events(shard)
        events = [workload.events[i] for i in indices]
        node_seq = [node_names[plan.assignment[i]] for i in indices]
        tasks.append((spec, workload, shard, plan.node_groups[shard],
                      events, node_seq, plan.horizon, plan.lookahead,
                      warmup, obs_level))

    if plan.n_shards == 1:
        outcomes = [_shard_worker(*tasks[0])]
    else:
        with multiprocessing.Pool(plan.n_shards) as pool:
            outcomes = pool.starmap(_shard_worker, tasks)
    outcomes.sort(key=lambda o: o.shard)

    result = _merge_outcomes(spec, workload, warmup, plan, outcomes)
    window = plan.window_plan()
    report = ParallelReport(
        mode="parallel", jobs=plan.n_shards, n_shards=plan.n_shards,
        n_windows=window.n_windows, lookahead=window.lookahead,
        window_width=window.width,
        shard_digests=[o.digest for o in outcomes])
    registry: Optional[Dict] = None
    if obs_level != "off":
        from repro.obs.registry import MetricsRegistry
        combined = MetricsRegistry()
        for outcome in outcomes:
            assert outcome.registry is not None
            # Shards partition one rack: counters/histograms add and
            # gauge levels are disjoint contributions, so "sum" rebuilds
            # the serial registry exactly (unlike independent sweep
            # shards, where only the max of a gauge is meaningful).
            combined.merge_from(MetricsRegistry.from_dict(outcome.registry),
                                gauges="sum")
        registry = combined.to_dict()
    tracer = None
    span_merge: Optional[str] = None
    if obs_level == "spans":
        from repro.obs.merge import (SpanMergeError, merge_shard_tracers,
                                     shard_remaps)
        remaps = shard_remaps([e.time for e in workload.events], plan)
        try:
            tracer = merge_shard_tracers(
                [o.tracer for o in outcomes], remaps)
            span_merge = "merged"
        except SpanMergeError as exc:
            # The merge invariants should hold for every eligible plan;
            # if one broke, surface why and take the serial reference
            # path for the trace (results stay bit-identical — only the
            # trace's provenance changes).
            fallback = _run_serial(spec, workload, warmup, obs_level,
                                   mode="parallel", jobs=plan.n_shards,
                                   reasons=[])
            tracer = fallback.tracer
            span_merge = f"fallback: {exc}"
    return ParallelRunOutcome(result=result, report=report,
                              registry=registry, tracer=tracer,
                              span_merge=span_merge)
