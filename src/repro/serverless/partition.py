"""Static partitioning of one cluster run into node-group shards.

A cluster run is parallelizable here only when it can be *statically*
partitioned: every invocation's target node must be a pure function of
arrival order (``DispatchPolicy.static_assignment``), because a policy
that reads live cluster state (warm pools, CPU loads) couples every
dispatch decision to the interleaved global timeline with zero
lookahead.  Likewise an armed control plane (rack-global admission
queues, breakers, retry budget) or injected faults (globally-ordered
timeout-budget consumption, crash re-dispatch) make the run
conservative-unparallelizable without breaking the bit-identical
contract — :func:`plan_shards` returns a :class:`SerialFallback` naming
each reason, and the runner takes the serial reference path.

What makes the static case safe (the PDES logical-process argument):

* shared rack state (pool, dedup store) is written only during the
  *untimed* ``register_function`` preprocessing, which every shard
  replays identically before its clock starts; during the run it is
  read-only, and read costs are pure functions of their arguments;
* all runtime randomness is per-platform (seeded per node) or
  stateless via named RNG forks, so a node's invocation stream depends
  only on the events dispatched *to that node*, in arrival order;
* per-node event subsequences preserve their relative ``(time, seq)``
  order when simulated alone, so each node's timeline is bit-identical
  to its slice of the serial timeline.

Shards own **contiguous** node blocks so that merging shard results in
shard order equals the serial per-node merge order exactly (the
recorder merge re-records results in source order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.control.config import ControlConfig
from repro.mem.layout import GB
from repro.serverless.cluster import Cluster, make_policy, make_trenv_cluster
from repro.serverless.metrics import LatencyRecorder
from repro.sim.parallel import derive_lookahead, plan_windows
from repro.workloads.functions import FunctionProfile
from repro.workloads.synthetic import Workload

#: Why injected faults force the serial path: the pool-fault timeout
#: budget is consumed in global event order, and node crashes trigger
#: cross-node re-dispatch — both zero-lookahead couplings.
FAULTS_UNSAFE_REASON = (
    "faults armed: timeout budgets are consumed in global event order "
    "and crash re-dispatch crosses shards with zero lookahead")


@dataclass(frozen=True)
class PoolSpec:
    """Picklable recipe for a rack memory pool."""

    kind: str = "cxl"              # "cxl" | "rdma" | "nas"
    capacity_bytes: int = 128 * GB

    def build(self):
        from repro.mem.pools import CXLPool, NASPool, RDMAPool
        table = {"cxl": CXLPool, "rdma": RDMAPool, "nas": NASPool}
        try:
            return table[self.kind](self.capacity_bytes)
        except KeyError:
            raise ValueError(
                f"unknown pool kind {self.kind!r}; "
                f"known: {tuple(sorted(table))}") from None


@dataclass(frozen=True)
class ClusterSpec:
    """Everything needed to rebuild one rack, in any process.

    ``functions`` is the full registration list **in registration
    order**: every shard worker replays it on every platform before the
    clock starts, so shared pool/store contents and per-platform
    registration-time RNG draws match the serial run exactly even
    though the worker only drives a subset of the events.
    """

    n_nodes: int
    pool: PoolSpec = field(default_factory=PoolSpec)
    seed: int = 0
    cores: int = 64
    policy: str = "round-robin"
    functions: Tuple[FunctionProfile, ...] = ()
    #: keep per-invocation results (False = streaming-only recorders,
    #: the trace-scale memory mode of bench_cluster_scale).
    keep_results: bool = True
    fallback_pool: Optional[PoolSpec] = None
    control: Optional[ControlConfig] = None

    def build(self) -> Cluster:
        """Rebuild the rack; identical in every process by construction."""
        cluster = make_trenv_cluster(
            self.n_nodes, self.pool.build(), seed=self.seed,
            cores=self.cores, policy=make_policy(self.policy),
            fallback_pool=(self.fallback_pool.build()
                           if self.fallback_pool is not None else None),
            control=self.control)
        for platform in cluster.platforms:
            for profile in self.functions:
                platform.register_function(profile)
            if not self.keep_results:
                platform.recorder = LatencyRecorder(keep_results=False)
        return cluster


@dataclass(frozen=True)
class SerialFallback:
    """The run is not statically partitionable; run serial instead."""

    reasons: Tuple[str, ...]


@dataclass(frozen=True)
class ParallelPlan:
    """A proven-static partition of one run into node-group shards."""

    n_shards: int
    #: Event index -> node index, for the whole workload.
    assignment: Tuple[int, ...]
    #: Shard -> [start, end) node-index block; blocks are contiguous
    #: and cover [0, n_nodes) so shard-order merge == node-order merge.
    node_groups: Tuple[Tuple[int, int], ...]
    horizon: float
    lookahead: float
    #: Statically-partitioned runs exchange no cross-shard events, so
    #: the runner may elide window barriers entirely.
    channels_open: bool = False

    def shard_of_node(self, node: int) -> int:
        for shard, (start, end) in enumerate(self.node_groups):
            if start <= node < end:
                return shard
        raise ValueError(f"node {node} outside every shard group")

    def owned_events(self, shard: int) -> List[int]:
        start, end = self.node_groups[shard]
        return [i for i, node in enumerate(self.assignment)
                if start <= node < end]

    def window_plan(self):
        return plan_windows(self.horizon, self.lookahead,
                            channels_open=self.channels_open)


def node_groups_for(n_nodes: int, n_shards: int) -> Tuple[Tuple[int, int], ...]:
    """Contiguous node blocks, balanced to within one node.

    Shard ``i`` owns ``[floor(i*N/S), floor((i+1)*N/S))`` — handles
    shard counts that do not divide the node count without empty
    shards (requires ``n_shards <= n_nodes``).
    """
    if not 1 <= n_shards <= n_nodes:
        raise ValueError(
            f"need 1 <= n_shards ({n_shards}) <= n_nodes ({n_nodes})")
    return tuple((i * n_nodes // n_shards, (i + 1) * n_nodes // n_shards)
                 for i in range(n_shards))


def plan_shards(spec: ClusterSpec, workload: Workload, n_shards: int,
                faults_armed: bool = False
                ) -> Union[ParallelPlan, SerialFallback]:
    """Prove the run statically partitionable, or say why it is not."""
    from repro.control.plane import PARALLEL_UNSAFE_REASON

    reasons: List[str] = []
    n_shards = min(n_shards, spec.n_nodes)
    if n_shards <= 1:
        reasons.append("single shard: nothing to parallelize")
    if not workload.events:
        reasons.append("empty workload")
    if spec.control is not None:
        reasons.append(PARALLEL_UNSAFE_REASON)
    if faults_armed:
        reasons.append(FAULTS_UNSAFE_REASON)
    assignment: Optional[Sequence[int]] = None
    if not reasons:
        policy = make_policy(spec.policy)
        assignment = policy.static_assignment(len(workload.events),
                                              spec.n_nodes)
        if assignment is None:
            reasons.append(
                f"policy {spec.policy!r} reads live cluster state: "
                "no static event->node assignment exists")
    if reasons:
        return SerialFallback(reasons=tuple(reasons))
    assert assignment is not None
    return ParallelPlan(
        n_shards=n_shards,
        assignment=tuple(assignment),
        node_groups=node_groups_for(spec.n_nodes, n_shards),
        horizon=float(workload.duration),
        lookahead=derive_lookahead(),
        channels_open=False)
