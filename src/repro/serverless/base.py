"""Platform skeleton shared by every evaluated system.

Implements the §9.1 methodology pieces that are common across faasd,
CRIU, REAP+, FaaSnap+ and TrEnv:

* the keep-alive schedule policy — finished instances stay warm for a
  fixed window (default 10 min) in an LRU pool and are reused for new
  invocations of the same function;
* memory-pressure eviction — under a soft memory cap (W2: 32 GB), LRU
  warm instances are destroyed until usage fits;
* the execution engine — an invocation replays its page-access trace
  through the instance's address space; fault handling and remote-pool
  fetches become CPU work (so they stretch under load, which is exactly
  the §9.2.2 tail-latency effect), CXL load deltas become execution time,
  and file IO flows through the platform's page-cache model.

Subclasses provide acquisition (``_acquire``), recycling (``_recycle``)
and retirement (``_retire``).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.faults.errors import (DeadlineExceededError, NodeCrashedError,
                                 PoolFault, PoolUnavailableError)
from repro.faults.retry import RetryPolicy
from repro.mem.address_space import AddressSpace
from repro.mem.layout import PAGE_SIZE
from repro.mem.page_cache import FileIdRegistry, PageCache
from repro.mem.pools import MemoryPool
from repro.node import Node
from repro.obs import hooks as obs_hooks
from repro.serverless.metrics import InvocationResult, LatencyRecorder
from repro.sim.engine import Delay, Interrupt
from repro.sim.rng import SeededRNG
from repro.workloads.functions import FunctionProfile

#: IO time per freshly-read 4 KiB page cache block on the host (NVMe).
_HOST_IO_PER_PAGE = 3e-6


class Instance:
    """One live (or warm) execution environment."""

    _ids = itertools.count(1)

    def __init__(self, profile: FunctionProfile, space: AddressSpace,
                 payload: object = None):
        self.instance_id = next(Instance._ids)
        self.profile = profile
        self.space = space
        self.payload = payload          # sandbox / MicroVM / None
        self.busy = True
        self.last_used = 0.0
        self.invocations = 0
        self.retired = False
        #: Maintained by WarmPool: True while idle in the keep-alive pool.
        self.parked = False
        #: Set when acquisition had to take a fallback path because the
        #: remote pool was unreachable (see repro.faults).
        self.degraded_start = False
        #: The TraceContext of the invocation currently running on this
        #: instance (repro.obs); None whenever tracing is off or idle.
        self.obs_ctx = None

    @property
    def function(self) -> str:
        return self.profile.name


class WarmPool:
    """Keep-alive pool: per-function stacks with global LRU view.

    The LRU view is a lazy min-heap keyed ``(last_used, fseq, putseq)``:
    ``fseq`` is the order the function key first entered the pool and
    ``putseq`` a global park counter, so ties resolve exactly like the
    old full scan (function registration order, then stack position) —
    eviction victims, and therefore seeded results, are unchanged.
    Entries whose instance was taken, removed or re-parked since the push
    are detected by a stamp mismatch and dropped on the next peek, making
    ``lru_victim`` amortised O(log n) instead of O(pool size).
    """

    def __init__(self):
        self._by_function: Dict[str, List[Instance]] = {}
        self._heap: List[Tuple[float, int, int, Instance]] = []
        self._fseq: Dict[str, int] = {}
        self._putseq = itertools.count()
        self.hits = 0
        self.misses = 0
        #: Single-consumer hook: called with (function, idle count) after
        #: every change to a function's idle-instance count.  Cluster
        #: dispatch indices subscribe so WarmAffinity never scans.
        self.on_change: Optional[Callable[[str, int], None]] = None

    def has(self, function: str) -> bool:
        """Whether at least one idle instance of ``function`` is parked."""
        return bool(self._by_function.get(function))

    def count(self, function: str) -> int:
        """Number of idle instances of ``function`` in the pool."""
        return len(self._by_function.get(function, ()))

    def take(self, function: str) -> Optional[Instance]:
        stack = self._by_function.get(function)
        if stack:
            self.hits += 1
            inst = stack.pop()
            inst.busy = True
            inst.parked = False
            if self.on_change is not None:
                self.on_change(function, len(stack))
            return inst
        self.misses += 1
        return None

    def put(self, inst: Instance) -> None:
        inst.busy = False
        inst.parked = True
        stack = self._by_function.setdefault(inst.function, [])
        stack.append(inst)
        fseq = self._fseq.get(inst.function)
        if fseq is None:
            fseq = self._fseq[inst.function] = len(self._fseq)
        heapq.heappush(self._heap,
                       (inst.last_used, fseq, next(self._putseq), inst))
        if self.on_change is not None:
            self.on_change(inst.function, len(stack))

    def remove(self, inst: Instance) -> bool:
        stack = self._by_function.get(inst.function, [])
        if inst in stack:
            stack.remove(inst)
            inst.parked = False
            if self.on_change is not None:
                self.on_change(inst.function, len(stack))
            return True
        return False

    def lru_victim(self) -> Optional[Instance]:
        """The least-recently-used idle instance across all functions."""
        heap = self._heap
        while heap:
            stamp, _fseq, _putseq, inst = heap[0]
            if (inst.parked and not inst.retired
                    and inst.last_used == stamp):
                return inst
            heapq.heappop(heap)
        return None

    def idle_instances(self) -> List[Instance]:
        return [i for stack in self._by_function.values() for i in stack]

    def clear(self) -> None:
        """Drop every parked instance (node crash: warm state is lost)."""
        emptied: List[str] = []
        for function, stack in self._by_function.items():
            if stack:
                emptied.append(function)
            for inst in stack:
                inst.parked = False
        self._by_function.clear()
        self._heap.clear()
        self._fseq.clear()
        if self.on_change is not None:
            for function in emptied:
                self.on_change(function, 0)

    def function_counts(self) -> Dict[str, int]:
        """{function: idle count} for every function with idle instances."""
        return {fn: len(stack) for fn, stack in self._by_function.items()
                if stack}

    def __len__(self) -> int:
        return sum(len(s) for s in self._by_function.values())


class ServerlessPlatform:
    """Base class; subclasses implement acquisition and retirement."""

    name = "base"

    def __init__(self, node: Node, keep_alive: float = 600.0, seed: int = 0,
                 keep_alive_policy=None):
        self.node = node
        self.keep_alive = keep_alive
        #: Optional KeepAlivePolicy; None means the fixed window in
        #: ``keep_alive`` (re-read at expiry time, so the workload
        #: runner may adjust it).
        self.keep_alive_policy = keep_alive_policy
        self.functions: Dict[str, FunctionProfile] = {}
        self.warm = WarmPool()
        self.recorder = LatencyRecorder()
        self.trace_rng = SeededRNG(seed, f"{self.name}/traces")
        self.host_cache = PageCache(
            "host-cache",
            on_delta=lambda d: node.memory.charge_pages("host-page-cache", d))
        self.files = FileIdRegistry()
        self._pools_by_name: Dict[str, MemoryPool] = {}
        self._inflight_fetches = 0
        self._inv_counter = itertools.count()
        # Per-function admission control: None = unlimited.
        self._concurrency_limits: Dict[str, int] = {}
        self._running_per_function: Dict[str, int] = {}
        self._admission_queues: Dict[str, List] = {}
        # -- failure handling (repro.faults) --
        self.retry_policy = RetryPolicy()
        #: Substream for retry-backoff jitter; untouched while the
        #: policy's jitter is 0, so seeded results are unchanged.
        self.retry_rng = SeededRNG(seed, f"{self.name}/retry")
        #: Optional repro.control.ControlPlane — set by the cluster when
        #: a ControlConfig is armed; None means no control plane (the
        #: default, byte-identical to the pre-control platform).
        self.control = None
        #: Next rung of the degradation ladder after the primary pool
        #: (typically a NASPool); the final rung is a local batched copy.
        self.fallback_pool: Optional[MemoryPool] = None
        self.crashed = False
        self.crash_count = 0
        self.pool_fault_count = 0
        self.fault_retries = 0
        self.degraded_invocations = 0

    # -- registration --------------------------------------------------------------

    def register_function(self, profile: FunctionProfile) -> None:
        """Register + run platform preprocessing (snapshots, templates)."""
        self.functions[profile.name] = profile
        self._preprocess(profile)

    def _preprocess(self, profile: FunctionProfile) -> None:
        """Hook: offline preparation (untimed, §4 phase A)."""

    def register_pool(self, pool: MemoryPool) -> None:
        self._pools_by_name[pool.name] = pool

    @property
    def pools(self) -> Dict[str, MemoryPool]:
        """Public view of the registered pools (used by FaultInjector)."""
        return dict(self._pools_by_name)

    def set_fallback_pool(self, pool: MemoryPool) -> None:
        """Register ``pool`` as the degradation target for pool faults."""
        self.register_pool(pool)
        self.fallback_pool = pool

    def set_concurrency_limit(self, function: str, limit: Optional[int]
                              ) -> None:
        """Cap in-flight invocations per function (FIFO admission)."""
        if limit is not None and limit <= 0:
            raise ValueError("concurrency limit must be positive")
        if limit is None:
            self._concurrency_limits.pop(function, None)
        else:
            self._concurrency_limits[function] = limit

    # -- the invocation lifecycle -----------------------------------------------------

    def invoke(self, function: str, arrival: Optional[float] = None,
               ctx=None) -> Generator:
        """Timed: run one invocation end-to-end; returns the result.

        Pool faults are absorbed (retry with backoff, then degrade to a
        fallback path).  A node crash mid-invocation surfaces as a typed
        :class:`NodeCrashedError` so a cluster dispatcher can re-dispatch
        the work elsewhere.

        ``ctx`` is an optional :class:`repro.obs.trace.TraceContext`
        threaded down from a dispatcher; with tracing on and no context
        given, the invocation opens (and closes) its own.  Observability
        is host-side only: no branch below adds simulated time.
        """
        if self.crashed:
            raise NodeCrashedError(self.node.name)
        profile = self.functions[function]
        arrival = self.node.now if arrival is None else arrival
        if self.keep_alive_policy is not None:
            self.keep_alive_policy.observe_arrival(function, arrival)
        inv_idx = next(self._inv_counter)
        t0 = self.node.now
        obs = obs_hooks.active
        tracer = obs.tracer if obs is not None else None
        own_ctx = False
        if tracer is not None:
            if ctx is None:
                ctx = tracer.begin(function, t0)
                own_ctx = True
            if not ctx.bound:
                tracer.bind(ctx, self.node.name)
        else:
            ctx = None   # stale context from a since-removed observer
        inst: Optional[Instance] = None
        try:
            yield self._admit(function, ctx)
            queue_wait = self.node.now - t0
            t_acquire = self.node.now
            inst = self.warm.take(function)
            if inst is not None:
                kind = "warm"
                inst.obs_ctx = ctx
                yield self._warm_resume(inst)
                if tracer is not None:
                    tracer.span(ctx, "warm_hit", t_acquire, self.node.now)
            else:
                inst, kind = yield self._acquire(profile, ctx)
                inst.obs_ctx = ctx
                if tracer is not None:
                    tracer.span(ctx, "acquire", t_acquire, self.node.now,
                                args={"kind": kind})
            startup = self.node.now - t_acquire
            t1 = self.node.now
            retries, degraded = yield self.execute(inst, profile, inv_idx)
            exec_lat = self.node.now - t1
            inst.last_used = self.node.now
            inst.invocations += 1
            t_teardown = self.node.now
            yield self._recycle(inst)
            if tracer is not None:
                tracer.span(ctx, "teardown", t_teardown, self.node.now)
            self._release(function, ctx)
            self._apply_memory_pressure()
        except Interrupt as intr:
            # The node died under us: drop whatever was half-built and
            # re-raise as a typed crash for the dispatcher.
            self._abort_crashed_instance(inst)
            if tracer is not None:
                tracer.instant("interrupted", self.node.now, ctx=ctx,
                               args={"function": function})
                if own_ctx:
                    tracer.finish(ctx, self.node.now)
            cause = intr.cause
            if not isinstance(cause,
                              (NodeCrashedError, DeadlineExceededError)):
                # Unattributed interrupt: treat as a crash (historical
                # behaviour).  Deadline interrupts pass through typed so
                # the dispatcher can tell "host died" from "out of
                # time" — only the former is worth re-dispatching.
                cause = NodeCrashedError(self.node.name)
            raise cause from None
        finally:
            if inst is not None:
                inst.obs_ctx = None
        degraded = degraded or inst.degraded_start
        inst.degraded_start = False   # one-shot: only this start was degraded
        if degraded:
            self.degraded_invocations += 1
        self.fault_retries += retries
        result = InvocationResult(function=function, arrival=arrival,
                                  start_kind=kind, startup=startup,
                                  exec=exec_lat,
                                  e2e=self.node.now - t0,
                                  queue=queue_wait,
                                  retries=retries, degraded=degraded)
        self.recorder.record(result)
        if obs is not None:
            obs.on_invocation(self.name, result)
            if tracer is not None:
                if queue_wait > 0:
                    tracer.span(ctx, "queue", t0, t0 + queue_wait)
                tracer.span(ctx, function, t0, self.node.now,
                            cat="invocation",
                            args={"kind": kind, "queue": queue_wait,
                                  "retries": retries,
                                  "degraded": degraded})
                if own_ctx:
                    tracer.finish(ctx, self.node.now)
        return result

    def _abort_crashed_instance(self, inst: Optional[Instance]) -> None:
        """Untimed cleanup for an instance lost to a node crash."""
        if inst is None or inst.retired:
            return
        inst.retired = True
        inst.space.destroy()

    def _admit(self, function: str, ctx=None):
        """Timed: wait for an admission slot if the function is capped.
        The slot is handed directly to the next waiter on release, so
        admission is strictly FIFO and never over-subscribes.

        ``ctx`` rides along on the queue entry so the eventual grantor
        can emit a causal ``slot_grant`` link (who the queue wait was
        actually waiting on) — a host-side annotation only.
        """
        limit = self._concurrency_limits.get(function)
        if limit is None:
            return
            yield  # pragma: no cover
        running = self._running_per_function.get(function, 0)
        if running >= limit:
            gate = self.node.sim.event()
            entry = (gate, ctx, self.node.now)
            self._admission_queues.setdefault(function, []).append(entry)
            try:
                yield gate   # slot transferred on wake
            except Interrupt:
                queue = self._admission_queues.get(function)
                if queue and entry in queue:
                    queue.remove(entry)      # never got the slot
                else:
                    self._release(function)  # slot arrived mid-interrupt
                raise
        else:
            self._running_per_function[function] = running + 1
        return

    def _release(self, function: str, ctx=None) -> None:
        if function not in self._concurrency_limits:
            return
        queue = self._admission_queues.get(function)
        if queue:
            gate, waiter_ctx, t_enq = queue.pop(0)
            obs = obs_hooks.active
            if (obs is not None and obs.tracer is not None
                    and waiter_ctx is not None):
                obs.tracer.link("slot_grant", t_enq, self.node.now,
                                src=(ctx if ctx is not None else 0),
                                dst=waiter_ctx,
                                args={"function": function,
                                      "node": self.node.name})
            gate.trigger()
        else:
            # .get guards the post-crash case where counters were reset
            # while this invocation still held a slot.
            running = self._running_per_function.get(function, 0)
            self._running_per_function[function] = max(0, running - 1)

    # -- hooks ---------------------------------------------------------------------------

    def _acquire(self, profile: FunctionProfile, ctx=None) -> Generator:
        """Timed hook: produce a ready instance; returns (inst, kind).

        ``ctx`` is the invocation's TraceContext (or None): subclasses
        thread it into the restore/attach engines so cold-start phases
        land on the right trace lane.
        """
        raise NotImplementedError

    def _warm_resume(self, inst: Instance) -> Generator:
        """Timed hook: wake a warm instance (default: unpause cost)."""
        yield Delay(0.3e-3)

    def _recycle(self, inst: Instance) -> Generator:
        """Timed hook: what happens after completion (default: keep warm)."""
        self.warm.put(inst)
        self._schedule_expiry(inst)
        return
        yield  # pragma: no cover

    def _retire(self, inst: Instance) -> Generator:
        """Timed hook: destroy the instance and release resources."""
        inst.retired = True
        inst.space.destroy()
        return
        yield  # pragma: no cover

    # -- execution engine ----------------------------------------------------------------

    def execute(self, inst: Instance, profile: FunctionProfile,
                inv_idx: int) -> Generator:
        """Timed: replay the invocation's page-access trace and compute.

        Returns ``(retries, degraded)``: how many pool-fault retries were
        consumed and whether any access fell back to a degraded path.
        """
        node = self.node
        lat = node.latency.mem
        obs = obs_hooks.active
        tracer = obs.tracer if obs is not None else None
        ctx = inst.obs_ctx if tracer is not None else None
        trace = profile.make_trace(self.trace_rng, inv_idx)
        outcome = inst.space.access(trace.read_pages, trace.write_pages,
                                    trace.read_loads)
        # Fault handling is CPU work: it stretches under overload.
        overhead = (outcome.minor_faults * lat.minor_fault
                    + outcome.cow_faults * lat.cow_fault)
        retries = 0
        degraded = False
        t_replay0 = node.now
        #: Host-side ledger: pool name -> CPU seconds charged for its
        #: fetches/loads this invocation (feeds the per-tier blame).
        pool_seconds: Dict[str, float] = {}
        self._inflight_fetches += 1
        try:
            for pool_name, pages in outcome.fetch_pools.items():
                pool = self._pools_by_name.get(pool_name)
                if pool is None:
                    raise KeyError(
                        f"{self.name}: fetched from unregistered pool "
                        f"{pool_name!r}")
                t, r, d = yield from self._fetch_with_recovery(pool, pages)
                overhead += t
                retries += r
                degraded = degraded or d
                if tracer is not None:
                    pool_seconds[pool_name] = (
                        pool_seconds.get(pool_name, 0.0) + t)
            # CXL (or other byte-addressable) resident loads: per-load
            # latency delta, paid inline during execution.
            if outcome.remote_loads:
                t, r, d = yield from self._loads_with_recovery(
                    inst, outcome.remote_loads)
                overhead += t
                retries += r
                degraded = degraded or d
                if tracer is not None and t > 0:
                    load_pool = self._byte_addressable_pool(inst)
                    load_name = (load_pool.name if load_pool is not None
                                 else "local")
                    pool_seconds[load_name] = (
                        pool_seconds.get(load_name, 0.0) + t)
            t_compute0 = node.now
            yield from node.cpu.compute(profile.exec_cpu + overhead)
        finally:
            self._inflight_fetches -= 1
        if tracer is not None and ctx is not None:
            # Fault-replay CPU is paid inside the fair-shared compute
            # interval; split it proportionally for the trace view (a
            # derived reading — simulated time is untouched).
            total_cpu = profile.exec_cpu + overhead
            frac = overhead / total_cpu if total_cpu > 0 else 0.0
            split = t_compute0 + frac * (node.now - t_compute0)
            tracer.span(ctx, "fault_replay", t_replay0, split,
                        args={"minor_faults": int(outcome.minor_faults),
                              "cow_faults": int(outcome.cow_faults),
                              "retries": retries,
                              "fault_cpu_s": overhead,
                              "pools": {k: pool_seconds[k]
                                        for k in sorted(pool_seconds)}})
            for pool_name in sorted(pool_seconds):
                tracer.link("pool_fetch", t_replay0, split, src=0, dst=ctx,
                            args={"pool": pool_name,
                                  "cpu_s": pool_seconds[pool_name]})
            t_exec0 = split
        io_time = profile.io_time + self._file_io(inst, profile)
        if io_time > 0:
            yield Delay(io_time)
        if tracer is not None and ctx is not None:
            tracer.span(ctx, "exec", t_exec0, node.now,
                        args={"exec_cpu_s": profile.exec_cpu,
                              "io_s": io_time})
        return retries, degraded

    # -- fault recovery (repro.faults) --------------------------------------------

    def _pool_breaker(self, pool: MemoryPool):
        """This node's circuit breaker for ``pool``, or None (no plane)."""
        if self.control is None:
            return None
        return self.control.pool_breaker(self.node.name, pool.name)

    def _should_degrade_early(self) -> bool:
        """Control-plane veto on the next pool retry.

        With the plane armed, a retry is skipped (straight down the
        degradation ladder) when SLO budgets are already burning at
        degrade level — a slow certain success beats a fast maybe — or
        when the cluster-wide retry budget is exhausted.  Without a
        plane this is always False and the ladder is untouched.
        """
        if self.control is None:
            return False
        if self.control.degrade_active(self.node.now):
            return True
        return not self.control.budget.try_spend("pool-retry")

    def _fetch_with_recovery(self, pool: MemoryPool, npages: int
                             ) -> Generator:
        """Timed: fetch cost with bounded retries, then degradation.

        Each backoff is a real :class:`Delay`, so a transient flap can
        heal mid-invocation and the retry then succeeds at full speed.
        Returns ``(cpu_seconds, retries, degraded)``.
        """
        breaker = self._pool_breaker(pool)
        if breaker is not None and not breaker.allow(self.node.now):
            # Tier declared unhealthy: don't pile more work on it.
            return self._degraded_fetch_time(
                pool, npages,
                PoolUnavailableError(pool.name, "breaker open")), 0, True
        attempt = 0
        while True:
            try:
                cost = pool.fetch_time(npages, self._inflight_fetches)
            except PoolFault as fault:
                self.pool_fault_count += 1
                if breaker is not None:
                    breaker.record(self.node.now, False)
                if attempt >= self.retry_policy.max_retries \
                        or self._should_degrade_early():
                    return self._degraded_fetch_time(pool, npages, fault), \
                        attempt, True
                yield Delay(self.retry_policy.backoff(attempt,
                                                      self.retry_rng))
                attempt += 1
                continue
            if breaker is not None:
                breaker.record(self.node.now, True, cost)
            return cost, attempt, False

    def _byte_addressable_pool(self, inst: Instance) -> Optional[MemoryPool]:
        """The pool serving this instance's direct loads, if any."""
        for vma in inst.space.vmas:
            if vma.pool is not None and vma.pool.byte_addressable:
                return vma.pool
        return None

    def _loads_with_recovery(self, inst: Instance, nloads: int
                             ) -> Generator:
        """Timed: direct-load overhead with the same retry/degrade ladder."""
        pool = self._byte_addressable_pool(inst)
        if pool is None:
            return 0.0, 0, False
        breaker = self._pool_breaker(pool)
        if breaker is not None and not breaker.allow(self.node.now):
            return self._degraded_fetch_time(
                pool, nloads,
                PoolUnavailableError(pool.name, "breaker open")), 0, True
        attempt = 0
        while True:
            try:
                cost = pool.read_overhead(nloads)
            except PoolFault as fault:
                self.pool_fault_count += 1
                if breaker is not None:
                    breaker.record(self.node.now, False)
                if attempt >= self.retry_policy.max_retries \
                        or self._should_degrade_early():
                    # Device gone: every load becomes a remote fetch on
                    # the fallback path.
                    return self._degraded_fetch_time(pool, nloads, fault), \
                        attempt, True
                yield Delay(self.retry_policy.backoff(attempt,
                                                      self.retry_rng))
                attempt += 1
                continue
            if breaker is not None:
                breaker.record(self.node.now, True, cost)
            return cost, attempt, False

    def _degraded_fetch_time(self, pool: MemoryPool, npages: int,
                             fault: PoolFault) -> float:
        """Cost of serving ``npages`` once ``pool`` is declared dead.

        The degradation ladder of §8.1: try the fallback pool (NAS tier),
        and as the last rung restore from the node-local snapshot copy —
        a cold-start-class batched read, slow but always available.
        """
        fallback = self.fallback_pool
        if fallback is not None and fallback is not pool:
            try:
                return fallback.fetch_time(npages, self._inflight_fetches)
            except PoolFault:
                self.pool_fault_count += 1
        return self.node.latency.memory_copy(npages * PAGE_SIZE)

    # -- node crash / recovery ----------------------------------------------------

    def crash(self) -> None:
        """Untimed: the node fails.  Warm state and admission state are
        lost; in-flight invocations must be interrupted by the caller
        (the cluster dispatcher does this per tracked slot)."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        obs = obs_hooks.active
        if obs is not None:
            obs.registry.inc("node_crashes_total", node=self.node.name)
            if obs.tracer is not None:
                obs.tracer.instant("node_crash", self.node.now,
                                   node=self.node.name)
        for inst in self.warm.idle_instances():
            inst.retired = True
            inst.space.destroy()
        self.warm.clear()
        self._running_per_function.clear()
        self._admission_queues.clear()
        self._on_crash()

    def recover(self) -> None:
        """Untimed: the node comes back, cold — no warm instances."""
        self.crashed = False
        obs = obs_hooks.active
        if obs is not None and obs.tracer is not None:
            obs.tracer.instant("node_recover", self.node.now,
                               node=self.node.name)

    def _on_crash(self) -> None:
        """Hook: subclass state lost with the node (sandbox pools, ...)."""

    def _file_io(self, inst: Instance, profile: FunctionProfile) -> float:
        """Charge caches for rootfs file IO; return IO seconds.

        Containers read through the host page cache directly: one copy
        per node per function's file set, shared by all instances.
        """
        fid = self.files.file_id("fn-files", profile.name)
        fresh = self.host_cache.charge_file(fid, profile.file_io_bytes)
        return fresh * _HOST_IO_PER_PAGE

    # -- keep-alive + pressure ---------------------------------------------------------------

    def _expiry_window(self, inst: Instance) -> float:
        if self.keep_alive_policy is not None:
            return self.keep_alive_policy.window(inst.function)
        return self.keep_alive

    def _schedule_expiry(self, inst: Instance) -> None:
        stamp = inst.last_used
        window = self._expiry_window(inst)
        if window <= 0:
            if self.warm.remove(inst):
                self._spawn_retire(inst, "expire")
            return

        def check():
            if (not inst.busy and not inst.retired
                    and inst.last_used == stamp):
                if self.warm.remove(inst):
                    self._spawn_retire(inst, "expire")

        self.node.sim.call_at(self.node.now + window, check)

    def _spawn_retire(self, inst: Instance, reason: str) -> None:
        """Spawn the retirement task, wrapped for observability if on."""
        gen = self._retire(inst)
        obs = obs_hooks.active
        if obs is not None:
            gen = self._observed_retire(gen, inst, reason, obs)
        self.node.sim.spawn(gen, name=f"{reason}-{inst.instance_id}")

    def _observed_retire(self, gen: Generator, inst: Instance,
                         reason: str, obs) -> Generator:
        """yield-from wrapper: engine-transparent, reports the retirement."""
        t0 = self.node.now
        result = yield from gen
        obs.on_retire(self.name, inst.function, reason)
        if obs.tracer is not None:
            obs.tracer.node_span(self.node.name, "retire", t0,
                                 self.node.now,
                                 args={"function": inst.function,
                                       "reason": reason})
        return result

    def _apply_memory_pressure(self) -> None:
        """Evict LRU warm instances while over the node's soft cap."""
        guard = 0
        while self.node.memory.over_soft_cap() and guard < 1000:
            victim = self.warm.lru_victim()
            if victim is None:
                break
            self.warm.remove(victim)
            self._spawn_retire(victim, "pressure")
            guard += 1

    # -- stats ------------------------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        return {
            "warm_hits": self.warm.hits,
            "warm_misses": self.warm.misses,
            "warm_size": len(self.warm),
            "pool_faults": self.pool_fault_count,
            "fault_retries": self.fault_retries,
            "degraded_invocations": self.degraded_invocations,
            "crashes": self.crash_count,
        }
