"""Serverless platform machinery.

* :mod:`repro.serverless.metrics` — latency recording, percentiles, CDFs.
* :mod:`repro.serverless.base` — the platform skeleton every evaluated
  system shares: keep-alive warm pool (§9.1 schedule policy), invocation
  lifecycle, execution engine, memory-pressure eviction.
* :mod:`repro.serverless.baselines` — faasd, CRIU, REAP+ and FaaSnap+.
* :mod:`repro.serverless.runner` — drive a workload through a platform.

TrEnv's own container platform lives in :mod:`repro.core.platform`.
"""

from repro.serverless.metrics import (InvocationResult, LatencyRecorder,
                                      percentile)
from repro.serverless.base import Instance, ServerlessPlatform, WarmPool
from repro.serverless.baselines import (CRIUPlatform, FaasdPlatform,
                                        FaasnapPlatform, ReapPlatform)
from repro.serverless.runner import RunResult, run_workload

__all__ = [
    "CRIUPlatform",
    "FaasdPlatform",
    "FaasnapPlatform",
    "Instance",
    "InvocationResult",
    "LatencyRecorder",
    "ReapPlatform",
    "RunResult",
    "ServerlessPlatform",
    "WarmPool",
    "percentile",
    "run_workload",
]
