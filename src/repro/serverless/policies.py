"""Keep-alive policies.

§3.3/§10: platforms historically fight cold starts with caching policies
— fixed keep-alive windows (OpenWhisk), histogram-based adaptive windows
(Serverless in the Wild), greedy-dual caching (FaasCache).  TrEnv's
pitch is that repurposing makes the *choice of policy* much less
important; these implementations let the benches quantify that.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np


class KeepAlivePolicy:
    """Decides how long an idle instance stays warm."""

    name = "base"

    def observe_arrival(self, function: str, now: float) -> None:
        """Feed an invocation arrival into the policy's statistics."""

    def window(self, function: str) -> float:
        raise NotImplementedError


class FixedKeepAlive(KeepAlivePolicy):
    """OpenWhisk-style constant window (the §9.1 default)."""

    name = "fixed"

    def __init__(self, seconds: float = 600.0):
        if seconds < 0:
            raise ValueError("negative keep-alive")
        self.seconds = seconds

    def window(self, function: str) -> float:
        return self.seconds


class NoKeepAlive(KeepAlivePolicy):
    """Destroy immediately — every invocation is a cold start."""

    name = "none"

    def window(self, function: str) -> float:
        return 0.0


class HistogramKeepAlive(KeepAlivePolicy):
    """Adaptive window from the function's inter-arrival distribution.

    Serverless-in-the-Wild-style: keep an instance warm long enough to
    cover the tail of observed inter-arrival times, bounded to
    [min_window, max_window].  Until enough history exists, fall back to
    a default.
    """

    name = "histogram"

    def __init__(self, percentile: float = 95.0, margin: float = 1.10,
                 min_window: float = 60.0, max_window: float = 1800.0,
                 default: float = 600.0, min_samples: int = 4,
                 history_limit: int = 256):
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile out of range")
        self.percentile = percentile
        self.margin = margin
        self.min_window = min_window
        self.max_window = max_window
        self.default = default
        self.min_samples = min_samples
        self.history_limit = history_limit
        self._last_arrival: Dict[str, float] = {}
        self._gaps: Dict[str, List[float]] = {}

    def observe_arrival(self, function: str, now: float) -> None:
        last = self._last_arrival.get(function)
        self._last_arrival[function] = now
        if last is None:
            return
        gaps = self._gaps.setdefault(function, [])
        gaps.append(max(0.0, now - last))
        if len(gaps) > self.history_limit:
            del gaps[:len(gaps) - self.history_limit]

    def window(self, function: str) -> float:
        gaps = self._gaps.get(function, [])
        if len(gaps) < self.min_samples:
            return self.default
        est = float(np.percentile(gaps, self.percentile)) * self.margin
        return min(max(est, self.min_window), self.max_window)

    def samples(self, function: str) -> int:
        return len(self._gaps.get(function, []))


class PressureAwareKeepAlive(KeepAlivePolicy):
    """Shrink keep-alive windows while the rack signals overload.

    Wraps any inner policy.  While ``under_pressure()`` returns True —
    typically wired to the control plane's burn-rate degrade signal,
    ``lambda: plane.degrade_active(sim.now)`` — windows are multiplied
    by ``shrink``, so idle instances are released sooner and their
    memory goes to the work the rack is still completing.  Off the
    overload path the inner policy is passed through untouched, so an
    unarmed cluster behaves identically to the inner policy alone.
    """

    name = "pressure"

    def __init__(self, inner: KeepAlivePolicy,
                 under_pressure: Callable[[], bool],
                 shrink: float = 0.25):
        if not 0.0 <= shrink <= 1.0:
            raise ValueError(f"shrink must be in [0, 1]: {shrink}")
        self.inner = inner
        self.under_pressure = under_pressure
        self.shrink = shrink

    def observe_arrival(self, function: str, now: float) -> None:
        self.inner.observe_arrival(function, now)

    def window(self, function: str) -> float:
        window = self.inner.window(function)
        if self.under_pressure():
            return window * self.shrink
        return window
