"""Discrete-event simulation substrate.

The whole TrEnv reproduction runs on a virtual clock: every kernel
operation, page fault, memory copy, and LLM round trip advances simulated
time rather than wall time.  This package provides the event engine
(:mod:`repro.sim.engine`), seeded randomness (:mod:`repro.sim.rng`), the
calibrated latency model (:mod:`repro.sim.latency`), and a
processor-sharing CPU model used for the overcommitment experiments
(:mod:`repro.sim.cpu`).
"""

from repro.sim.engine import Delay, Event, Interrupt, Simulator, Waiter
from repro.sim.cpu import FairShareCPU
from repro.sim.latency import LatencyModel
from repro.sim.rng import SeededRNG

__all__ = [
    "Delay",
    "Event",
    "FairShareCPU",
    "Interrupt",
    "LatencyModel",
    "SeededRNG",
    "Simulator",
    "Waiter",
]
