"""Conservative time-windowed PDES primitives.

One :class:`~repro.sim.engine.Simulator` is a logical process in the
classic parallel-discrete-event-simulation sense.  This module provides
the engine-level machinery for running several of them side by side
without giving up the repo's bit-identical determinism contract:

* **Lookahead** (:func:`derive_lookahead`) — the conservative null
  message bound.  Any cross-shard interaction in this simulator rides
  on a modelled latency (rack-pool template attach, a one-sided RDMA
  read, an SSD/NAS block fetch), so an event a shard emits at local
  time ``t`` cannot take effect on a peer before ``t + lookahead``.
  Shards may therefore advance through a window of that width without
  hearing from each other.

* **Windows** (:class:`WindowPlan`) — the shared schedule of barrier
  times.  Every shard steps its simulator with
  :meth:`~repro.sim.engine.Simulator.run_window` to each boundary in
  turn; boundaries are a pure function of the plan, so every shard
  observes the same barrier count regardless of worker scheduling.

* **Mailboxes** (:class:`Mailbox`, :class:`MailboxRouter`) — the
  deterministic cross-shard channel.  Posts carry ``(time, seq)``
  stamped at the *sender*; a receiver drains its inbox at a barrier in
  globally-defined ``(time, src shard, seq)`` order, which is invariant
  to how the host OS interleaved the posting workers.

* **Shard driving** (:class:`ShardRunner`, :func:`drive_shards`) — a
  per-shard window loop with per-window event digests, and an
  in-process driver that runs shards round-robin in an *arbitrary*
  per-window order (the property tests feed it adversarial
  permutations) while producing one deterministic outcome.

The cluster-level runner (:mod:`repro.serverless.parallel`) builds on
these across real process boundaries.  Statically-partitioned cluster
runs prove ``channels_open=False`` at plan time, which lets the runner
elide the barriers entirely — the windows then only pace the shard's
own clock — but the protocol here is the general, channel-bearing form
and is what the property tests pin.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel

#: Windows per horizon when no cross-shard channel is open: with no
#: messages to exchange the lookahead bound is irrelevant, so the plan
#: widens windows to bound barrier overhead instead of latency.
CLOSED_CHANNEL_WINDOWS = 32


def derive_lookahead(model: Optional[LatencyModel] = None) -> float:
    """Minimum cross-shard interaction latency (simulated seconds).

    The smallest modelled cost by which any node-to-node effect is
    delayed: a rack-pool template attach (``mmt_attach_base``), a
    one-sided RDMA 4 KiB read, or an SSD/NAS block fetch.  Conservative
    synchronisation only needs a *lower bound*, so the min over the
    three transports is always safe regardless of which pool a cluster
    actually mounts.
    """
    mem = (model or LatencyModel()).mem
    return min(mem.mmt_attach_base, mem.rdma_fetch_4k, mem.nas_fetch_4k)


def resolve_jobs(jobs: int, shards: int) -> int:
    """The one worker-count rule shared by every ``--jobs`` surface.

    ``jobs <= 0`` means "size to the machine": ``min(cpu_count,
    shards)``.  Explicit requests are capped by the shard count (a
    worker with no shard would idle) and floored at one.
    """
    if shards <= 0:
        return 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, shards))


@dataclass(frozen=True)
class WindowPlan:
    """The shared barrier schedule for one parallel run.

    ``width`` is the lookahead when any cross-shard channel is open
    (the conservative bound), else ``horizon / CLOSED_CHANNEL_WINDOWS``
    — barriers without messages are pure overhead, so the plan keeps
    only enough of them to bound shard clock skew for progress
    reporting.
    """

    horizon: float
    lookahead: float
    channels_open: bool

    @property
    def width(self) -> float:
        if self.channels_open:
            return self.lookahead
        return max(self.lookahead, self.horizon / CLOSED_CHANNEL_WINDOWS)

    @property
    def n_windows(self) -> int:
        if self.horizon <= 0:
            return 0
        width = self.width
        n = int(self.horizon / width)
        if n * width < self.horizon:
            n += 1
        return n

    def boundaries(self) -> List[float]:
        """Barrier times; the final boundary is exactly ``horizon``."""
        width = self.width
        out = [min(self.horizon, (i + 1) * width)
               for i in range(self.n_windows)]
        return out


def plan_windows(horizon: float, lookahead: Optional[float] = None,
                 channels_open: bool = False) -> WindowPlan:
    if lookahead is None:
        lookahead = derive_lookahead()
    if lookahead <= 0:
        raise ValueError(f"lookahead must be positive, got {lookahead}")
    return WindowPlan(horizon=float(horizon), lookahead=float(lookahead),
                      channels_open=channels_open)


@dataclass(frozen=True)
class Message:
    """One cross-shard event: stamped at the sender, totally ordered.

    ``time`` is the sender's local clock at post; ``seq`` its per-pair
    running index.  The receiving shard must not act on it before
    ``time + lookahead`` (the conservative contract); delivery sorts by
    ``(time, src, seq)`` so the merge order is a pure function of what
    was posted, never of which worker posted first.
    """

    time: float
    src: int
    seq: int
    payload: Any

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.src, self.seq)


class Mailbox:
    """FIFO channel for one ordered (src shard, dst shard) pair."""

    __slots__ = ("src", "dst", "_seq", "_queue")

    def __init__(self, src: int, dst: int):
        self.src = src
        self.dst = dst
        self._seq = 0
        self._queue: List[Message] = []

    def post(self, time: float, payload: Any) -> Message:
        msg = Message(time=time, src=self.src, seq=self._seq,
                      payload=payload)
        self._seq += 1
        self._queue.append(msg)
        return msg

    def drain(self) -> List[Message]:
        out, self._queue = self._queue, []
        return out

    def __len__(self) -> int:
        return len(self._queue)


class MailboxRouter:
    """All pairwise mailboxes of one run, drained deterministically.

    Each ``(src, dst)`` pair owns an independent :class:`Mailbox` (so
    posting never contends across senders), and :meth:`drain` merges a
    destination's inboxes in ``(time, src, seq)`` order.  Within one
    pair the post order *is* the (time, seq) order — senders post in
    their own causal order — so the merged order is invariant to any
    interleaving of posts from different shards.  The hypothesis test
    in ``tests/sim/test_parallel_window.py`` pins exactly that.
    """

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("router needs at least one shard")
        self.n_shards = n_shards
        self._boxes: Dict[Tuple[int, int], Mailbox] = {}

    def mailbox(self, src: int, dst: int) -> Mailbox:
        self._check(src)
        self._check(dst)
        box = self._boxes.get((src, dst))
        if box is None:
            box = self._boxes[(src, dst)] = Mailbox(src, dst)
        return box

    def _check(self, shard: int) -> None:
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard {shard} out of range [0, {self.n_shards})")

    def post(self, src: int, dst: int, time: float, payload: Any) -> Message:
        return self.mailbox(src, dst).post(time, payload)

    def drain(self, dst: int) -> List[Message]:
        """Deliver everything addressed to ``dst``, deterministically."""
        self._check(dst)
        pending: List[Message] = []
        for src in range(self.n_shards):
            box = self._boxes.get((src, dst))
            if box is not None:
                pending.extend(box.drain())
        pending.sort(key=lambda m: m.sort_key)
        return pending

    def pending(self) -> int:
        return sum(len(b) for b in self._boxes.values())


def _fold_digest(digest: int, when: float, tag: str) -> int:
    """One order-sensitive 64-bit step of a shard's event digest."""
    h = hashlib.blake2b(f"{digest:016x}|{when!r}|{tag}".encode(),
                        digest_size=8)
    return int.from_bytes(h.digest(), "big")


class ShardRunner:
    """Drives one simulator through a :class:`WindowPlan`.

    Between barriers the shard advances with
    :meth:`~repro.sim.engine.Simulator.run_window`; at each barrier it
    drains its inbox (messages become simulator events via
    ``deliver``), folds the window boundary into an order-sensitive
    digest, and reports progress.  After the final barrier
    :meth:`finish` drains everything past the horizon — keep-alive
    expiries and other strictly shard-local tails — with a plain
    ``run()``, so the final clock equals an uninterrupted serial run's.
    """

    def __init__(self, shard: int, sim: Simulator, plan: WindowPlan,
                 router: Optional[MailboxRouter] = None,
                 deliver: Optional[Callable[[Simulator, Message],
                                            None]] = None,
                 on_barrier: Optional[Callable[[int, float], None]] = None):
        self.shard = shard
        self.sim = sim
        self.plan = plan
        self.router = router
        self.deliver = deliver
        self.on_barrier = on_barrier
        self.windows_run = 0
        self.digest = 0
        self._boundaries = plan.boundaries()

    @property
    def done(self) -> bool:
        return self.windows_run >= len(self._boundaries)

    def next_boundary(self) -> Optional[float]:
        if self.done:
            return None
        return self._boundaries[self.windows_run]

    def advance_one_window(self) -> Optional[float]:
        """Run to the next barrier; return its time (None when done)."""
        boundary = self.next_boundary()
        if boundary is None:
            return None
        self.sim.run_window(boundary)
        if self.router is not None:
            for msg in self.router.drain(self.shard):
                if self.deliver is None:
                    raise RuntimeError(
                        f"shard {self.shard} received a message but has "
                        "no deliver hook")
                self.deliver(self.sim, msg)
        self.windows_run += 1
        self.digest = _fold_digest(self.digest, boundary,
                                   f"w{self.windows_run}")
        if self.on_barrier is not None:
            self.on_barrier(self.windows_run, boundary)
        return boundary

    def finish(self) -> float:
        """Drain the shard-local tail past the horizon; return now."""
        if not self.done:
            raise RuntimeError(
                f"shard {self.shard} finished early: "
                f"{self.windows_run}/{len(self._boundaries)} windows")
        return self.sim.run()


def drive_shards(runners: Sequence[ShardRunner],
                 order: Optional[Iterable[Sequence[int]]] = None
                 ) -> List[float]:
    """In-process lockstep driver: all shards through all windows.

    ``order`` optionally yields, per window, the order in which shards
    take their turn inside that window — the in-process stand-in for OS
    worker scheduling.  Because every shard still crosses every barrier
    before any shard enters the next window (the conservative
    invariant), the outcome must be independent of those permutations;
    the property tests drive this with hypothesis-generated orders.

    Returns each shard's final clock after :meth:`ShardRunner.finish`.
    """
    if not runners:
        return []
    n_windows = runners[0].plan.n_windows
    for r in runners:
        if r.plan.n_windows != n_windows:
            raise ValueError("shards disagree on the window plan")
    orders = iter(order) if order is not None else None
    for _window in range(n_windows):
        turn: Sequence[int] = range(len(runners))
        if orders is not None:
            try:
                turn = next(orders)
            except StopIteration:
                orders = None
        seen = sorted(turn)
        if seen != list(range(len(runners))):
            raise ValueError(f"window order {list(turn)} is not a "
                             f"permutation of the shard set")
        for idx in turn:
            runners[idx].advance_one_window()
    return [r.finish() for r in runners]


@dataclass
class ParallelReport:
    """Host-side summary of one parallel run, for bench/CLI reports."""

    mode: str                      # "parallel" | "serial" | "fallback"
    jobs: int
    n_shards: int
    n_windows: int
    lookahead: float
    window_width: float
    reasons: List[str] = field(default_factory=list)
    shard_digests: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "jobs": self.jobs,
            "n_shards": self.n_shards,
            "n_windows": self.n_windows,
            "lookahead_s": self.lookahead,
            "window_width_s": self.window_width,
            "reasons": list(self.reasons),
            "shard_digests": [f"{d:016x}" for d in self.shard_digests],
        }
