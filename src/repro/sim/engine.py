"""Generator-based discrete-event simulation engine.

Processes are Python generators that yield *commands*:

* ``Delay(dt)`` — suspend for ``dt`` simulated seconds.
* ``Event`` — suspend until the event is triggered; the event's payload is
  sent back into the generator.
* another generator — run it as a sub-process and resume with its return
  value (the classic "process call" composition).

The engine is deterministic: ties in the event queue are broken by a
monotonically increasing sequence number, so two runs with the same seeds
produce identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.analysis import hooks


class SimulationError(RuntimeError):
    """Raised for engine misuse (e.g. yielding an unknown command)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Delay:
    """Command: suspend the yielding process for ``dt`` simulated seconds."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise ValueError(f"negative delay: {dt}")
        self.dt = float(dt)

    def __repr__(self) -> str:
        return f"Delay({self.dt:.6f})"


class Event:
    """A one-shot condition processes can wait on.

    Triggering delivers ``value`` to every waiter.  Triggering twice is an
    error; use separate events per occurrence.

    Waiters live in an insertion-ordered dict so :meth:`remove_waiter`
    (the interrupt path) is O(1) while :meth:`trigger` still wakes tasks
    in the order they started waiting.
    """

    __slots__ = ("sim", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: Dict["_Task", None] = {}

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, {}
        for task in waiters:
            self.sim._schedule(0.0, task, value)

    def add_waiter(self, task: "_Task") -> None:
        if self.triggered:
            self.sim._schedule(0.0, task, self.value)
        else:
            self._waiters[task] = None

    def remove_waiter(self, task: "_Task") -> None:
        self._waiters.pop(task, None)


class Waiter:
    """Handle returned by :meth:`Simulator.spawn`.

    Exposes completion state, the process return value, and an
    :meth:`interrupt` hook.  A waiter is itself awaitable from other
    processes via its :attr:`done_event`.
    """

    __slots__ = ("task", "done_event")

    def __init__(self, task: "_Task", done_event: Event):
        self.task = task
        self.done_event = done_event

    @property
    def done(self) -> bool:
        return self.task.finished

    @property
    def result(self) -> Any:
        if not self.task.finished:
            raise SimulationError("process still running")
        if self.task.error is not None:
            raise self.task.error
        return self.task.result

    def interrupt(self, cause: Any = None) -> None:
        self.task.interrupt(cause)


class _Task:
    """Internal driver for one process generator."""

    __slots__ = ("sim", "gen", "finished", "result", "error", "done_event",
                 "_waiting_on", "_stack", "name", "_epoch")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "proc")
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done_event = Event(sim)
        self._waiting_on: Optional[Event] = None
        # Stack of suspended parent generators (sub-process calls).
        self._stack: List[Generator] = []
        # Bumped by interrupt() to invalidate queue entries scheduled
        # before the interrupt (e.g. a pending Delay wake-up) — without
        # this, an interrupted sleeper would get a spurious second wake.
        self._epoch = 0

    def interrupt(self, cause: Any = None) -> None:
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on.remove_waiter(self)
            self._waiting_on = None
        self._epoch += 1
        self.sim._schedule(0.0, self, Interrupt(cause))

    def step(self, send_value: Any) -> None:
        """Advance the generator until it suspends again or finishes."""
        self._waiting_on = None
        while True:
            try:
                if isinstance(send_value, Interrupt):
                    cmd = self.gen.throw(send_value)
                elif isinstance(send_value, _Raise):
                    cmd = self.gen.throw(send_value.error)
                else:
                    cmd = self.gen.send(send_value)
            except StopIteration as stop:
                value = stop.value
                if self._stack:
                    self.gen = self._stack.pop()
                    send_value = value
                    continue
                self._finish(result=value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate to parent
                if self._stack:
                    self.gen = self._stack.pop()
                    send_value = _Raise(exc)
                    continue
                self._finish(error=exc)
                return

            if isinstance(cmd, Delay):
                self.sim._schedule(cmd.dt, self, None)
                return
            if isinstance(cmd, Event):
                self._waiting_on = cmd
                cmd.add_waiter(self)
                return
            if isinstance(cmd, Waiter):
                if cmd.done:
                    send_value = _result_or_raise(cmd)
                    continue
                self._waiting_on = cmd.done_event
                cmd.done_event.add_waiter(self)
                return
            if _is_generator(cmd):
                self._stack.append(self.gen)
                self.gen = cmd
                send_value = None
                continue
            raise SimulationError(f"process {self.name} yielded {cmd!r}")

    def _finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self.finished = True
        self.result = result
        self.error = error
        if error is not None:
            if not self.done_event._waiters:
                # Nobody is waiting: surface the failure immediately so
                # bugs do not pass silently.
                raise error
            self.done_event.trigger(_Raise(error))
        else:
            self.done_event.trigger(result)


class _Raise:
    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


def _result_or_raise(waiter: Waiter) -> Any:
    if waiter.task.error is not None:
        return _Raise(waiter.task.error)
    return waiter.task.result


def _is_generator(obj: Any) -> bool:
    return hasattr(obj, "send") and hasattr(obj, "throw")


class Simulator:
    """Deterministic event loop with a virtual clock in seconds."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, _Task, Any, int]] = []
        self._seq = itertools.count()
        self._callbacks: List[Tuple[float, int, Callable[[], None]]] = []

    # -- process management -------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Waiter:
        """Start a process generator; returns a :class:`Waiter`."""
        task = _Task(self, gen, name=name)
        self._schedule(0.0, task, None)
        return Waiter(task, task.done_event)

    def event(self) -> Event:
        return Event(self)

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run a plain callback at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"call_at into the past: {when} < {self.now}")
        heapq.heappush(self._callbacks, (when, next(self._seq), fn))

    def _schedule(self, dt: float, task: _Task, value: Any) -> None:
        heapq.heappush(self._queue,
                       (self.now + dt, next(self._seq), task, value,
                        task._epoch))

    # -- running -------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain events; stop at ``until`` (simulated seconds) if given."""
        while True:
            next_time = self._peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                return self.now
            self._step()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Spawn ``gen`` and run until it completes; return its value."""
        waiter = self.spawn(gen, name=name)
        while not waiter.done:
            if self._peek_time() is None:
                raise SimulationError(
                    f"deadlock: process {name or 'proc'} never completed")
            self._step()
        return waiter.result

    def _peek_time(self) -> Optional[float]:
        times: List[float] = []
        if self._queue:
            times.append(self._queue[0][0])
        if self._callbacks:
            times.append(self._callbacks[0][0])
        return min(times) if times else None

    def _step(self) -> None:
        use_callback = False
        if self._callbacks:
            if not self._queue or self._callbacks[0][:2] < self._queue[0][:2]:
                use_callback = True
        if use_callback:
            when, _seq, fn = heapq.heappop(self._callbacks)
            if hooks.active is not None:
                hooks.active.on_sim_event(self, when)
            self.now = when
            fn()
            return
        when, _seq, task, value, epoch = heapq.heappop(self._queue)
        if hooks.active is not None:
            hooks.active.on_sim_event(self, when)
        if task.finished or epoch != task._epoch:
            # Stale wake-up (task interrupted since it was scheduled):
            # drop it without advancing the clock.
            return
        self.now = when
        task.step(value)

    # -- conveniences --------------------------------------------------------

    def all_of(self, waiters: Iterable[Waiter]) -> Generator:
        """Process helper: wait for every waiter, return list of results."""
        def _gather():
            results = []
            for waiter in waiters:
                value = yield waiter
                results.append(value)
            return results
        return _gather()
