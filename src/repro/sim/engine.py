"""Generator-based discrete-event simulation engine.

Processes are Python generators that yield *commands*:

* ``Delay(dt)`` — suspend for ``dt`` simulated seconds.
* ``Event`` — suspend until the event is triggered; the event's payload is
  sent back into the generator.
* another generator — run it as a sub-process and resume with its return
  value (the classic "process call" composition).

The engine is deterministic: ties in the event queue are broken by a
monotonically increasing sequence number, so two runs with the same seeds
produce identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import (Any, Callable, Deque, Dict, Generator, Iterable, List,
                    Optional, Tuple)

from repro import optflags
from repro.analysis import hooks


class SimulationError(RuntimeError):
    """Raised for engine misuse (e.g. yielding an unknown command)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Delay:
    """Command: suspend the yielding process for ``dt`` simulated seconds."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise ValueError(f"negative delay: {dt}")
        self.dt = float(dt)

    def __repr__(self) -> str:
        return f"Delay({self.dt:.6f})"


class Event:
    """A one-shot condition processes can wait on.

    Triggering delivers ``value`` to every waiter.  Triggering twice is an
    error; use separate events per occurrence.

    Waiters live in an insertion-ordered dict so :meth:`remove_waiter`
    (the interrupt path) is O(1) while :meth:`trigger` still wakes tasks
    in the order they started waiting.
    """

    __slots__ = ("sim", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: Dict["_Task", None] = {}

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, {}
        for task in waiters:
            self.sim._schedule(0.0, task, value)

    def add_waiter(self, task: "_Task") -> None:
        if self.triggered:
            self.sim._schedule(0.0, task, self.value)
        else:
            self._waiters[task] = None

    def remove_waiter(self, task: "_Task") -> None:
        self._waiters.pop(task, None)


class Waiter:
    """Handle returned by :meth:`Simulator.spawn`.

    Exposes completion state, the process return value, and an
    :meth:`interrupt` hook.  A waiter is itself awaitable from other
    processes via its :attr:`done_event`.
    """

    __slots__ = ("task",)

    def __init__(self, task: "_Task"):
        self.task = task

    @property
    def done_event(self) -> Event:
        return self.task.done_event

    @property
    def done(self) -> bool:
        return self.task.finished

    @property
    def result(self) -> Any:
        if not self.task.finished:
            raise SimulationError("process still running")
        if self.task.error is not None:
            raise self.task.error
        return self.task.result

    def interrupt(self, cause: Any = None) -> None:
        self.task.interrupt(cause)


class _Task:
    """Internal driver for one process generator."""

    __slots__ = ("sim", "gen", "finished", "result", "error", "_done_event",
                 "_waiting_on", "_stack", "name", "_epoch")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        # Raw label only; the generator-name fallback is resolved at
        # error-report time so batch spawns skip the getattr.
        self.name = name
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        # Created on first use: most tasks (every batch-spawned arrival)
        # are never awaited, so the completion Event would be pure
        # allocation overhead on the spawn hot path.
        self._done_event: Optional[Event] = None
        self._waiting_on: Optional[Event] = None
        # Stack of suspended parent generators (sub-process calls);
        # allocated on first use — flat processes never need it.
        self._stack: Optional[List[Generator]] = None
        # Bumped by interrupt() to invalidate queue entries scheduled
        # before the interrupt (e.g. a pending Delay wake-up) — without
        # this, an interrupted sleeper would get a spurious second wake.
        self._epoch = 0

    def interrupt(self, cause: Any = None) -> None:
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on.remove_waiter(self)
            self._waiting_on = None
        self._epoch += 1
        self.sim._schedule(0.0, self, Interrupt(cause))

    def step(self, send_value: Any) -> None:
        """Advance the generator until it suspends again or finishes."""
        self._waiting_on = None
        while True:
            try:
                if send_value is None:
                    # Overwhelmingly the common case (spawns and Delay
                    # wake-ups both send None): skip the isinstance
                    # chain entirely.
                    cmd = self.gen.send(None)
                elif isinstance(send_value, Interrupt):
                    cmd = self.gen.throw(send_value)
                elif isinstance(send_value, _Raise):
                    cmd = self.gen.throw(send_value.error)
                else:
                    cmd = self.gen.send(send_value)
            except StopIteration as stop:
                value = stop.value
                if self._stack:
                    self.gen = self._stack.pop()
                    send_value = value
                    continue
                self._finish(result=value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate to parent
                if self._stack:
                    self.gen = self._stack.pop()
                    send_value = _Raise(exc)
                    continue
                self._finish(error=exc)
                return

            if isinstance(cmd, Delay):
                self.sim._schedule(cmd.dt, self, None)
                return
            if isinstance(cmd, Event):
                self._waiting_on = cmd
                cmd.add_waiter(self)
                return
            if isinstance(cmd, Waiter):
                if cmd.done:
                    send_value = _result_or_raise(cmd)
                    continue
                self._waiting_on = cmd.done_event
                cmd.done_event.add_waiter(self)
                return
            if _is_generator(cmd):
                stack = self._stack
                if stack is None:
                    stack = self._stack = []
                stack.append(self.gen)
                self.gen = cmd
                send_value = None
                continue
            label = self.name or getattr(self.gen, "__name__", "proc")
            raise SimulationError(f"process {label} yielded {cmd!r}")

    @property
    def done_event(self) -> Event:
        event = self._done_event
        if event is None:
            event = self._done_event = Event(self.sim)
            if self.finished:
                event.trigger(_Raise(self.error)
                              if self.error is not None else self.result)
        return event

    def _finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self.finished = True
        self.result = result
        self.error = error
        event = self._done_event
        if error is not None:
            if event is None or not event._waiters:
                # Nobody is waiting: surface the failure immediately so
                # bugs do not pass silently.
                raise error
            event.trigger(_Raise(error))
        elif event is not None:
            event.trigger(result)


class _Raise:
    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


def _result_or_raise(waiter: Waiter) -> Any:
    if waiter.task.error is not None:
        return _Raise(waiter.task.error)
    return waiter.task.result


def _is_generator(obj: Any) -> bool:
    return hasattr(obj, "send") and hasattr(obj, "throw")


class _CalendarQueue:
    """Calendar/timer-wheel event queue: one FIFO bucket per distinct time.

    The engine's workload is dominated by *same-tick* scheduling — event
    triggers, spawns and interrupt wake-ups all enqueue at ``dt == 0``
    while the current tick is still draining.  A binary heap pays
    O(log n) tuple comparisons for each of those; here they are a plain
    ``deque.append`` into the bucket being drained.  The heap of
    *distinct* times only sees one push per new virtual timestamp.

    Entries are ``(seq, task, value, epoch)`` and sequence numbers are
    globally monotone, so FIFO order within a bucket is exactly ``seq``
    order — pop order is identical, entry for entry, to the reference
    heapq scheduler's ``(time, seq)`` order (the property test in
    ``tests/sim/test_calendar_queue.py`` pins this, cancellations
    included).  Cancellation stays O(1): the epoch stamp is checked at
    pop, never scanned for.
    """

    __slots__ = ("_buckets", "_times")

    def __init__(self) -> None:
        #: time -> FIFO of (seq, task, value, epoch), appended in seq order.
        self._buckets: Dict[float, Deque[Tuple[int, "_Task", Any, int]]] = {}
        #: min-heap of times that currently (or recently) own a bucket.
        self._times: List[float] = []

    def push(self, time: float, entry: Tuple[int, "_Task", Any, int]) -> None:
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = deque((entry,))
            heapq.heappush(self._times, time)
        else:
            # Same-tick fast path: no heap traffic at all.  The drained
            # bucket is only garbage-collected lazily (peek), so a burst
            # of dt=0 wake-ups lands here even mid-drain.
            bucket.append(entry)

    def peek_key(self) -> Optional[Tuple[float, int]]:
        """(time, seq) of the next pop, or None when empty."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket:
                return (t, bucket[0][0])
            heapq.heappop(times)
            if bucket is not None:
                del buckets[t]
        return None

    def peek_time(self) -> Optional[float]:
        key = self.peek_key()
        return key[0] if key is not None else None

    def pop(self) -> Tuple[float, int, "_Task", Any, int]:
        key = self.peek_key()
        if key is None:
            raise IndexError("pop from empty calendar queue")
        t = key[0]
        seq, task, value, epoch = self._buckets[t].popleft()
        return t, seq, task, value, epoch

    def pop_head(self) -> Tuple[float, int, "_Task", Any, int]:
        """Pop immediately after a successful :meth:`peek_key`.

        Skips the head-validation walk ``peek_key`` already performed;
        only valid while nothing was pushed/popped in between.
        """
        t = self._times[0]
        seq, task, value, epoch = self._buckets[t].popleft()
        return t, seq, task, value, epoch

    def pop_or_none(self) -> Optional[Tuple[float, int, "_Task", Any, int]]:
        """Validate the head and pop it in one walk; None when empty."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket:
                seq, task, value, epoch = bucket.popleft()
                return t, seq, task, value, epoch
            heapq.heappop(times)
            if bucket is not None:
                del buckets[t]
        return None

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


class Simulator:
    """Deterministic event loop with a virtual clock in seconds.

    Two interchangeable schedulers back the loop.  The reference path is
    a single binary heap of ``(time, seq, task, value, epoch)`` tuples;
    the fast path (:data:`repro.optflags.timer_wheel`, sampled at
    construction) is a :class:`_CalendarQueue`.  Both pop in identical
    ``(time, seq)`` order, so simulated results are bit-identical either
    way — the flag only trades host-side constant factors.
    """

    def __init__(self):
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, _Task, Any, int]] = []
        self._wheel: Optional[_CalendarQueue] = (
            _CalendarQueue() if optflags.timer_wheel else None)
        self._seq = itertools.count()
        self._callbacks: List[Tuple[float, int, Callable[[], None]]] = []

    # -- process management -------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Waiter:
        """Start a process generator; returns a :class:`Waiter`."""
        task = _Task(self, gen, name=name)
        self._schedule(0.0, task, None)
        return Waiter(task)

    def spawn_at(self, when: float, gen: Generator, name: str = "") -> Waiter:
        """Start ``gen`` at absolute simulated time ``when`` (>= now).

        Equivalent to spawning a wrapper that first ``Delay``-sleeps
        until ``when``, minus the wrapper: one queue entry instead of
        two and no throwaway generator.  Workload runners use this to
        batch-spawn precomputed arrival schedules
        (:data:`repro.optflags.batch_arrivals`).
        """
        if when < self.now:
            raise SimulationError(
                f"spawn_at into the past: {when} < {self.now}")
        task = _Task(self, gen, name=name)
        self._schedule(when - self.now, task, None)
        return Waiter(task)

    def spawn_at_many(self,
                      schedule: Iterable[Tuple[float, Generator]]
                      ) -> List[Waiter]:
        """Batch :meth:`spawn_at` for a whole arrival schedule.

        Equivalent to ``[spawn_at(t, g) for t, g in schedule]`` (same
        sequence-number assignment order, so identical pop order), but
        consecutive same-time entries reuse one bucket lookup — on a
        quantised trace that is one dict probe per distinct tick rather
        than per invocation.  Wake times are ``when`` exactly;
        :meth:`spawn_at` round-trips through ``now + (when - now)``,
        which is bit-identical whenever ``now == 0.0`` (how workload
        runners use both).
        """
        now = self.now
        nxt = self._seq.__next__
        wheel = self._wheel
        waiters: List[Waiter] = []
        out = waiters.append
        task_cls = _Task
        waiter_cls = Waiter
        if wheel is None:
            queue = self._queue
            push = heapq.heappush
            for when, gen in schedule:
                if when < now:
                    raise SimulationError(
                        f"spawn_at into the past: {when} < {now}")
                task = task_cls(self, gen)
                push(queue, (when, nxt(), task, None, 0))
                out(waiter_cls(task))
            return waiters
        buckets = wheel._buckets
        times_heap = wheel._times
        last_time: Optional[float] = None
        put = None
        for when, gen in schedule:
            if when < now:
                raise SimulationError(
                    f"spawn_at into the past: {when} < {now}")
            task = task_cls(self, gen)
            if when != last_time:
                bucket = buckets.get(when)
                if bucket is None:
                    bucket = buckets[when] = deque()
                    heapq.heappush(times_heap, when)
                put = bucket.append
                last_time = when
            put((nxt(), task, None, 0))
            out(waiter_cls(task))
        return waiters

    def event(self) -> Event:
        return Event(self)

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run a plain callback at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"call_at into the past: {when} < {self.now}")
        heapq.heappush(self._callbacks, (when, next(self._seq), fn))

    def _schedule(self, dt: float, task: _Task, value: Any) -> None:
        wheel = self._wheel
        if wheel is not None:
            wheel.push(self.now + dt,
                       (next(self._seq), task, value, task._epoch))
        else:
            heapq.heappush(self._queue,
                           (self.now + dt, next(self._seq), task, value,
                            task._epoch))

    # -- running -------------------------------------------------------------

    def run(self, until: Optional[float] = None, *,
            pad: bool = True) -> float:
        """Drain events; stop at ``until`` (simulated seconds) if given.

        The loop body is :meth:`_peek_time` + :meth:`_step` fused: at
        trace scale the peek/step call chain itself is measurable, so
        the head is computed once per event and popped directly.

        With ``pad`` (the default) the clock is advanced to ``until``
        even when the last event lands earlier — the historical
        behaviour.  ``pad=False`` leaves ``now`` at the last executed
        event, which :meth:`run_window` needs so a windowed run reports
        the same final clock as one uninterrupted ``run()``.
        """
        wheel = self._wheel
        queue = self._queue
        callbacks = self._callbacks
        if wheel is not None:
            wtimes = wheel._times
            wbuckets = wheel._buckets
        while True:
            bucket = None
            if wheel is not None:
                # Inlined peek_key: validate the head bucket once and
                # keep it so the pop below is a bare popleft.
                head = None
                while wtimes:
                    t = wtimes[0]
                    bucket = wbuckets.get(t)
                    if bucket:
                        head = (t, bucket[0][0])
                        break
                    heapq.heappop(wtimes)
                    if bucket is not None:
                        del wbuckets[t]
            elif queue:
                entry = queue[0]
                head = (entry[0], entry[1])
            else:
                head = None
            if callbacks:
                cb = callbacks[0]
                if head is None or (cb[0], cb[1]) < head:
                    when = cb[0]
                    if until is not None and when > until:
                        if pad:
                            self.now = until
                        return self.now
                    heapq.heappop(callbacks)
                    if hooks.active is not None:
                        hooks.active.on_sim_event(self, when)
                    self.now = when
                    cb[2]()
                    continue
            if head is None:
                break
            if until is not None and head[0] > until:
                if pad:
                    self.now = until
                return self.now
            if bucket is not None:
                # Drain the whole bucket: pushes during a step are at
                # now + dt >= now, so this bucket stays the queue head
                # until it empties.  Only a callback ordered before the
                # bucket's next entry can interleave — bail to the
                # outer loop when one appears.
                when = head[0]
                while bucket:
                    if callbacks and \
                            (callbacks[0][0], callbacks[0][1]) < \
                            (when, bucket[0][0]):
                        break
                    _seq, task, value, epoch = bucket.popleft()
                    if hooks.active is not None:
                        hooks.active.on_sim_event(self, when)
                    if task.finished or epoch != task._epoch:
                        # Stale wake-up (task interrupted since it was
                        # scheduled): drop, don't advance the clock.
                        continue
                    self.now = when
                    task.step(value)
                continue
            when, _seq, task, value, epoch = heapq.heappop(queue)
            if hooks.active is not None:
                hooks.active.on_sim_event(self, when)
            if task.finished or epoch != task._epoch:
                # Stale wake-up (task interrupted since it was
                # scheduled): drop it without advancing the clock.
                continue
            self.now = when
            task.step(value)
        if until is not None and pad:
            self.now = max(self.now, until)
        return self.now

    def run_window(self, until: float) -> float:
        """Execute every event scheduled at ``time <= until``.

        The conservative-PDES stepping primitive
        (:mod:`repro.sim.parallel`): identical to ``run(until)`` except
        the clock is *not* padded to the window boundary, so driving a
        simulator window-by-window and then draining the remainder with
        ``run()`` finishes with exactly the clock an uninterrupted
        ``run()`` would report.  Events land strictly inside windows —
        an event at the boundary itself belongs to the closing window.
        """
        return self.run(until, pad=False)

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Spawn ``gen`` and run until it completes; return its value."""
        waiter = self.spawn(gen, name=name)
        while not waiter.done:
            if self._peek_time() is None:
                raise SimulationError(
                    f"deadlock: process {name or 'proc'} never completed")
            self._step()
        return waiter.result

    def _queue_head(self) -> Optional[Tuple[float, int]]:
        """(time, seq) of the next task wake-up, or None."""
        if self._wheel is not None:
            return self._wheel.peek_key()
        if self._queue:
            entry = self._queue[0]
            return (entry[0], entry[1])
        return None

    def _peek_time(self) -> Optional[float]:
        head = self._queue_head()
        callbacks = self._callbacks
        if callbacks:
            cb_time = callbacks[0][0]
            if head is None or cb_time < head[0]:
                return cb_time
            return head[0]
        return head[0] if head is not None else None

    def _step(self) -> None:
        wheel = self._wheel
        callbacks = self._callbacks
        if callbacks:
            head = self._queue_head()
            if head is None or (callbacks[0][0], callbacks[0][1]) < head:
                when, _seq, fn = heapq.heappop(callbacks)
                if hooks.active is not None:
                    hooks.active.on_sim_event(self, when)
                self.now = when
                fn()
                return
            # head was just validated: pop it without re-walking.
            if wheel is not None:
                when, _seq, task, value, epoch = wheel.pop_head()
            else:
                when, _seq, task, value, epoch = heapq.heappop(self._queue)
        elif wheel is not None:
            # Both callers (run, run_process) peek immediately before
            # stepping, and peeking validates the wheel head; popping it
            # directly avoids a second walk.
            when, _seq, task, value, epoch = wheel.pop_head()
        else:
            when, _seq, task, value, epoch = heapq.heappop(self._queue)
        if hooks.active is not None:
            hooks.active.on_sim_event(self, when)
        if task.finished or epoch != task._epoch:
            # Stale wake-up (task interrupted since it was scheduled):
            # drop it without advancing the clock.
            return
        self.now = when
        task.step(value)

    # -- conveniences --------------------------------------------------------

    def all_of(self, waiters: Iterable[Waiter]) -> Generator:
        """Process helper: wait for every waiter, return list of results."""
        def _gather():
            results = []
            for waiter in waiters:
                value = yield waiter
                results.append(value)
            return results
        return _gather()
