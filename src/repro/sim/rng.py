"""Seeded, forkable randomness.

Every stochastic choice in the reproduction flows through a
:class:`SeededRNG` so experiments are reproducible run-to-run.  Substreams
are derived by name, so adding a new consumer never perturbs existing
streams (a common source of irreproducibility in simulators).
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


class SeededRNG:
    """Thin wrapper over :class:`numpy.random.Generator` with named forks."""

    def __init__(self, seed: int = 0, path: str = "root"):
        self.seed = int(seed)
        self.path = path
        self._gen = np.random.default_rng(_digest(seed, path))

    def fork(self, name: str) -> "SeededRNG":
        """Derive an independent substream identified by ``name``."""
        return SeededRNG(self.seed, f"{self.path}/{name}")

    # -- scalar draws ---------------------------------------------------------

    def uniform(self, lo: float, hi: float) -> float:
        return float(self._gen.uniform(lo, hi))

    def exponential(self, mean: float) -> float:
        return float(self._gen.exponential(mean))

    def normal(self, mean: float, std: float) -> float:
        return float(self._gen.normal(mean, std))

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self._gen.lognormal(mean, sigma))

    def pareto(self, shape: float, scale: float) -> float:
        """Pareto draw with minimum value ``scale`` (classic Lomax + shift)."""
        return float(scale * (1.0 + self._gen.pareto(shape)))

    def randint(self, lo: int, hi: int) -> int:
        """Integer in ``[lo, hi)``."""
        return int(self._gen.integers(lo, hi))

    def random(self) -> float:
        return float(self._gen.random())

    def choice(self, seq: Sequence[T]) -> T:
        return seq[self.randint(0, len(seq))]

    def weighted_choice(self, seq: Sequence[T], weights: Sequence[float]) -> T:
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        probs = np.asarray(weights, dtype=float) / total
        return seq[int(self._gen.choice(len(seq), p=probs))]

    # -- bulk draws ------------------------------------------------------------

    def exponentials(self, mean: float, size: int) -> np.ndarray:
        """``size`` exponential draws at once (arrival-gap vectors)."""
        return self._gen.exponential(mean, size=size)

    def uniforms(self, lo: float, hi: float, size: int) -> np.ndarray:
        return self._gen.uniform(lo, hi, size=size)

    def integers_array(self, lo: int, hi: int, size: int) -> np.ndarray:
        """``size`` integers in ``[lo, hi)`` at once."""
        return self._gen.integers(lo, hi, size=size)

    def sample_pages(self, n_pages: int, count: int) -> np.ndarray:
        """Distinct page indices: ``count`` of ``n_pages`` without replacement."""
        count = min(count, n_pages)
        return self._gen.choice(n_pages, size=count, replace=False)

    def poisson_counts(self, lam: float, size: int) -> np.ndarray:
        return self._gen.poisson(lam, size=size)

    def shuffled(self, seq: Sequence[T]) -> List[T]:
        out = list(seq)
        self._gen.shuffle(out)  # type: ignore[arg-type]
        return out


def _digest(seed: int, path: str) -> int:
    raw = hashlib.sha256(f"{seed}:{path}".encode()).digest()
    return int.from_bytes(raw[:8], "little")
