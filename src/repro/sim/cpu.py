"""Processor-sharing CPU model.

Models ``c`` physical cores shared by ``n`` concurrently runnable compute
tasks.  When ``n <= c`` every task runs at full speed; beyond that each
task progresses at rate ``c / n`` (an egalitarian processor-sharing queue,
the standard abstraction for CFS under CPU overcommitment).  This is what
makes the §6.1 experiment reproducible: 200 "Game design" agents on 20
cores slow down by ~25% because their bursts collide.

The implementation is event-driven: task arrival/departure re-rates all
outstanding tasks and reschedules the earliest completion.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Generator, Optional

from repro.sim.engine import Event, Interrupt, Simulator


class _ComputeTask:
    __slots__ = ("work_left", "done", "last_update")

    def __init__(self, work: float, done: Event, now: float):
        self.work_left = float(work)
        self.done = done
        self.last_update = now


class FairShareCPU:
    """A pool of cores with egalitarian processor sharing.

    Usage from a simulation process::

        yield from cpu.compute(0.5)   # consume 0.5 s of CPU work
    """

    def __init__(self, sim: Simulator, cores: int):
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.sim = sim
        self.cores = cores
        self._tasks: Dict[int, _ComputeTask] = {}
        self._ids = itertools.count()
        self._wakeup_token = 0
        self._busy_time = 0.0          # integrated core-seconds consumed
        self._last_busy_update = 0.0
        #: Single-consumer hook: called with the new :attr:`load` after
        #: every runnable-count change (cluster dispatch indices use it
        #: to keep a load-keyed heap current without per-pick scans).
        self.on_load_change: Optional[Callable[[int], None]] = None

    # -- public API ------------------------------------------------------------

    def compute(self, work: float) -> Generator:
        """Process command: burn ``work`` seconds of CPU time, sharing cores."""
        if work <= 0:
            return
            yield  # pragma: no cover - generator marker
        done = self.sim.event()
        self._advance_all()
        task_id = next(self._ids)
        self._tasks[task_id] = _ComputeTask(work, done, self.sim.now)
        self._reschedule()
        if self.on_load_change is not None:
            self.on_load_change(len(self._tasks))
        try:
            yield done
        except Interrupt:
            # The computing process was killed (node crash): drop its
            # task so it stops inflating the shared load forever.
            if task_id in self._tasks:
                self._advance_all()
                self._tasks.pop(task_id)
                self._reschedule()
                if self.on_load_change is not None:
                    self.on_load_change(len(self._tasks))
            raise
        return

    @property
    def load(self) -> int:
        """Number of currently runnable compute tasks."""
        return len(self._tasks)

    @property
    def rate(self) -> float:
        """Per-task progress rate right now (1.0 = a dedicated core)."""
        n = len(self._tasks)
        if n == 0:
            return 1.0
        return min(1.0, self.cores / n)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Average core utilisation over ``elapsed`` (default: since t=0)."""
        self._advance_all()
        window = elapsed if elapsed is not None else self.sim.now
        if window <= 0:
            return 0.0
        return self._busy_time / (window * self.cores)

    def stretch(self, work: float) -> float:
        """Wall time ``work`` seconds of CPU would take at the current load.

        Advisory only (load may change mid-flight); used by admission
        heuristics and tests.
        """
        return work / self.rate

    # -- internals ---------------------------------------------------------------

    def _advance_all(self) -> None:
        """Credit progress to all tasks for time elapsed since last update."""
        now = self.sim.now
        n = len(self._tasks)
        if n:
            rate = min(1.0, self.cores / n)
            for task in self._tasks.values():
                dt = now - task.last_update
                if dt > 0:
                    task.work_left -= dt * rate
                task.last_update = now
            self._busy_time += (now - self._last_busy_update) * min(n, self.cores)
        self._last_busy_update = now

    def _reschedule(self) -> None:
        """Schedule a wakeup at the earliest projected task completion."""
        self._wakeup_token += 1
        token = self._wakeup_token
        if not self._tasks:
            return
        rate = min(1.0, self.cores / len(self._tasks))
        earliest = min(t.work_left for t in self._tasks.values())
        eta = max(0.0, earliest / rate)
        self.sim.call_at(self.sim.now + eta, lambda: self._wakeup(token))

    def _wakeup(self, token: int) -> None:
        if token != self._wakeup_token:
            return  # superseded by a newer arrival/departure
        self._advance_all()
        finished = [tid for tid, t in self._tasks.items() if t.work_left <= 1e-12]
        for tid in finished:
            task = self._tasks.pop(tid)
            task.done.trigger()
        self._reschedule()
        if finished and self.on_load_change is not None:
            self.on_load_change(len(self._tasks))


class VCPUQuota:
    """Per-VM vCPU cap on top of the node's fair-share CPU.

    A guest with ``vcpus=1`` can only run one compute task at a time no
    matter how parallel its workload is — which is why the paper's
    map-reduce agent serialises its branch tool work inside its 1-vCPU
    microVM even though the LLM waits overlap (§9.6 configurations).
    FIFO admission; released slots wake the longest waiter.
    """

    def __init__(self, cpu: FairShareCPU, vcpus: int):
        if vcpus <= 0:
            raise ValueError("vcpus must be positive")
        self.cpu = cpu
        self.vcpus = vcpus
        self._running = 0
        self._waiting: list = []

    def compute(self, work: float) -> Generator:
        """Process command: burn CPU work, capped at ``vcpus`` parallel
        tasks for this guest."""
        if work <= 0:
            return
            yield  # pragma: no cover - generator marker
        if self._running >= self.vcpus:
            gate = self.cpu.sim.event()
            self._waiting.append(gate)
            try:
                yield gate   # on wake the slot is already ours
            except Interrupt:
                if gate in self._waiting:
                    self._waiting.remove(gate)   # never got the slot
                else:
                    self._release_slot()         # slot arrived mid-interrupt
                raise
        else:
            self._running += 1
        try:
            yield from self.cpu.compute(work)
        finally:
            self._release_slot()

    def _release_slot(self) -> None:
        if self._waiting:
            # Hand the slot directly to the next waiter so a new
            # arrival cannot slip in between release and wake-up.
            self._waiting.pop(0).trigger()
        else:
            self._running -= 1

    @property
    def queued(self) -> int:
        return len(self._waiting)

    @property
    def sim(self) -> Simulator:
        return self.cpu.sim
