"""Calibrated latency model.

Every timing constant used by the simulation lives here, annotated with the
paper section or table it was calibrated against.  Durations are in
**seconds**; sizes in bytes.  The defaults reproduce the testbed of §9.1
(dual Xeon 6454S, Samsung CXL device, Soft-RoCE RDMA).
"""

from __future__ import annotations

from dataclasses import dataclass, field

US = 1e-6
MS = 1e-3
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024
PAGE_SIZE = 4096


@dataclass
class NamespaceLatency:
    """Sandbox namespace costs (Table 1 and §3.3)."""

    # Table 1: network env takes 80 ms alone; §3.3: 400 ms at 15-way
    # concurrency (veth/bridge setup serialises on rtnl_lock).
    netns_base: float = 80 * MS
    netns_per_concurrent: float = 23 * MS
    netns_max: float = 10.0            # Table 1 upper bound under heavy load
    # Table 1: "other" namespaces (pid, uts, ipc, time) are <1 ms total.
    other_ns: float = 0.6 * MS
    mntns: float = 1.0 * MS

    def netns_create(self, concurrency: int) -> float:
        cost = self.netns_base + self.netns_per_concurrent * max(0, concurrency - 1)
        return min(cost, self.netns_max)


@dataclass
class CgroupLatency:
    """Cgroup costs (§4.1, §5.2.2)."""

    create_min: float = 16 * MS
    create_max: float = 32 * MS
    migrate_min: float = 10 * MS       # RCU grace-period wait on the
    migrate_max: float = 50 * MS       # global threadgroup rwsem (Fig 14)
    clone_into_min: float = 100 * US   # CLONE_INTO_CGROUP bypasses the
    clone_into_max: float = 300 * US   # migration path entirely (§5.2.2)
    reconfigure: float = 500 * US      # rewrite limits on a pooled cgroup


@dataclass
class RootfsLatency:
    """Rootfs / mount costs (Table 1, §5.2.1)."""

    mount_syscall: float = 3 * MS
    mknod: float = 0.5 * MS
    pivot_root: float = 2 * MS
    # Cold start: >9 mounts, 6 mkdev, 6 mknod, 1 pivot_root (§5.2.1); with
    # image pulls / overlay assembly Table 1 reports 10-800 ms total.
    overlay_assemble: float = 12 * MS
    # TrEnv reconfiguration: 2 mounts minimum, typically <1 ms (§9.4).
    reconfig_mount: float = 0.4 * MS
    purge_upper_sync: float = 2.5 * MS   # delete upper dir + remount
    criu_rootfs_restore: float = 30 * MS  # §9.4: >30 ms in CRIU


@dataclass
class MemoryLatency:
    """Memory restore / access costs (§3.3, §5.1, §9.1)."""

    # Fig 4: 60 MB image copies in ~60 ms from tmpfs; 360 MB in ~220 ms.
    # Linear fit: ~0.53 ms/MB + ~28 ms base (mmap storm + pte setup).
    copy_per_byte: float = 0.53 * MS / MB
    copy_base: float = 4 * MS
    mmap_syscall: float = 6 * US       # per-VMA mmap during CRIU restore
    # mm-template attach copies only metadata (<1 MB, §4): one syscall.
    mmt_attach_base: float = 350 * US
    mmt_attach_per_vma: float = 1.2 * US   # dup page-table metadata
    # Fault handling costs.
    minor_fault: float = 2.2 * US      # anonymous zero-fill / map fault
    cow_fault: float = 3.0 * US        # fault + 4 KiB copy + TLB shootdown
    userfaultfd_fault: float = 9.0 * US  # REAP/FaaSnap userspace handler hop
    # Raw media latencies (§9.1: "641.1 ns for CXL and 6 µs for RDMA").
    dram_load: float = 0.1 * US        # ~100 ns cache-missing load
    cxl_load: float = 0.6411 * US     # byte-addressable, no fault needed
    rdma_fetch_4k: float = 6.0 * US    # per-4 KiB one-sided read
    nas_fetch_4k: float = 60.0 * US    # SSD/NAS block fetch (§4.2)
    # RDMA tail instability under load (§9.5: ~5x cliffs in bursts).
    rdma_tail_factor: float = 5.0
    rdma_contention_knee: int = 8      # concurrent fetchers before cliff


@dataclass
class ProcessLatency:
    """Process / CRIU costs (Table 1)."""

    fork: float = 0.3 * MS
    clone_thread: float = 60 * US
    # Table 1 "Other": multi-thread context, sockets, fds => 3-15 ms.
    criu_misc_base: float = 3 * MS
    criu_misc_per_thread: float = 55 * US
    criu_misc_per_fd: float = 12 * US
    exec_spawn: float = 1.2 * MS       # execve + dynamic linking
    kill_process: float = 0.4 * MS     # SIGKILL + reap during cleanse


@dataclass
class VMLatency:
    """MicroVM costs (§6, §9.6)."""

    vmm_spawn: float = 25 * MS           # hypervisor process + jailer
    guest_boot: float = 125 * MS         # kernel boot to init (microVM)
    # Vanilla Cloud Hypervisor restores by copying the full guest image:
    # >700 ms for a 2 GB guest (§9.6.1) => ~0.35 ms/MB.
    restore_copy_per_byte: float = 0.35 * MS / MB
    restore_base: float = 18 * MS
    # TrEnv restores via one mmap of the template/DAX device (§7).
    mmap_restore: float = 6 * MS
    vm_exit: float = 1.4 * US            # page-fault VM exit roundtrip
    virtio_blk_io_4k: float = 4 * US     # para-virt block IO (guest+host hop)
    pmem_dax_load: float = 0.25 * US     # DAX read from host cache, no exit
    net_setup_e2b: float = 97 * MS       # §9.6.1: E2B network env setup
    cgroup_migrate_e2b: float = 63 * MS  # §9.6.1: E2B cgroup migration
    snapshot_resume: float = 12 * MS     # resume vCPUs from paused state


@dataclass
class AgentLatency:
    """Agent-side tool costs (§2, §9.6)."""

    browser_launch: float = 1.8         # Chromium cold launch in a microVM
    browser_tab_open: float = 0.35      # new tab in a running browser
    browser_shared_attach: float = 0.08  # attach to the shared pool browser
    tool_call_base: float = 30 * MS     # interpreter/tool dispatch overhead
    page_render_cpu: float = 0.9        # CPU seconds per heavy page render


@dataclass
class LatencyModel:
    """Aggregate latency model passed to every component."""

    ns: NamespaceLatency = field(default_factory=NamespaceLatency)
    cgroup: CgroupLatency = field(default_factory=CgroupLatency)
    rootfs: RootfsLatency = field(default_factory=RootfsLatency)
    mem: MemoryLatency = field(default_factory=MemoryLatency)
    proc: ProcessLatency = field(default_factory=ProcessLatency)
    vm: VMLatency = field(default_factory=VMLatency)
    agent: AgentLatency = field(default_factory=AgentLatency)

    def memory_copy(self, nbytes: int) -> float:
        """Time to copy ``nbytes`` of snapshot memory from tmpfs."""
        return self.mem.copy_base + nbytes * self.mem.copy_per_byte

    def rdma_fetch(self, npages: int, concurrency: int = 1) -> float:
        """Time to fault in ``npages`` over RDMA at a given fan-in."""
        per_page = self.mem.rdma_fetch_4k + self.mem.minor_fault
        knee = self.mem.rdma_contention_knee
        if concurrency > knee:
            # §9.5: heavy RDMA traffic exacerbates CPU load and flow
            # interference; model a linear climb toward the tail factor.
            overload = min(1.0, (concurrency - knee) / (3.0 * knee))
            per_page *= 1.0 + (self.mem.rdma_tail_factor - 1.0) * overload
        return npages * per_page

    def cxl_read_overhead(self, nloads: int) -> float:
        """Extra time for ``nloads`` cache-missing loads served from CXL."""
        return nloads * (self.mem.cxl_load - self.mem.dram_load)
