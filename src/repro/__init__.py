"""TrEnv (SOSP 2024) reproduction.

Public API overview — see README.md for the architecture tour:

* :class:`repro.node.Node` — a simulated host (CPU, memory, kernel).
* :class:`repro.core.TrEnvPlatform` — the TrEnv container platform;
  baselines live in :mod:`repro.serverless`.
* :mod:`repro.core.mm_template` — the mm-template API (Figure 11).
* :mod:`repro.agents` — agent specs and the VM agent platforms
  (E2B / E2B+ / vanilla CH / TrEnv-S).
* :mod:`repro.workloads` — Table-4 functions and arrival generators.
* :mod:`repro.bench` — per-table/figure experiment harness.
"""

from repro.node import Node
from repro.core import (MemoryTemplate, MMTemplateRegistry,
                        RepurposableSandboxPool, Repurposer, TrEnvConfig,
                        TrEnvPlatform, build_template_for_function)
from repro.mem.pools import (CXLPool, DedupStore, NASPool, RDMAPool,
                             TieredPool)
from repro.serverless import (CRIUPlatform, FaasdPlatform, FaasnapPlatform,
                              ReapPlatform, run_workload)
from repro.workloads import (FUNCTIONS, function_by_name, make_azure_workload,
                             make_huawei_workload, make_w1_bursty,
                             make_w2_diurnal)

__version__ = "0.1.0"

__all__ = [
    "CRIUPlatform",
    "CXLPool",
    "DedupStore",
    "FUNCTIONS",
    "FaasdPlatform",
    "FaasnapPlatform",
    "MMTemplateRegistry",
    "MemoryTemplate",
    "NASPool",
    "Node",
    "RDMAPool",
    "ReapPlatform",
    "RepurposableSandboxPool",
    "Repurposer",
    "TieredPool",
    "TrEnvConfig",
    "TrEnvPlatform",
    "build_template_for_function",
    "function_by_name",
    "make_azure_workload",
    "make_huawei_workload",
    "make_w1_bursty",
    "make_w2_diurnal",
    "run_workload",
]
